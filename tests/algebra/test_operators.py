"""Relational operator tree tests."""

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    Alias,
    BinOp,
    Col,
    Distinct,
    Join,
    Limit,
    Lit,
    OuterApply,
    Project,
    ProjectItem,
    Select,
    Sort,
    SortKey,
    Table,
    base_tables,
    replace_child,
    strip_sort,
    walk_relational,
)


def q():
    return Select(Table("board", "b"), BinOp("=", Col("rnd_id", "b"), Lit(1)))


class TestStructure:
    def test_equality_and_hash(self):
        assert q() == q()
        assert hash(q()) == hash(q())

    def test_children(self):
        join = Join(Table("a"), Table("b"), None, "cross")
        assert join.children() == (Table("a"), Table("b"))

    def test_walk_relational(self):
        tree = Project(q(), (ProjectItem(Col("p1")),))
        kinds = [type(n).__name__ for n in walk_relational(tree)]
        assert kinds == ["Project", "Select", "Table"]

    def test_base_tables(self):
        tree = Join(Table("a"), Select(Table("b"), Lit(True)))
        assert base_tables(tree) == {"a", "b"}

    def test_project_item_output_name_prefers_alias(self):
        assert ProjectItem(Col("x"), "y").output_name == "y"

    def test_project_item_output_name_uses_col_name(self):
        assert ProjectItem(Col("x", "t")).output_name == "x"

    def test_agg_item_output_name(self):
        item = AggItem(AggCall("max", Col("score")), "m")
        assert item.output_name == "m"


class TestRewriting:
    def test_replace_child_select(self):
        original = q()
        replaced = replace_child(original, original.child, Table("other"))
        assert replaced.child == Table("other")
        assert replaced.pred == original.pred

    def test_replace_child_join_left(self):
        join = Join(Table("a"), Table("b"), None)
        replaced = replace_child(join, join.left, Table("c"))
        assert replaced.left == Table("c")
        assert replaced.right == Table("b")

    def test_replace_child_alias(self):
        alias = Alias(Table("a"), "x")
        replaced = replace_child(alias, alias.child, Table("b"))
        assert replaced == Alias(Table("b"), "x")

    def test_strip_sort(self):
        sorted_rel = Sort(Sort(q(), (SortKey(Col("p1")),)), (SortKey(Col("p2")),))
        assert strip_sort(sorted_rel) == q()

    def test_strip_sort_noop(self):
        assert strip_sort(q()) == q()


class TestDisplay:
    def test_select_str(self):
        assert "σ" in str(q())

    def test_aggregate_str(self):
        agg = Aggregate(Table("t"), (), (AggItem(AggCall("count", None), "n"),))
        assert "γ" in str(agg)
        assert "COUNT(*)" in str(agg)

    def test_outer_apply_str(self):
        apply = OuterApply(Table("a"), Table("b"))
        assert "OApply" in str(apply)

    def test_limit_distinct_str(self):
        assert "limit[3]" in str(Limit(Table("t"), 3))
        assert "δ" in str(Distinct(Table("t")))
