"""Catalog and schema inference tests."""

import pytest

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    Alias,
    BinOp,
    Catalog,
    Col,
    Distinct,
    Join,
    Lit,
    Project,
    ProjectItem,
    Select,
    Sort,
    SortKey,
    Table,
    has_unique_key,
    key_of,
    output_columns,
)


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.define("board", ["id", "rnd_id", "p1"], key=("id",))
    cat.define("log", ["msg"])  # no key
    return cat


class TestCatalog:
    def test_lookup_case_insensitive(self, catalog):
        assert catalog.get("Board").name == "board"
        assert "BOARD" in catalog

    def test_unknown_table_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.get("nope")

    def test_column_names(self, catalog):
        assert catalog.get("board").column_names() == ["id", "rnd_id", "p1"]

    def test_has_column(self, catalog):
        assert catalog.get("board").has_column("p1")
        assert not catalog.get("board").has_column("zz")


class TestOutputColumns:
    def test_table(self, catalog):
        assert output_columns(Table("board"), catalog) == ["id", "rnd_id", "p1"]

    def test_select_passthrough(self, catalog):
        rel = Select(Table("board"), Lit(True))
        assert output_columns(rel, catalog) == ["id", "rnd_id", "p1"]

    def test_project(self, catalog):
        rel = Project(Table("board"), (ProjectItem(Col("p1"), "score"),))
        assert output_columns(rel, catalog) == ["score"]

    def test_join_merges(self, catalog):
        catalog.define("extra", ["id", "note"])
        rel = Join(Table("board"), Table("extra"))
        cols = output_columns(rel, catalog)
        assert cols == ["id", "rnd_id", "p1", "note"]

    def test_aggregate(self, catalog):
        rel = Aggregate(
            Table("board"), (Col("rnd_id"),), (AggItem(AggCall("max", Col("p1")), "m"),)
        )
        assert output_columns(rel, catalog) == ["rnd_id", "m"]

    def test_alias_passthrough(self, catalog):
        rel = Alias(Table("board"), "x")
        assert output_columns(rel, catalog) == ["id", "rnd_id", "p1"]


class TestKeys:
    def test_table_with_key(self, catalog):
        assert has_unique_key(Table("board"), catalog)
        assert key_of(Table("board"), catalog) == ("id",)

    def test_table_without_key(self, catalog):
        assert not has_unique_key(Table("log"), catalog)

    def test_select_preserves_key(self, catalog):
        rel = Select(Table("board"), Lit(True))
        assert has_unique_key(rel, catalog)

    def test_sort_distinct_preserve_key(self, catalog):
        rel = Distinct(Sort(Table("board"), (SortKey(Col("p1")),)))
        assert has_unique_key(rel, catalog)

    def test_projection_keeping_key(self, catalog):
        rel = Project(Table("board"), (ProjectItem(Col("id")), ProjectItem(Col("p1"))))
        assert has_unique_key(rel, catalog)

    def test_projection_dropping_key(self, catalog):
        rel = Project(Table("board"), (ProjectItem(Col("p1")),))
        assert not has_unique_key(rel, catalog)

    def test_join_has_no_key(self, catalog):
        rel = Join(Table("board"), Table("board", "b2"))
        assert not has_unique_key(rel, catalog)
