"""Tests for parameter binding and scalar mapping over algebra trees."""

from repro.algebra import (
    BinOp,
    Col,
    Join,
    Lit,
    Param,
    Project,
    ProjectItem,
    Select,
    Table,
    bind_rel_literals,
    bind_rel_params,
    map_scalars,
    query_params,
    scalar_exprs_of,
)


def correlated():
    return Select(Table("role", "r"), BinOp("=", Col("id", "r"), Param("uid")))


def test_query_params_finds_nested():
    rel = Project(correlated(), (ProjectItem(Param("label")),))
    assert query_params(rel) == {"uid", "label"}


def test_query_params_empty():
    assert query_params(Table("t")) == set()


def test_bind_rel_params():
    rel = bind_rel_params(correlated(), {"uid": Col("role_id", "u")})
    assert query_params(rel) == set()
    assert rel.pred.right == Col("role_id", "u")


def test_bind_rel_literals():
    rel = bind_rel_literals(correlated(), {"uid": 42})
    assert rel.pred.right == Lit(42)


def test_bind_leaves_unrelated_params():
    rel = bind_rel_params(correlated(), {"other": Lit(1)})
    assert query_params(rel) == {"uid"}


def test_map_scalars_applies_everywhere():
    rel = Join(correlated(), correlated(), BinOp("=", Col("a"), Col("b")))
    seen = []

    def spy(expr):
        seen.append(expr)
        return expr

    map_scalars(rel, spy)
    assert len(seen) == 3  # two selection preds + join pred


def test_scalar_exprs_of_join_without_pred():
    assert scalar_exprs_of(Join(Table("a"), Table("b"), None, "cross")) == []
