"""Catalog.from_dict / from_json_file / to_dict."""

import json

import pytest

from repro.algebra import Catalog

SPEC = {
    "board": {"columns": ["id", "rnd_id", "p1"], "key": ["id"]},
    "orders": {"columns": ["id", "amount"]},
}


class TestFromDict:
    def test_basic(self):
        catalog = Catalog.from_dict(SPEC)
        assert "board" in catalog
        assert catalog.get("board").key == ("id",)
        assert catalog.get("orders").column_names() == ["id", "amount"]
        assert catalog.get("orders").key == ()

    def test_typed_columns(self):
        catalog = Catalog.from_dict(
            {"t": {"columns": ["id", {"name": "amount", "type": "int"}]}}
        )
        assert catalog.get("t").columns[1].type == "int"

    def test_round_trip(self):
        catalog = Catalog.from_dict(SPEC)
        assert Catalog.from_dict(catalog.to_dict()).to_dict() == catalog.to_dict()

    def test_matches_define(self):
        by_hand = Catalog()
        by_hand.define("board", ["id", "rnd_id", "p1"], key=("id",))
        assert by_hand.to_dict() == Catalog.from_dict(
            {"board": {"columns": ["id", "rnd_id", "p1"], "key": ["id"]}}
        ).to_dict()

    @pytest.mark.parametrize(
        "spec",
        [
            "not a mapping",
            {"t": ["id"]},
            {"t": {}},
            {"t": {"columns": []}},
            {"t": {"columns": "id"}},
            {"t": {"columns": [42]}},
            {"t": {"columns": [{"type": "int"}]}},
            {"t": {"columns": ["id"], "key": "id"}},
            {"t": {"columns": ["id"], "key": ["missing"]}},
            {"t": {"columns": ["id"], "keys": ["id"]}},
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            Catalog.from_dict(spec)


class TestFromJsonFile:
    def test_loads(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text(json.dumps(SPEC))
        catalog = Catalog.from_json_file(path)
        assert catalog.get("board").column_names() == ["id", "rnd_id", "p1"]

    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="schema.json"):
            Catalog.from_json_file(path)

    def test_malformed_spec_names_the_file(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text(json.dumps({"t": {"columns": []}}))
        with pytest.raises(ValueError, match="schema.json"):
            Catalog.from_json_file(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            Catalog.from_json_file(tmp_path / "absent.json")
