"""Scalar expression tests."""

from repro.algebra import (
    BinOp,
    CaseWhen,
    Col,
    Func,
    Lit,
    Param,
    UnOp,
    columns_of,
    conjoin,
    params_of,
    rename_columns,
    substitute_params,
    walk_scalar,
)


class TestEquality:
    def test_structural_equality(self):
        assert BinOp("=", Col("x"), Lit(1)) == BinOp("=", Col("x"), Lit(1))

    def test_hashable(self):
        exprs = {BinOp("=", Col("x"), Lit(1)), BinOp("=", Col("x"), Lit(1))}
        assert len(exprs) == 1

    def test_qualifier_distinguishes(self):
        assert Col("x", "a") != Col("x", "b")
        assert Col("x") != Col("x", "a")


class TestRendering:
    def test_literal_string(self):
        assert str(Lit("abc")) == "'abc'"

    def test_literal_null(self):
        assert str(Lit(None)) == "NULL"

    def test_literal_bool(self):
        assert str(Lit(True)) == "TRUE"

    def test_qualified_column(self):
        assert str(Col("rnd_id", "b")) == "b.rnd_id"

    def test_param(self):
        assert str(Param("x")) == ":x"

    def test_case_when(self):
        expr = CaseWhen(Col("p"), Lit(1), Lit(0))
        assert "CASE WHEN" in str(expr)


class TestHelpers:
    def test_conjoin_none(self):
        assert conjoin() is None
        assert conjoin(None, None) is None

    def test_conjoin_single(self):
        pred = BinOp("=", Col("x"), Lit(1))
        assert conjoin(pred) is pred

    def test_conjoin_multiple(self):
        a = BinOp("=", Col("x"), Lit(1))
        b = BinOp(">", Col("y"), Lit(2))
        combined = conjoin(a, b)
        assert combined.op == "AND"

    def test_walk_scalar_visits_all(self):
        expr = BinOp("AND", BinOp("=", Col("a"), Lit(1)), UnOp("NOT", Col("b")))
        nodes = list(walk_scalar(expr))
        assert Col("a") in nodes and Col("b") in nodes

    def test_columns_of(self):
        expr = Func("GREATEST", (Col("p1"), Col("p2", "b")))
        assert columns_of(expr) == {Col("p1"), Col("p2", "b")}

    def test_params_of(self):
        expr = BinOp("=", Col("id"), Param("uid"))
        assert params_of(expr) == {"uid"}

    def test_substitute_params(self):
        expr = BinOp("=", Col("id"), Param("uid"))
        result = substitute_params(expr, {"uid": Lit(7)})
        assert result == BinOp("=", Col("id"), Lit(7))

    def test_substitute_params_inside_func(self):
        expr = Func("COALESCE", (Param("x"), Lit(0)))
        result = substitute_params(expr, {"x": Col("y")})
        assert result.args[0] == Col("y")

    def test_rename_columns_bare(self):
        expr = BinOp("=", Col("id"), Lit(1))
        result = rename_columns(expr, {"id": "q1.id"})
        assert result.left == Col("id", "q1")

    def test_rename_columns_qualified_takes_precedence(self):
        expr = Col("id", "a")
        result = rename_columns(expr, {"a.id": "b.key", "id": "wrong"})
        assert result == Col("key", "b")
