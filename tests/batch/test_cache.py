"""Content-addressed cache: keys, persistence, invalidation."""

import json

from repro import Catalog, ExtractOptions
from repro.batch import NullCache, ResultCache, cache_key

SOURCE = "f() { return 1; }"


def _catalog():
    return Catalog.from_dict({"t": {"columns": ["id"], "key": ["id"]}})


class TestCacheKey:
    def test_deterministic(self):
        a = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        b = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_source_edit_changes_key(self):
        base = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        assert cache_key(SOURCE + " ", "f", _catalog(), ExtractOptions()) != base

    def test_function_changes_key(self):
        base = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        assert cache_key(SOURCE, "g", _catalog(), ExtractOptions()) != base

    def test_schema_edit_changes_key(self):
        base = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        widened = Catalog.from_dict({"t": {"columns": ["id", "x"], "key": ["id"]}})
        assert cache_key(SOURCE, "f", widened, ExtractOptions()) != base

    def test_options_change_key(self):
        base = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        other = cache_key(
            SOURCE, "f", _catalog(), ExtractOptions(ordering_matters=False)
        )
        assert other != base


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        assert cache.get(key) is None
        cache.put(key, "a.mj", "f", {"status": "success"})
        assert cache.get(key) == {"status": "success"}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_persists_across_instances(self, tmp_path):
        key = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        ResultCache(tmp_path / "cache").put(key, "a.mj", "f", {"status": "success"})
        assert ResultCache(tmp_path / "cache").get(key) == {"status": "success"}

    def test_store_is_sharded_human_readable_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        cache.put(key, "a.mj", "f", {"status": "success"})
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["file"] == "a.mj"
        assert payload["function"] == "f"
        assert payload["result"] == {"status": "success"}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        cache.put(key, "a.mj", "f", {"status": "success"})
        (tmp_path / "cache" / key[:2] / f"{key}.json").write_text("{garbage")
        assert cache.get(key) is None

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(SOURCE, "f", _catalog(), ExtractOptions())
        cache.put(key, "a.mj", "f", {"status": "success"})
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["format"] = -1
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None


def test_null_cache_never_hits():
    cache = NullCache()
    cache.put("k", "a.mj", "f", {"status": "success"})
    assert cache.get("k") is None
    assert cache.hits == 0 and cache.stores == 0
