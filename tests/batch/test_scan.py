"""End-to-end scans: caching behaviour, parallel determinism, CLI."""

import json

from repro import Catalog, ExtractOptions
from repro.__main__ import main
from repro.batch import scan_directory
from repro.batch.report import stable_view

from .conftest import MAX_SOURCE


class TestScanDirectory:
    def test_cold_scan_outcomes(self, tree, catalog):
        report = scan_directory(tree, catalog)
        assert report.successes == 3
        assert report.cache_hits == 0
        assert report.cache_misses == 3
        assert report.cache_stores == 3
        assert list(report.parse_errors) == ["broken.mj"]
        by_unit = {
            (u["file"], u["function"]): u["variables"] for u in report.units
        }
        sql = by_unit[("app.mj", "unfinished")]["names"]["sql"]
        assert "SELECT name FROM Project p" in sql

    def test_warm_scan_is_all_hits(self, tree, catalog):
        scan_directory(tree, catalog)
        warm = scan_directory(tree, catalog)
        assert warm.cache_hits == 3
        assert warm.cache_misses == 0
        assert warm.extracted == 0
        assert all(u["cached"] for u in warm.units)

    def test_warm_equals_cold_modulo_timings(self, tree, catalog):
        cold = scan_directory(tree, catalog)
        warm = scan_directory(tree, catalog)
        assert stable_view(cold) == stable_view(warm)

    def test_source_edit_invalidates_only_that_file(self, tree, catalog):
        scan_directory(tree, catalog)
        (tree / "app.mj").write_text(MAX_SOURCE.replace("best = 0", "best = 1"))
        rescanned = scan_directory(tree, catalog)
        # app.mj now has one (changed) function; sub/more.mj still hits.
        assert rescanned.cache_hits == 1
        assert rescanned.cache_misses == 1
        refreshed = {u["file"]: u["cached"] for u in rescanned.units}
        assert refreshed == {"app.mj": False, "sub/more.mj": True}

    def test_identical_sources_share_cache_entries(self, tree, catalog):
        # Content addressing dedups across files: a copy of an already
        # scanned file is a hit on its very first scan.
        scan_directory(tree, catalog)
        (tree / "copy.mj").write_text(MAX_SOURCE)
        rescanned = scan_directory(tree, catalog)
        assert rescanned.cache_misses == 0
        assert rescanned.cache_hits == 4

    def test_schema_edit_invalidates_everything(self, tree, catalog):
        scan_directory(tree, catalog)
        widened = Catalog.from_dict(
            {
                "project": {
                    "columns": ["id", "name", "finished", "budget", "extra"],
                    "key": ["id"],
                }
            }
        )
        rescanned = scan_directory(tree, widened)
        assert rescanned.cache_hits == 0
        assert rescanned.cache_misses == 3

    def test_options_change_invalidates(self, tree, catalog):
        scan_directory(tree, catalog)
        rescanned = scan_directory(
            tree, catalog, options=ExtractOptions(dialect="postgres")
        )
        assert rescanned.cache_hits == 0

    def test_no_cache_mode(self, tree, catalog):
        first = scan_directory(tree, catalog, use_cache=False)
        second = scan_directory(tree, catalog, use_cache=False)
        assert first.cache_dir is None
        assert second.cache_hits == 0
        assert not (tree / ".repro-cache").exists()

    def test_explicit_cache_dir(self, tree, catalog, tmp_path):
        elsewhere = tmp_path / "elsewhere"
        scan_directory(tree, catalog, cache_dir=elsewhere)
        assert elsewhere.is_dir()
        warm = scan_directory(tree, catalog, cache_dir=elsewhere)
        assert warm.cache_hits == 3

    def test_parallel_matches_serial(self, tree, catalog):
        serial = scan_directory(tree, catalog, jobs=1, use_cache=False)
        parallel = scan_directory(tree, catalog, jobs=2, use_cache=False)
        assert stable_view(serial) == stable_view(parallel)

    def test_report_to_dict_is_json_ready(self, tree, catalog):
        report = scan_directory(tree, catalog)
        data = report.to_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["counts"]["success"] == 3
        assert data["counts"]["parse_errors"] == 1
        assert set(data["timings_ms"]) == {"discover", "extract", "total"}

    def test_crash_in_one_unit_does_not_kill_scan(self, tree, catalog, monkeypatch):
        import repro.batch.pool as pool_mod

        real = pool_mod.extract_sql

        def explode(source, function, catalog, **kwargs):
            if function == "maxBudget":
                raise RuntimeError("boom")
            return real(source, function, catalog, **kwargs)

        monkeypatch.setattr(pool_mod, "extract_sql", explode)
        report = scan_directory(tree, catalog, use_cache=False)
        failed = [u for u in report.units if u.get("error")]
        assert len(failed) == 1
        assert "boom" in failed[0]["error"]
        assert report.successes == 2


class TestScanCli:
    def _schema(self, tmp_path, catalog):
        path = tmp_path / "schema.json"
        path.write_text(json.dumps(catalog.to_dict()))
        return str(path)

    def test_text_output(self, tree, catalog, tmp_path, capsys):
        code = main(["scan", str(tree), "--schema", self._schema(tmp_path, catalog)])
        out = capsys.readouterr().out
        assert code == 0
        assert "units: 3" in out
        assert "app.mj::unfinished: success" in out
        assert "parse errors: 1" in out

    def test_json_output_and_warm_run(self, tree, catalog, tmp_path, capsys):
        schema = self._schema(tmp_path, catalog)
        main(["scan", str(tree), "--schema", schema, "--json"])
        cold = json.loads(capsys.readouterr().out)
        main(["scan", str(tree), "--schema", schema, "-j", "2", "--json"])
        warm = json.loads(capsys.readouterr().out)
        assert cold["cache"]["misses"] == 3
        assert warm["cache"]["hits"] == 3 and warm["cache"]["misses"] == 0
        assert [u["status"] for u in cold["units"]] == [
            u["status"] for u in warm["units"]
        ]

    def test_empty_directory_exits_nonzero(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(
            ["scan", str(empty), "--table", "t:id:id"]
        )
        assert code == 1
        assert "no source files" in capsys.readouterr().out

    def test_inline_table_schema(self, tree, capsys):
        code = main(
            ["scan", str(tree), "--table", "project:id,name,finished,budget:id"]
        )
        assert code == 0
        assert "success 3" in capsys.readouterr().out

    def test_bad_schema_file_exits_with_message(self, tree, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        import pytest

        with pytest.raises(SystemExit):
            main(["scan", str(tree), "--schema", str(bad)])
