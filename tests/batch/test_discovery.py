"""Discovery: source finding and (file, function) unit planning."""

from repro.batch import discover_sources, plan_units


def test_discovers_every_registered_frontend_suffix(tree):
    found = [p.name for p in discover_sources(tree)]
    assert found == ["app.mj", "broken.mj", "ignored.py", "more.mj"]


def test_frontend_restriction_narrows_discovery(tree):
    found = [p.name for p in discover_sources(tree, "minijava")]
    assert found == ["app.mj", "broken.mj", "more.mj"]
    assert [p.name for p in discover_sources(tree, "python")] == ["ignored.py"]


def test_units_carry_their_frontend(tree):
    discovery = plan_units(tree)
    assert {u.frontend for u in discovery.units} == {"minijava"}
    (tree / "dbapi.py").write_text(
        "def names(conn):\n"
        "    cur = conn.cursor()\n"
        "    cur.execute(\"SELECT name FROM project\")\n"
        "    return cur.fetchall()\n"
    )
    discovery = plan_units(tree)
    by_path = {u.path: u.frontend for u in discovery.units}
    assert by_path["dbapi.py"] == "python"
    assert by_path["app.mj"] == "minijava"


def test_hidden_directories_are_skipped(tree):
    cache = tree / ".repro-cache"
    cache.mkdir()
    (cache / "sneaky.mj").write_text("f() { return 1; }")
    assert all(".repro-cache" not in str(p) for p in discover_sources(tree))


def test_single_file_root(tree):
    discovery = plan_units(tree / "app.mj")
    assert [u.function for u in discovery.units] == ["unfinished", "totalBudget"]


def test_one_unit_per_function_in_order(tree):
    discovery = plan_units(tree)
    assert [(u.path, u.function) for u in discovery.units] == [
        ("app.mj", "unfinished"),
        ("app.mj", "totalBudget"),
        ("sub/more.mj", "maxBudget"),
    ]


def test_parse_failures_become_errors_not_crashes(tree):
    discovery = plan_units(tree)
    assert list(discovery.errors) == ["broken.mj"]
    assert "broken.mj" in discovery.files
    assert all(u.path != "broken.mj" for u in discovery.units)


def test_paths_are_relative_posix(tree):
    discovery = plan_units(tree)
    assert all(not u.path.startswith("/") for u in discovery.units)
    assert any("/" in u.path for u in discovery.units)  # nested file stays nested
