"""Shared fixtures: a small MiniJava tree and its catalog."""

import pytest

from repro import Catalog

GOOD_SOURCE = """
unfinished() {
    projects = executeQuery("from Project as p");
    names = new ArrayList();
    for (p : projects) {
        if (p.getFinished() == false) { names.add(p.getName()); }
    }
    return names;
}

totalBudget() {
    projects = executeQuery("from Project as p");
    total = 0;
    for (p : projects) {
        total = total + p.getBudget();
    }
    return total;
}
"""

MAX_SOURCE = """
maxBudget() {
    projects = executeQuery("from Project as p");
    best = 0;
    for (p : projects) {
        if (p.getBudget() > best) { best = p.getBudget(); }
    }
    return best;
}
"""

BROKEN_SOURCE = "this is ( not MiniJava"


@pytest.fixture
def catalog():
    return Catalog.from_dict(
        {
            "project": {
                "columns": ["id", "name", "finished", "budget"],
                "key": ["id"],
            }
        }
    )


@pytest.fixture
def tree(tmp_path):
    """A scan root: two good files (three functions), one nested, one broken."""
    (tmp_path / "app.mj").write_text(GOOD_SOURCE)
    nested = tmp_path / "sub"
    nested.mkdir()
    (nested / "more.mj").write_text(MAX_SOURCE)
    (tmp_path / "broken.mj").write_text(BROKEN_SOURCE)
    (tmp_path / "ignored.py").write_text("print('not minijava')")
    return tmp_path
