"""SSA construction and its two scalar clients (SCCP, copy propagation).

These pin the *facts* the precision layer relies on, at the analysis API:
φ placement at joins, the per-statement environment snapshots that make
AST mapping sound, the constant lattice (including its deliberate
conservatisms), dead-branch verdicts, and the validity rule for copy
resolution.
"""

from __future__ import annotations

import pytest

from repro.analysis.effects import function_effects
from repro.analysis.ssa import (
    build_ssa,
    resolve_copy,
    sccp,
)
from repro.lang import If, Return, number_statements, parse_program, walk_statements


def ssa_of(source: str, function: str = "f"):
    program = parse_program(source)
    number_statements(program)
    func = program.function(function)
    return func, build_ssa(func, function_effects(program))


def sccp_of(source: str, function: str = "f"):
    func, ssa = ssa_of(source, function)
    return func, sccp(ssa)


def stmt_by_type(func, kind):
    return [s for s in walk_statements(func.body) if isinstance(s, kind)]


class TestConstruction:
    def test_join_gets_a_phi_for_the_reassigned_variable(self):
        _, ssa = ssa_of(
            """
f(p) {
    x = 1;
    if (p > 0) {
        x = 2;
    }
    return x;
}
"""
        )
        phis = [v for v in ssa.values if v.kind == "phi" and v.var == "x"]
        assert len(phis) == 1
        operand_kinds = {ssa.value(o).kind for o in phis[0].operands if o >= 0}
        assert operand_kinds == {"assign"}

    def test_env_before_resolves_uses_to_the_dominating_def(self):
        func, ssa = ssa_of("f() {\n    x = 1;\n    y = x + 1;\n    return y;\n}")
        ret = stmt_by_type(func, Return)[0]
        vid = ssa.use(ret.sid, "y")
        assert vid is not None and ssa.value(vid).kind == "assign"

    def test_mutating_receiver_is_an_opaque_redefinition(self):
        _, ssa = ssa_of(
            "f() {\n    v = new ArrayList();\n    v.add(1);\n    return v;\n}"
        )
        kinds = [value.kind for value in ssa.values if value.var == "v"]
        assert "mutate" in kinds

    def test_call_to_unknown_function_redefines_its_arguments(self):
        _, ssa = ssa_of("f() {\n    v = new ArrayList();\n    poke(v);\n    return v;\n}")
        kinds = [value.kind for value in ssa.values if value.var == "v"]
        assert "opaque" in kinds


class TestSCCP:
    def test_constant_survives_a_join_with_a_dead_branch(self):
        func, result = sccp_of(
            """
f() {
    flag = false;
    x = 1;
    if (flag) {
        x = 2;
    }
    return x;
}
"""
        )
        ret = stmt_by_type(func, Return)[0]
        assert result.const_at(ret.sid, "x") == 1

    def test_dead_branch_verdict_for_constant_guard(self):
        func, result = sccp_of(
            """
f() {
    flag = 3 - 3;
    if (flag > 0) {
        x = 1;
    } else {
        x = 2;
    }
    return x;
}
"""
        )
        branch = stmt_by_type(func, If)[0]
        assert result.dead_branches == {branch.sid: "then"}
        assert result.const_at(stmt_by_type(func, Return)[0].sid, "x") == 2

    def test_branch_with_runtime_guard_is_not_dead(self):
        func, result = sccp_of(
            "f(p) {\n    if (p > 0) {\n        x = 1;\n    }\n    return 0;\n}"
        )
        assert result.dead_branches == {}

    @pytest.mark.parametrize("expr", ["8 / 2", "8 % 3", "1.5 + 1.5"])
    def test_division_modulo_and_floats_never_fold(self, expr):
        # The interpreter owns their corner cases (negative truncation,
        # rounding); SCCP must not invent compile-time answers for them.
        func, result = sccp_of(f"f() {{\n    x = {expr};\n    return x;\n}}")
        ret = stmt_by_type(func, Return)[0]
        assert result.const_at(ret.sid, "x") is None

    def test_call_results_are_bottom(self):
        func, result = sccp_of(
            "f() {\n    x = mystery();\n    return x;\n}"
        )
        ret = stmt_by_type(func, Return)[0]
        assert result.const_at(ret.sid, "x") is None

    def test_string_and_boolean_algebra_folds(self):
        func, result = sccp_of(
            """
f() {
    s = "a" + "b";
    t = s == "ab";
    u = t && true;
    return u;
}
"""
        )
        ret = stmt_by_type(func, Return)[0]
        assert result.const_at(ret.sid, "s") == "ab"
        assert result.const_at(ret.sid, "u") is True


class TestCopyPropagation:
    def test_straightline_copy_resolves_to_its_source(self):
        func, ssa = ssa_of(
            "f() {\n    q = executeQuery(\"from T as t\");\n    rs = q;\n    return rs;\n}"
        )
        ret = stmt_by_type(func, Return)[0]
        assert resolve_copy(ssa, ret.sid, "rs") == "q"

    def test_copy_is_invalid_after_the_source_is_redefined(self):
        func, ssa = ssa_of(
            """
f() {
    q = executeQuery("from T as t");
    rs = q;
    q = executeQuery("from U as u");
    return rs;
}
"""
        )
        ret = stmt_by_type(func, Return)[0]
        assert resolve_copy(ssa, ret.sid, "rs") is None

    def test_chain_of_copies_resolves_to_the_ultimate_source(self):
        func, ssa = ssa_of(
            "f() {\n    a = executeQuery(\"from T as t\");\n    b = a;\n    c = b;\n    return c;\n}"
        )
        ret = stmt_by_type(func, Return)[0]
        assert resolve_copy(ssa, ret.sid, "c") == "a"

    def test_conditional_copy_does_not_resolve(self):
        func, ssa = ssa_of(
            """
f(p) {
    a = executeQuery("from T as t");
    b = executeQuery("from U as u");
    if (p > 0) {
        b = a;
    }
    return b;
}
"""
        )
        ret = stmt_by_type(func, Return)[0]
        assert resolve_copy(ssa, ret.sid, "b") is None
