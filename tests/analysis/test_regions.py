"""Region hierarchy tests (paper Section 3.1 / Figure 4) with CFG
cross-validation: each loop region's header dominates its body."""

from repro.analysis import (
    BasicBlockRegion,
    ConditionalRegion,
    EmptyRegion,
    LoopRegion,
    OpaqueRegion,
    SequentialRegion,
    build_cfg,
    build_function_region,
    contains_opaque,
    cursor_loops,
    dominates,
    dominators,
    iter_regions,
)
from repro.lang import parse_program


def region_of(source, name="f"):
    return build_function_region(parse_program(source).function(name))


class TestRegionKinds:
    def test_basic_block(self):
        region = region_of("f() { x = 1; y = 2; }")
        assert isinstance(region, BasicBlockRegion)
        assert len(region.stmts) == 2

    def test_sequential_composition(self):
        region = region_of("f() { x = 1; if (x > 0) { y = 2; } z = 3; }")
        assert isinstance(region, SequentialRegion)

    def test_conditional_region(self):
        region = region_of("f() { if (a) { x = 1; } else { x = 2; } }")
        assert isinstance(region, ConditionalRegion)
        assert region.false_region is not None

    def test_conditional_without_else(self):
        region = region_of("f() { if (a) { x = 1; } }")
        assert isinstance(region, ConditionalRegion)
        assert region.false_region is None

    def test_cursor_loop_region(self):
        region = region_of("f() { for (t : xs) { x = 1; } }")
        assert isinstance(region, LoopRegion)
        assert region.is_cursor_loop
        assert region.cursor_var == "t"

    def test_while_loop_region(self):
        region = region_of("f() { while (a) { x = 1; } }")
        assert isinstance(region, LoopRegion)
        assert not region.is_cursor_loop

    def test_empty_function(self):
        assert isinstance(region_of("f() { }"), EmptyRegion)

    def test_nested_loops(self):
        region = region_of(
            "f() { for (a : xs) { for (b : ys) { x = 1; } } }"
        )
        loops = cursor_loops(region)
        assert len(loops) == 2

    def test_try_without_catch_is_transparent(self):
        region = region_of("f() { try { x = 1; } }")
        assert not contains_opaque(region)

    def test_try_with_catch_is_opaque(self):
        region = region_of("f() { try { x = 1; } catch (e) { y = 2; } }")
        assert contains_opaque(region)

    def test_break_is_opaque(self):
        region = region_of("f() { for (t : xs) { break; } }")
        assert contains_opaque(region)


class TestRegionContents:
    def test_statements_in_source_order(self):
        region = region_of("f() { x = 1; if (a) { y = 2; } z = 3; }")
        sids = [s.sid for s in region.statements()]
        assert sids == sorted(sids)

    def test_iter_regions_preorder(self):
        region = region_of("f() { x = 1; for (t : xs) { y = 2; } }")
        kinds = [type(r).__name__ for r in iter_regions(region)]
        assert kinds[0] == "SequentialRegion"
        assert "LoopRegion" in kinds


class TestRegionDominationProperty:
    """The defining property (Section 3.1): a region has a single entry and
    its header dominates all nodes in it.  Cross-checked against the CFG."""

    def _check(self, source):
        func = parse_program(source).function("f")
        cfg = build_cfg(func)
        doms = dominators(cfg)
        region = build_function_region(func)
        # Map loop-region statements to CFG blocks and check domination.
        for loop in cursor_loops(region):
            header_sid = loop.stmt.sid
            header_block = next(
                b.index
                for b in cfg.blocks
                if header_sid in [s.sid for s in b.statements]
            )
            body_sids = {s.sid for s in loop.body.statements()}
            for block in cfg.blocks:
                if body_sids & {s.sid for s in block.statements}:
                    assert dominates(doms, header_block, block.index)

    def test_simple_loop(self):
        self._check("f() { for (t : xs) { x = 1; y = 2; } }")

    def test_loop_with_conditional(self):
        self._check("f() { for (t : xs) { if (a) { x = 1; } else { x = 2; } } }")

    def test_nested_loop(self):
        self._check("f() { for (a : xs) { for (b : ys) { x = 1; } z = 2; } }")
