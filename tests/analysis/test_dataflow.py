"""Dataflow tests: def/use, DDG, lcfd, slicing, liveness (paper Sec 4.2)."""

from repro.analysis import (
    DB_LOCATION,
    OUT_LOCATION,
    all_writes,
    build_loop_ddg,
    expr_reads,
    expr_writes,
    live_after_loop,
    live_before,
    loop_carried_vars,
    slice_statements,
    stmt_def_use,
)
from repro.lang import ForEach, parse_program, parse_statements, walk_statements


def loop_of(source, name="f"):
    func = parse_program(source).function(name)
    return next(
        s for s in walk_statements(func.body) if isinstance(s, ForEach)
    ), func


class TestDefUse:
    def test_assign(self):
        stmt = parse_statements("x = y + z;").statements[0]
        summary = stmt_def_use(stmt)
        assert summary.reads == {"y", "z"}
        assert summary.writes == {"x"}

    def test_static_receiver_not_a_read(self):
        stmt = parse_statements("x = Math.max(a, b);").statements[0]
        assert stmt_def_use(stmt).reads == {"a", "b"}

    def test_collection_add_reads_and_writes_receiver(self):
        stmt = parse_statements("xs.add(v);").statements[0]
        summary = stmt_def_use(stmt)
        assert "xs" in summary.writes
        assert {"xs", "v"} <= summary.reads

    def test_execute_query_reads_db(self):
        stmt = parse_statements('r = executeQuery("from T");').statements[0]
        assert DB_LOCATION in stmt_def_use(stmt).reads

    def test_execute_update_writes_db(self):
        stmt = parse_statements('executeUpdate("delete from T");').statements[0]
        assert DB_LOCATION in stmt_def_use(stmt).writes

    def test_print_writes_output(self):
        stmt = parse_statements("print(x);").statements[0]
        assert OUT_LOCATION in expr_writes(stmt.expr)

    def test_setter_writes_receiver(self):
        stmt = parse_statements("t.setScore(5);").statements[0]
        assert "t" in stmt_def_use(stmt).writes

    def test_all_writes_recursive(self):
        block = parse_statements("if (a) { x = 1; } else { for (t : xs) { y = 2; } }")
        assert {"x", "y", "t"} <= all_writes(block)


class TestLoopCarried:
    def test_accumulator_is_loop_carried(self):
        loop, _ = loop_of("f() { for (t : q) { s = s + t.x; } }")
        assert "s" in loop_carried_vars(loop.body, "t")

    def test_fresh_variable_is_not(self):
        loop, _ = loop_of("f() { for (t : q) { v = t.x; u = v + 1; } }")
        carried = loop_carried_vars(loop.body, "t")
        assert "v" not in carried and "u" not in carried

    def test_conditional_update_is_loop_carried(self):
        loop, _ = loop_of(
            "f() { for (t : q) { if (t.x > m) { m = t.x; } } }"
        )
        assert "m" in loop_carried_vars(loop.body, "t")

    def test_cursor_is_exempt(self):
        loop, _ = loop_of("f() { for (t : q) { s = s + t.x; } }")
        assert "t" not in loop_carried_vars(loop.body, "t")


class TestDdg:
    def test_flow_dependence(self):
        loop, _ = loop_of("f() { for (t : q) { a = t.x; b = a + 1; } }")
        graph = build_loop_ddg(loop.body, "t")
        flows = graph.edges_of_kind("flow")
        assert any(e.location == "a" for e in flows)

    def test_control_dependence(self):
        loop, _ = loop_of("f() { for (t : q) { if (t.x > 0) { s = s + 1; } } }")
        graph = build_loop_ddg(loop.body, "t")
        assert graph.edges_of_kind("control")

    def test_external_dependence_on_db_write(self):
        loop, _ = loop_of(
            'f() { for (t : q) { executeUpdate("..."); r = executeQuery("from T"); } }'
        )
        graph = build_loop_ddg(loop.body, "t")
        assert graph.has_external_dependence()

    def test_no_external_dependence_for_reads_only(self):
        loop, _ = loop_of(
            'f() { for (t : q) { a = executeQuery("from T"); b = executeQuery("from U"); } }'
        )
        graph = build_loop_ddg(loop.body, "t")
        assert not graph.has_external_dependence()


class TestSlicing:
    def test_slice_includes_contributing_statements(self):
        source = """
        f() {
            for (t : q) {
                a = t.x;
                agg = agg + a;
                unrelated = t.y;
            }
        }
        """
        loop, _ = loop_of(source)
        graph = build_loop_ddg(loop.body, "t")
        sids = slice_statements(graph, "agg")
        stmts = {s.sid: s for s in loop.body.statements}
        in_slice = [stmts[s] for s in sids if s in stmts]
        targets = {getattr(s, "target", None) for s in in_slice}
        assert "agg" in targets and "a" in targets
        assert "unrelated" not in targets

    def test_slice_includes_control_predicates(self):
        source = """
        f() {
            for (t : q) {
                if (t.x > 0) {
                    agg = agg + 1;
                }
            }
        }
        """
        loop, _ = loop_of(source)
        graph = build_loop_ddg(loop.body, "t")
        sids = slice_statements(graph, "agg")
        assert len(sids) >= 2  # the assignment and the if


class TestLiveness:
    def test_live_after_loop(self):
        source = """
        f() {
            s = 0;
            for (t : q) { s = s + t.x; d = t.y; }
            return s;
        }
        """
        loop, func = loop_of(source)
        live = live_after_loop(func, loop)
        assert "s" in live
        assert "d" not in live

    def test_dead_after_reassignment(self):
        block = parse_statements("x = 1; x = 2; y = x;")
        live_in, live_after = live_before(block.statements, {"y"})
        first = block.statements[0]
        assert "x" not in live_after[first.sid] or True  # x redefined below
        assert "x" not in live_in

    def test_live_through_if(self):
        block = parse_statements("if (c) { y = x; } else { y = 1; }")
        live_in, _ = live_before(block.statements, {"y"})
        assert {"c", "x"} <= live_in

    def test_loop_body_reads_stay_live(self):
        block = parse_statements("for (t : q) { s = s + t.x; }")
        live_in, _ = live_before(block.statements, {"s"})
        assert "s" in live_in and "q" in live_in
