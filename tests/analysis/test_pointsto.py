"""Flow-sensitive points-to / escape analysis: the EQ103 proof obligations.

``is_function_local`` is the fact the lint engine downgrades blockers on,
so its one-way soundness contract gets the closest scrutiny here: every
"don't know" situation (parameters, unknown callees, escaped containers)
must come back False/aliased, and only genuine proofs come back True.
"""

from __future__ import annotations

from repro.analysis.effects import function_effects
from repro.analysis.pointsto import UNKNOWN_OBJECT, analyze_pointsto
from repro.lang import (
    Return,
    number_statements,
    parse_program,
    walk_statements,
)


def analyze(source: str, function: str = "f"):
    program = parse_program(source)
    number_statements(program)
    func = program.function(function)
    return func, analyze_pointsto(func, function_effects(program))


def sid_of(func, kind, index=0):
    return [s for s in walk_statements(func.body) if isinstance(s, kind)][index].sid


class TestObjectTracking:
    def test_query_call_yields_a_query_object(self):
        func, result = analyze(
            "f() {\n    q = executeQuery(\"from T as t\");\n    return 0;\n}"
        )
        objs = result.objects_at(sid_of(func, Return), "q")
        assert {o.kind for o in objs} == {"query"}

    def test_cursor_variable_holds_row_objects(self):
        func, result = analyze(
            """
f() {
    q = executeQuery("from T as t");
    total = 0;
    for (t : q) {
        total = total + t.getA();
    }
    return total;
}
"""
        )
        # Inside the loop the row variable must denote a row of the query.
        for stmt in walk_statements(func.body):
            env = result.at.get(stmt.sid, {})
            if "t" in env and env["t"]:
                assert {o.kind for o in env["t"]} == {"row"}
                break
        else:  # pragma: no cover - the loop variable must appear somewhere
            raise AssertionError("loop variable never tracked")

    def test_parameters_are_never_function_local(self):
        func, result = analyze("f(v) {\n    v.add(1);\n    return 0;\n}")
        assert not result.is_function_local(sid_of(func, Return), "v")


class TestEscape:
    def test_returned_object_escapes(self):
        func, result = analyze(
            "f() {\n    v = new ArrayList();\n    return v;\n}"
        )
        assert not result.is_function_local(sid_of(func, Return), "v")

    def test_unreturned_allocation_is_local(self):
        func, result = analyze(
            "f() {\n    v = new ArrayList();\n    v.add(1);\n    return 0;\n}"
        )
        assert result.is_function_local(sid_of(func, Return), "v")

    def test_passing_to_unknown_callee_escapes(self):
        func, result = analyze(
            "f() {\n    v = new ArrayList();\n    publish(v);\n    return 0;\n}"
        )
        assert not result.is_function_local(sid_of(func, Return), "v")

    def test_non_escaping_defined_callee_keeps_the_object_local(self):
        func, result = analyze(
            """
f() {
    v = new ArrayList();
    n = measure(v, 3);
    return n;
}

measure(c, k) {
    if (k > 0) {
        return measure(c, k - 1);
    }
    return 0;
}
"""
        )
        assert result.is_function_local(sid_of(func, Return), "v")

    def test_callee_that_returns_its_argument_escapes_it(self):
        func, result = analyze(
            """
f() {
    v = new ArrayList();
    w = reflect(v);
    return 0;
}

reflect(c) {
    return c;
}
"""
        )
        assert not result.is_function_local(sid_of(func, Return), "v")

    def test_containment_closure_escapes_stored_objects(self):
        # v is stored into a returned container, so v escapes through it.
        func, result = analyze(
            """
f() {
    box = new ArrayList();
    v = new ArrayList();
    box.add(v);
    return box;
}
"""
        )
        assert not result.is_function_local(sid_of(func, Return), "v")

    def test_out_buffer_append_escapes(self):
        # Preprocessing rewrites prints into __out__ appends; anything
        # appended is part of the observable result.
        func, result = analyze(
            """
f() {
    __out__ = new ArrayList();
    v = new ArrayList();
    __out__.add(v);
    return 0;
}
"""
        )
        assert not result.is_function_local(sid_of(func, Return), "v")


class TestMayAlias:
    def test_rebinding_breaks_aliasing(self):
        func, result = analyze(
            """
f() {
    q = executeQuery("from T as t");
    q = new ArrayList();
    return q;
}
"""
        )
        ret_sid = sid_of(func, Return)
        first_sid = min(result.at)
        query_objs = {
            o
            for env in result.at.values()
            for o in env.get("q", ())
            if o.kind == "query"
        }
        assert query_objs
        assert not result.may_alias(ret_sid, "q", frozenset(query_objs))

    def test_unknown_aliases_everything(self):
        func, result = analyze("f(v) {\n    w = mystery();\n    return w;\n}")
        ret_sid = sid_of(func, Return)
        assert result.may_alias(ret_sid, "w", frozenset({UNKNOWN_OBJECT}))
        assert result.may_alias(ret_sid, "w", result.objects_at(ret_sid, "v"))
