"""The ``python -m repro analyze`` subcommand: text and JSON fact dumps."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main

SOURCE = """
totalOpenOrders() {
    debug = false;
    rows = executeQuery("from Orders as o where o.status = 'open'");
    total = 0;
    for (t : rows) {
        if (debug) {
            logAudit(t);
        }
        total = total + t.getAmount();
    }
    return total;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "orders.mj"
    path.write_text(SOURCE)
    return path


def run(capsys, *argv) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestAnalyze:
    def test_text_dump_shows_all_three_fact_families(self, capsys, source_file):
        code, out = run(capsys, "analyze", f"{source_file}::totalOpenOrders")
        assert code == 0
        assert "SSA values:" in out
        assert "debug#" in out  # an SSA value for the flag
        assert "= False" in out  # its proven constant
        assert "then arm unreachable" in out  # the dead branch
        assert "query@" in out  # the points-to object for the result set

    def test_json_dump_is_structured(self, capsys, source_file):
        code, out = run(
            capsys, "analyze", f"{source_file}::totalOpenOrders", "--json"
        )
        assert code == 0
        facts = json.loads(out)
        assert facts["function"] == "totalOpenOrders"
        assert facts["frontend"] == "minijava"
        assert any(entry.startswith("debug#") for entry in facts["ssa"])
        assert False in facts["constants"].values()
        assert facts["dead_branches"]
        assert any(
            obj.startswith("query@")
            for obj in facts["pointsto"]["variables"].get("rows", [])
        )

    def test_unknown_function_exits_with_a_listing(self, capsys, source_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", f"{source_file}::nope"])
        assert "totalOpenOrders" in str(excinfo.value)

    def test_malformed_target_is_rejected(self, source_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", str(source_file)])
        assert "FILE::function" in str(excinfo.value)
