"""Dataflow corner cases: loop-carried defs on unusual edges, cursor
reassignment, and the transitive effect summaries the lint layer gates on.

These tests document behaviour the rest of the pipeline depends on: where
the dependence analysis is conservative, where it is exempt (the cursor
variable), and why each choice stays sound end to end.
"""

from repro import Catalog, extract_sql
from repro.analysis import (
    EffectSummary,
    all_writes,
    build_loop_ddg,
    function_effects,
    loop_carried_vars,
    slice_statements,
    stmt_def_use,
)
from repro.lang import ForEach, parse_program, walk_statements


def first_loop(source: str, function: str = "f") -> ForEach:
    func = parse_program(source).function(function)
    return next(s for s in walk_statements(func.body) if isinstance(s, ForEach))


class TestLoopCarriedDefs:
    def test_accumulator_chain_is_loop_carried(self):
        loop = first_loop(
            """
f() {
    rs = executeQuery("from P as p");
    a = 0;
    b = 0;
    for (r : rs) { a = a + r.getA(); b = b + a; }
    return b;
}
"""
        )
        assert loop_carried_vars(loop.body, cursor_var="r") == {"a", "b"}

    def test_both_arm_conditional_write_before_read_is_plain_flow(self):
        """When every path rewrites ``x`` before the read, the read cannot
        observe the previous iteration: no lcfd, only intra-iteration flow."""
        loop = first_loop(
            """
f() {
    rs = executeQuery("from P as p");
    x = 0;
    for (r : rs) {
        if (r.getA() > 0) { x = 1; } else { x = 2; }
        y = x + 1;
    }
    return y;
}
"""
        )
        assert loop_carried_vars(loop.body, cursor_var="r") == set()
        graph = build_loop_ddg(loop.body, cursor_var="r")
        assert any(
            e.kind == "flow" and e.location == "x" for e in graph.edges
        )


class TestExceptionEdges:
    SOURCE = """
f() {
    rs = executeQuery("from P as p");
    n = 0;
    for (r : rs) {
        try { n = n + r.getA(); } catch (e) { n = 0; }
    }
    return n;
}
"""

    def test_trycatch_def_use_is_header_only(self):
        """``stmt_def_use`` summarises only the statement's own header; the
        arms are separate statements for the flattened dependence graph."""
        loop = first_loop(self.SOURCE)
        trycatch = loop.body.statements[0]
        assert stmt_def_use(trycatch).writes == frozenset()

    def test_all_writes_sees_both_try_and_catch_defs(self):
        loop = first_loop(self.SOURCE)
        assert all_writes(loop.body.statements[0]) == {"n"}

    def test_defs_on_exception_edges_are_loop_carried(self):
        """The def on the normal edge and the def on the exception edge both
        reach the next iteration — ``n`` must be loop-carried even though
        every write sits inside a try/catch."""
        loop = first_loop(self.SOURCE)
        assert loop_carried_vars(loop.body, cursor_var="r") == {"n"}

    def test_catch_arm_write_appears_in_the_dependence_graph(self):
        loop = first_loop(self.SOURCE)
        graph = build_loop_ddg(loop.body, cursor_var="r")
        writers = {
            stmt.sid for stmt in graph.statements if "n" in stmt_def_use(stmt).writes
        }
        assert len(writers) == 2  # the try def and the catch def


class TestEarlyExitEdges:
    SOURCE = """
f() {
    rs = executeQuery("from P as p");
    n = 0;
    for (r : rs) {
        n = n + 1;
        if (n > 10) { break; }
    }
    return n;
}
"""

    def test_break_does_not_kill_the_loop_carried_def(self):
        loop = first_loop(self.SOURCE)
        assert loop_carried_vars(loop.body, cursor_var="r") == {"n"}

    def test_break_is_control_dependent_on_its_guard(self):
        loop = first_loop(self.SOURCE)
        graph = build_loop_ddg(loop.body, cursor_var="r")
        assert any(e.kind == "control" for e in graph.edges)

    def test_slice_of_the_accumulator_excludes_the_exit_path(self):
        """``break`` affects how many iterations run, not the value ``n``
        takes per iteration — the slice keeps only the accumulation."""
        loop = first_loop(self.SOURCE)
        graph = build_loop_ddg(loop.body, cursor_var="r")
        sliced = slice_statements(graph, "n")
        assert len(sliced) == 1


class TestCursorReassignment:
    SOURCE = """
f(other) {
    rs = executeQuery("from P as p");
    x = 0;
    for (r : rs) {
        x = x + r.getA();
        r = other;
        y = r.getB();
    }
    return x;
}
"""

    def test_cursor_exemption_survives_reassignment(self):
        """The P2 cursor exemption drops ``r`` from the loop-carried set even
        when the body reassigns it: the ve-map substitutes values
        sequentially, so each read of ``r`` resolves to whichever def
        (cursor advance or reassignment) precedes it."""
        loop = first_loop(self.SOURCE)
        assert loop_carried_vars(loop.body, cursor_var="r") == {"x"}
        assert loop_carried_vars(loop.body, cursor_var=None) == {"r", "x"}

    def test_read_before_reassignment_extracts_the_cursor_column(self):
        catalog = Catalog.from_dict({"p": {"columns": ["id", "a", "b"], "key": ["id"]}})
        extraction = extract_sql(self.SOURCE, "f", catalog).variables["x"]
        assert extraction.status == "success"
        assert extraction.sql == "SELECT SUM(a) AS agg FROM P p"

    def test_read_after_reassignment_extracts_the_new_value(self):
        """Flipping the order must flip the extracted SQL: after ``r =
        other`` the accumulation reads the parameter, not the row."""
        source = """
f(other) {
    rs = executeQuery("from P as p");
    x = 0;
    for (r : rs) {
        r = other;
        x = x + r.getA();
    }
    return x;
}
"""
        catalog = Catalog.from_dict({"p": {"columns": ["id", "a", "b"], "key": ["id"]}})
        extraction = extract_sql(source, "f", catalog).variables["x"]
        assert extraction.status == "success"
        assert ":other__a" in extraction.sql  # N copies of the parameter's column


class TestEffectSummaries:
    SOURCE = """
leaf(xs) { xs.add(1); return 0; }
mid(a, b) { leaf(b); return 0; }
top(q) { mid(0, q); return 0; }
writer() { executeUpdate("x"); return 0; }
chain() { writer(); return 0; }
selfrec(n) { return selfrec(n); }
mutual_a() { return mutual_b(); }
mutual_b() { return mutual_a(); }
unknown_caller() { mystery(); return 0; }
printer() { System.out.println(1); return 0; }
reader() { q = executeQuery("from P as p"); return q; }
"""

    def setup_method(self):
        self.effects = function_effects(parse_program(self.SOURCE))

    def test_direct_facts(self):
        assert self.effects["writer"].db_write
        assert self.effects["reader"].db_read
        assert self.effects["printer"].output
        assert self.effects["unknown_caller"].calls_unknown

    def test_db_write_propagates_up_the_call_graph(self):
        assert self.effects["chain"].db_write
        assert not self.effects["chain"].db_read

    def test_mutates_params_maps_argument_positions(self):
        """``leaf`` mutates its parameter 0; ``mid`` passes param 1 there;
        ``top`` passes its param 0 to ``mid``'s position 1 — the fixpoint
        must relabel the position at every hop."""
        assert self.effects["leaf"].mutates_params == {0}
        assert self.effects["mid"].mutates_params == {1}
        assert self.effects["top"].mutates_params == {0}

    def test_self_recursion_is_opaque(self):
        assert self.effects["selfrec"].recursive
        assert self.effects["selfrec"].opaque

    def test_mutual_recursion_is_opaque(self):
        assert self.effects["mutual_a"].recursive
        assert self.effects["mutual_b"].recursive

    def test_unknown_call_is_opaque_but_not_recursive(self):
        summary = self.effects["unknown_caller"]
        assert summary.opaque and not summary.recursive

    def test_pure_summary_is_the_default(self):
        assert EffectSummary() == EffectSummary(
            db_read=False,
            db_write=False,
            output=False,
            calls_unknown=False,
            recursive=False,
            mutates_params=frozenset(),
        )
        assert not EffectSummary().opaque
