"""CFG construction and dominator tests."""

from repro.analysis import (
    build_cfg,
    dominates,
    dominators,
    immediate_dominators,
    reverse_postorder,
)
from repro.lang import parse_program


def cfg_of(source, name="f"):
    return build_cfg(parse_program(source).function(name))


class TestCfgShape:
    def test_straight_line(self):
        cfg = cfg_of("f() { x = 1; y = 2; }")
        reachable = cfg.reachable_blocks()
        assert cfg.entry in reachable and cfg.exit in reachable

    def test_if_creates_branch(self):
        cfg = cfg_of("f() { if (a) { x = 1; } y = 2; }")
        branch_blocks = [b for b in cfg.blocks if len(b.successors) == 2]
        assert branch_blocks, "expected a two-way branch"

    def test_loop_creates_backedge(self):
        cfg = cfg_of("f() { for (t : xs) { x = 1; } }")
        # some edge points to an earlier (lower-index) block: the backedge
        has_backedge = any(
            succ <= block.index
            for block in cfg.blocks
            for succ in block.successors
        )
        assert has_backedge

    def test_return_jumps_to_exit(self):
        cfg = cfg_of("f() { if (a) { return 1; } return 2; }")
        exit_preds = cfg.blocks[cfg.exit].predecessors
        assert len(exit_preds) >= 2

    def test_unreachable_code_dropped(self):
        cfg = cfg_of("f() { return 1; x = 2; }")
        sids = [s.sid for b in cfg.blocks for s in b.statements]
        # only the return remains
        assert len(sids) == 1

    def test_break_exits_loop(self):
        cfg = cfg_of("f() { for (t : xs) { break; } y = 1; }")
        assert cfg.reachable_blocks()  # builds without error

    def test_while_condition_in_header(self):
        cfg = cfg_of("f() { while (x < 3) { x = x + 1; } }")
        headers = [b for b in cfg.blocks if b.label == "loop-header"]
        assert len(headers) == 1
        assert len(headers[0].successors) == 2


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = cfg_of("f() { if (a) { x = 1; } else { x = 2; } y = 3; }")
        doms = dominators(cfg)
        for block in cfg.reachable_blocks():
            assert dominates(doms, cfg.entry, block)

    def test_branch_does_not_dominate_join_sides(self):
        cfg = cfg_of("f() { if (a) { x = 1; } else { x = 2; } y = 3; }")
        doms = dominators(cfg)
        then_blocks = [b.index for b in cfg.blocks if b.label == "then"]
        else_blocks = [b.index for b in cfg.blocks if b.label == "else"]
        join_blocks = [b.index for b in cfg.blocks if b.label == "join"]
        assert not dominates(doms, then_blocks[0], join_blocks[0])
        assert not dominates(doms, else_blocks[0], join_blocks[0])

    def test_loop_header_dominates_body(self):
        cfg = cfg_of("f() { for (t : xs) { x = 1; } }")
        doms = dominators(cfg)
        header = [b.index for b in cfg.blocks if b.label == "loop-header"][0]
        body = [b.index for b in cfg.blocks if b.label == "loop-body"][0]
        assert dominates(doms, header, body)

    def test_idom_of_entry_is_entry(self):
        cfg = cfg_of("f() { x = 1; }")
        idom = immediate_dominators(cfg)
        assert idom[cfg.entry] == cfg.entry

    def test_reverse_postorder_starts_at_entry(self):
        cfg = cfg_of("f() { if (a) { x = 1; } }")
        order = reverse_postorder(cfg)
        assert order[0] == cfg.entry
        assert len(order) == len(set(order))
