"""Shared fixtures: catalogs, databases, and equivalence helpers."""

from __future__ import annotations

import pytest

from repro import Catalog, Connection, Database
from repro.interp import Interpreter


@pytest.fixture
def catalog() -> Catalog:
    """A catalog covering the schemas used across the test suite."""
    cat = Catalog()
    cat.define("board", ["id", "rnd_id", "p1", "p2", "p3", "p4"], key=("id",))
    cat.define("project", ["id", "name", "finished", "budget"], key=("id",))
    cat.define("wilosuser", ["id", "name", "role_id", "active"], key=("id",))
    cat.define("role", ["id", "role_name"], key=("id",))
    cat.define("orders", ["id", "cust", "amount"], key=("id",))
    cat.define("customers", ["cust", "region"], key=("cust",))
    cat.define("applicants", ["applicantId", "applnMode", "jobId"], key=("applicantId",))
    cat.define("personal", ["applicantId", "name"], key=("applicantId",))
    cat.define("feedback1", ["applicantId", "score1"], key=("applicantId",))
    cat.define("feedback2", ["applicantId", "score2"], key=("applicantId",))
    return cat


@pytest.fixture
def database(catalog: Catalog) -> Database:
    """A small populated database over the shared catalog."""
    db = Database(catalog)
    db.insert_many(
        "board",
        [
            {"id": 1, "rnd_id": 1, "p1": 10, "p2": 30, "p3": 5, "p4": 7},
            {"id": 2, "rnd_id": 1, "p1": 1, "p2": 2, "p3": 50, "p4": 3},
            {"id": 3, "rnd_id": 2, "p1": 99, "p2": 2, "p3": 1, "p4": 3},
        ],
    )
    db.insert_many(
        "project",
        [
            {"id": 1, "name": "alpha", "finished": False, "budget": 10},
            {"id": 2, "name": "beta", "finished": True, "budget": 20},
            {"id": 3, "name": "gamma", "finished": False, "budget": 30},
            {"id": 4, "name": "delta", "finished": True, "budget": 5},
        ],
    )
    db.insert_many(
        "role",
        [{"id": 1, "role_name": "admin"}, {"id": 2, "role_name": "dev"}],
    )
    db.insert_many(
        "wilosuser",
        [
            {"id": 1, "name": "ann", "role_id": 1, "active": True},
            {"id": 2, "name": "bob", "role_id": 2, "active": False},
            {"id": 3, "name": "cat", "role_id": 2, "active": True},
        ],
    )
    db.insert_many(
        "customers",
        [{"cust": "a", "region": "eu"}, {"cust": "b", "region": "us"}],
    )
    db.insert_many(
        "orders",
        [
            {"id": 1, "cust": "a", "amount": 10},
            {"id": 2, "cust": "a", "amount": 20},
            {"id": 3, "cust": "b", "amount": 5},
        ],
    )
    db.insert_many(
        "applicants",
        [
            {"applicantId": 1, "applnMode": "online", "jobId": 7},
            {"applicantId": 2, "applnMode": "paper", "jobId": 7},
            {"applicantId": 3, "applnMode": "online", "jobId": 9},
        ],
    )
    db.insert_many(
        "personal",
        [
            {"applicantId": 1, "name": "ann"},
            {"applicantId": 2, "name": "bob"},
            {"applicantId": 3, "name": "cat"},
        ],
    )
    db.insert_many("feedback1", [{"applicantId": 1, "score1": 9}])
    db.insert_many("feedback2", [{"applicantId": 1, "score2": 6}])
    return db


def run_both(report, database, function, compare_out=False):
    """Run original and rewritten programs; return (v1, v2, stats1, stats2)."""
    assert report.rewritten is not None, "program was not rewritten"
    c1, c2 = Connection(database), Connection(database)
    i1 = Interpreter(report.original, c1)
    r1 = i1.run(function)
    i2 = Interpreter(report.rewritten, c2)
    r2 = i2.run(function)
    if compare_out:
        return i1.last_out, i2.last_out, c1.stats, c2.stats
    return r1, r2, c1.stats, c2.stats
