"""SQL generation tests including dialect variations and round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    CaseWhen,
    Col,
    Distinct,
    ExistsExpr,
    Func,
    Join,
    Limit,
    Lit,
    Param,
    Project,
    ProjectItem,
    ScalarSubquery,
    Select,
    Sort,
    SortKey,
    Table,
    UnOp,
)
from repro.sqlgen import SqlGenError, get_dialect, render_rel, render_scalar
from repro.sqlparse import parse_query


class TestStatements:
    def test_simple_select(self):
        sql = render_rel(Select(Table("board", "b"), BinOp("=", Col("rnd_id", "b"), Lit(1))))
        assert sql == "SELECT * FROM board b WHERE (b.rnd_id = 1)"

    def test_projection(self):
        sql = render_rel(Project(Table("t"), (ProjectItem(Col("a"), "x"),)))
        assert sql == "SELECT a AS x FROM t"

    def test_projection_without_alias(self):
        sql = render_rel(Project(Table("t"), (ProjectItem(Col("a")),)))
        assert sql == "SELECT a FROM t"

    def test_aggregate(self):
        rel = Aggregate(Table("t"), (), (AggItem(AggCall("max", Col("x")), "m"),))
        assert render_rel(rel) == "SELECT MAX(x) AS m FROM t"

    def test_group_by(self):
        rel = Aggregate(
            Table("orders"),
            (Col("cust"),),
            (AggItem(AggCall("sum", Col("amount")), "total"),),
        )
        sql = render_rel(rel)
        assert "GROUP BY cust" in sql

    def test_order_limit(self):
        rel = Limit(Sort(Table("t"), (SortKey(Col("x"), False),)), 3)
        sql = render_rel(rel)
        assert sql.endswith("ORDER BY x DESC LIMIT 3")

    def test_distinct(self):
        assert render_rel(Distinct(Table("t"))).startswith("SELECT DISTINCT")

    def test_join_flattens_selections(self):
        rel = Join(
            Select(Table("a"), BinOp("=", Col("x", "a"), Lit(1))),
            Table("b"),
            BinOp("=", Col("k", "a"), Col("k", "b")),
        )
        sql = render_rel(rel)
        assert "JOIN" in sql and "WHERE (a.x = 1)" in sql

    def test_select_over_aggregate_wraps(self):
        rel = Select(
            Aggregate(Table("t"), (Col("g"),), (AggItem(AggCall("count", None), "n"),)),
            BinOp(">", Col("n"), Lit(1)),
        )
        sql = render_rel(rel)
        assert sql.count("SELECT") == 2  # subquery wrap

    def test_sort_after_limit_wraps(self):
        rel = Sort(Limit(Table("t"), 5), (SortKey(Col("x")),))
        sql = render_rel(rel)
        assert sql.count("SELECT") == 2


class TestScalars:
    def test_params(self):
        assert render_scalar(Param("uid")) == ":uid"

    def test_string_literal_escaping(self):
        assert render_scalar(Lit("it's")) == "'it''s'"

    def test_is_null(self):
        assert render_scalar(Func("ISNULL", (Col("x"),))) == "(x IS NULL)"

    def test_is_not_null(self):
        expr = UnOp("NOT", Func("ISNULL", (Col("x"),)))
        assert render_scalar(expr) == "(x IS NOT NULL)"

    def test_case_when(self):
        expr = CaseWhen(BinOp(">", Col("x"), Lit(0)), Lit(1), Lit(0))
        assert render_scalar(expr) == "CASE WHEN (x > 0) THEN 1 ELSE 0 END"

    def test_exists(self):
        expr = ExistsExpr(Table("t"))
        assert render_scalar(expr) == "EXISTS (SELECT * FROM t)"

    def test_not_exists(self):
        expr = ExistsExpr(Table("t"), negated=True)
        assert render_scalar(expr) == "NOT EXISTS (SELECT * FROM t)"

    def test_scalar_subquery(self):
        expr = ScalarSubquery(
            Aggregate(Table("t"), (), (AggItem(AggCall("max", Col("x")), "m"),))
        )
        assert render_scalar(expr) == "(SELECT MAX(x) AS m FROM t)"


class TestDialects:
    def test_postgres_uses_greatest(self):
        expr = Func("GREATEST", (Col("a"), Col("b")))
        assert render_scalar(expr, "postgres") == "GREATEST(a, b)"

    def test_ansi_uses_case_chain(self):
        expr = Func("GREATEST", (Col("a"), Col("b")))
        rendered = render_scalar(expr, "ansi")
        assert "CASE WHEN" in rendered and "GREATEST" not in rendered

    def test_sqlserver_uses_case_chain_and_top(self):
        expr = Func("GREATEST", (Col("a"), Col("b")))
        assert "CASE WHEN" in render_scalar(expr, "sqlserver")
        sql = render_rel(Limit(Table("t"), 3), "sqlserver")
        assert "TOP 3" in sql and "LIMIT" not in sql

    def test_sqlserver_booleans_are_bits(self):
        assert render_scalar(Lit(True), "sqlserver") == "1"

    def test_lateral_vs_outer_apply(self):
        from repro.algebra import Alias, OuterApply

        inner = Alias(
            Project(
                Select(Table("o"), BinOp("=", Col("c", "o"), Col("c", "q1"))),
                (ProjectItem(Col("x"), "v"),),
            ),
            "s",
        )
        rel = OuterApply(Table("cust", "q1"), inner)
        assert "OUTER APPLY" in render_rel(rel, "repro")
        assert "LEFT JOIN LATERAL" in render_rel(rel, "postgres")

    def test_unknown_dialect_raises(self):
        with pytest.raises(KeyError):
            get_dialect("oracle9")


class TestRoundTrip:
    CASES = [
        "select * from board",
        "select p1, p2 from board where rnd_id = 1",
        "select max(greatest(p1, p2)) as agg from board where rnd_id = 1",
        "select u.name from wilosuser u join role r on r.id = u.role_id",
        "select cust, sum(amount) as t from orders group by cust",
        "select distinct name from project order by name limit 2",
        "select * from t where exists (select * from u where u.x = t.x)",
        "select case when x > 0 then 1 else 0 end as s from t",
        "select * from a outer apply (select max(x) as m from b where b.k = a.k) s",
        "select name from project where finished = false and budget > :minimum",
    ]

    @pytest.mark.parametrize("query", CASES)
    def test_render_parse_render_fixpoint(self, query):
        first = render_rel(parse_query(query))
        second = render_rel(parse_query(first))
        assert first == second


# ----------------------------------------------------------------------
# Property: generated algebra trees always round-trip through the repro
# dialect (which must stay executable).

_cols = st.sampled_from(["a", "b", "c"])
_tables = st.sampled_from(["t1", "t2"])


@st.composite
def _rels(draw):
    rel = Table(draw(_tables))
    for _ in range(draw(st.integers(0, 3))):
        choice = draw(st.integers(0, 4))
        if choice == 0:
            rel = Select(rel, BinOp(">", Col(draw(_cols)), Lit(draw(st.integers(0, 9)))))
        elif choice == 1:
            rel = Project(rel, (ProjectItem(Col(draw(_cols)), "x"),))
        elif choice == 2:
            rel = Sort(rel, (SortKey(Col(draw(_cols)), draw(st.booleans())),))
        elif choice == 3:
            rel = Distinct(rel)
        else:
            rel = Limit(rel, draw(st.integers(1, 5)))
    return rel


@given(_rels())
@settings(max_examples=120, deadline=None)
def test_generated_algebra_roundtrips(rel):
    sql = render_rel(rel)
    reparsed = parse_query(sql)
    assert render_rel(reparsed) == sql
