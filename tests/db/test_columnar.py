"""Columnar execution tests: plan shapes, the adaptive engine switch,
aggregate corner parity, a three-way differential sweep (reference ≡
row-at-a-time ≡ columnar), and the scale-100 aggregation regression guard.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    CaseWhen,
    Catalog,
    Col,
    ExistsExpr,
    Func,
    Join,
    Limit,
    Lit,
    Param,
    Project,
    ProjectItem,
    Select,
    Sort,
    SortKey,
    Table,
)
from repro.db import (
    COLUMNAR_MIN_ROWS,
    Database,
    EngineDivergenceError,
    EngineError,
)
from repro.db.columnar import (
    ColumnarHashJoin,
    ColumnarPipeline,
    ColumnarSemiJoin,
)
from repro.db.physical import (
    ExecContext,
    FilterOp,
    HashAggregate,
    HashJoin,
    HashSemiJoin,
    IndexLookup,
    LimitOp,
    ProjectOp,
    SeqScan,
    SortOp,
    TopN,
)
from repro.db.planner import Planner

from tests.db.test_engine_differential import (
    _INT_LITERALS,
    _build_instance,
    _QueryGen,
)


def _make_db(rows: int = 200) -> Database:
    cat = Catalog()
    cat.define("t", ["id", "grp", "val", "label"], key=("id",))
    db = Database(cat)
    db.insert_many(
        "t",
        [
            {"id": i, "grp": i % 10, "val": float(i), "label": f"L{i % 4}"}
            for i in range(rows)
        ],
    )
    return db


def _forced(db, query, params=None):
    """Execute under columnar=force, assert parity with the reference."""
    expected = db.execute(query, params, engine="reference")
    db.columnar_mode = "force"
    try:
        actual = db.execute(query, params, engine="planned")
    finally:
        db.columnar_mode = "auto"
    assert actual == expected
    return actual


FILTER = Select(Table("t"), BinOp("=", Col("grp"), Lit(3)))
AGG = Aggregate(
    Table("t"),
    (Col("grp"),),
    (AggItem(AggCall("sum", Col("val")), "total"),),
)
PROJ = Project(
    Select(Table("t"), BinOp("<", Col("val"), Lit(50.0))),
    (ProjectItem(Col("id"), "i"), ProjectItem(Col("val"), "v")),
)


class TestPlanShapes:
    def test_big_filter_goes_columnar(self):
        db = _make_db(200)
        plan = Planner(db).lower(FILTER)
        assert isinstance(plan, ColumnarPipeline)
        assert db.execute(FILTER, engine="planned") == db.execute(
            FILTER, engine="reference"
        )

    def test_big_aggregate_goes_columnar(self):
        db = _make_db(200)
        assert isinstance(Planner(db).lower(AGG), ColumnarPipeline)

    def test_big_project_goes_columnar(self):
        db = _make_db(200)
        assert isinstance(Planner(db).lower(PROJ), ColumnarPipeline)

    def test_small_table_stays_row(self):
        db = _make_db(COLUMNAR_MIN_ROWS - 1)
        assert isinstance(Planner(db).lower(FILTER), FilterOp)
        assert isinstance(Planner(db).lower(AGG), HashAggregate)

    def test_point_lookup_beats_columnar(self):
        # id is the declared key: probing one row beats scanning 200.
        db = _make_db(200)
        query = Select(Table("t"), BinOp("=", Col("id"), Lit(5)))
        assert isinstance(Planner(db).lower(query), IndexLookup)

    def test_bare_table_scan_stays_row(self):
        db = _make_db(200)
        db.columnar_mode = "force"
        assert isinstance(Planner(db).lower(Table("t")), SeqScan)

    def test_limit_over_filter_stays_row(self):
        # A pipeline consumes its whole input: it would defeat LIMIT's
        # early exit, so the child is lowered on the row path.
        db = _make_db(200)
        plan = Planner(db).lower(Limit(FILTER, 3))
        assert isinstance(plan, LimitOp)
        assert not isinstance(plan.child, ColumnarPipeline)

    def test_limit_over_aggregate_allows_columnar(self):
        # An aggregate consumes everything anyway: columnar is fine below.
        db = _make_db(200)
        plan = Planner(db).lower(Limit(AGG, 3))
        assert isinstance(plan, LimitOp)
        assert isinstance(plan.child, ColumnarPipeline)

    def test_force_mode_ignores_size_threshold(self):
        db = _make_db(5)
        assert isinstance(
            Planner(db, columnar="force").lower(FILTER), ColumnarPipeline
        )

    def test_off_mode_never_columnar(self):
        db = _make_db(500)
        assert isinstance(Planner(db, columnar="off").lower(FILTER), FilterOp)

    def test_star_projection_stays_row(self):
        db = _make_db(200)
        query = Project(Table("t"), (ProjectItem(Col("*")),))
        assert isinstance(Planner(db, columnar="force").lower(query), ProjectOp)

    def test_distinct_aggregate_stays_row(self):
        db = _make_db(200)
        query = Aggregate(
            Table("t"),
            (),
            (AggItem(AggCall("count", Col("grp"), distinct=True), "n"),),
        )
        assert isinstance(
            Planner(db, columnar="force").lower(query), HashAggregate
        )

    def test_foreign_qualifier_stays_row(self):
        # grp resolves outside the scan (qualifier is not the alias):
        # vectorized lookup could divert it, so the pipeline refuses.
        db = _make_db(200)
        query = Select(Table("t", "a"), BinOp("=", Col("grp", "other"), Lit(1)))
        assert isinstance(
            Planner(db, columnar="force").lower(query), FilterOp
        )


class TestAdaptiveSwitch:
    def test_threshold_is_exact(self):
        below = _make_db(COLUMNAR_MIN_ROWS - 1)
        at = _make_db(COLUMNAR_MIN_ROWS)
        assert not isinstance(Planner(below).lower(FILTER), ColumnarPipeline)
        assert isinstance(Planner(at).lower(FILTER), ColumnarPipeline)

    def test_replan_when_table_grows(self):
        db = _make_db(10)
        assert not isinstance(db.plan(FILTER), ColumnarPipeline)
        db.insert_many(
            "t",
            [
                {"id": 10 + i, "grp": i % 10, "val": float(i), "label": "x"}
                for i in range(300)
            ],
        )
        # Epoch-keyed cache: the stale row plan is not reused.
        assert isinstance(db.plan(FILTER), ColumnarPipeline)

    def test_stale_plan_falls_back_at_runtime(self):
        # A pipeline planned for 200 rows but executed against 5 routes
        # through its row fallback (the runtime half of the switch).
        db = _make_db(200)
        plan = Planner(db).lower(AGG)
        assert isinstance(plan, ColumnarPipeline)
        assert plan.min_rows == COLUMNAR_MIN_ROWS
        db.clear("t")
        db.insert_many(
            "t",
            [
                {"id": i, "grp": i % 2, "val": float(i), "label": "x"}
                for i in range(5)
            ],
        )
        rows = list(plan.execute(ExecContext(db, {})))
        assert rows == db.execute(AGG, engine="reference")


class TestAggregateCorners:
    def test_empty_input_global_aggregates(self):
        db = _make_db(0)
        for func in ("count", "sum", "min", "max", "avg"):
            query = Aggregate(
                Table("t"), (), (AggItem(AggCall(func, Col("val")), "a"),)
            )
            _forced(db, query)

    def test_filter_that_matches_nothing(self):
        db = _make_db(100)
        query = Aggregate(
            Select(Table("t"), BinOp("=", Col("grp"), Lit(99))),
            (),
            (AggItem(AggCall("sum", Col("val")), "s"),),
        )
        _forced(db, query)

    def test_null_skipping_and_count_star(self):
        cat = Catalog()
        cat.define("n", ["id", "v"], key=("id",))
        db = Database(cat)
        db.insert_many(
            "n",
            [{"id": i, "v": None if i % 3 == 0 else float(i)} for i in range(30)],
        )
        for func in ("count", "sum", "min", "max", "avg"):
            query = Aggregate(
                Table("n"), (), (AggItem(AggCall(func, Col("v")), "a"),)
            )
            _forced(db, query)
        star = Aggregate(Table("n"), (), (AggItem(AggCall("count", None), "a"),))
        _forced(db, star)

    def test_group_order_is_first_seen(self):
        cat = Catalog()
        cat.define("g", ["id", "k"], key=("id",))
        db = Database(cat)
        db.insert_many(
            "g",
            [{"id": i, "k": k} for i, k in enumerate([3, 1, 3, 2, 1, 9, 2, 3])],
        )
        query = Aggregate(
            Table("g"), (Col("k"),), (AggItem(AggCall("count", None), "n"),)
        )
        rows = _forced(db, query)
        assert [row["k"] for row in rows] == [3, 1, 2, 9]

    def test_unhashable_group_values(self):
        cat = Catalog()
        cat.define("u", ["id", "tags"], key=("id",))
        db = Database(cat)
        db.insert_many(
            "u",
            [
                {"id": i, "tags": [i % 2, "x"]}  # lists are unhashable
                for i in range(12)
            ],
        )
        query = Aggregate(
            Table("u"), (Col("tags"),), (AggItem(AggCall("count", None), "n"),)
        )
        _forced(db, query)

    def test_avg_uses_true_division(self):
        cat = Catalog()
        cat.define("a", ["id", "v"], key=("id",))
        db = Database(cat)
        db.insert_many("a", [{"id": 0, "v": 1}, {"id": 1, "v": 2}])
        query = Aggregate(Table("a"), (), (AggItem(AggCall("avg", Col("v")), "m"),))
        assert _forced(db, query) == [{"m": 1.5}]

    def test_unbound_parameter_raises_in_both_engines(self):
        db = _make_db(100)
        query = Select(Table("t"), BinOp("=", Col("grp"), Param("p")))
        with pytest.raises(EngineError):
            db.execute(query, {}, engine="reference")
        db.columnar_mode = "force"
        try:
            with pytest.raises(EngineError):
                db.execute(query, {}, engine="planned")
        finally:
            db.columnar_mode = "auto"


def _join_db(rows: int = 200) -> Database:
    """l(id, grp, val) ⟕ r(id, fk, amount): fk is NULL every 7th row,
    dangles sometimes, and repeats heavily so probe buckets have fan-out."""
    cat = Catalog()
    cat.define("l", ["id", "grp", "val"], key=("id",))
    cat.define("r", ["id", "fk", "amount"], key=("id",))
    db = Database(cat)
    db.insert_many(
        "l",
        [
            {"id": i, "grp": i % 10, "val": float(i)}
            for i in range(rows)
        ],
    )
    db.insert_many(
        "r",
        [
            {
                "id": i,
                "fk": None if i % 7 == 0 else (i * 3) % (rows + rows // 4),
                "amount": i % 50,
            }
            for i in range(rows)
        ],
    )
    return db


JOIN = Join(
    Table("l"), Table("r"), BinOp("=", Col("id", "l"), Col("fk", "r")), "inner"
)
LEFT_JOIN = Join(
    Table("l"), Table("r"), BinOp("=", Col("id", "l"), Col("fk", "r")), "left"
)


class TestJoinShapes:
    def test_big_join_goes_columnar(self):
        db = _join_db(200)
        plan = Planner(db).lower(JOIN)
        assert isinstance(plan, ColumnarHashJoin)

    def test_small_join_stays_row(self):
        db = _join_db(COLUMNAR_MIN_ROWS // 4)
        assert isinstance(Planner(db).lower(JOIN), HashJoin)

    def test_off_mode_join_stays_row(self):
        db = _join_db(500)
        assert isinstance(Planner(db, columnar="off").lower(JOIN), HashJoin)

    def test_inner_join_parity_null_and_duplicate_keys(self):
        _forced(_join_db(120), JOIN)

    def test_left_join_parity_pads_unmatched(self):
        rows = _forced(_join_db(120), LEFT_JOIN)
        # Every left row survives; unmatched ones carry NULL right columns.
        assert any(row["amount"] is None for row in rows)

    def test_multi_column_key_parity(self):
        db = _join_db(120)
        pred = BinOp(
            "AND",
            BinOp("=", Col("grp", "l"), Col("amount", "r")),
            BinOp("=", Col("id", "l"), Col("fk", "r")),
        )
        for kind in ("inner", "left"):
            query = Join(Table("l"), Table("r"), pred, kind)
            assert isinstance(
                Planner(db, columnar="force").lower(query), ColumnarHashJoin
            )
            _forced(db, query)

    def test_residual_predicate_parity(self):
        db = _join_db(120)
        pred = BinOp(
            "AND",
            BinOp("=", Col("id", "l"), Col("fk", "r")),
            BinOp("<", Col("amount", "r"), Col("val", "l")),
        )
        for kind in ("inner", "left"):
            query = Join(Table("l"), Table("r"), pred, kind)
            assert isinstance(
                Planner(db, columnar="force").lower(query), ColumnarHashJoin
            )
            _forced(db, query)

    def test_filters_below_join_parity(self):
        db = _join_db(120)
        query = Join(
            Select(Table("l"), BinOp("<", Col("grp"), Lit(7))),
            Select(Table("r"), BinOp(">", Col("amount"), Lit(10))),
            BinOp("=", Col("id", "l"), Col("fk", "r")),
            "left",
        )
        assert isinstance(
            Planner(db, columnar="force").lower(query), ColumnarHashJoin
        )
        _forced(db, query)

    def test_unhashable_build_key_falls_back(self):
        # List-valued keys break hashing: the vectorized build must hand
        # the whole join to its row fallback, which nested-loops it.
        cat = Catalog()
        cat.define("a", ["id", "k"], key=("id",))
        cat.define("b", ["id", "k"], key=("id",))
        db = Database(cat)
        db.insert_many("a", [{"id": i, "k": [i % 3]} for i in range(80)])
        db.insert_many("b", [{"id": i, "k": [i % 3]} for i in range(80)])
        query = Join(
            Table("a"), Table("b"), BinOp("=", Col("k", "a"), Col("k", "b")), "inner"
        )
        _forced(db, query)

    def test_join_runtime_fallback_below_min_rows(self):
        db = _join_db(200)
        plan = Planner(db).lower(JOIN)
        assert isinstance(plan, ColumnarHashJoin)
        db.clear("l")
        db.clear("r")
        db.insert_many("l", [{"id": i, "grp": i, "val": 1.0} for i in range(3)])
        db.insert_many(
            "r", [{"id": i, "fk": i % 2, "amount": i} for i in range(3)]
        )
        rows = list(plan.execute(ExecContext(db, {})))
        assert rows == db.execute(JOIN, engine="reference")

    def test_semi_and_anti_join_go_columnar(self):
        db = _join_db(200)
        for negated in (False, True):
            query = Select(
                Table("l"),
                ExistsExpr(
                    Select(
                        Table("r", "s"),
                        BinOp("=", Col("fk", "s"), Col("id", "l")),
                    ),
                    negated=negated,
                ),
            )
            plan = Planner(db, columnar="force").lower(query)
            assert isinstance(plan, ColumnarSemiJoin)
            _forced(db, query)

    def test_uncorrelated_exists_stays_row(self):
        # No join keys: the row HashSemiJoin keeps its one-row
        # short-circuit, which a vectorized build would lose.
        db = _join_db(200)
        query = Select(
            Table("l"),
            ExistsExpr(Select(Table("r", "s"), BinOp(">", Col("amount", "s"), Lit(10)))),
        )
        assert isinstance(
            Planner(db, columnar="force").lower(query), HashSemiJoin
        )
        _forced(db, query)


SORT = Sort(Table("r"), (SortKey(Col("amount"), False), SortKey(Col("id"), True)))
TOPN = Limit(SORT, 5)


class TestOrderShapes:
    def test_big_sort_goes_columnar(self):
        db = _join_db(200)
        plan = Planner(db).lower(SORT)
        assert isinstance(plan, ColumnarPipeline)

    def test_small_sort_stays_row(self):
        db = _join_db(COLUMNAR_MIN_ROWS // 4)
        assert isinstance(Planner(db).lower(SORT), SortOp)

    def test_topn_goes_columnar(self):
        db = _join_db(200)
        assert isinstance(Planner(db).lower(TOPN), ColumnarPipeline)

    def test_off_mode_topn_stays_row(self):
        db = _join_db(500)
        assert isinstance(Planner(db, columnar="off").lower(TOPN), TopN)

    def test_sort_parity_with_nulls(self):
        db = _join_db(150)
        for ascending in (True, False):
            query = Sort(
                Table("r"),
                (SortKey(Col("fk"), ascending), SortKey(Col("id"), True)),
            )
            _forced(db, query)

    def test_topn_parity(self):
        db = _join_db(150)
        for count in (0, 1, 5, 1000):
            _forced(db, Limit(SORT, count))

    def test_sort_over_filter_parity(self):
        db = _join_db(150)
        query = Sort(
            Select(Table("r"), BinOp(">", Col("amount"), Lit(20))),
            (SortKey(Col("amount"), True), SortKey(Col("id"), False)),
        )
        _forced(db, query)

    def test_sort_on_expression_key_parity(self):
        db = _join_db(150)
        query = Sort(
            Table("r"),
            (
                SortKey(
                    CaseWhen(
                        BinOp("=", Col("fk"), Lit(None)),
                        Lit(0),
                        Func("LEAST", (Col("fk"), Lit(100))),
                    ),
                    True,
                ),
                SortKey(Col("id"), True),
            ),
        )
        _forced(db, query)

    def test_sort_runtime_fallback_below_min_rows(self):
        db = _join_db(200)
        plan = Planner(db).lower(TOPN)
        assert isinstance(plan, ColumnarPipeline)
        db.clear("r")
        db.insert_many(
            "r", [{"id": i, "fk": i, "amount": 9 - i} for i in range(4)]
        )
        rows = list(plan.execute(ExecContext(db, {})))
        assert rows == db.execute(TOPN, engine="reference")


class TestVectorScalars:
    def test_func_filter_parity(self):
        db = _make_db(150)
        query = Select(
            Table("t"),
            BinOp(">", Func("COALESCE", (Col("grp"), Lit(0))), Lit(4)),
        )
        assert isinstance(
            Planner(db, columnar="force").lower(query), ColumnarPipeline
        )
        _forced(db, query)

    def test_case_when_projection_parity(self):
        db = _make_db(150)
        query = Project(
            Table("t"),
            (
                ProjectItem(
                    CaseWhen(
                        BinOp("<", Col("grp"), Lit(5)),
                        Func("UPPER", (Col("label"),)),
                        Col("label"),
                    ),
                    "tag",
                ),
            ),
        )
        assert isinstance(
            Planner(db, columnar="force").lower(query), ColumnarPipeline
        )
        _forced(db, query)

    def test_unknown_function_raises_in_both_engines(self):
        db = _make_db(100)
        query = Project(
            Table("t"), (ProjectItem(Func("NOPE", (Col("id"),)), "x"),)
        )
        with pytest.raises(EngineError):
            db.execute(query, engine="reference")
        db.columnar_mode = "force"
        try:
            with pytest.raises(EngineError):
                db.execute(query, engine="planned")
        finally:
            db.columnar_mode = "auto"


class TestPlanSearch:
    def test_breadcrumbs_record_rejected_alternatives(self):
        db = _join_db(500)
        db.plan(JOIN)
        search = db.last_plan_search
        assert search is not None and search["choices"]
        join_choice = next(
            c for c in search["choices"] if c["label"].startswith("join(")
        )
        assert join_choice["chosen"] in {"ColumnarHashJoin", "HashJoin"}
        rejected_ops = {r["op"] for r in join_choice["rejected"]}
        assert rejected_ops  # the loser is recorded alongside the winner
        assert join_choice["margin"] >= 0
        assert all(
            r["cost"] >= join_choice["cost"] for r in join_choice["rejected"]
        )

    def test_breadcrumbs_survive_plan_cache_hits(self):
        db = _join_db(500)
        db.plan(JOIN)
        first = db.last_plan_search
        db.last_plan_search = None
        db.plan(JOIN)  # cache hit must restore the recorded search
        assert db.last_plan_search is first

    def test_explain_carries_plan_search(self):
        db = _join_db(500)
        explain = db.explain(JOIN)
        assert explain["plan_search"] is db.last_plan_search
        assert explain["plan_search"]["choices"]


class TestPointSelectGate:
    def test_auto_mode_point_predicate_prefers_index(self):
        # Satellite regression: a key-equality predicate keeps ~1 row, so
        # auto mode must pick the O(1) probe even on a large table.
        db = _make_db(10_000)
        query = Select(Table("t"), BinOp("=", Col("id"), Lit(5)))
        assert isinstance(Planner(db).lower(query), IndexLookup)

    def test_non_point_predicate_still_goes_columnar(self):
        db = _make_db(10_000)
        query = Select(Table("t"), BinOp("<", Col("val"), Lit(5000.0)))
        assert isinstance(Planner(db).lower(query), ColumnarPipeline)


@pytest.mark.parametrize("seed", [3, 17, 71, 113])
def test_columnar_matches_row_and_reference(seed):
    """≥200 random queries across the seeds: the columnar lowering, the
    row-at-a-time lowering, and the reference evaluator all return exactly
    the same rows (values and order)."""
    rng = random.Random(seed)
    checked = 0
    while checked < 50:
        db, tables = _build_instance(rng)
        gen = _QueryGen(rng, tables)
        for _ in range(6):
            query = gen.query()
            params = {"p": rng.choice(_INT_LITERALS)}
            try:
                expected = db.execute(query, params, engine="reference")
            except EngineError:
                continue  # malformed by construction; not this test's topic
            db.columnar_mode = "off"
            row_rows = db.execute(query, params, engine="planned")
            db.columnar_mode = "force"
            col_rows = db.execute(query, params, engine="planned")
            db.columnar_mode = "auto"
            assert row_rows == expected, f"seed={seed} query={query}"
            assert col_rows == expected, f"seed={seed} query={query}"
            checked += 1
    assert checked >= 50


def test_both_engine_mode_covers_columnar(seed=29):
    """engine="both" under columnar=force adds the columnar-vs-row
    cross-check on top of the oracle comparison; any divergence raises."""
    rng = random.Random(seed)
    db, tables = _build_instance(rng)
    db.default_engine = "both"
    db.columnar_mode = "force"
    gen = _QueryGen(rng, tables)
    for _ in range(40):
        query = gen.query()
        try:
            db.execute(query, {"p": 1})
        except EngineError as exc:
            assert not isinstance(exc, EngineDivergenceError), exc


def _best_of(fn, repeats: int, loops: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - start) / loops)
    return best


def test_scale_100_aggregation_not_slower_than_reference():
    """The adaptive switch's reason to exist: at scale 100 the planned
    engine (columnar via the cost choice) must at least match the
    reference evaluator on the aggregation workload — this was a 0.73×
    regression before the switch."""
    db = _make_db(100)
    assert isinstance(db.plan(AGG), ColumnarPipeline)
    db.execute(AGG, engine="planned")  # warm plan + column caches

    planned = lambda: db.execute(AGG, engine="planned")  # noqa: E731
    reference = lambda: db.execute(AGG, engine="reference")  # noqa: E731
    # Re-measure on a miss: absolute times are tiny and host noise real,
    # but the underlying gap is ~4x, so one clean attempt settles it.
    for _ in range(5):
        planned_ms = _best_of(planned, repeats=3, loops=20)
        reference_ms = _best_of(reference, repeats=3, loops=20)
        if planned_ms <= reference_ms:
            break
    assert planned_ms <= reference_ms
