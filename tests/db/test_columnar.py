"""Columnar execution tests: plan shapes, the adaptive engine switch,
aggregate corner parity, a three-way differential sweep (reference ≡
row-at-a-time ≡ columnar), and the scale-100 aggregation regression guard.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    Catalog,
    Col,
    Limit,
    Lit,
    Param,
    Project,
    ProjectItem,
    Select,
    Table,
)
from repro.db import (
    COLUMNAR_MIN_ROWS,
    Database,
    EngineDivergenceError,
    EngineError,
)
from repro.db.columnar import ColumnarPipeline
from repro.db.physical import (
    ExecContext,
    FilterOp,
    HashAggregate,
    IndexLookup,
    LimitOp,
    ProjectOp,
    SeqScan,
)
from repro.db.planner import Planner

from tests.db.test_engine_differential import (
    _INT_LITERALS,
    _build_instance,
    _QueryGen,
)


def _make_db(rows: int = 200) -> Database:
    cat = Catalog()
    cat.define("t", ["id", "grp", "val", "label"], key=("id",))
    db = Database(cat)
    db.insert_many(
        "t",
        [
            {"id": i, "grp": i % 10, "val": float(i), "label": f"L{i % 4}"}
            for i in range(rows)
        ],
    )
    return db


def _forced(db, query, params=None):
    """Execute under columnar=force, assert parity with the reference."""
    expected = db.execute(query, params, engine="reference")
    db.columnar_mode = "force"
    try:
        actual = db.execute(query, params, engine="planned")
    finally:
        db.columnar_mode = "auto"
    assert actual == expected
    return actual


FILTER = Select(Table("t"), BinOp("=", Col("grp"), Lit(3)))
AGG = Aggregate(
    Table("t"),
    (Col("grp"),),
    (AggItem(AggCall("sum", Col("val")), "total"),),
)
PROJ = Project(
    Select(Table("t"), BinOp("<", Col("val"), Lit(50.0))),
    (ProjectItem(Col("id"), "i"), ProjectItem(Col("val"), "v")),
)


class TestPlanShapes:
    def test_big_filter_goes_columnar(self):
        db = _make_db(200)
        plan = Planner(db).lower(FILTER)
        assert isinstance(plan, ColumnarPipeline)
        assert db.execute(FILTER, engine="planned") == db.execute(
            FILTER, engine="reference"
        )

    def test_big_aggregate_goes_columnar(self):
        db = _make_db(200)
        assert isinstance(Planner(db).lower(AGG), ColumnarPipeline)

    def test_big_project_goes_columnar(self):
        db = _make_db(200)
        assert isinstance(Planner(db).lower(PROJ), ColumnarPipeline)

    def test_small_table_stays_row(self):
        db = _make_db(COLUMNAR_MIN_ROWS - 1)
        assert isinstance(Planner(db).lower(FILTER), FilterOp)
        assert isinstance(Planner(db).lower(AGG), HashAggregate)

    def test_point_lookup_beats_columnar(self):
        # id is the declared key: probing one row beats scanning 200.
        db = _make_db(200)
        query = Select(Table("t"), BinOp("=", Col("id"), Lit(5)))
        assert isinstance(Planner(db).lower(query), IndexLookup)

    def test_bare_table_scan_stays_row(self):
        db = _make_db(200)
        db.columnar_mode = "force"
        assert isinstance(Planner(db).lower(Table("t")), SeqScan)

    def test_limit_over_filter_stays_row(self):
        # A pipeline consumes its whole input: it would defeat LIMIT's
        # early exit, so the child is lowered on the row path.
        db = _make_db(200)
        plan = Planner(db).lower(Limit(FILTER, 3))
        assert isinstance(plan, LimitOp)
        assert not isinstance(plan.child, ColumnarPipeline)

    def test_limit_over_aggregate_allows_columnar(self):
        # An aggregate consumes everything anyway: columnar is fine below.
        db = _make_db(200)
        plan = Planner(db).lower(Limit(AGG, 3))
        assert isinstance(plan, LimitOp)
        assert isinstance(plan.child, ColumnarPipeline)

    def test_force_mode_ignores_size_threshold(self):
        db = _make_db(5)
        assert isinstance(
            Planner(db, columnar="force").lower(FILTER), ColumnarPipeline
        )

    def test_off_mode_never_columnar(self):
        db = _make_db(500)
        assert isinstance(Planner(db, columnar="off").lower(FILTER), FilterOp)

    def test_star_projection_stays_row(self):
        db = _make_db(200)
        query = Project(Table("t"), (ProjectItem(Col("*")),))
        assert isinstance(Planner(db, columnar="force").lower(query), ProjectOp)

    def test_distinct_aggregate_stays_row(self):
        db = _make_db(200)
        query = Aggregate(
            Table("t"),
            (),
            (AggItem(AggCall("count", Col("grp"), distinct=True), "n"),),
        )
        assert isinstance(
            Planner(db, columnar="force").lower(query), HashAggregate
        )

    def test_foreign_qualifier_stays_row(self):
        # grp resolves outside the scan (qualifier is not the alias):
        # vectorized lookup could divert it, so the pipeline refuses.
        db = _make_db(200)
        query = Select(Table("t", "a"), BinOp("=", Col("grp", "other"), Lit(1)))
        assert isinstance(
            Planner(db, columnar="force").lower(query), FilterOp
        )


class TestAdaptiveSwitch:
    def test_threshold_is_exact(self):
        below = _make_db(COLUMNAR_MIN_ROWS - 1)
        at = _make_db(COLUMNAR_MIN_ROWS)
        assert not isinstance(Planner(below).lower(FILTER), ColumnarPipeline)
        assert isinstance(Planner(at).lower(FILTER), ColumnarPipeline)

    def test_replan_when_table_grows(self):
        db = _make_db(10)
        assert not isinstance(db.plan(FILTER), ColumnarPipeline)
        db.insert_many(
            "t",
            [
                {"id": 10 + i, "grp": i % 10, "val": float(i), "label": "x"}
                for i in range(300)
            ],
        )
        # Epoch-keyed cache: the stale row plan is not reused.
        assert isinstance(db.plan(FILTER), ColumnarPipeline)

    def test_stale_plan_falls_back_at_runtime(self):
        # A pipeline planned for 200 rows but executed against 5 routes
        # through its row fallback (the runtime half of the switch).
        db = _make_db(200)
        plan = Planner(db).lower(AGG)
        assert isinstance(plan, ColumnarPipeline)
        assert plan.min_rows == COLUMNAR_MIN_ROWS
        db.clear("t")
        db.insert_many(
            "t",
            [
                {"id": i, "grp": i % 2, "val": float(i), "label": "x"}
                for i in range(5)
            ],
        )
        rows = list(plan.execute(ExecContext(db, {})))
        assert rows == db.execute(AGG, engine="reference")


class TestAggregateCorners:
    def test_empty_input_global_aggregates(self):
        db = _make_db(0)
        for func in ("count", "sum", "min", "max", "avg"):
            query = Aggregate(
                Table("t"), (), (AggItem(AggCall(func, Col("val")), "a"),)
            )
            _forced(db, query)

    def test_filter_that_matches_nothing(self):
        db = _make_db(100)
        query = Aggregate(
            Select(Table("t"), BinOp("=", Col("grp"), Lit(99))),
            (),
            (AggItem(AggCall("sum", Col("val")), "s"),),
        )
        _forced(db, query)

    def test_null_skipping_and_count_star(self):
        cat = Catalog()
        cat.define("n", ["id", "v"], key=("id",))
        db = Database(cat)
        db.insert_many(
            "n",
            [{"id": i, "v": None if i % 3 == 0 else float(i)} for i in range(30)],
        )
        for func in ("count", "sum", "min", "max", "avg"):
            query = Aggregate(
                Table("n"), (), (AggItem(AggCall(func, Col("v")), "a"),)
            )
            _forced(db, query)
        star = Aggregate(Table("n"), (), (AggItem(AggCall("count", None), "a"),))
        _forced(db, star)

    def test_group_order_is_first_seen(self):
        cat = Catalog()
        cat.define("g", ["id", "k"], key=("id",))
        db = Database(cat)
        db.insert_many(
            "g",
            [{"id": i, "k": k} for i, k in enumerate([3, 1, 3, 2, 1, 9, 2, 3])],
        )
        query = Aggregate(
            Table("g"), (Col("k"),), (AggItem(AggCall("count", None), "n"),)
        )
        rows = _forced(db, query)
        assert [row["k"] for row in rows] == [3, 1, 2, 9]

    def test_unhashable_group_values(self):
        cat = Catalog()
        cat.define("u", ["id", "tags"], key=("id",))
        db = Database(cat)
        db.insert_many(
            "u",
            [
                {"id": i, "tags": [i % 2, "x"]}  # lists are unhashable
                for i in range(12)
            ],
        )
        query = Aggregate(
            Table("u"), (Col("tags"),), (AggItem(AggCall("count", None), "n"),)
        )
        _forced(db, query)

    def test_avg_uses_true_division(self):
        cat = Catalog()
        cat.define("a", ["id", "v"], key=("id",))
        db = Database(cat)
        db.insert_many("a", [{"id": 0, "v": 1}, {"id": 1, "v": 2}])
        query = Aggregate(Table("a"), (), (AggItem(AggCall("avg", Col("v")), "m"),))
        assert _forced(db, query) == [{"m": 1.5}]

    def test_unbound_parameter_raises_in_both_engines(self):
        db = _make_db(100)
        query = Select(Table("t"), BinOp("=", Col("grp"), Param("p")))
        with pytest.raises(EngineError):
            db.execute(query, {}, engine="reference")
        db.columnar_mode = "force"
        try:
            with pytest.raises(EngineError):
                db.execute(query, {}, engine="planned")
        finally:
            db.columnar_mode = "auto"


@pytest.mark.parametrize("seed", [3, 17, 71, 113])
def test_columnar_matches_row_and_reference(seed):
    """≥200 random queries across the seeds: the columnar lowering, the
    row-at-a-time lowering, and the reference evaluator all return exactly
    the same rows (values and order)."""
    rng = random.Random(seed)
    checked = 0
    while checked < 50:
        db, tables = _build_instance(rng)
        gen = _QueryGen(rng, tables)
        for _ in range(6):
            query = gen.query()
            params = {"p": rng.choice(_INT_LITERALS)}
            try:
                expected = db.execute(query, params, engine="reference")
            except EngineError:
                continue  # malformed by construction; not this test's topic
            db.columnar_mode = "off"
            row_rows = db.execute(query, params, engine="planned")
            db.columnar_mode = "force"
            col_rows = db.execute(query, params, engine="planned")
            db.columnar_mode = "auto"
            assert row_rows == expected, f"seed={seed} query={query}"
            assert col_rows == expected, f"seed={seed} query={query}"
            checked += 1
    assert checked >= 50


def test_both_engine_mode_covers_columnar(seed=29):
    """engine="both" under columnar=force adds the columnar-vs-row
    cross-check on top of the oracle comparison; any divergence raises."""
    rng = random.Random(seed)
    db, tables = _build_instance(rng)
    db.default_engine = "both"
    db.columnar_mode = "force"
    gen = _QueryGen(rng, tables)
    for _ in range(40):
        query = gen.query()
        try:
            db.execute(query, {"p": 1})
        except EngineError as exc:
            assert not isinstance(exc, EngineDivergenceError), exc


def _best_of(fn, repeats: int, loops: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - start) / loops)
    return best


def test_scale_100_aggregation_not_slower_than_reference():
    """The adaptive switch's reason to exist: at scale 100 the planned
    engine (columnar via the cost choice) must at least match the
    reference evaluator on the aggregation workload — this was a 0.73×
    regression before the switch."""
    db = _make_db(100)
    assert isinstance(db.plan(AGG), ColumnarPipeline)
    db.execute(AGG, engine="planned")  # warm plan + column caches

    planned = lambda: db.execute(AGG, engine="planned")  # noqa: E731
    reference = lambda: db.execute(AGG, engine="reference")  # noqa: E731
    # Re-measure on a miss: absolute times are tiny and host noise real,
    # but the underlying gap is ~4x, so one clean attempt settles it.
    for _ in range(5):
        planned_ms = _best_of(planned, repeats=3, loops=20)
        reference_ms = _best_of(reference, repeats=3, loops=20)
        if planned_ms <= reference_ms:
            break
    assert planned_ms <= reference_ms
