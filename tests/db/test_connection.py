"""Simulated connection accounting tests."""

from repro.algebra import AggCall, AggItem, Aggregate, Col, Table
from repro.db import Connection, CostParameters, describe_plan
from repro.sqlparse import parse_query


class TestAccounting:
    def test_round_trip_counted(self, database):
        conn = Connection(database)
        conn.execute_query(Table("project"))
        assert conn.stats.round_trips == 1
        assert conn.stats.queries_executed == 1

    def test_rows_and_bytes(self, database):
        conn = Connection(database)
        rows = conn.execute_query(Table("project"))
        assert conn.stats.rows_transferred == len(rows) == 4
        assert conn.stats.bytes_transferred > 0

    def test_aggregate_transfers_single_row(self, database):
        conn = Connection(database)
        rel = Aggregate(Table("board"), (), (AggItem(AggCall("max", Col("p1")), "m"),))
        conn.execute_query(rel)
        assert conn.stats.rows_transferred == 1

    def test_simulated_time_accumulates(self, database):
        conn = Connection(database)
        conn.execute_query(Table("project"))
        first = conn.stats.simulated_time_ms
        conn.execute_query(Table("project"))
        assert conn.stats.simulated_time_ms > first

    def test_per_query_round_trip_dominates_many_small_queries(self, database):
        """N scalar queries cost ~N round trips; one join costs one."""
        slow = Connection(database, CostParameters(round_trip_ms=1.0))
        for _ in range(10):
            slow.execute_query(Table("role"))
        many = slow.stats.simulated_time_ms

        one = Connection(database, CostParameters(round_trip_ms=1.0))
        one.execute_query(Table("role"))
        single = one.stats.simulated_time_ms
        assert many > 9 * single

    def test_reset(self, database):
        conn = Connection(database)
        conn.execute_query(Table("project"))
        conn.reset_stats()
        assert conn.stats.queries_executed == 0

    def test_query_log(self, database):
        conn = Connection(database, log_queries=True)
        conn.execute_query(Table("project"))
        assert len(conn.stats.query_log) == 1

    def test_snapshot_keys(self, database):
        conn = Connection(database)
        conn.execute_query(Table("project"))
        snap = conn.stats.snapshot()
        assert {"queries_executed", "rows_transferred", "bytes_transferred"} <= set(snap)


class TestScannedEstimate:
    def test_scan_counts_base_cardinality(self, database):
        conn = Connection(database)
        conn.execute_query(Table("project"))
        assert conn.stats.rows_scanned == 4

    def test_join_counts_both_tables(self, database):
        conn = Connection(database)
        conn.execute_query(parse_query("select * from wilosuser u join role r on r.id = u.role_id"))
        assert conn.stats.rows_scanned == 3 + 2


def test_describe_plan(database):
    rel = parse_query("select name from project where finished = false order by name")
    text = describe_plan(rel)
    assert "scan" in text and "σ" in text and "π" in text and "τ" in text
