"""In-memory engine tests: operator semantics over real data."""

import pytest

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    Alias,
    BinOp,
    CaseWhen,
    Col,
    Distinct,
    ExistsExpr,
    Func,
    Join,
    Limit,
    Lit,
    OuterApply,
    Param,
    Project,
    ProjectItem,
    ScalarSubquery,
    Select,
    Sort,
    SortKey,
    Table,
    UnOp,
)
from repro.db import Database, EngineError
from repro.sqlparse import parse_query


def col_values(rows, name):
    return [row[name] for row in rows]


class TestScan:
    def test_scan_returns_all_rows(self, database):
        rows = database.execute(Table("project"))
        assert len(rows) == 4

    def test_scan_adds_alias_qualified_keys(self, database):
        rows = database.execute(Table("project", "p"))
        assert rows[0]["p.name"] == rows[0]["name"]

    def test_unknown_table_raises(self, database):
        with pytest.raises(EngineError):
            database.execute(Table("missing"))


class TestSelect:
    def test_filter(self, database):
        rel = Select(Table("project"), BinOp("=", Col("finished"), Lit(False)))
        assert col_values(database.execute(rel), "name") == ["alpha", "gamma"]

    def test_filter_preserves_order(self, database):
        rel = Select(Table("board"), BinOp("=", Col("rnd_id"), Lit(1)))
        assert col_values(database.execute(rel), "id") == [1, 2]

    def test_unknown_where_is_filtered(self, database):
        database.insert("project", {"id": 9, "name": None, "finished": None})
        rel = Select(Table("project"), BinOp("=", Col("finished"), Lit(False)))
        names = col_values(database.execute(rel), "name")
        assert None not in names  # NULL = FALSE is unknown, row dropped

    def test_parameter_binding(self, database):
        rel = Select(Table("board"), BinOp("=", Col("rnd_id"), Param("r")))
        assert len(database.execute(rel, {"r": 2})) == 1

    def test_unbound_parameter_raises(self, database):
        rel = Select(Table("board"), BinOp("=", Col("rnd_id"), Param("r")))
        with pytest.raises(EngineError):
            database.execute(rel)


class TestProject:
    def test_projection_renames(self, database):
        rel = Project(Table("project"), (ProjectItem(Col("name"), "label"),))
        rows = database.execute(rel)
        plain = {k for k in rows[0] if "." not in k}
        assert plain == {"label"}

    def test_projection_passes_qualified_columns_for_order_by(self, database):
        """Like SQL, ORDER BY above a SELECT list may reference FROM columns
        that are not projected."""
        from repro.sqlparse import parse_query

        rel = parse_query("select name from project p order by p.budget desc")
        rows = database.execute(rel)
        assert [r["name"] for r in rows] == ["gamma", "beta", "alpha", "delta"]

    def test_projection_computes(self, database):
        rel = Project(
            Table("board"),
            (ProjectItem(Func("GREATEST", (Col("p1"), Col("p2"))), "hi"),),
        )
        assert col_values(database.execute(rel), "hi") == [30, 2, 99]

    def test_projection_preserves_row_count_and_order(self, database):
        rel = Project(Table("project"), (ProjectItem(Col("id")),))
        assert col_values(database.execute(rel), "id") == [1, 2, 3, 4]

    def test_star_projection(self, database):
        rel = Project(Table("project"), (ProjectItem(Col("*")),))
        assert len(database.execute(rel)) == 4


class TestJoin:
    def test_inner_join(self, database):
        rel = Join(
            Table("wilosuser", "u"),
            Table("role", "r"),
            BinOp("=", Col("id", "r"), Col("role_id", "u")),
        )
        rows = database.execute(rel)
        assert len(rows) == 3
        assert {r["r.role_name"] for r in rows} == {"admin", "dev"}

    def test_left_join_pads_nulls(self, database):
        database.insert("wilosuser", {"id": 9, "name": "zed", "role_id": 99})
        rel = Join(
            Table("wilosuser", "u"),
            Table("role", "r"),
            BinOp("=", Col("id", "r"), Col("role_id", "u")),
            "left",
        )
        rows = database.execute(rel)
        zed = [r for r in rows if r["u.name"] == "zed"][0]
        assert zed["r.role_name"] is None

    def test_cross_join(self, database):
        rel = Join(Table("role"), Table("customers"), None, "cross")
        assert len(database.execute(rel)) == 4


class TestAggregate:
    def test_global_max(self, database):
        rel = Aggregate(Table("board"), (), (AggItem(AggCall("max", Col("p1")), "m"),))
        assert database.execute(rel) == [{"m": 99}]

    def test_count_star(self, database):
        rel = Aggregate(Table("project"), (), (AggItem(AggCall("count", None), "n"),))
        assert database.execute(rel) == [{"n": 4}]

    def test_sum_on_empty_is_null(self, database):
        rel = Aggregate(
            Select(Table("orders"), Lit(False)),
            (),
            (AggItem(AggCall("sum", Col("amount")), "s"),),
        )
        assert database.execute(rel) == [{"s": None}]

    def test_count_on_empty_is_zero(self, database):
        rel = Aggregate(
            Select(Table("orders"), Lit(False)),
            (),
            (AggItem(AggCall("count", None), "n"),),
        )
        assert database.execute(rel) == [{"n": 0}]

    def test_group_by(self, database):
        rel = Aggregate(
            Table("orders"),
            (Col("cust"),),
            (AggItem(AggCall("sum", Col("amount")), "total"),),
        )
        rows = database.execute(rel)
        assert rows == [{"cust": "a", "total": 30}, {"cust": "b", "total": 5}]

    def test_aggregate_skips_nulls(self, database):
        database.insert("orders", {"id": 9, "cust": "a", "amount": None})
        rel = Aggregate(
            Table("orders"), (), (AggItem(AggCall("sum", Col("amount")), "s"),)
        )
        assert database.execute(rel) == [{"s": 35}]

    def test_avg(self, database):
        rel = Aggregate(
            Table("orders"), (), (AggItem(AggCall("avg", Col("amount")), "a"),)
        )
        assert database.execute(rel)[0]["a"] == pytest.approx(35 / 3)

    def test_count_distinct(self, database):
        rel = Aggregate(
            Table("orders"),
            (),
            (AggItem(AggCall("count", Col("cust"), distinct=True), "n"),),
        )
        assert database.execute(rel) == [{"n": 2}]


class TestSortDistinctLimit:
    def test_sort_ascending(self, database):
        rel = Sort(Table("project"), (SortKey(Col("budget")),))
        assert col_values(database.execute(rel), "budget") == [5, 10, 20, 30]

    def test_sort_descending(self, database):
        rel = Sort(Table("project"), (SortKey(Col("budget"), ascending=False),))
        assert col_values(database.execute(rel), "budget") == [30, 20, 10, 5]

    def test_sort_is_stable(self, database):
        rel = Sort(Table("board"), (SortKey(Col("rnd_id")),))
        assert col_values(database.execute(rel), "id") == [1, 2, 3]

    def test_sort_nulls_last(self, database):
        database.insert("project", {"id": 9, "name": "x", "budget": None})
        rel = Sort(Table("project"), (SortKey(Col("budget")),))
        assert database.execute(rel)[-1]["budget"] is None

    def test_limit(self, database):
        rel = Limit(Sort(Table("project"), (SortKey(Col("budget"), False),)), 2)
        assert col_values(database.execute(rel), "budget") == [30, 20]

    def test_distinct(self, database):
        rel = Distinct(Project(Table("orders"), (ProjectItem(Col("cust")),)))
        assert col_values(database.execute(rel), "cust") == ["a", "b"]


class TestOuterApply:
    def test_apply_correlated_aggregate(self, database):
        inner = Aggregate(
            Select(Table("orders", "o"), BinOp("=", Col("cust", "o"), Col("cust", "c"))),
            (),
            (AggItem(AggCall("sum", Col("amount")), "total"),),
        )
        rel = OuterApply(Table("customers", "c"), inner)
        rows = database.execute(rel)
        assert [(r["cust"], r["total"]) for r in rows] == [("a", 30), ("b", 5)]

    def test_apply_pads_nulls_on_empty(self, database):
        database.insert("customers", {"cust": "z", "region": "ap"})
        inner = Project(
            Select(Table("orders", "o"), BinOp("=", Col("cust", "o"), Col("cust", "c"))),
            (ProjectItem(Col("amount"), "amt"),),
        )
        rel = OuterApply(Table("customers", "c"), inner)
        rows = database.execute(rel)
        z = [r for r in rows if r["cust"] == "z"][0]
        assert z["amt"] is None


class TestScalarExpressions:
    def test_case_when(self, database):
        rel = Project(
            Table("project"),
            (ProjectItem(CaseWhen(Col("finished"), Lit(1), Lit(0)), "f"),),
        )
        assert col_values(database.execute(rel), "f") == [0, 1, 0, 1]

    def test_exists_subquery(self, database):
        pred = ExistsExpr(
            Select(Table("orders", "o"), BinOp("=", Col("cust", "o"), Col("cust", "c")))
        )
        rel = Select(Table("customers", "c"), pred)
        assert len(database.execute(rel)) == 2

    def test_scalar_subquery(self, database):
        sub = ScalarSubquery(
            Aggregate(Table("board"), (), (AggItem(AggCall("max", Col("p1")), "m"),))
        )
        rel = Select(Table("board"), BinOp("=", Col("p1"), sub))
        assert col_values(database.execute(rel), "id") == [3]

    def test_coalesce(self, database):
        rel = Project(
            Table("project"),
            (ProjectItem(Func("COALESCE", (Lit(None), Col("budget"))), "b"),),
        )
        assert col_values(database.execute(rel), "b") == [10, 20, 30, 5]

    def test_string_functions(self, database):
        rel = Project(
            Table("customers"),
            (ProjectItem(Func("UPPER", (Col("region"),)), "r"),),
        )
        assert col_values(database.execute(rel), "r") == ["EU", "US"]

    def test_like(self, database):
        rel = Select(Table("project"), BinOp("LIKE", Col("name"), Lit("%a")))
        names = col_values(database.execute(rel), "name")
        assert names == ["alpha", "beta", "gamma", "delta"]

    def test_arithmetic_with_null_is_null(self, database):
        rel = Project(
            Table("project"), (ProjectItem(BinOp("+", Col("budget"), Lit(None)), "x"),)
        )
        assert col_values(database.execute(rel), "x") == [None] * 4


class TestParsedQueries:
    def test_parse_and_execute(self, database):
        rel = parse_query(
            "select cust, sum(amount) as total from orders group by cust"
        )
        rows = database.execute(rel)
        assert rows == [{"cust": "a", "total": 30}, {"cust": "b", "total": 5}]

    def test_parse_and_execute_apply(self, database):
        rel = parse_query(
            "select * from customers c outer apply "
            "(select sum(o.amount) as total from orders o where o.cust = c.cust) s"
        )
        rows = database.execute(rel)
        assert [(r["cust"], r["total"]) for r in rows] == [("a", 30), ("b", 5)]
