"""Unit tests for the physical planner and operators.

Covers the lowering decisions (hash-join key extraction, semi/anti-join
decorrelation, Top-N fusion, point lookups), index lifecycle (lazy build,
invalidation on insert/clear), the plan cache, and the satellite fixes
(left-join padding on empty right side, LIKE regex caching, AVG division
semantics agreeing across engines).
"""

from __future__ import annotations

import pytest

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    Col,
    ExistsExpr,
    Join,
    Limit,
    Lit,
    Project,
    ProjectItem,
    Select,
    Sort,
    SortKey,
    Table,
    UnOp,
)
from repro.db import Database
from repro.db.engine import _like_regex
from repro.db.physical import (
    FilterOp,
    HashJoin,
    HashSemiJoin,
    IndexLookup,
    IndexNLJoin,
    NestedLoopJoin,
    SeqScan,
    TopN,
    total_scanned,
)
from repro.db.planner import Planner, scope_names, split_conjuncts


def _both(db, query, params=None):
    """Execute on both engines, assert they agree, return the rows."""
    reference = db.execute(query, params, engine="reference")
    planned = db.execute(query, params, engine="planned")
    assert planned == reference
    return planned


class TestHashJoinExtraction:
    def test_equality_conjunct_becomes_hash_join(self, database):
        join = Join(
            Table("wilosuser", "u"),
            Table("role", "r"),
            BinOp("=", Col("role_id", "u"), Col("id", "r")),
        )
        plan = Planner(database).lower(join)
        assert isinstance(plan, HashJoin)
        assert plan.left_keys == (Col("role_id", "u"),)
        assert plan.right_keys == (Col("id", "r"),)
        assert plan.residual is None
        _both(database, join)

    def test_swapped_sides_are_normalized(self, database):
        join = Join(
            Table("wilosuser", "u"),
            Table("role", "r"),
            BinOp("=", Col("id", "r"), Col("role_id", "u")),
        )
        plan = Planner(database).lower(join)
        assert isinstance(plan, HashJoin)
        assert plan.left_keys == (Col("role_id", "u"),)
        assert plan.right_keys == (Col("id", "r"),)

    def test_non_equality_conjunct_stays_residual(self, database):
        pred = BinOp(
            "AND",
            BinOp("=", Col("role_id", "u"), Col("id", "r")),
            BinOp("!=", Col("name", "u"), Lit("bob")),
        )
        join = Join(Table("wilosuser", "u"), Table("role", "r"), pred)
        plan = Planner(database).lower(join)
        assert isinstance(plan, HashJoin)
        assert len(plan.left_keys) == 1
        assert plan.residual is not None
        _both(database, join)

    def test_single_side_equality_is_not_a_key(self, database):
        # u.role_id = 2 references only the left side: no hash key.
        join = Join(
            Table("wilosuser", "u"),
            Table("role", "r"),
            BinOp("=", Col("role_id", "u"), Lit(2)),
        )
        plan = Planner(database).lower(join)
        assert isinstance(plan, NestedLoopJoin)
        _both(database, join)

    def test_cross_join_has_no_keys(self, database):
        join = Join(Table("wilosuser"), Table("role", "r"), None, "cross")
        plan = Planner(database).lower(join)
        assert isinstance(plan, NestedLoopJoin)
        _both(database, join)

    def test_null_join_keys_never_match(self, catalog):
        db = Database(catalog)
        db.insert("wilosuser", {"id": 1, "name": "n", "role_id": None})
        db.insert("role", {"id": 1, "role_name": "admin"})
        join = Join(
            Table("wilosuser", "u"),
            Table("role", "r"),
            BinOp("=", Col("role_id", "u"), Col("id", "r")),
        )
        assert _both(db, join) == []


class TestSemiJoin:
    def _exists_query(self, negated=False):
        inner = Select(
            Table("orders", "o"),
            BinOp("=", Col("cust", "o"), Col("cust", "customers")),
        )
        return Select(
            Table("customers"), ExistsExpr(inner, negated=negated)
        )

    def test_correlated_exists_decorrelates(self, database):
        plan = Planner(database).lower(self._exists_query())
        assert isinstance(plan, HashSemiJoin)
        assert plan.inner_keys == (Col("cust", "o"),)
        assert plan.outer_keys == (Col("cust", "customers"),)
        rows = _both(database, self._exists_query())
        assert {r["cust"] for r in rows} == {"a", "b"}

    def test_not_exists_is_anti_join(self, database):
        plan = Planner(database).lower(self._exists_query(negated=True))
        assert isinstance(plan, HashSemiJoin)
        assert plan.negated
        assert plan.label == "HashAntiJoin"
        assert _both(database, self._exists_query(negated=True)) == []

    def test_not_wrapped_exists_flips_negation(self, database):
        inner = Select(
            Table("orders", "o"),
            BinOp("=", Col("cust", "o"), Col("cust", "customers")),
        )
        query = Select(
            Table("customers"), UnOp("NOT", ExistsExpr(inner))
        )
        plan = Planner(database).lower(query)
        assert isinstance(plan, HashSemiJoin)
        assert plan.negated
        _both(database, query)

    def test_uncorrelated_exists_has_no_keys(self, database):
        query = Select(
            Table("customers"),
            ExistsExpr(Select(Table("orders"), BinOp(">", Col("amount"), Lit(15)))),
        )
        plan = Planner(database).lower(query)
        assert isinstance(plan, HashSemiJoin)
        assert plan.outer_keys == ()
        assert len(_both(database, query)) == 2

    def test_aggregate_inner_bails_to_filter(self, database):
        # γ without GROUP BY yields one row even over empty input: EXISTS is
        # always true, so peeling it as emptiness-preserving would be wrong.
        inner = Aggregate(
            Select(Table("orders", "o"),
                   BinOp("=", Col("cust", "o"), Col("cust", "customers"))),
            (),
            (AggItem(AggCall("count"), "n"),),
        )
        query = Select(Table("customers"), ExistsExpr(inner))
        plan = Planner(database).lower(query)
        assert isinstance(plan, FilterOp)
        rows = _both(database, query)
        assert len(rows) == 2  # EXISTS(aggregate) is always true


class TestTopN:
    def test_sort_limit_fuses_to_topn(self, database):
        query = Limit(
            Sort(Table("project"), (SortKey(Col("budget"), ascending=False),)), 2
        )
        plan = Planner(database).lower(query)
        assert isinstance(plan, TopN)
        rows = _both(database, query)
        assert [r["budget"] for r in rows] == [30, 20]

    def test_topn_with_nulls_orders_like_reference(self, catalog):
        db = Database(catalog)
        db.insert_many(
            "project",
            [
                {"id": 1, "name": "a", "budget": None},
                {"id": 2, "name": "b", "budget": 5},
                {"id": 3, "name": "c", "budget": None},
                {"id": 4, "name": "d", "budget": 1},
            ],
        )
        for ascending in (True, False):
            for count in (1, 2, 3, 10):
                query = Limit(
                    Sort(Table("project"), (SortKey(Col("budget"), ascending),)),
                    count,
                )
                _both(db, query)

    def test_topn_ties_are_stable(self, catalog):
        db = Database(catalog)
        db.insert_many(
            "project",
            [{"id": i, "name": f"n{i}", "budget": 7} for i in range(1, 6)],
        )
        query = Limit(Sort(Table("project"), (SortKey(Col("budget")),)), 3)
        rows = _both(db, query)
        assert [r["id"] for r in rows] == [1, 2, 3]  # input order preserved

    def test_zero_and_negative_limits(self, database):
        sort = Sort(Table("project"), (SortKey(Col("budget")),))
        assert _both(database, Limit(sort, 0)) == []
        _both(database, Limit(sort, -1))


class TestIndexes:
    def test_point_lookup_on_key_column(self, database):
        query = Select(Table("project"), BinOp("=", Col("id"), Lit(2)))
        plan = Planner(database).lower(query)
        assert isinstance(plan, IndexLookup)
        rows = _both(database, query)
        assert rows[0]["name"] == "beta"

    def test_non_key_column_needs_explicit_index(self, database):
        query = Select(Table("project"), BinOp("=", Col("budget"), Lit(20)))
        assert isinstance(Planner(database).lower(query), FilterOp)
        database.create_index("project", "budget")
        assert isinstance(Planner(database).lower(query), IndexLookup)
        _both(database, query)

    def test_index_invalidated_on_insert(self, database):
        query = Select(Table("project"), BinOp("=", Col("id"), Lit(9)))
        assert _both(database, query) == []
        database.insert("project", {"id": 9, "name": "iota", "budget": 1})
        rows = _both(database, query)
        assert rows[0]["name"] == "iota"

    def test_index_invalidated_on_clear(self, database):
        query = Select(Table("project"), BinOp("=", Col("id"), Lit(2)))
        assert len(_both(database, query)) == 1
        database.clear("project")
        assert _both(database, query) == []

    def test_registered_index_enables_index_nested_loop_join(self, database):
        join = Join(
            Table("wilosuser", "u"),
            Table("role", "r"),
            BinOp("=", Col("role_id", "u"), Col("id", "r")),
        )
        database.create_index("role", "id")
        plan = Planner(database).lower(join)
        assert isinstance(plan, IndexNLJoin)
        rows = _both(database, join)
        assert len(rows) == 3

    def test_unhashable_values_fall_back(self, catalog):
        catalog.define("blob", ["id", "payload"], key=("id",))
        db = Database(catalog)
        db.insert("blob", {"id": 1, "payload": [1, 2]})
        db.insert("blob", {"id": 2, "payload": [3]})
        db.create_index("blob", "payload")
        query = Select(Table("blob"), BinOp("=", Col("payload"), Lit(7)))
        assert _both(db, query) == []


class TestPlanCache:
    def test_repeated_execution_hits_cache(self, database):
        query = Select(Table("project"), BinOp(">", Col("budget"), Lit(5)))
        database.execute(query)
        misses = database.plan_cache_misses
        database.execute(query)
        database.execute(query)
        assert database.plan_cache_misses == misses
        assert database.plan_cache_hits >= 2

    def test_create_index_clears_cache(self, database):
        query = Select(Table("project"), BinOp("=", Col("budget"), Lit(20)))
        database.execute(query)
        database.create_index("project", "budget")
        assert query not in database._plan_cache


class TestExplain:
    def test_explain_tree_shape(self, database):
        join = Join(
            Table("wilosuser", "u"),
            Table("role", "r"),
            BinOp("=", Col("role_id", "u"), Col("id", "r")),
        )
        explain = database.explain(join)
        assert explain["op"] == "HashJoin"
        assert explain["rows_out"] == 3
        children = {c["op"] for c in explain["children"]}
        assert children == {"SeqScan"}
        assert total_scanned(explain) == 3 + 2

    def test_limit_short_circuits_scan(self, database):
        explain = database.explain(Limit(Table("project"), 1))
        scan = explain["children"][0]
        assert scan["rows_scanned"] == 1  # streaming: only one row pulled

    def test_explain_cost_feeds_cost_model(self, database):
        from repro.cost.model import CostModel

        explain = database.explain(Table("project"))
        cost = CostModel(database).explain_cost_ms(explain)
        assert cost > 0


class TestSatelliteFixes:
    def test_left_join_empty_right_pads_columns(self, database):
        """Regression: left join against an empty right relation must still
        emit the right side's columns as NULLs (on both engines)."""
        database.clear("role")
        join = Join(
            Table("wilosuser", "u"),
            Table("role", "r"),
            BinOp("=", Col("role_id", "u"), Col("id", "r")),
            kind="left",
        )
        rows = _both(database, join)
        assert len(rows) == 3
        for row in rows:
            assert row["role_name"] is None
            assert row["r.role_name"] is None

    def test_left_join_empty_filtered_right_pads_from_projection(self, database):
        right = Project(
            Select(Table("role", "r"), BinOp("=", Col("id", "r"), Lit(99))),
            (ProjectItem(Col("role_name", "r"), "rn"),),
        )
        join = Join(
            Table("wilosuser", "u"), right, None, kind="left"
        )
        rows = _both(database, join)
        assert all(row["rn"] is None for row in rows)

    def test_like_regex_is_cached(self, database):
        _like_regex.cache_clear()
        query = Select(Table("project"), BinOp("LIKE", Col("name"), Lit("%a%")))
        _both(database, query)
        info = _like_regex.cache_info()
        assert info.misses == 1  # one compile for the whole scan
        assert info.hits >= 1

    def test_avg_division_semantics_agree(self, database):
        query = Aggregate(
            Table("project"), (), (AggItem(AggCall("avg", Col("budget")), "a"),)
        )
        rows = _both(database, query)
        assert rows[0]["a"] == pytest.approx(65 / 4)
        assert isinstance(rows[0]["a"], float)

    def test_avg_over_empty_is_null_on_both_engines(self, catalog):
        db = Database(catalog)
        query = Aggregate(
            Table("project"), (), (AggItem(AggCall("avg", Col("budget")), "a"),)
        )
        assert _both(db, query) == [{"a": None}]


class TestScopeNames:
    def test_table_scope_includes_qualified(self, catalog):
        names = scope_names(Table("role", "r"), catalog)
        assert names == frozenset({"id", "role_name", "r.id", "r.role_name"})

    def test_unknown_table_is_inexact(self, catalog):
        assert scope_names(Table("nope"), catalog) is None

    def test_split_conjuncts_flattens_nested_ands(self):
        pred = BinOp(
            "AND",
            BinOp("AND", Lit(True), Lit(False)),
            BinOp("=", Col("x"), Lit(1)),
        )
        assert len(split_conjuncts(pred)) == 3
