"""SQL value semantics tests (three-valued logic, sizes, sort keys)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.db.types import (
    descending_key,
    is_truthy,
    nulls_last_key,
    row_size_bytes,
    sql_and,
    sql_compare,
    sql_eq,
    sql_not,
    sql_or,
    value_size_bytes,
)


class TestThreeValuedLogic:
    def test_eq_with_null_is_unknown(self):
        assert sql_eq(None, 1) is None
        assert sql_eq(1, None) is None
        assert sql_eq(None, None) is None

    def test_eq_plain(self):
        assert sql_eq(1, 1) is True
        assert sql_eq(1, 2) is False

    def test_compare_with_null(self):
        assert sql_compare("<", None, 1) is None
        assert sql_compare(">=", 1, None) is None

    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False  # false dominates unknown
        assert sql_and(True, None) is None
        assert sql_and(None, None) is None

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(True, None) is True  # true dominates unknown
        assert sql_or(False, None) is None
        assert sql_or(None, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    def test_is_truthy_where_semantics(self):
        assert is_truthy(True)
        assert not is_truthy(False)
        assert not is_truthy(None)  # unknown filters out

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_de_morgan(self, a, b):
        assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_commutativity(self, a, b):
        assert sql_and(a, b) == sql_and(b, a)
        assert sql_or(a, b) == sql_or(b, a)


class TestSizes:
    def test_null_is_one_byte(self):
        assert value_size_bytes(None) == 1

    def test_int_and_float(self):
        assert value_size_bytes(42) == 8
        assert value_size_bytes(3.5) == 8

    def test_string_is_length_prefixed(self):
        assert value_size_bytes("abc") == 5

    def test_row_size_skips_qualified_duplicates(self):
        row = {"x": 1, "b.x": 1, "y": "ab"}
        assert row_size_bytes(row) == 8 + 4

    @given(st.text(max_size=50))
    def test_string_size_monotone(self, text):
        assert value_size_bytes(text) >= 2


class TestSortKeys:
    def test_nulls_last_ascending(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=nulls_last_key)
        assert ordered == [1, 2, 3, None, None]

    def test_descending(self):
        values = [3, None, 1, 2]
        ordered = sorted(values, key=descending_key)
        assert ordered == [None, 3, 2, 1]

    @given(st.lists(st.one_of(st.none(), st.integers(-10, 10)), max_size=20))
    def test_nulls_last_total_order(self, values):
        ordered = sorted(values, key=nulls_last_key)
        non_null = [v for v in ordered if v is not None]
        assert non_null == sorted(non_null)
        # all Nones at the end
        if None in ordered:
            first_none = ordered.index(None)
            assert all(v is None for v in ordered[first_none:])
