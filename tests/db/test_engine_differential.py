"""Differential property test: planned engine ≡ reference evaluator.

Generates seeded random algebra queries over seeded random schemas and
instances (reusing the difftest schema/instance generators) and asserts
the planned engine returns *exactly* the reference evaluator's rows —
values, key sets, and order — for every query.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    CaseWhen,
    Col,
    Distinct,
    ExistsExpr,
    Func,
    Join,
    Limit,
    Lit,
    Param,
    Project,
    ProjectItem,
    RelExpr,
    Select,
    Sort,
    SortKey,
    Table,
    UnOp,
    conjoin,
)
from repro.db import Database
from repro.db.engine import EngineError
from repro.difftest.dbgen import generate_rows
from repro.difftest.generator import CaseGenerator, TableSpec

#: Literal pools matching the instance generator's value distributions, so
#: predicates actually select interesting subsets (and miss sometimes).
_INT_LITERALS = [0, 1, 2, 5, 10, 42, -1, 100, 7]
_STR_LITERALS = ["a", "b", "north", "south", "x", "zzz"]
_LIKE_PATTERNS = ["a%", "%th", "%or%", "x", "_", "%"]


def _build_instance(rng: random.Random) -> tuple[Database, list[TableSpec]]:
    tables = CaseGenerator(rng).schema()
    catalog_spec = {
        t.name: {"columns": list(t.columns), "key": list(t.key)} for t in tables
    }
    from repro.algebra import Catalog

    db = Database(Catalog.from_dict(catalog_spec))
    fk_ids: list[int] = []
    for table in tables:
        rows = generate_rows(rng, table, [], fk_ids)
        db.insert_many(table.name, rows)
        if not fk_ids:
            fk_ids = [row["id"] for row in rows]
    return db, tables


class _QueryGen:
    """Random algebra queries valid against a generated schema."""

    def __init__(self, rng: random.Random, tables: list[TableSpec]):
        self.rng = rng
        self.tables = tables

    def _column(self, table: TableSpec, alias: str | None = None) -> Col:
        name = self.rng.choice(table.columns)
        if alias is not None and self.rng.random() < 0.5:
            return Col(name, alias)
        return Col(name)

    def _int_column(self, table: TableSpec, alias: str | None = None) -> Col:
        candidates = ["id"] + table.int_columns
        if "fk" in table.columns:
            candidates.append("fk")
        name = self.rng.choice(candidates)
        if alias is not None and self.rng.random() < 0.5:
            return Col(name, alias)
        return Col(name)

    def _scalar(self, table: TableSpec, alias: str | None = None):
        """Integer-valued scalar expression: a column, a function call, or
        a CASE WHEN.  Everything stays integer-typed (NULLs aside) so
        comparisons built on top never mix types."""
        rng = self.rng
        roll = rng.random()
        col = self._int_column(table, alias)
        if roll < 0.45:
            return col
        if roll < 0.75:
            name = rng.choice(["COALESCE", "ABS", "GREATEST", "LEAST"])
            if name == "ABS":
                return Func(name, (col,))
            return Func(name, (col, Lit(rng.choice(_INT_LITERALS))))
        return CaseWhen(
            self._comparison(table, alias),
            col,
            Lit(rng.choice(_INT_LITERALS)),
        )

    def _comparison(self, table: TableSpec, alias: str | None = None):
        rng = self.rng
        roll = rng.random()
        if roll < 0.25 and table.str_columns:
            col = Col(rng.choice(table.str_columns))
            if rng.random() < 0.5:
                return BinOp("LIKE", col, Lit(rng.choice(_LIKE_PATTERNS)))
            return BinOp("=", col, Lit(rng.choice(_STR_LITERALS)))
        if rng.random() < 0.2:
            lhs = self._scalar(table, alias)
        else:
            lhs = self._int_column(table, alias)
        op = rng.choice(["=", "=", "=", "!=", "<", ">", "<=", ">="])
        if rng.random() < 0.1:
            return BinOp(op, lhs, Param("p"))
        return BinOp(op, lhs, Lit(rng.choice(_INT_LITERALS)))

    def _predicate(self, table: TableSpec, alias: str | None = None):
        rng = self.rng
        pred = self._comparison(table, alias)
        while rng.random() < 0.4:
            connective = rng.choice(["AND", "AND", "OR"])
            pred = BinOp(connective, pred, self._comparison(table, alias))
        if rng.random() < 0.1:
            pred = UnOp("NOT", pred)
        return pred

    def _exists(self, outer: TableSpec):
        """EXISTS over a second table, correlated on fk/id half the time."""
        rng = self.rng
        inner = rng.choice(self.tables)
        alias = "sub"
        inner_rel: RelExpr = Table(inner.name, alias)
        conjuncts = []
        if rng.random() < 0.7:
            conjuncts.append(self._comparison(inner, alias))
        if inner.name != outer.name and "fk" in inner.columns and rng.random() < 0.7:
            conjuncts.append(BinOp("=", Col("fk", alias), Col("id", outer.name)))
        pred = conjoin(*conjuncts)
        if pred is not None:
            inner_rel = Select(inner_rel, pred)
        if rng.random() < 0.3:
            inner_rel = Project(inner_rel, (ProjectItem(Col("id", alias), "iid"),))
        if rng.random() < 0.2:
            inner_rel = Limit(inner_rel, rng.choice([1, 2, 5]))
        return ExistsExpr(inner_rel, negated=rng.random() < 0.4)

    def query(self) -> RelExpr:
        rng = self.rng
        base_table = rng.choice(self.tables)
        rel: RelExpr = Table(base_table.name)

        # Optional join back to another table: the classic fk ↔ id shape
        # most of the time, otherwise arbitrary int-column equi-keys —
        # NULLable on both sides, heavily duplicated, and sometimes
        # multi-column — so join NULL/duplicate semantics get exercised.
        join_partner = None
        if len(self.tables) > 1 and rng.random() < 0.5:
            partner = rng.choice([t for t in self.tables if t is not base_table])
            kind = rng.choice(["inner", "inner", "left"])
            pred = None
            if rng.random() < 0.55:
                fk_holder, id_holder = (
                    (partner, base_table)
                    if "fk" in partner.columns
                    else (base_table, partner)
                )
                if "fk" in fk_holder.columns:
                    pred = BinOp(
                        "=", Col("id", id_holder.name), Col("fk", fk_holder.name)
                    )
            if pred is None:
                left_col = rng.choice(["id"] + base_table.int_columns)
                right_col = rng.choice(["id"] + partner.int_columns)
                pred = BinOp(
                    "=",
                    Col(left_col, base_table.name),
                    Col(right_col, partner.name),
                )
                if rng.random() < 0.4:
                    pred = BinOp(
                        "AND",
                        pred,
                        BinOp(
                            "=",
                            Col(
                                rng.choice(["id"] + base_table.int_columns),
                                base_table.name,
                            ),
                            Col(
                                rng.choice(["id"] + partner.int_columns),
                                partner.name,
                            ),
                        ),
                    )
            if rng.random() < 0.3:
                pred = BinOp(
                    "AND", pred, self._comparison(partner, partner.name)
                )
            rel = Join(rel, Table(partner.name), pred, kind)
            join_partner = partner

        if rng.random() < 0.65:
            conjuncts = [self._predicate(base_table, base_table.name)]
            if rng.random() < 0.35:
                conjuncts.append(self._exists(base_table))
            rel = Select(rel, conjoin(*conjuncts))

        shape = rng.random()
        if shape < 0.25:
            group_col = self._int_column(base_table)
            call = AggCall(
                rng.choice(["count", "sum", "min", "max", "avg"]),
                None if rng.random() < 0.3 else Col("id", base_table.name),
                distinct=rng.random() < 0.2,
            )
            group_by = () if rng.random() < 0.4 else (group_col,)
            rel = Aggregate(rel, group_by, (AggItem(call, "agg"),))
        elif shape < 0.5:
            items = tuple(
                ProjectItem(self._column(base_table), f"c{i}")
                for i in range(rng.randint(1, 3))
            )
            if rng.random() < 0.25:
                items = items + (
                    ProjectItem(self._scalar(base_table), "expr"),
                )
            if rng.random() < 0.2:
                items = items + (ProjectItem(Col("*")),)
            rel = Project(rel, items)

        if rng.random() < 0.4:
            sort_table = join_partner or base_table
            keys = tuple(
                SortKey(
                    self._scalar(sort_table)
                    if rng.random() < 0.2
                    else self._column(sort_table),
                    rng.random() < 0.6,
                )
                for _ in range(rng.randint(1, 2))
            )
            rel = Sort(rel, keys)
            if rng.random() < 0.5:
                rel = Limit(rel, rng.choice([0, 1, 2, 3, 10]))
        elif rng.random() < 0.2:
            rel = Distinct(rel)
        return rel


@pytest.mark.parametrize("seed", [11, 23, 47, 101])
def test_planned_matches_reference_on_random_queries(seed):
    """≥200 random queries in total across the seeds: planned == reference,
    exactly (rows, values, and order)."""
    rng = random.Random(seed)
    checked = 0
    while checked < 60:
        db, tables = _build_instance(rng)
        gen = _QueryGen(rng, tables)
        # Sometimes register indexes so index plans are exercised too.
        if rng.random() < 0.4:
            table = rng.choice(tables)
            db.create_index(table.name, rng.choice(["id"] + table.int_columns))
        for _ in range(6):
            query = gen.query()
            params = {"p": rng.choice(_INT_LITERALS)}
            try:
                expected = db.execute(query, params, engine="reference")
            except EngineError:
                continue  # malformed by construction; not this test's topic
            actual = db.execute(query, params, engine="planned")
            assert actual == expected, f"seed={seed} query={query}"
            checked += 1
    assert checked >= 60


def test_both_engine_mode_runs_clean(seed=5):
    """engine="both" executes the planned plan and cross-checks the oracle
    inline — a divergence would raise EngineDivergenceError here."""
    rng = random.Random(seed)
    db, tables = _build_instance(rng)
    db.default_engine = "both"
    gen = _QueryGen(rng, tables)
    for _ in range(40):
        query = gen.query()
        try:
            db.execute(query, {"p": 1})
        except EngineError as exc:
            # Only plain evaluation errors are tolerated; a divergence is a
            # planner bug and must fail the test.
            from repro.db import EngineDivergenceError

            assert not isinstance(exc, EngineDivergenceError), exc
