"""Property-based tests of the engine's algebraic laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    BinOp,
    Catalog,
    Col,
    Distinct,
    Join,
    Limit,
    Lit,
    Project,
    ProjectItem,
    Select,
    Sort,
    SortKey,
    Table,
    conjoin,
)
from repro.db import Database

_catalog = Catalog()
_catalog.define("t", ["id", "a", "b"], key=("id",))
_catalog.define("u", ["id", "k", "v"], key=("id",))


def make_db(t_rows, u_rows=()):
    db = Database(_catalog)
    for i, (a, b) in enumerate(t_rows):
        db.insert("t", {"id": i + 1, "a": a, "b": b})
    for i, (k, v) in enumerate(u_rows):
        db.insert("u", {"id": i + 1, "k": k, "v": v})
    return db


rows_t = st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15)
rows_u = st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10)
threshold = st.integers(0, 5)


def plain(rows):
    return [tuple(sorted((k, v) for k, v in r.items() if "." not in k)) for r in rows]


@given(rows_t, threshold, threshold)
@settings(max_examples=100, deadline=None)
def test_selection_composition(data, x, y):
    """σ_p(σ_q(T)) == σ_{p∧q}(T)."""
    db = make_db(data)
    p = BinOp(">", Col("a"), Lit(x))
    q = BinOp("<", Col("b"), Lit(y))
    stacked = db.execute(Select(Select(Table("t"), q), p))
    combined = db.execute(Select(Table("t"), conjoin(p, q)))
    assert plain(stacked) == plain(combined)


@given(rows_t, threshold)
@settings(max_examples=100, deadline=None)
def test_selection_commutes(data, x):
    db = make_db(data)
    p = BinOp(">", Col("a"), Lit(x))
    q = BinOp(">", Col("b"), Lit(x))
    pq = db.execute(Select(Select(Table("t"), q), p))
    qp = db.execute(Select(Select(Table("t"), p), q))
    assert plain(pq) == plain(qp)


@given(rows_t)
@settings(max_examples=100, deadline=None)
def test_projection_preserves_cardinality_and_order(data):
    db = make_db(data)
    projected = db.execute(Project(Table("t"), (ProjectItem(Col("a")),)))
    assert [r["a"] for r in projected] == [a for a, _ in data]


@given(rows_t)
@settings(max_examples=100, deadline=None)
def test_distinct_idempotent(data):
    db = make_db(data)
    rel = Project(Table("t"), (ProjectItem(Col("a")),))
    once = db.execute(Distinct(rel))
    twice = db.execute(Distinct(Distinct(rel)))
    assert plain(once) == plain(twice)


@given(rows_t)
@settings(max_examples=100, deadline=None)
def test_distinct_matches_python_set(data):
    db = make_db(data)
    rel = Distinct(Project(Table("t"), (ProjectItem(Col("a")),)))
    values = [r["a"] for r in db.execute(rel)]
    assert sorted(values) == sorted(set(a for a, _ in data))
    # first-occurrence order preserved
    assert values == list(dict.fromkeys(a for a, _ in data))


@given(rows_t, rows_u)
@settings(max_examples=100, deadline=None)
def test_join_matches_nested_loop_reference(t_rows, u_rows):
    db = make_db(t_rows, u_rows)
    rel = Join(
        Table("t", "x"),
        Table("u", "y"),
        BinOp("=", Col("a", "x"), Col("k", "y")),
    )
    result = db.execute(rel)
    expected = [
        (a, b, k, v)
        for a, b in t_rows
        for k, v in u_rows
        if a == k
    ]
    got = [(r["x.a"], r["x.b"], r["y.k"], r["y.v"]) for r in result]
    assert got == expected


@given(rows_t, st.integers(0, 20))
@settings(max_examples=100, deadline=None)
def test_limit_bounds(data, n):
    db = make_db(data)
    result = db.execute(Limit(Table("t"), n))
    assert len(result) == min(n, len(data))


@given(rows_t)
@settings(max_examples=100, deadline=None)
def test_sort_is_permutation_and_ordered(data):
    db = make_db(data)
    result = db.execute(Sort(Table("t"), (SortKey(Col("a")),)))
    values = [r["a"] for r in result]
    assert values == sorted(a for a, _ in data)
    assert sorted(plain(result)) == sorted(plain(db.execute(Table("t"))))


@given(rows_t, threshold)
@settings(max_examples=100, deadline=None)
def test_selection_then_count_matches_python(data, x):
    from repro.algebra import AggCall, AggItem, Aggregate

    db = make_db(data)
    rel = Aggregate(
        Select(Table("t"), BinOp(">", Col("a"), Lit(x))),
        (),
        (AggItem(AggCall("count", None), "n"),),
    )
    assert db.execute(rel)[0]["n"] == sum(1 for a, _ in data if a > x)
