"""Unit tests for table statistics and cardinality estimation.

Covers statistics collection (row counts, NDV, min/max, NULL accounting,
equi-width histograms), the lazy-build/dirty-marking lifecycle shared with
the hash indexes, the statistics-epoch keying of the plan cache, the
``columnar_mode`` knob, and the rewrite-cost bridge
(``DeploymentProfile.with_observed`` and the estimator-upgraded
``AlternativeCostModel``).
"""

from __future__ import annotations

import pytest

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    Catalog,
    Col,
    Join,
    Lit,
    Select,
    Table,
)
from repro.db import (
    CardinalityEstimator,
    Database,
    EngineError,
    Histogram,
    TableStats,
)
from repro.db.stats import (
    HISTOGRAM_BUCKETS,
    build_sampled_table_stats,
    estimate_ndv,
)


def _make_db(rows: int = 200) -> Database:
    """``rows`` rows of t(id, grp, val, label): grp cycles 0..9, val = id,
    label cycles over four strings."""
    cat = Catalog()
    cat.define("t", ["id", "grp", "val", "label"], key=("id",))
    db = Database(cat)
    db.insert_many(
        "t",
        [
            {"id": i, "grp": i % 10, "val": float(i), "label": f"L{i % 4}"}
            for i in range(rows)
        ],
    )
    return db


class TestTableStats:
    def test_row_count_and_column_coverage(self):
        stats = _make_db(200).stats("t")
        assert isinstance(stats, TableStats)
        assert stats.row_count == 200
        assert set(stats.columns) == {"id", "grp", "val", "label"}

    def test_ndv_and_minmax(self):
        stats = _make_db(200).stats("t")
        grp = stats.column("grp")
        assert grp.ndv == 10
        assert grp.min_value == 0 and grp.max_value == 9
        val = stats.column("val")
        assert val.ndv == 200
        assert val.min_value == 0.0 and val.max_value == 199.0
        assert stats.column("label").ndv == 4

    def test_null_accounting(self):
        db = _make_db(10)
        db.insert("t", {"id": 100, "grp": None, "val": None, "label": None})
        grp = db.stats("t").column("grp")
        assert grp.row_count == 11
        assert grp.null_count == 1
        assert grp.ndv == 10  # NULLs are not distinct values

    def test_numeric_column_gets_histogram(self):
        hist = _make_db(200).stats("t").column("val").histogram
        assert hist is not None
        assert len(hist.counts) == HISTOGRAM_BUCKETS
        assert sum(hist.counts) == hist.total == 200

    def test_string_column_has_no_histogram(self):
        assert _make_db(50).stats("t").column("label").histogram is None

    def test_stats_cached_until_data_changes(self):
        db = _make_db(50)
        first = db.stats("t")
        assert db.stats("t") is first  # cached object, no rebuild
        db.insert("t", {"id": 999, "grp": 0, "val": 999.0, "label": "x"})
        second = db.stats("t")
        assert second is not first
        assert second.row_count == 51
        assert second.column("val").max_value == 999.0

    def test_clear_resets_stats(self):
        db = _make_db(50)
        assert db.stats("t").row_count == 50
        db.clear("t")
        stats = db.stats("t")
        assert stats.row_count == 0
        assert stats.column("val").ndv == 0
        assert stats.column("val").histogram is None

    def test_unknown_table_raises(self):
        with pytest.raises(EngineError):
            _make_db(1).stats("nope")

    def test_to_dict_shape(self):
        data = _make_db(10).stats("t").to_dict()
        assert data["table"] == "t"
        assert data["row_count"] == 10
        assert data["columns"]["grp"]["ndv"] == 10


class TestHistogram:
    def test_fraction_le_boundaries_and_monotonicity(self):
        hist = _make_db(200).stats("t").column("val").histogram
        assert hist.fraction_le(-1.0) == 0.0
        assert hist.fraction_le(199.0) == 1.0
        assert hist.fraction_le(10_000.0) == 1.0
        fractions = [hist.fraction_le(float(v)) for v in range(0, 200, 10)]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))

    def test_uniform_midpoint_is_about_half(self):
        hist = _make_db(200).stats("t").column("val").histogram
        assert 0.4 <= hist.fraction_le(100.0) <= 0.6

    def test_empty_histogram(self):
        assert Histogram(0.0, 0.0, (0,) * 4, 0).fraction_le(1.0) == 0.0


class TestCardinalityEstimator:
    def test_equality_uses_ndv(self):
        db = _make_db(200)
        est = CardinalityEstimator(db)
        # grp has 10 distinct values: σ[grp = 3] ≈ 200/10 rows.
        query = Select(Table("t"), BinOp("=", Col("grp"), Lit(3)))
        assert est.estimate(query) == pytest.approx(20.0, rel=0.01)
        assert est.selectivity(query.pred, "t") == pytest.approx(0.1, rel=0.01)

    def test_range_uses_histogram(self):
        est = CardinalityEstimator(_make_db(200))
        query = Select(Table("t"), BinOp("<", Col("val"), Lit(100.0)))
        # Uniform values 0..199: about half the rows fall below 100.
        assert 60 <= est.estimate(query) <= 140

    def test_out_of_range_literal_estimates_zero(self):
        est = CardinalityEstimator(_make_db(200))
        query = Select(Table("t"), BinOp("=", Col("val"), Lit(10_000.0)))
        assert est.estimate(query) == 0.0

    def test_no_predicate_is_full_table(self):
        est = CardinalityEstimator(_make_db(123))
        assert est.estimate(Table("t")) == 123.0
        assert est.selectivity(None, "t") == 1.0

    def test_grouped_aggregate_estimates_group_count(self):
        est = CardinalityEstimator(_make_db(200))
        query = Aggregate(
            Table("t"), (Col("grp"),), (AggItem(AggCall("count", None), "n"),)
        )
        assert est.estimate(query) == pytest.approx(10.0, rel=0.01)

    def test_global_aggregate_estimates_one_row(self):
        est = CardinalityEstimator(_make_db(200))
        query = Aggregate(Table("t"), (), (AggItem(AggCall("count", None), "n"),))
        assert est.estimate(query) == 1.0

    def test_equijoin_divides_by_max_ndv(self):
        est = CardinalityEstimator(_make_db(200))
        join = Join(
            Table("t", "a"),
            Table("t", "b"),
            BinOp("=", Col("grp", "a"), Col("grp", "b")),
        )
        # |L|·|R| / max(NDV) = 200·200/10; order of magnitude is the claim.
        estimate = est.estimate(join)
        assert 1_000 <= estimate <= 20_000

    def test_select_selectivity_needs_single_base_table(self):
        est = CardinalityEstimator(_make_db(50))
        over_table = Select(Table("t"), BinOp("=", Col("grp"), Lit(1)))
        assert est.select_selectivity(over_table) == pytest.approx(0.1, rel=0.01)
        over_join = Select(
            Join(Table("t", "a"), Table("t", "b"), None, "cross"),
            BinOp("=", Col("grp", "a"), Lit(1)),
        )
        assert est.select_selectivity(over_join) is None

    def test_degrades_on_unknown_tables(self):
        est = CardinalityEstimator(_make_db(10))
        assert est.table_rows("missing") == 0.0
        assert est.ndv("missing", "x") is None


class TestPlanCacheEpochs:
    QUERY = Select(Table("t"), BinOp("=", Col("grp"), Lit(3)))

    def test_plan_cached_within_epoch(self):
        db = _make_db(100)
        plan = db.plan(self.QUERY)
        hits = db.plan_cache_hits
        assert db.plan(self.QUERY) is plan
        assert db.plan_cache_hits == hits + 1

    def test_insert_forces_replan(self):
        db = _make_db(100)
        db.plan(self.QUERY)
        misses = db.plan_cache_misses
        db.insert("t", {"id": 1000, "grp": 3, "val": 1.0, "label": "x"})
        db.plan(self.QUERY)
        assert db.plan_cache_misses == misses + 1

    def test_create_index_forces_replan(self):
        db = _make_db(100)
        db.plan(self.QUERY)
        misses = db.plan_cache_misses
        db.create_index("t", "grp")
        db.plan(self.QUERY)
        assert db.plan_cache_misses == misses + 1

    def test_columnar_mode_change_forces_replan(self):
        db = _make_db(100)
        db.plan(self.QUERY)
        misses = db.plan_cache_misses
        db.columnar_mode = "off"
        db.plan(self.QUERY)
        assert db.plan_cache_misses == misses + 1

    def test_columnar_mode_reassign_same_value_keeps_cache(self):
        db = _make_db(100)
        db.plan(self.QUERY)
        hits = db.plan_cache_hits
        db.columnar_mode = "auto"  # unchanged: no invalidation
        db.plan(self.QUERY)
        assert db.plan_cache_hits == hits + 1

    def test_columnar_mode_validates(self):
        db = _make_db(1)
        with pytest.raises(EngineError):
            db.columnar_mode = "vectorized"
        assert db.columnar_mode == "auto"


def _wide_db(rows: int) -> Database:
    """t(id, grp, val): grp has 100 distinct values, val is all-distinct,
    and every 10th val is NULL — known ground truth for estimate checks."""
    cat = Catalog()
    cat.define("t", ["id", "grp", "val"], key=("id",))
    db = Database(cat)
    db.insert_many(
        "t",
        [
            {
                "id": i,
                "grp": i % 100,
                "val": None if i % 10 == 0 else float(i),
            }
            for i in range(rows)
        ],
    )
    return db


class TestEstimateNdv:
    def test_all_distinct_sample_estimates_population(self):
        # Every sampled value unique → the population is likely all-distinct.
        assert estimate_ndv(1000, 1000, 50_000) >= 25_000

    def test_constant_sample_estimates_one(self):
        assert estimate_ndv(1, 1000, 50_000) == pytest.approx(1.0, abs=1.0)

    def test_low_cardinality_recovered(self):
        # 100 true values: a 1000-row sample sees all of them, and the
        # estimator must not inflate far beyond what it saw.
        assert 100 <= estimate_ndv(100, 1000, 50_000) <= 200

    def test_degenerate_inputs(self):
        assert estimate_ndv(0, 0, 1000) == 0.0
        assert estimate_ndv(5, 5, 5) == 5.0

    def test_never_exceeds_population(self):
        assert estimate_ndv(999, 1000, 1200) <= 1200


class TestSampledStats:
    N = 20_000
    SAMPLE = 2_000

    def test_explicit_sample_marks_metadata(self):
        stats = _wide_db(self.N).stats("t", sample=self.SAMPLE)
        assert stats.sampled is True
        assert stats.sample_size == self.SAMPLE
        assert stats.row_count == self.N  # row count stays exact

    def test_sample_zero_forces_exact(self):
        stats = _wide_db(self.N).stats("t", sample=0)
        assert stats.sampled is False
        assert stats.column("grp").ndv == 100
        assert stats.column("val").null_count == self.N // 10

    def test_sampled_ndv_within_2x(self):
        db = _wide_db(self.N)
        exact = db.stats("t", sample=0)
        sampled = db.stats("t", sample=self.SAMPLE)
        for column in ("id", "grp", "val"):
            true_ndv = exact.column(column).ndv
            est = sampled.column(column).ndv
            assert true_ndv / 2 <= est <= true_ndv * 2, (column, est, true_ndv)

    def test_sampled_null_count_scaled(self):
        stats = _wide_db(self.N).stats("t", sample=self.SAMPLE)
        true_nulls = self.N // 10
        est = stats.column("val").null_count
        assert true_nulls / 2 <= est <= true_nulls * 2

    def test_sampling_is_deterministic(self):
        db = _wide_db(self.N)
        first = db.stats("t", sample=self.SAMPLE)
        second = db.stats("t", sample=self.SAMPLE)
        assert first is not second  # explicit builds are never cached
        assert first.to_dict() == second.to_dict()

    def test_sample_covering_table_degrades_to_exact(self):
        db = _wide_db(500)
        stats = db.stats("t", sample=10_000)
        assert stats.sampled is False
        assert stats.column("grp").ndv == 100

    def test_explicit_build_leaves_cache_alone(self):
        db = _wide_db(500)
        cached = db.stats("t")
        db.stats("t", sample=100)
        assert db.stats("t") is cached

    def test_auto_policy_samples_above_threshold(self, monkeypatch):
        monkeypatch.setattr("repro.db.stats.STATS_EXACT_MAX", 1_000)
        monkeypatch.setattr("repro.db.stats.STATS_SAMPLE_SIZE", 500)
        db = _wide_db(5_000)
        stats = db.stats("t")
        assert stats.sampled is True
        assert stats.sample_size == 500
        assert stats.row_count == 5_000

    def test_auto_policy_exact_below_threshold(self):
        stats = _wide_db(500).stats("t")
        assert stats.sampled is False

    def test_sampled_histogram_usable_for_ranges(self):
        db = _wide_db(self.N)
        monkey_stats = db.stats("t", sample=self.SAMPLE)
        hist = monkey_stats.column("id").histogram
        assert hist is not None
        # Uniform ids 0..N: the sampled histogram still puts ~half the
        # mass below the midpoint.
        assert 0.3 <= hist.fraction_le(self.N / 2) <= 0.7

    def test_to_dict_carries_sampling_metadata(self):
        data = _wide_db(self.N).stats("t", sample=self.SAMPLE).to_dict()
        assert data["sampled"] is True
        assert data["sample_size"] == self.SAMPLE

    def test_build_sampled_direct(self):
        rows = [{"id": i, "v": i % 7} for i in range(3_000)]
        stats = build_sampled_table_stats("x", rows, ["id", "v"], 300)
        assert stats.row_count == 3_000
        assert stats.sampled is True
        assert 3 <= stats.column("v").ndv <= 14


class TestRewriteCostBridge:
    def test_with_observed_reads_live_row_counts(self):
        from repro.rewrites.profile import LOCAL

        db = _make_db(137)
        profile = LOCAL.with_observed(db)
        assert profile.cardinality("t") == 137.0
        assert profile.cardinality("unknown") == LOCAL.default_table_rows

    def test_estimator_upgrades_selection_selectivity(self):
        from repro.rewrites.cost import AlternativeCostModel
        from repro.rewrites.profile import LOCAL

        db = _make_db(200)
        query = Select(Table("t"), BinOp("=", Col("grp"), Lit(3)))
        flat = AlternativeCostModel(LOCAL, database=db)
        assert flat.cardinality(query).rows == pytest.approx(
            200 * LOCAL.selectivity
        )
        observed = AlternativeCostModel(
            LOCAL, database=db, estimator=CardinalityEstimator(db)
        )
        assert observed.cardinality(query).rows == pytest.approx(20.0, rel=0.01)
