"""The precision layer's AST-level enabling transforms, plus span fidelity.

Covers the three transforms :mod:`repro.ir.preprocess` applies on SSA
facts (constant folding, dead-branch pruning, copy propagation with
cursor-chain normalisation), the soundness guard that refuses to
normalise a cursor-``while`` whose body uses the cursor as a value, and
the contract that every transform preserves source spans — diagnostics
produced after preprocessing must still point into the user's file, for
both the MiniJava and the Python frontends.
"""

from __future__ import annotations

from repro.frontends import get_frontend
from repro.ir.preprocess import preprocess_program
from repro.lang import (
    Assign,
    BoolLit,
    ForEach,
    If,
    IntLit,
    While,
    parse_program,
    unparse_program,
    walk_statements,
)
from repro.lint.engine import lint_preprocessed


def preprocessed(source: str, precision: bool = True):
    return preprocess_program(parse_program(source), precision=precision)


def stmts(program, kind, function="f"):
    return [
        s
        for s in walk_statements(program.function(function).body)
        if isinstance(s, kind)
    ]


class TestDeadBranchPruning:
    SOURCE = """
f() {
    debug = false;
    rows = executeQuery("from T as t");
    total = 0;
    for (t : rows) {
        if (debug) {
            logAudit(t);
        }
        total = total + t.getA();
    }
    return total;
}
"""

    def test_constant_false_guard_is_pruned(self):
        program = preprocessed(self.SOURCE)
        assert stmts(program, If) == []
        assert "logAudit" not in unparse_program(program)

    def test_precision_off_keeps_the_branch(self):
        program = preprocessed(self.SOURCE, precision=False)
        assert len(stmts(program, If)) == 1

    def test_runtime_guard_is_kept(self):
        program = preprocessed(
            """
f(p) {
    total = 0;
    if (p > 0) {
        total = 1;
    }
    return total;
}
"""
        )
        assert len(stmts(program, If)) == 1

    def test_live_else_arm_is_spliced_in(self):
        program = preprocessed(
            """
f() {
    flag = true;
    if (flag) {
        x = 1;
    } else {
        x = 2;
    }
    return x;
}
"""
        )
        assert stmts(program, If) == []
        values = [
            s.value.value
            for s in stmts(program, Assign)
            if s.target == "x" and isinstance(s.value, IntLit)
        ]
        assert values == [1]


class TestConstantFolding:
    def test_uses_become_literals_carrying_the_use_site_span(self):
        program = preprocessed(
            "f() {\n    a = 5;\n    b = a + 10;\n    return b;\n}"
        )
        folded = [
            s for s in stmts(program, Assign)
            if s.target == "b" and isinstance(s.value, IntLit)
        ]
        assert len(folded) == 1 and folded[0].value.value == 15
        assert folded[0].value.line == 3  # span of the use it replaced

    def test_boolean_guards_fold_before_lint_sees_them(self):
        program = preprocessed(
            "f() {\n    on = true;\n    off = !on;\n    return off;\n}"
        )
        values = [
            s.value.value
            for s in stmts(program, Assign)
            if s.target == "off" and isinstance(s.value, BoolLit)
        ]
        assert values == [False]


class TestCursorChains:
    def test_copy_chain_normalises_to_foreach(self):
        program = preprocessed(
            """
f() {
    q = executeQueryCursor("from T as t");
    rs = q;
    total = 0;
    while (rs.next()) {
        total = total + rs.getA();
    }
    return total;
}
"""
        )
        assert stmts(program, While) == []
        loops = stmts(program, ForEach)
        assert len(loops) == 1 and loops[0].var == "rs"

    def test_chain_is_refused_without_precision(self):
        program = preprocessed(
            """
f() {
    q = executeQueryCursor("from T as t");
    rs = q;
    while (rs.next()) {
        rs.getA();
    }
    return 0;
}
""",
            precision=False,
        )
        assert len(stmts(program, While)) == 1

    def test_direct_getter_only_body_still_normalises(self):
        program = preprocessed(
            """
f() {
    rs = executeQueryCursor("from T as t");
    total = 0;
    while (rs.next()) {
        total = total + rs.getA();
    }
    return total;
}
"""
        )
        assert stmts(program, While) == []
        assert len(stmts(program, ForEach)) == 1


class TestCursorUsedAsValue:
    """The soundness guard behind the ``preprocess-diverged`` fuzzer find:
    rewriting ``while (rs.next())`` to ``for (rs : ...)`` rebinds ``rs``
    to each *row*, so a body that observes the cursor itself must keep its
    ``while`` form."""

    def test_storing_the_cursor_blocks_normalisation(self):
        program = preprocessed(
            """
f() {
    v = new ArrayList();
    rs = executeQueryCursor("from T as t");
    while (rs.next()) {
        v.add(rs);
    }
    return v;
}
"""
        )
        assert len(stmts(program, While)) == 1
        assert stmts(program, ForEach) == []

    def test_passing_the_cursor_to_a_call_blocks_normalisation(self):
        program = preprocessed(
            """
f() {
    rs = executeQueryCursor("from T as t");
    while (rs.next()) {
        audit(rs);
    }
    return 0;
}
"""
        )
        assert len(stmts(program, While)) == 1

    def test_advancing_the_cursor_mid_body_blocks_normalisation(self):
        program = preprocessed(
            """
f() {
    rs = executeQueryCursor("from T as t");
    total = 0;
    while (rs.next()) {
        total = total + rs.getA();
        rs.next();
    }
    return total;
}
"""
        )
        assert len(stmts(program, While)) == 1

    def test_guard_also_applies_to_copy_chains(self):
        program = preprocessed(
            """
f() {
    q = executeQueryCursor("from T as t");
    rs = q;
    v = new ArrayList();
    while (rs.next()) {
        v.add(rs);
    }
    return v;
}
"""
        )
        assert len(stmts(program, While)) == 1


SPAN_SOURCES = {
    "minijava": """
f() {
    rows = executeQuery("from T as t");
    total = 0;
    for (t : rows) {
        executeUpdate("update t set a = 1");
        total = total + t.getA();
    }
    return total;
}
""",
    "python": (
        "def f(cur):\n"
        "    cur.execute(\"SELECT a FROM t\")\n"
        "    rows = cur.fetchall()\n"
        "    total = 0\n"
        "    for r in rows:\n"
        "        cur.execute(\"DELETE FROM audit\")\n"
        "        total = total + r.a\n"
        "    return total\n"
    ),
}


class TestSpanFidelity:
    """Every diagnostic computed on the *preprocessed* program must still
    carry a real span — SSA renaming, folding, and pruning all claim to
    preserve source positions, and this is where that claim is enforced
    for both frontends."""

    def run_lint(self, frontend_name: str):
        source = SPAN_SOURCES[frontend_name]
        frontend = get_frontend(frontend_name)
        raw = frontend.parse(source)
        program = preprocess_program(raw)
        return lint_preprocessed(program, raw, "f")

    def test_minijava_diagnostics_keep_spans_through_preprocessing(self):
        diagnostics = self.run_lint("minijava")
        assert diagnostics, "the update-in-loop must be diagnosed"
        assert all(not d.span.is_empty for d in diagnostics)

    def test_python_diagnostics_keep_spans_through_preprocessing(self):
        diagnostics = self.run_lint("python")
        assert diagnostics, "the update-in-loop must be diagnosed"
        assert all(not d.span.is_empty for d in diagnostics)
