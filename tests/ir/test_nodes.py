"""ee-DAG node and DagBuilder tests, including hash-consing and the
Section 4.2 canonicalisations."""

from repro.ir import (
    DagBuilder,
    EAttr,
    EBoundVar,
    EConst,
    EOp,
    EVar,
    bound_vars,
    contains_opaque,
    dag_size,
    free_bound_vars,
    free_vars,
    tree_size,
    OPAQUE,
)


class TestInterning:
    def test_equal_nodes_share_instance(self):
        dag = DagBuilder()
        a = dag.op("+", dag.var("x"), dag.const(1))
        b = dag.op("+", dag.var("x"), dag.const(1))
        assert a is b

    def test_different_nodes_differ(self):
        dag = DagBuilder()
        assert dag.const(1) is not dag.const(2)

    def test_hit_miss_counters(self):
        dag = DagBuilder()
        dag.const(1)
        dag.const(1)
        assert dag.hits >= 1 and dag.misses >= 1

    def test_interning_can_be_disabled(self):
        dag = DagBuilder(enable_interning=False)
        a = dag.op("+", EVar("x"), EConst(1))
        b = dag.op("+", EVar("x"), EConst(1))
        assert a is not b
        assert a == b  # structural equality still holds

    def test_shared_subexpression_counted_once(self):
        dag = DagBuilder()
        shared = dag.op("+", dag.var("x"), dag.const(1))
        root = dag.op("*", shared, shared)
        assert dag_size(root) == 4  # *, +, x, 1
        assert tree_size(root) == 7


class TestCanonicalisation:
    """`if (e OP v) v = e` → max/min (Section 4.2), booleans (Appendix B)."""

    def setup_method(self):
        self.dag = DagBuilder()
        self.v = self.dag.bound("v")
        self.e = self.dag.attr(self.dag.bound("t"), "x")

    def test_greater_becomes_max(self):
        cond = self.dag.op(">", self.e, self.v)
        node = self.dag.op("?", cond, self.e, self.v)
        assert node == EOp("max", (self.v, self.e))

    def test_geq_becomes_max(self):
        cond = self.dag.op(">=", self.e, self.v)
        node = self.dag.op("?", cond, self.e, self.v)
        assert node.op == "max"

    def test_less_becomes_min(self):
        cond = self.dag.op("<", self.e, self.v)
        node = self.dag.op("?", cond, self.e, self.v)
        assert node.op == "min"

    def test_swapped_comparison(self):
        # `if (v < e) v = e` is still a max.
        cond = self.dag.op("<", self.v, self.e)
        node = self.dag.op("?", cond, self.e, self.v)
        assert node.op == "max"

    def test_conditional_true_becomes_or(self):
        pred = self.dag.op(">", self.e, self.dag.const(0))
        node = self.dag.op("?", pred, self.dag.const(True), self.v)
        assert node == EOp("or", (self.v, pred))

    def test_conditional_false_becomes_and_not(self):
        pred = self.dag.op(">", self.e, self.dag.const(0))
        node = self.dag.op("?", pred, self.dag.const(False), self.v)
        assert node.op == "and"

    def test_unrelated_conditional_stays(self):
        pred = self.dag.op(">", self.e, self.dag.const(0))
        node = self.dag.op("?", pred, self.dag.const(1), self.dag.const(2))
        assert node.op == "?"


class TestTraversal:
    def test_free_vars(self):
        dag = DagBuilder()
        node = dag.op("+", dag.var("x"), dag.op("*", dag.var("y"), dag.bound("z")))
        assert free_vars(node) == {"x", "y"}

    def test_bound_vars(self):
        dag = DagBuilder()
        node = dag.op("+", dag.bound("v"), dag.attr(dag.bound("t"), "a"))
        assert bound_vars(node) == {"v", "t"}

    def test_free_bound_vars_respects_binders(self):
        dag = DagBuilder()
        inner = dag.loop(
            source=dag.var("q"),
            body=dag.op("+", dag.bound("total"), dag.attr(dag.bound("o"), "x")),
            init=dag.const(0),
            var="total",
            cursor="o",
        )
        outer_body = dag.op("tuple", dag.attr(dag.bound("c"), "id"), inner)
        free = free_bound_vars(outer_body)
        assert free == {"c"}  # total and o are captured by the inner loop

    def test_free_bound_vars_sees_init(self):
        dag = DagBuilder()
        # inner loop accumulating into the *outer* variable: init = ⟨v⟩.
        inner = dag.loop(
            source=dag.var("q2"),
            body=dag.op("append", dag.bound("v"), dag.attr(dag.bound("r"), "x")),
            init=dag.bound("v"),
            var="v",
            cursor="r",
        )
        assert "v" in free_bound_vars(inner)

    def test_contains_opaque(self):
        dag = DagBuilder()
        node = dag.op("+", dag.var("x"), OPAQUE)
        assert contains_opaque(node)
        assert not contains_opaque(dag.var("x"))

    def test_str_representations(self):
        dag = DagBuilder()
        assert str(dag.var("x")) == "x₀"
        assert "⟨t⟩" in str(dag.attr(dag.bound("t"), "p1"))
