"""Substitution tests for ee-DAG expressions."""

from repro.ir import (
    DagBuilder,
    EBoundVar,
    EConst,
    EOp,
    EVar,
    bind_vars,
    substitute,
    unbind_var,
)


def test_substitute_replaces_free_vars():
    dag = DagBuilder()
    node = dag.op("+", dag.var("x"), dag.var("y"))
    result = substitute(node, {"x": dag.const(1)}, dag)
    assert result == EOp("+", (EConst(1), EVar("y")))


def test_substitute_leaves_bound_vars():
    dag = DagBuilder()
    node = dag.op("+", dag.bound("x"), dag.var("x"))
    result = substitute(node, {"x": dag.const(1)}, dag)
    assert result == EOp("+", (EBoundVar("x"), EConst(1)))


def test_substitute_inside_query_params():
    dag = DagBuilder()
    from repro.sqlparse import parse_query

    query = dag.query(parse_query("select * from t where id = :p"), (("p", dag.var("uid")),))
    result = substitute(query, {"uid": dag.const(7)}, dag)
    assert dict(result.params)["p"] == EConst(7)


def test_substitute_inside_loop_init_and_body():
    dag = DagBuilder()
    loop = dag.loop(
        source=dag.var("q"),
        body=dag.op("+", dag.bound("s"), dag.var("delta")),
        init=dag.var("s"),
        var="s",
        cursor="t",
    )
    result = substitute(loop, {"s": dag.const(0), "delta": dag.const(5)}, dag)
    assert result.init == EConst(0)
    assert result.body == EOp("+", (EBoundVar("s"), EConst(5)))


def test_substitute_is_identity_when_nothing_matches():
    dag = DagBuilder()
    node = dag.op("+", dag.var("x"), dag.const(1))
    assert substitute(node, {"zz": dag.const(9)}, dag) is node


def test_bind_vars():
    dag = DagBuilder()
    node = dag.op("+", dag.var("s"), dag.attr(dag.var("t"), "x"))
    result = bind_vars(node, {"s", "t"}, dag)
    assert result == EOp(
        "+", (EBoundVar("s"), dag.attr(dag.bound("t"), "x"))
    )


def test_unbind_var():
    dag = DagBuilder()
    node = dag.op("+", dag.bound("v"), dag.const(1))
    result = unbind_var(node, "v", dag.const(10), dag)
    assert result == EOp("+", (EConst(10), EConst(1)))


def test_unbind_var_stops_at_binder():
    dag = DagBuilder()
    inner = dag.fold(
        func=dag.op("+", dag.bound("v"), dag.const(1)),
        init=dag.const(0),
        source=dag.var("q"),
        var="v",
        cursor="t",
    )
    result = unbind_var(inner, "v", dag.const(99), dag)
    # the fold binds its own v; the function body must be untouched
    assert result.func == EOp("+", (EBoundVar("v"), EConst(1)))


def test_substitution_memoizes_shared_nodes():
    dag = DagBuilder()
    shared = dag.op("+", dag.var("x"), dag.const(1))
    root = dag.op("*", shared, shared)
    result = substitute(root, {"x": dag.const(2)}, dag)
    assert result.operands[0] is result.operands[1]
