"""AST preprocessing tests (print rewriting, cursor-while, tail returns)."""

from repro.ir import OUT_VAR, preprocess_program
from repro.lang import (
    Assign,
    Break,
    ForEach,
    If,
    MethodCall,
    Return,
    While,
    parse_program,
    walk_statements,
)


def preprocess(source):
    return preprocess_program(parse_program(source))


class TestPrintRewriting:
    def test_print_becomes_out_append(self):
        program = preprocess('f() { print("x"); }')
        body = program.function("f").body.statements
        assert isinstance(body[0], Assign) and body[0].target == OUT_VAR
        call = body[1].expr
        assert isinstance(call, MethodCall)
        assert call.receiver.ident == OUT_VAR
        assert call.method == "add"

    def test_system_out_println_rewritten(self):
        program = preprocess('f() { System.out.println("x"); }')
        statements = list(walk_statements(program.function("f").body))
        assert any(
            isinstance(s, Assign) and s.target == OUT_VAR for s in statements
        ) or any(
            isinstance(getattr(s, "expr", None), MethodCall)
            and s.expr.receiver.ident == OUT_VAR
            for s in statements
            if hasattr(s, "expr")
        )

    def test_no_prints_no_out_var(self):
        program = preprocess("f() { x = 1; }")
        body = program.function("f").body.statements
        assert not any(
            isinstance(s, Assign) and s.target == OUT_VAR for s in body
        )

    def test_print_inside_loop_rewritten(self):
        program = preprocess('f() { for (t : q) { print(t); } }')
        loop = next(
            s for s in walk_statements(program.function("f").body)
            if isinstance(s, ForEach)
        )
        call = loop.body.statements[0].expr
        assert call.receiver.ident == OUT_VAR


class TestCursorWhile:
    def test_while_rs_next_becomes_foreach(self):
        source = """
        f() {
            rs = executeQuery("from T");
            while (rs.next()) { x = rs.getInt("a"); }
        }
        """
        program = preprocess(source)
        statements = program.function("f").body.statements
        assert any(isinstance(s, ForEach) for s in statements)
        assert not any(isinstance(s, While) for s in statements)

    def test_unrelated_while_untouched(self):
        program = preprocess("f(n) { while (n > 0) { n = n - 1; } }")
        statements = program.function("f").body.statements
        assert any(isinstance(s, While) for s in statements)

    def test_while_on_other_cursor_untouched(self):
        source = """
        f(other) {
            rs = executeQuery("from T");
            while (other.next()) { x = 1; }
        }
        """
        program = preprocess(source)
        statements = program.function("f").body.statements
        assert any(isinstance(s, While) for s in statements)


class TestTailReturns:
    def test_early_return_moved_to_else(self):
        source = """
        f(c) {
            if (c) { return 1; }
            x = 2;
            return x;
        }
        """
        program = preprocess(source)
        body = program.function("f").body.statements
        assert len(body) == 1
        branch = body[0]
        assert isinstance(branch, If)
        assert branch.else_body is not None
        assert isinstance(branch.else_body.statements[-1], Return)

    def test_unreachable_after_return_dropped(self):
        program = preprocess("f() { return 1; x = 2; }")
        body = program.function("f").body.statements
        assert len(body) == 1
        assert isinstance(body[0], Return)


class TestBooleanBreak:
    def test_boolean_break_removed(self):
        source = """
        f() {
            found = false;
            for (t : q) {
                if (t.getX() > 0) { found = true; break; }
            }
            return found;
        }
        """
        program = preprocess(source)
        statements = list(walk_statements(program.function("f").body))
        assert not any(isinstance(s, Break) for s in statements)

    def test_other_breaks_kept(self):
        source = """
        f() {
            for (t : q) {
                if (t.getX() > 0) { s = s + 1; break; }
            }
        }
        """
        program = preprocess(source)
        statements = list(walk_statements(program.function("f").body))
        assert any(isinstance(s, Break) for s in statements)


def test_preprocess_renumbers_statements():
    program = preprocess('f() { print("a"); print("b"); }')
    sids = [s.sid for s in walk_statements(program.function("f").body)]
    assert sids == sorted(sids)
    assert len(sids) == len(set(sids))


def test_preprocess_does_not_mutate_input():
    original = parse_program('f() { print("x"); }')
    before = len(original.function("f").body.statements)
    preprocess_program(original)
    assert len(original.function("f").body.statements) == before
