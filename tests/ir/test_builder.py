"""D-IR construction tests (paper Sections 3.2–3.3, Appendix D)."""

from repro.ir import (
    EAttr,
    EBoundVar,
    EConst,
    ELoop,
    EOp,
    EQuery,
    EScalarQuery,
    EVar,
    OPAQUE,
    RET_VAR,
    build_dir,
    contains_opaque,
    preprocess_program,
)
from repro.lang import parse_program


def ve_of(source, function="f", precision=True):
    program = preprocess_program(parse_program(source), precision=precision)
    ve, ctx = build_dir(program, function)
    return ve, ctx


class TestStraightLine:
    def test_constant_propagation(self):
        """Paper Figure 5: intermediate variables resolve to inputs.

        With the SSA precision layer (the default) SCCP folds the whole
        expression to a literal before the builder runs; with it off the
        builder's own value-map propagation still resolves the operands.
        """
        ve, _ = ve_of("f() { x = 5; y = 10; z = x + y; }")
        assert ve["z"] == EConst(15)
        ve, _ = ve_of("f() { x = 5; y = 10; z = x + y; }", precision=False)
        assert ve["z"] == EOp("+", (EConst(5), EConst(10)))

    def test_chained_assignments(self):
        ve, _ = ve_of("f() { x = 1; x = x + 1; x = x * 2; }")
        assert ve["x"] == EConst(4)
        ve, _ = ve_of("f() { x = 1; x = x + 1; x = x * 2; }", precision=False)
        assert ve["x"] == EOp("*", (EOp("+", (EConst(1), EConst(1))), EConst(2)))

    def test_unassigned_var_is_region_input(self):
        ve, _ = ve_of("f(a) { y = a + 1; }")
        assert ve["y"] == EOp("+", (EVar("a"), EConst(1)))

    def test_return_value(self):
        ve, _ = ve_of("f() { x = 2; return x * 3; }")
        assert ve[RET_VAR] == EConst(6)
        ve, _ = ve_of("f() { x = 2; return x * 3; }", precision=False)
        assert ve[RET_VAR] == EOp("*", (EConst(2), EConst(3)))

    def test_math_max(self):
        ve, _ = ve_of("f(a, b) { m = Math.max(a, b); }")
        assert ve["m"] == EOp("max", (EVar("a"), EVar("b")))

    def test_common_subexpression_shared(self):
        ve, ctx = ve_of("f(a) { x = a + 1; y = a + 1; }")
        assert ve["x"] is ve["y"]


class TestConditional:
    def test_conditional_merge(self):
        ve, _ = ve_of("f(c) { if (c) { x = 1; } else { x = 2; } }")
        node = ve["x"]
        assert node == EOp("?", (EVar("c"), EConst(1), EConst(2)))

    def test_conditional_without_else_uses_input(self):
        ve, _ = ve_of("f(c, x) { if (c) { x = 1; } }")
        assert ve["x"] == EOp("?", (EVar("c"), EConst(1), EVar("x")))

    def test_minmax_pattern_canonicalised(self):
        """Section 4.2: `if (e > v) v = e` becomes max."""
        ve, _ = ve_of("f(e, v) { if (e > v) { v = e; } }")
        assert ve["v"] == EOp("max", (EVar("v"), EVar("e")))

    def test_boolean_flag_becomes_or(self):
        ve, _ = ve_of("f(p, found) { if (p) { found = true; } }")
        assert ve["found"] == EOp("or", (EVar("found"), EVar("p")))


class TestQueries:
    def test_constant_query_text(self):
        ve, _ = ve_of('f() { q = executeQuery("from Board as b"); }')
        assert isinstance(ve["q"], EQuery)

    def test_literal_params_inlined(self):
        ve, _ = ve_of(
            'f() { r = 1; q = executeQuery("select * from board where rnd_id = :r"); }'
        )
        query = ve["q"]
        assert isinstance(query, EQuery)
        assert query.params == ()  # resolved to the literal 1
        assert "1" in str(query.rel)

    def test_variable_param_kept_symbolic(self):
        ve, _ = ve_of(
            'f(r) { q = executeQuery("select * from board where rnd_id = :r"); }'
        )
        query = ve["q"]
        assert dict(query.params)["r"] == EVar("r")

    def test_string_concat_query(self):
        ve, _ = ve_of(
            'f(uid) { q = executeQuery("select * from t where id = " + uid); }'
        )
        query = ve["q"]
        assert isinstance(query, EQuery)
        assert len(query.params) == 1

    def test_quoted_string_concat_strips_quotes(self):
        ve, _ = ve_of(
            "f(name) { q = executeQuery(\"select * from t where name = '\" + name + \"'\"); }"
        )
        query = ve["q"]
        assert isinstance(query, EQuery)
        assert len(query.params) == 1

    def test_execute_scalar(self):
        ve, _ = ve_of('f() { s = executeScalar("select max(p1) from board"); }')
        assert isinstance(ve["s"], EScalarQuery)

    def test_malformed_query_is_opaque(self):
        ve, _ = ve_of('f() { q = executeQuery("not really sql ]["); }')
        assert contains_opaque(ve["q"])


class TestLoops:
    def test_loop_node_created(self):
        ve, _ = ve_of(
            """
            f() {
                q = executeQuery("from T");
                s = 0;
                for (t : q) { s = s + t.getX(); }
            }
            """
        )
        node = ve["s"]
        assert isinstance(node, ELoop)
        assert node.var == "s"
        assert node.cursor == "t"
        assert node.init == EConst(0)
        assert isinstance(node.source, EQuery)

    def test_loop_body_uses_bound_vars(self):
        ve, _ = ve_of(
            'f() { q = executeQuery("from T"); s = 0; for (t : q) { s = s + t.getX(); } }'
        )
        body = ve["s"].body
        assert body == EOp(
            "+", (EBoundVar("s"), EAttr(EBoundVar("t"), "x"))
        )

    def test_getter_becomes_attribute(self):
        ve, _ = ve_of(
            'f() { q = executeQuery("from T"); for (t : q) { v = v + t.getRnd_id(); } }'
        )
        body = ve["v"].body
        assert EAttr(EBoundVar("t"), "rnd_id") in body.operands

    def test_collection_append(self):
        ve, _ = ve_of(
            """
            f() {
                q = executeQuery("from T");
                xs = new ArrayList();
                for (t : q) { xs.add(t.getX()); }
            }
            """
        )
        node = ve["xs"]
        assert isinstance(node, ELoop)
        assert node.body.op == "append"
        assert node.init == EOp("empty_list", ())

    def test_set_insert(self):
        ve, _ = ve_of(
            """
            f() {
                q = executeQuery("from T");
                xs = new HashSet();
                for (t : q) { xs.add(t.getX()); }
            }
            """
        )
        assert ve["xs"].body.op == "insert"

    def test_while_loop_is_opaque(self):
        ve, _ = ve_of("f(n) { x = 0; while (x < n) { x = x + 1; } }")
        assert contains_opaque(ve["x"])

    def test_db_write_in_loop_marks_updated(self):
        ve, _ = ve_of(
            """
            f() {
                q = executeQuery("from T");
                for (t : q) { executeUpdate("delete from U"); s = s + 1; }
            }
            """
        )
        assert "@db" in ve["s"].updated


class TestFunctionInlining:
    def test_value_inlining(self):
        ve, _ = ve_of(
            """
            double(x) { return x * 2; }
            f(a) { y = double(a + 1); }
            """
        )
        assert ve["y"] == EOp("*", (EOp("+", (EVar("a"), EConst(1))), EConst(2)))

    def test_inlining_with_conditional(self):
        ve, _ = ve_of(
            """
            pick(c) { if (c) { return 1; } return 2; }
            f(c) { y = pick(c); }
            """
        )
        assert ve["y"] == EOp("?", (EVar("c"), EConst(1), EConst(2)))

    def test_recursion_is_opaque(self):
        ve, _ = ve_of(
            """
            loop(x) { return loop(x); }
            f(a) { y = loop(a); }
            """
        )
        assert contains_opaque(ve["y"])

    def test_unknown_function_is_opaque(self):
        ve, _ = ve_of("f(a) { y = mystery(a); }")
        assert contains_opaque(ve["y"])

    def test_procedure_appending_output(self):
        ve, _ = ve_of(
            """
            show(x) { print(x); }
            f(a) { show(a); }
            """
        )
        from repro.ir import OUT_VAR

        assert OUT_VAR in ve
        node = ve[OUT_VAR]
        assert node.op == "append"


class TestUnsupportedConstructs:
    def test_custom_comparator_is_opaque(self):
        ve, _ = ve_of("f(a, b) { c = a.compareTo(b); }")
        assert contains_opaque(ve["c"])

    def test_setter_taints_receiver(self):
        ve, _ = ve_of("f(t) { t.setScore(1); }")
        assert ve["t"] == OPAQUE

    def test_map_put_is_representable_but_flagged(self):
        ve, _ = ve_of("f(k, v) { m = new HashMap(); m.put(k, v); }")
        assert ve["m"].op == "map_put"
