"""The lint/extractor cross-check wired into the differential oracle.

A program the lint layer calls unsound (EQ1xx) must never be silently
extracted; if the two layers ever disagree, the fuzzer files a
``lint-unsound`` verdict instead of trusting either side.
"""

import dataclasses

from repro import Catalog, STATUS_SUCCESS, optimize_program
from repro.difftest import FAILING_KINDS, KIND_LINT_UNSOUND
from repro.difftest.oracle import _check_lint_soundness
from repro.lint import Diagnostic, Severity, SourceSpan

CATALOG = Catalog.from_dict(
    {"project": {"columns": ["id", "name", "budget"], "key": ["id"]}}
)

CLEAN_SOURCE = """
f() {
    rs = executeQuery("from Project as p");
    total = 0;
    for (r : rs) { total = total + r.getBudget(); }
    return total;
}
"""

UNSOUND_SOURCE = """
f() {
    rs = executeQuery("from Project as p");
    total = 0;
    for (r : rs) { executeUpdate("update project set x = 1"); total = total + r.getBudget(); }
    return total;
}
"""


def test_lint_unsound_is_a_failing_kind():
    assert KIND_LINT_UNSOUND == "lint-unsound"
    assert KIND_LINT_UNSOUND in FAILING_KINDS


def test_blocked_program_never_reaches_success():
    """End-to-end: the gate turns the EQ101 program into a failure, so the
    cross-check has nothing to complain about."""
    report = optimize_program(UNSOUND_SOURCE, "f", CATALOG)
    assert report.variables["total"].status != STATUS_SUCCESS
    assert [d.code for d in report.diagnostics] == ["EQ101"]
    assert _check_lint_soundness(report) is None


def test_clean_success_passes_the_cross_check():
    report = optimize_program(CLEAN_SOURCE, "f", CATALOG)
    assert report.variables["total"].status == STATUS_SUCCESS
    assert _check_lint_soundness(report) is None


def test_simulated_regression_is_caught():
    """Force the disagreement the check exists for: a success variable whose
    loop carries a blocker (as if the gate had been skipped)."""
    report = optimize_program(CLEAN_SOURCE, "f", CATALOG)
    extraction = report.variables["total"]
    assert extraction.status == STATUS_SUCCESS
    blocker = Diagnostic(
        span=SourceSpan(5, 20),
        code="EQ101",
        severity=Severity.ERROR,
        message="database write inside a cursor loop",
        function="f",
        loop_sid=extraction.loop_sid,
    )
    tampered = dataclasses.replace(report, diagnostics=[blocker])
    message = _check_lint_soundness(tampered)
    assert message is not None
    assert "'total'" in message and "EQ101" in message


def test_variable_scoped_blocker_on_another_variable_is_not_a_regression():
    report = optimize_program(CLEAN_SOURCE, "f", CATALOG)
    extraction = report.variables["total"]
    scoped = Diagnostic(
        span=SourceSpan(5, 20),
        code="EQ103",
        severity=Severity.ERROR,
        message="entity 'r' is mutated",
        function="f",
        variable="r",
        loop_sid=extraction.loop_sid,
    )
    tampered = dataclasses.replace(report, diagnostics=[scoped])
    assert _check_lint_soundness(tampered) is None
