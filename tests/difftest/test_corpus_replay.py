"""Replay every corpus repro against the current pipeline.

Each file in ``tests/difftest/corpus/`` is a minimized, shrunk repro of a
bug the differential fuzzer once found, together with the verdict kind the
*fixed* system must produce (``expect``, normally ``ok``).  Replaying them
here makes every fuzzer find a permanent regression test: a reintroduced
bug flips the verdict back to a failing kind and the assert names the
original root-cause comment.
"""

from __future__ import annotations

import os

import pytest

from repro.difftest import FAILING_KINDS, corpus_files, replay_file

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

_FILES = corpus_files(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert _FILES, "corpus directory lost its repro files"


@pytest.mark.parametrize(
    "path", _FILES, ids=[os.path.splitext(os.path.basename(p))[0] for p in _FILES]
)
def test_corpus_entry_replays_clean(path):
    entry, verdict = replay_file(path)
    assert verdict.kind == entry.expect, (
        f"{entry.name}: expected verdict {entry.expect!r}, got {verdict.kind!r}"
        f" ({verdict.detail})\nroot cause on file: {entry.comment}"
    )
    assert verdict.kind not in FAILING_KINDS
