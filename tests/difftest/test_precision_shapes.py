"""The generator's precision-era shapes and the raw-vs-preprocessed check.

The fuzzer is the soundness net for the SSA precision layer, so it must
actually generate the shapes the layer transforms (copy chains, dead
branches, local aliases) — and the oracle must compare the program *as
parsed* against the preprocessed program the rest of the pipeline uses,
since preprocessing itself is otherwise never under differential test.
"""

from __future__ import annotations

from repro.difftest.generator import generate_case
from repro.difftest.oracle import (
    FAILING_KINDS,
    KIND_ENGINE_DIVERGENCE,
    KIND_PREPROCESS_DIVERGED,
    _check_preprocess_fidelity,
    run_case,
)

#: Enough cases to see every shape at its configured weight with margin.
WINDOW = 60


def window_cases(seed: int = 5):
    return [generate_case(seed, index) for index in range(WINDOW)]


class TestShapeCoverage:
    def test_copy_chain_shape_is_generated(self):
        assert any("= q0;" in c.source and "while (" in c.source for c in window_cases())

    def test_dead_branch_shape_is_generated(self):
        assert any("legacy" in c.source for c in window_cases())

    def test_local_alias_shape_is_generated(self):
        sources = [c.source for c in window_cases()]
        assert any("retain(q0," in s for s in sources)
        # The helper itself must ride along, or the callee is undefined.
        assert all("retain(c, n)" in s for s in sources if "retain(q0," in s)

    def test_every_window_case_passes_the_oracle(self):
        for case in window_cases():
            verdict = run_case(case)
            assert not verdict.failing, (
                f"case {case.case_id} failed: {verdict.kind}\n"
                f"{verdict.detail}\n{case.source}"
            )


class TestPreprocessFidelity:
    def test_verdict_kind_is_failing(self):
        assert KIND_PREPROCESS_DIVERGED == "preprocess-diverged"
        assert KIND_PREPROCESS_DIVERGED in FAILING_KINDS

    def faithful_case(self):
        # A case whose raw and preprocessed interpretations agree.
        return generate_case(5, 0)

    def test_faithful_case_reports_nothing(self):
        from repro.core import optimize_program
        from repro.db import Connection
        from repro.difftest.dbgen import build_database
        from repro.interp import Interpreter

        case = self.faithful_case()
        report = optimize_program(case.source, case.function, case.catalog())
        interp = Interpreter(report.original, Connection(build_database(case)))
        result = interp.run(case.function)
        assert _check_preprocess_fidelity(case, result, interp) is None

    def test_mismatched_return_value_is_diagnosed(self):
        from repro.db import Connection
        from repro.difftest.dbgen import build_database
        from repro.interp import Interpreter
        from repro.lang import parse_program

        case = self.faithful_case()
        # Hand the checker a deliberately wrong "preprocessed" result: it
        # must flag the divergence rather than trust the caller.
        interp = Interpreter(
            parse_program(case.source), Connection(build_database(case))
        )
        interp.run(case.function)
        verdict = _check_preprocess_fidelity(
            case, object(), interp
        )
        assert verdict is not None
        kind, detail = verdict
        assert kind in (KIND_PREPROCESS_DIVERGED, KIND_ENGINE_DIVERGENCE)
        assert kind == KIND_PREPROCESS_DIVERGED
        assert "return value" in detail
