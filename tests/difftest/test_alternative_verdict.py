"""The oracle's rewrite-space sweep and its ``alternative-diverged`` verdict.

``run_case`` extends Theorem 1 to the whole alternative space: after the
primary differential check passes, every non-identity alternative the
generator emits is executed and compared against the as-written run.  These
tests pin the wiring — the sweep actually runs on passing verdicts, a
non-equivalent alternative flips the verdict to the dedicated failing kind,
and generator crashes are classified as crashes, not swallowed.
"""

from __future__ import annotations

import pytest

import repro.rewrites
import repro.rewrites.verify
from repro.difftest.generator import generate_case
from repro.difftest.oracle import (
    FAILING_KINDS,
    KIND_ALTERNATIVE_DIVERGED,
    KIND_CRASH,
    KIND_ENGINE_DIVERGENCE,
    KIND_NO_REWRITE,
    KIND_OK,
    run_case,
)
from repro.rewrites.verify import AlternativeCheck

#: A case whose program yields at least one non-identity alternative
#: (seed 2 / case 2 — a plain accumulator loop that push-down rewrites).
SWEPT_CASE = (2, 2)


def test_alternative_diverged_is_a_failing_kind():
    assert KIND_ALTERNATIVE_DIVERGED == "alternative-diverged"
    assert KIND_ALTERNATIVE_DIVERGED in FAILING_KINDS


def test_passing_cases_sweep_the_space():
    """Across a window of generated cases, passing verdicts must report
    executed alternatives — the sweep is live, not dead wiring."""
    swept = 0
    for index in range(12):
        verdict = run_case(generate_case(2, index))
        if verdict.kind in (KIND_OK, KIND_NO_REWRITE):
            swept += verdict.alternatives_checked
            assert not verdict.failing
    assert swept >= 5


def test_diverging_alternative_fails_the_case(monkeypatch):
    case = generate_case(*SWEPT_CASE)
    assert run_case(case).kind == KIND_OK  # passes un-patched

    def fake_verify(sites, function, database_factory, args=(), profile=None):
        return [
            AlternativeCheck(
                loop_sid=3,
                kind="batched",
                equivalent=False,
                detail="return value: as-written=1 batched=2",
            )
        ]

    monkeypatch.setattr(
        repro.rewrites.verify, "verify_alternatives", fake_verify
    )
    verdict = run_case(case)
    assert verdict.kind == KIND_ALTERNATIVE_DIVERGED
    assert verdict.failing
    assert "batched alternative for loop@3" in verdict.detail
    assert "as-written=1 batched=2" in verdict.detail


def test_engine_divergence_in_alternative_keeps_its_kind(monkeypatch):
    """A planner/reference disagreement inside an alternative run is an
    engine bug, not a generator bug — the verdict must say so."""
    def fake_verify(sites, function, database_factory, args=(), profile=None):
        return [
            AlternativeCheck(
                loop_sid=3,
                kind="pushdown",
                equivalent=False,
                detail="planned vs reference engines disagree",
                engine_divergence=True,
            )
        ]

    monkeypatch.setattr(
        repro.rewrites.verify, "verify_alternatives", fake_verify
    )
    verdict = run_case(generate_case(*SWEPT_CASE))
    assert verdict.kind == KIND_ENGINE_DIVERGENCE


def test_generator_crash_is_classified(monkeypatch):
    def boom(report, catalog, dialect="repro"):
        raise RuntimeError("generator exploded")

    monkeypatch.setattr(repro.rewrites, "generate_alternatives", boom)
    verdict = run_case(generate_case(*SWEPT_CASE))
    assert verdict.kind == KIND_CRASH
    assert "alternative generation raised" in verdict.detail
    assert "generator exploded" in verdict.detail


def test_equivalent_alternatives_keep_the_passing_kind(monkeypatch):
    """An all-equivalent sweep must leave the primary verdict untouched
    while still counting the checks it ran."""
    verdict = run_case(generate_case(*SWEPT_CASE))
    assert verdict.kind == KIND_OK
    assert verdict.alternatives_checked >= 1
