"""The differential fuzzer's own tests: determinism, smoke, shrinking.

The smoke run doubles as the tier-1 gate on the fuzzer: a bounded number
of random cases must complete with zero failing verdicts.  It is sized to
stay well under a minute; the CI workflow additionally runs a larger
budgeted sweep (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.difftest import (
    FAILING_KINDS,
    KIND_DIVERGENCE,
    KIND_OK,
    Verdict,
    case_from_dict,
    case_to_dict,
    generate_case,
    run_case,
    run_difftest,
    shrink,
)


class TestDeterminism:
    def test_same_seed_same_cases(self):
        """Case (s, i) is a pure function of the pair: identical sources,
        schemas, and instances on regeneration."""
        for index in (0, 7, 41):
            a = generate_case(3, index)
            b = generate_case(3, index)
            assert a.source == b.source
            assert a.rows == b.rows
            assert [t.name for t in a.tables] == [t.name for t in b.tables]
            assert a.notnull == b.notnull

    def test_different_seeds_differ(self):
        sources = {generate_case(s, 0).source for s in range(8)}
        assert len(sources) > 1

    def test_case_stream_independent_of_iteration_count(self):
        """Running 10 iters then asking for case 9 again gives the same
        case — --budget-s can truncate a run without changing content."""
        before = generate_case(5, 9).source
        run_difftest(seed=5, iters=10, do_shrink=False)
        assert generate_case(5, 9).source == before

    def test_verdicts_reproducible(self):
        first = run_difftest(seed=11, iters=30, do_shrink=False)
        second = run_difftest(seed=11, iters=30, do_shrink=False)
        assert first.verdicts == second.verdicts
        assert first.failures == second.failures


class TestSmoke:
    def test_bounded_smoke_run_is_clean(self):
        """Tier-1 gate: 60 random cases, zero failing verdicts."""
        stats = run_difftest(seed=0, iters=60, do_shrink=False)
        assert stats.iterations == 60
        assert stats.failures == 0, "\n".join(
            f"{f.verdict.kind}: {f.verdict.detail}" for f in stats.findings
        )
        # The run must actually exercise the rewriter, not just no-rewrite.
        assert stats.verdicts.get(KIND_OK, 0) > 0

    def test_budget_stops_early(self):
        stats = run_difftest(seed=0, iters=10_000, budget_s=0.0, do_shrink=False)
        assert stats.iterations < 10_000

    def test_generated_programs_parse_and_run(self):
        """The original program of every generated case must be executable
        (a generator that crashes the interpreter fuzzes nothing)."""
        for index in range(25):
            verdict = run_case(generate_case(2, index))
            assert verdict.kind not in (
                "original-error",
                "crash",
            ), verdict.detail


class TestCorpusSerialization:
    def test_case_round_trips_through_dict(self):
        case = generate_case(1, 4)
        restored = case_from_dict(case_to_dict(case))
        assert restored.source == case.source
        assert restored.rows == case.rows
        assert restored.notnull == case.notnull
        assert [dataclasses.astuple(t) for t in restored.tables] == [
            dataclasses.astuple(t) for t in case.tables
        ]
        assert run_case(restored).kind == run_case(case).kind


class TestShrinker:
    def _divergence_oracle(self, trigger_column: str = "qty"):
        """A fake oracle: 'diverges' iff any row has qty > 50.  Lets the
        shrinker be tested deterministically without a real bug."""

        def oracle(case) -> Verdict:
            for rows in case.rows.values():
                for row in rows:
                    value = row.get(trigger_column)
                    if value is not None and value > 50:
                        return Verdict(kind=KIND_DIVERGENCE, detail="fake")
            return Verdict(kind=KIND_OK)

        return oracle

    def _case_with_qty(self, values):
        case = generate_case(0, 3)  # 20 rows: enough for ddmin to bite
        case = dataclasses.replace(
            case,
            rows={
                table: [
                    {**row, "qty": values[i % len(values)]}
                    for i, row in enumerate(rows)
                ]
                for table, rows in case.rows.items()
            },
        )
        return case

    def test_rows_minimized_to_single_trigger(self):
        case = self._case_with_qty([1, 2, 99, 3, 4, 5])
        oracle = self._divergence_oracle()
        verdict = oracle(case)
        assert verdict.kind == KIND_DIVERGENCE
        result = shrink(case, verdict, oracle=oracle)
        remaining = sum(len(r) for r in result.case.rows.values())
        triggers = [
            row
            for rows in result.case.rows.values()
            for row in rows
            if (row.get("qty") or 0) > 50
        ]
        assert triggers, "shrinker dropped the triggering row"
        assert remaining <= max(1, len(triggers))
        assert result.verdict.kind == KIND_DIVERGENCE

    def test_verdict_kind_preserved(self):
        case = self._case_with_qty([99, 99, 99])
        oracle = self._divergence_oracle()
        result = shrink(case, oracle(case), oracle=oracle)
        assert oracle(result.case).kind == KIND_DIVERGENCE

    def test_shrink_respects_budget(self):
        case = self._case_with_qty([1, 99] * 10)
        oracle = self._divergence_oracle()
        result = shrink(case, oracle(case), oracle=oracle, max_runs=5)
        assert result.runs <= 5

    def test_program_shrinking_deletes_statements(self):
        """With an oracle that only looks at the data, every statement is
        deletable — the minimized program should be (near) empty."""
        case = self._case_with_qty([99])
        oracle = self._divergence_oracle()
        result = shrink(case, oracle(case), oracle=oracle, max_runs=2000)
        assert result.removed_statements > 0
        assert len(result.case.source) < len(case.source)


class TestFailingKinds:
    def test_ok_and_no_rewrite_are_not_failures(self):
        assert KIND_OK not in FAILING_KINDS
        assert "no-rewrite" not in FAILING_KINDS

    def test_divergence_is_a_failure(self):
        assert KIND_DIVERGENCE in FAILING_KINDS
