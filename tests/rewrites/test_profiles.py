"""DeploymentProfile construction, validation, registry, and options wiring."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import DeploymentProfile, ExtractOptions, get_profile, register_profile
from repro.rewrites.profile import LOCAL, PROFILES, WAN


class TestBuiltins:
    def test_builtin_names(self):
        assert set(PROFILES) >= {"local", "wan"}
        assert PROFILES["local"] is LOCAL
        assert PROFILES["wan"] is WAN

    def test_wan_is_chattier_than_local(self):
        """The two built-ins must actually disagree on the decisive axis."""
        assert WAN.round_trip_ms > 10 * LOCAL.round_trip_ms
        assert WAN.bytes_per_ms < LOCAL.bytes_per_ms

    def test_get_profile_by_name_and_passthrough(self):
        assert get_profile("wan") is WAN
        assert get_profile(LOCAL) is LOCAL

    def test_get_profile_unknown_name(self):
        with pytest.raises(ValueError, match="unknown deployment profile"):
            get_profile("datacentre")

    def test_register_profile(self):
        custom = replace(LOCAL, name="test-registered", round_trip_ms=5.0)
        try:
            register_profile(custom)
            assert get_profile("test-registered") is custom
        finally:
            PROFILES.pop("test-registered", None)


class TestValidation:
    def test_needs_a_name(self):
        with pytest.raises(ValueError, match="needs a name"):
            DeploymentProfile(name="")

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="negative/zero"):
            DeploymentProfile(name="bad", round_trip_ms=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError, match="negative/zero"):
            DeploymentProfile(name="bad", bytes_per_ms=0.0)

    @pytest.mark.parametrize("selectivity", [0.0, -0.5, 1.5])
    def test_rejects_out_of_range_selectivity(self, selectivity):
        with pytest.raises(ValueError, match="selectivity"):
            DeploymentProfile(name="bad", selectivity=selectivity)

    def test_zero_latency_is_allowed(self):
        assert DeploymentProfile(name="colocated", round_trip_ms=0.0)


class TestCardinalities:
    def test_default_and_override(self):
        profile = LOCAL.with_tables({"orders": 100.0})
        assert profile.cardinality("orders") == 100.0
        assert profile.cardinality("ORDERS") == 100.0  # case-insensitive
        assert profile.cardinality("unknown") == profile.default_table_rows

    def test_with_tables_does_not_mutate(self):
        LOCAL.with_tables({"orders": 7.0})
        assert LOCAL.cardinality("orders") == LOCAL.default_table_rows


class TestSerialization:
    def test_round_trip(self):
        profile = replace(
            WAN, name="edge", table_rows=(("orders", 50.0), ("tiers", 10.0))
        )
        data = profile.to_dict()
        assert data["table_rows"] == {"orders": 50.0, "tiers": 10.0}
        assert DeploymentProfile.from_dict(data) == profile

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown profile field"):
            DeploymentProfile.from_dict({"name": "x", "latency": 3})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            DeploymentProfile.from_dict(["local"])

    def test_cost_parameters_mirror_profile(self):
        params = WAN.cost_parameters()
        assert params.round_trip_ms == WAN.round_trip_ms
        assert params.bytes_per_ms == WAN.bytes_per_ms
        assert params.per_query_overhead_ms == WAN.per_query_overhead_ms


class TestOptionsWiring:
    def test_options_accept_builtin_profile(self):
        options = ExtractOptions(profile="wan")
        assert options.profile == "wan"
        assert options.to_dict()["profile"] == "wan"

    def test_options_reject_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown deployment profile"):
            ExtractOptions(profile="nope")

    def test_profile_changes_cache_identity(self):
        """Distinct profiles must produce distinct option dicts, or the scan
        cache would serve a plan costed under the wrong environment."""
        assert (
            ExtractOptions(profile="local").to_dict()
            != ExtractOptions(profile="wan").to_dict()
        )
        assert ExtractOptions().to_dict()["profile"] is None
