"""Shared fixtures for the rewrite-space tests: the examples corpus."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import Catalog, extract_sql
from repro.lang import parse_program

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "minijava"


def corpus_functions():
    """Every (path, source, function-def) in the examples corpus."""
    entries = []
    for path in sorted(EXAMPLES.glob("*.mj")):
        source = path.read_text()
        program = parse_program(source)
        for fn in program.functions:
            entries.append((path, source, fn))
    return entries


@pytest.fixture(scope="session")
def examples_catalog() -> Catalog:
    return Catalog.from_json_file(str(EXAMPLES / "schema.json"))


@pytest.fixture(scope="session")
def corpus_reports(examples_catalog):
    """(file name, function def, extraction report) for the whole corpus."""
    reports = []
    for path, source, fn in corpus_functions():
        report = extract_sql(source, fn.name, examples_catalog)
        reports.append((path.name, fn, report))
    return reports
