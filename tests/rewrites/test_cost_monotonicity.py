"""Property test: selection is monotone in network round-trip latency.

The cost model keeps ``round_trip_ms`` strictly linear in the profile's
latency, with the alternative's round-trip count as the slope and every
other component latency-independent.  Two consequences are pinned here
over ≥100 seeded synthetic sites:

* for fixed cardinalities, raising the latency never makes a chattier
  alternative (more round trips) *cheaper relative to* push-down — the
  cost gap to push-down is non-decreasing in latency;
* the selected winner's round-trip count never increases as latency
  grows (the winner walks down the lower envelope of lines sorted by
  slope).
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.algebra import BinOp, Col, Lit, Project, Select, Table
from repro.rewrites import AlternativeCostModel, select_alternative
from repro.rewrites.alternatives import (
    KIND_AS_WRITTEN,
    KIND_BATCHED,
    KIND_HYBRID,
    KIND_PREFETCH,
    KIND_PUSHDOWN,
    Alternative,
    InnerLookup,
    Site,
)
from repro.rewrites.profile import LOCAL

#: Latencies to sweep, strictly increasing (ms per round trip).
LATENCIES = (0.0, 0.05, 0.35, 2.0, 10.0, 40.0, 200.0)

SITE_COUNT = 120

_TABLES = ("orders", "tiers", "events", "players")


def _profile(rtt: float, table_rows: dict[str, float]):
    return replace(
        LOCAL,
        name=f"sweep-{rtt}",
        round_trip_ms=rtt,
        table_rows=tuple(sorted(table_rows.items())),
    )


def _point_lookup(table: str) -> Project:
    return Project(
        Select(Table(table), BinOp("=", Col("k"), Lit(1))),
        (Col("v"),),
    )


def _synthetic_site(rng: random.Random, index: int) -> tuple[Site, dict]:
    """A random site with a random (but well-formed) rewrite space.

    Costing never looks at the alternative's program, only at its kind and
    extracted relations, so the programs can be omitted.
    """
    outer_table = rng.choice(_TABLES)
    outer_rel = rng.choice(
        [
            Table(outer_table),
            Select(Table(outer_table), BinOp(">", Col("v"), Lit(2))),
            None,  # cost model falls back to default_table_rows
        ]
    )
    lookup_count = rng.randint(0, 2)
    lookups = [
        InnerLookup(
            assign_sid=10 + i,
            target=f"v{i}",
            param=f"p{i}",
            key_getter="getK",
            table=rng.choice(_TABLES),
            key_column="k",
            value_column="v",
            rel=_point_lookup(rng.choice(_TABLES)),
        )
        for i in range(lookup_count)
    ]
    residual = rng.randint(0, 2)

    alternatives = [
        Alternative(
            kind=KIND_AS_WRITTEN, program=None, description="", identity=True
        ),
        Alternative(
            kind=KIND_PUSHDOWN,
            program=None,
            description="",
            extracted_rels=[
                _point_lookup(rng.choice(_TABLES))
                for _ in range(rng.randint(1, 3))
            ],
        ),
    ]
    if lookups:
        alternatives.append(
            Alternative(kind=KIND_BATCHED, program=None, description="")
        )
        alternatives.append(
            Alternative(kind=KIND_PREFETCH, program=None, description="")
        )
    if rng.random() < 0.4:
        alternatives.append(
            Alternative(
                kind=KIND_HYBRID,
                program=None,
                description="",
                extracted_rels=[_point_lookup(rng.choice(_TABLES))],
            )
        )

    site = Site(
        function=f"site{index}",
        loop_sid=1,
        variables=["acc"],
        outer_rel=outer_rel,
        inner_lookups=lookups,
        residual_inner_queries=residual,
        alternatives=alternatives,
    )
    table_rows = {t: float(rng.choice([5, 40, 300, 2000, 20000])) for t in _TABLES}
    return site, table_rows


def _breakdowns(site: Site, table_rows: dict, rtt: float):
    model = AlternativeCostModel(_profile(rtt, table_rows))
    return {alt.kind: model.breakdown(site, alt) for alt in site.alternatives}


def test_gap_to_pushdown_never_shrinks_with_latency():
    rng = random.Random(20260808)
    sites = [_synthetic_site(rng, i) for i in range(SITE_COUNT)]
    assert len(sites) >= 100

    for site, table_rows in sites:
        sweeps = [_breakdowns(site, table_rows, rtt) for rtt in LATENCIES]
        push_trips = sweeps[0][KIND_PUSHDOWN].round_trips
        for kind in sweeps[0]:
            if sweeps[0][kind].round_trips < push_trips:
                continue  # only chattier-than-pushdown alternatives
            gaps = [
                sweep[kind].total_ms - sweep[KIND_PUSHDOWN].total_ms
                for sweep in sweeps
            ]
            for lo, hi in zip(gaps, gaps[1:]):
                assert hi >= lo - 1e-9, (
                    f"{site.function}: {kind} got relatively cheaper than "
                    f"pushdown as latency rose: gaps {gaps}"
                )


def test_round_trip_counts_are_latency_invariant():
    """The slope of each cost line is the round-trip count; it must not
    itself depend on the latency being swept."""
    rng = random.Random(77)
    for index in range(20):
        site, table_rows = _synthetic_site(rng, index)
        sweeps = [_breakdowns(site, table_rows, rtt) for rtt in LATENCIES]
        for kind in sweeps[0]:
            trips = {sweep[kind].round_trips for sweep in sweeps}
            assert len(trips) == 1, (kind, trips)


def test_winner_round_trips_never_increase_with_latency():
    rng = random.Random(424242)
    flips = 0
    for index in range(SITE_COUNT):
        site, table_rows = _synthetic_site(rng, index)
        winner_trips = []
        winner_kinds = []
        for rtt in LATENCIES:
            model = AlternativeCostModel(_profile(rtt, table_rows))
            choice = select_alternative(site, model)
            winner_trips.append(choice.chosen.cost.round_trips)
            winner_kinds.append(choice.chosen.kind)
        for lo, hi in zip(winner_trips, winner_trips[1:]):
            assert hi <= lo + 1e-9, (
                f"site {index}: winner got chattier as latency rose: "
                f"{list(zip(LATENCIES, winner_kinds, winner_trips))}"
            )
        if len(set(winner_kinds)) > 1:
            flips += 1
    # The sweep must actually exercise selection: many sites flip winners
    # somewhere along the latency axis, or the property is vacuous.
    assert flips >= 10, f"only {flips} site(s) ever changed winner"
