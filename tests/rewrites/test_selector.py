"""Per-site winner selection: profile sensitivity, explain text, wiring."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import ExtractOptions, extract_sql, plan_rewrites
from repro.rewrites import AlternativeCostModel, select_alternative
from repro.rewrites.alternatives import Alternative, Site
from repro.rewrites.profile import LOCAL

from .conftest import EXAMPLES


@pytest.fixture(scope="module")
def order_stats_report(examples_catalog):
    source = (EXAMPLES / "stats.mj").read_text()
    return extract_sql(source, "orderStats", examples_catalog)


class TestProfileFlip:
    def test_local_picks_pushdown(self, order_stats_report, examples_catalog):
        plan = plan_rewrites(order_stats_report, examples_catalog, "local")
        assert [c.chosen.kind for c in plan.choices] == ["pushdown"]

    def test_wan_picks_as_written(self, order_stats_report, examples_catalog):
        """The acceptance flip: three aggregate round trips at 40 ms each
        cost more than one full-table fetch, so WAN keeps the loop."""
        plan = plan_rewrites(order_stats_report, examples_catalog, "wan")
        assert [c.chosen.kind for c in plan.choices] == ["as-written"]

    def test_why_reflects_the_cost_delta(self, order_stats_report,
                                         examples_catalog):
        for profile in ("local", "wan"):
            plan = plan_rewrites(order_stats_report, examples_catalog, profile)
            choice = plan.choices[0]
            chosen_ms = choice.chosen.cost.total_ms
            runner_up = choice.costed[1]
            delta = runner_up.cost.total_ms - chosen_ms
            assert f"{chosen_ms:.3f} ms" in choice.why
            assert f"+{delta:.3f} ms" in choice.why
            assert runner_up.kind in choice.why

    def test_costed_space_is_sorted(self, order_stats_report, examples_catalog):
        plan = plan_rewrites(order_stats_report, examples_catalog, "local")
        totals = [c.cost.total_ms for c in plan.choices[0].costed]
        assert totals == sorted(totals)


class TestTieBreak:
    def test_degenerate_costs_prefer_declarative_kinds(self):
        """With every cost zeroed out, the alternatives tie at 0 ms and the
        deterministic preference (push work to the database) must decide."""
        free = replace(
            LOCAL,
            name="free",
            round_trip_ms=0.0,
            per_result_row_ms=0.0,
            per_scanned_row_ms=0.0,
            per_query_overhead_ms=0.0,
            client_row_ms=0.0,
            row_bytes=0.0,
        )
        site = Site(
            function="f",
            loop_sid=1,
            variables=["total"],
            outer_rel=None,
            inner_lookups=[],
            residual_inner_queries=0,
            alternatives=[
                Alternative(kind="as-written", program=None, description="",
                            identity=True),
                Alternative(kind="pushdown", program=None, description=""),
            ],
        )
        choice = select_alternative(site, AlternativeCostModel(free))
        assert {c.cost.total_ms for c in choice.costed} == {0.0}
        assert choice.chosen.kind == "pushdown"
        assert "only alternative" not in choice.why


class TestReportWiring:
    def test_profile_option_attaches_plan(self, examples_catalog):
        source = (EXAMPLES / "stats.mj").read_text()
        report = extract_sql(
            source,
            "orderStats",
            examples_catalog,
            options=ExtractOptions(profile="wan"),
        )
        assert report.rewrite_plan is not None
        assert report.rewrite_plan.profile.name == "wan"

        data = report.to_dict()
        assert data["profile"] == "wan"
        sites = data["rewrites"]["sites"]
        assert len(sites) == 1
        assert sites[0]["chosen"] == "as-written"
        kinds = [alt["kind"] for alt in sites[0]["alternatives"]]
        assert set(kinds) == {"as-written", "pushdown"}
        for alt in sites[0]["alternatives"]:
            cost = alt["cost_ms"]
            assert cost["total_ms"] == pytest.approx(
                cost["round_trip_ms"] + cost["transfer_ms"]
                + cost["server_ms"] + cost["client_ms"],
                abs=1e-3,
            )

        # Every variable at the site carries the same choice summary.
        for extraction in report.variables.values():
            assert extraction.rewrite is not None
            assert extraction.rewrite["chosen"] == "as-written"
            assert extraction.to_dict()["rewrite"]["chosen"] == "as-written"

    def test_no_profile_means_no_plan(self, order_stats_report):
        assert order_stats_report.rewrite_plan is None
        data = order_stats_report.to_dict()
        assert data["profile"] is None
        assert data["rewrites"] is None

    def test_choice_for(self, order_stats_report, examples_catalog):
        plan = plan_rewrites(order_stats_report, examples_catalog, "local")
        loop_sid = plan.choices[0].site.loop_sid
        assert plan.choice_for(loop_sid) is plan.choices[0]
        assert plan.choice_for(-123) is None
