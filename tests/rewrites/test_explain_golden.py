"""Golden-file tests pinning the ``--explain-rewrites`` renderings.

The justification text and the ``--json`` report shape are review
surfaces: any change to the cost formulas or the explain format shows up
as a readable diff against ``tests/rewrites/golden/``.  Regenerate after
an intentional change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/rewrites/test_explain_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.__main__ import main

from .conftest import EXAMPLES

GOLDEN = Path(__file__).resolve().parent / "golden"

EXTRACT_ARGS = [
    "extract",
    str(EXAMPLES / "stats.mj"),
    "-f",
    "orderStats",
    "--schema",
    str(EXAMPLES / "schema.json"),
]


def _check(path: Path, actual: str):
    if os.environ.get("REGEN_GOLDEN"):
        path.write_text(actual)
        pytest.skip(f"regenerated {path.name}")
    expected = path.read_text()
    assert actual == expected, (
        f"{path.name} drifted; regenerate with REGEN_GOLDEN=1 if intentional"
    )


@pytest.mark.parametrize("profile", ["local", "wan"])
def test_explain_text_golden(profile, capsys):
    code = main(EXTRACT_ARGS + ["--profile", profile, "--explain-rewrites"])
    assert code == 0
    lines = [
        line
        for line in capsys.readouterr().out.splitlines()
        if not line.startswith("time:")
    ]
    _check(
        GOLDEN / f"orderstats_{profile}_explain.txt", "\n".join(lines) + "\n"
    )


def test_explain_json_golden(capsys):
    code = main(EXTRACT_ARGS + ["--profile", "wan", "--json"])
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    data.pop("extraction_time_ms", None)
    _check(
        GOLDEN / "orderstats_wan_report.json",
        json.dumps(data, indent=2) + "\n",
    )


def test_explain_without_profile_defaults_to_local(capsys):
    """``--explain-rewrites`` alone must imply the local profile."""
    code = main(EXTRACT_ARGS + ["--explain-rewrites"])
    assert code == 0
    out = capsys.readouterr().out
    assert "under profile 'local'" in out


def test_unknown_profile_exits_with_message(capsys):
    with pytest.raises(SystemExit, match="unknown deployment profile"):
        main(EXTRACT_ARGS + ["--profile", "moonbase"])
