"""Structural properties of the generated rewrite space over the corpus."""

from __future__ import annotations

import pytest

from repro import generate_alternatives
from repro.core import STATUS_SUCCESS
from repro.lang import parse_program, unparse_program


def _sites_by_function(corpus_reports, examples_catalog):
    sites = {}
    for file_name, fn, report in corpus_reports:
        for site in generate_alternatives(report, examples_catalog):
            sites[(file_name, fn.name, site.loop_sid)] = site
    return sites


@pytest.fixture(scope="module")
def corpus_sites(corpus_reports, examples_catalog):
    return _sites_by_function(corpus_reports, examples_catalog)


def _site_for(corpus_sites, function):
    matches = [s for (_, fn, _), s in corpus_sites.items() if fn == function]
    assert len(matches) == 1, f"expected one site for {function}, got {len(matches)}"
    return matches[0]


class TestSpaceShape:
    def test_every_site_has_at_least_two_alternatives(self, corpus_sites):
        """Acceptance: >=2 alternatives per site wherever a site exists at
        all (the as-written baseline plus at least one rewrite)."""
        assert corpus_sites, "corpus produced no extraction sites"
        for key, site in corpus_sites.items():
            assert len(site.alternatives) >= 2, (
                f"site {key} has only {site.kinds}"
            )

    def test_as_written_baseline_everywhere(self, corpus_sites):
        for key, site in corpus_sites.items():
            baseline = site.alternative("as-written")
            assert baseline is not None, f"site {key} lacks the baseline"
            assert baseline.identity
            assert not baseline.extracted_rels

    def test_exactly_one_identity_member(self, corpus_sites):
        for site in corpus_sites.values():
            assert sum(1 for a in site.alternatives if a.identity) == 1

    def test_every_alternative_reparses(self, corpus_sites):
        """Alternatives are complete programs: unparse → parse must close."""
        for site in corpus_sites.values():
            for alternative in site.alternatives:
                reparsed = parse_program(alternative.source())
                assert [f.name for f in reparsed.functions] == [
                    f.name for f in alternative.program.functions
                ]

    def test_successful_extractions_offer_extraction(
        self, corpus_reports, corpus_sites
    ):
        """A site with any successful variable gets an extraction-based
        member: full push-down when everything extracted, hybrid when a
        residual variable keeps part of the loop alive."""
        for file_name, fn, report in corpus_reports:
            loop_vars = {
                v.loop_sid
                for v in report.variables.values()
                if v.status == STATUS_SUCCESS and v.loop_sid >= 0
            }
            for loop_sid in loop_vars:
                site = corpus_sites[(file_name, fn.name, loop_sid)]
                statuses = {
                    report.variables[name].status for name in site.variables
                }
                expected = (
                    "pushdown" if statuses == {STATUS_SUCCESS} else "hybrid"
                )
                assert expected in site.kinds, (
                    f"{fn.name} loop@{loop_sid}: {site.kinds}"
                )


class TestKnownSites:
    def test_order_stats_pushes_three_aggregates(self, corpus_sites):
        site = _site_for(corpus_sites, "orderStats")
        pushdown = site.alternative("pushdown")
        assert pushdown is not None
        assert len(pushdown.extracted_rels) == 3
        assert sorted(site.variables) == ["count", "maxAmount", "total"]

    def test_customer_spend_gets_batched_and_prefetch(self, corpus_sites):
        site = _site_for(corpus_sites, "customerSpend")
        assert {"as-written", "batched", "prefetch"} <= set(site.kinds)
        assert len(site.inner_lookups) == 1
        lookup = site.inner_lookups[0]
        assert lookup.table.lower() == "tiers"
        assert lookup.key_column == "custId"
        assert lookup.value_column == "amount"

        batched = site.alternative("batched").source()
        assert "registerTempTable" in batched
        assert "__batch" in batched
        assert "HashMap" in batched

        prefetch = site.alternative("prefetch").source()
        assert "registerTempTable" not in prefetch
        assert "HashMap" in prefetch

    def test_mixed_reduction_gets_hybrid(self, corpus_sites):
        site = _site_for(corpus_sites, "mixedReduction")
        hybrid = site.alternative("hybrid")
        assert hybrid is not None
        assert len(hybrid.extracted_rels) == 1  # only `total` extracted
        # The residual loop must survive in the hybrid program: the
        # non-associative accumulator still needs its imperative fold.
        assert "acc" in hybrid.source()

    def test_as_written_program_is_the_original(self, corpus_reports,
                                                examples_catalog):
        for _, fn, report in corpus_reports:
            for site in generate_alternatives(report, examples_catalog):
                baseline = site.alternative("as-written")
                assert unparse_program(baseline.program) == unparse_program(
                    report.original
                )
