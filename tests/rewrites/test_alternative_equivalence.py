"""Differential verification of the whole rewrite space over the corpus.

Every alternative generated for every extraction site in
``examples/minijava`` is executed against a fresh seeded instance under
``engine="both"`` (planned *and* reference engine on every query) and must
reproduce the as-written program's return value, printed output, and
``__out__`` stream.  This is the acceptance gate "zero
``alternative-diverged`` verdicts" run as a deterministic suite rather
than a fuzz; no divergence has been found while building the generator,
so there is no regression corpus entry to replay here — the difftest
corpus (``tests/difftest/corpus``) is where one would land.
"""

from __future__ import annotations

import pytest

from repro import generate_alternatives, verify_alternatives
from repro.rewrites import seed_database

#: Seeds for the generated instances — two so a single lucky data set
#: cannot mask an inequivalence.
SEEDS = (11, 97)


@pytest.fixture(scope="module")
def corpus_checks(corpus_reports, examples_catalog):
    """Every AlternativeCheck for every site, seed, and corpus function."""
    checks = []
    for file_name, fn, report in corpus_reports:
        sites = generate_alternatives(report, examples_catalog)
        if not sites:
            continue
        args = (1,) * len(fn.params)
        for seed in SEEDS:
            for check in verify_alternatives(
                sites,
                fn.name,
                lambda: seed_database(examples_catalog, seed=seed),
                args=args,
            ):
                checks.append((file_name, fn.name, seed, check))
    return checks


def test_corpus_produces_checks(corpus_checks):
    """The sweep must actually exercise the space — an empty result would
    make the equivalence assertions below pass vacuously."""
    kinds = {check.kind for _, _, _, check in corpus_checks}
    assert len(corpus_checks) >= 20
    assert {"pushdown", "batched", "prefetch", "hybrid"} <= kinds


def test_every_alternative_is_equivalent(corpus_checks):
    diverged = [
        f"{file_name}::{function} seed={seed} {check.kind} "
        f"loop@{check.loop_sid}: {check.detail}"
        for file_name, function, seed, check in corpus_checks
        if not check.equivalent
    ]
    assert not diverged, "alternative(s) diverged:\n" + "\n".join(diverged)


def test_no_alternative_run_is_free(corpus_checks):
    """Sanity on the instrumentation: every verified run touched the
    database at least once and reported simulated time."""
    for file_name, function, seed, check in corpus_checks:
        assert check.round_trips >= 1, (file_name, function, check.kind)
        assert check.simulated_time_ms > 0.0


def test_round_trip_ordering_on_lookup_site(corpus_reports, examples_catalog):
    """customerSpend: prefetch must issue fewer round trips than batched,
    and both far fewer than the N+1 as-written loop."""
    for _, fn, report in corpus_reports:
        if fn.name != "customerSpend":
            continue
        sites = generate_alternatives(report, examples_catalog)
        checks = {
            check.kind: check
            for check in verify_alternatives(
                sites,
                fn.name,
                lambda: seed_database(examples_catalog, seed=SEEDS[0]),
            )
        }
        assert checks["prefetch"].round_trips < checks["batched"].round_trips
        rows = len(seed_database(examples_catalog, seed=SEEDS[0]).rows("customers"))
        assert checks["batched"].round_trips < 1 + rows
        return
    pytest.fail("customerSpend not found in the corpus")
