"""The precision-recovery corpus: blocked without the SSA layer, extracted
with it, equivalent under ``engine="both"`` differential verification.

A fast-scale mirror of ``benchmarks/bench_precision.py`` — every sample's
contract is enforced on each test run, the bench pins the headline count
in ``BENCH_precision.json`` for CI.
"""

from __future__ import annotations

import pytest

from repro import ExtractOptions, optimize_program
from repro.db import Connection
from repro.interp import Interpreter
from repro.lang import parse_program
from repro.lint import lint_program
from repro.workloads import (
    PRECISION_SAMPLES,
    precision_catalog,
    precision_database,
)

SCALE = 12
SEED = 7


@pytest.fixture(scope="module")
def catalog():
    return precision_catalog()


@pytest.mark.parametrize("sample", PRECISION_SAMPLES, ids=lambda s: s.name)
class TestRecovery:
    def test_baseline_refuses_with_the_expected_blockers(self, sample, catalog):
        report = optimize_program(
            sample.source,
            sample.function,
            catalog,
            options=ExtractOptions(precision=False),
        )
        assert report.status != "success"
        assert not [e.sql for e in report.variables.values() if e.sql]
        blockers = sorted(
            {
                d.code
                for d in lint_program(
                    parse_program(sample.source), precision=False
                ).diagnostics
                if d.is_blocker
            }
        )
        assert blockers == sorted(sample.blocked_without)

    def test_precision_extracts_and_is_equivalent(self, sample, catalog):
        report = optimize_program(
            sample.source,
            sample.function,
            catalog,
            options=ExtractOptions(precision=True),
        )
        assert report.status == "success"
        assert [e.sql for e in report.variables.values() if e.sql]

        db = precision_database(scale=SCALE, seed=SEED, catalog=catalog)
        db.default_engine = "both"  # cross-check planner vs reference engine
        original = Interpreter(report.original, Connection(db)).run(
            sample.function
        )
        rewritten = Interpreter(report.rewritten, Connection(db)).run(
            sample.function
        )
        assert original == rewritten


def test_corpus_has_at_least_five_recovery_samples():
    # The acceptance floor: >= 5 loops that only the precision layer
    # extracts.  Growing the corpus is fine; shrinking it is a regression.
    assert len(PRECISION_SAMPLES) >= 5


def test_sample_names_are_unique():
    names = [s.name for s in PRECISION_SAMPLES]
    assert len(names) == len(set(names))
