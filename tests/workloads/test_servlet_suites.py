"""Experiment 3 servlet-suite tests (RuBiS / RuBBoS / AcadPortal)."""

import pytest

from repro.core import optimize_program
from repro.db import Connection
from repro.interp import Interpreter
from repro.workloads import (
    ACADPORTAL_SERVLETS,
    RUBBOS_SERVLETS,
    RUBIS_SERVLETS,
    acadportal_catalog,
    acadportal_database,
    rubbos_catalog,
    rubbos_database,
    rubis_catalog,
    rubis_database,
    servlet_extracted,
)


class TestSuiteSizes:
    def test_rubis_has_17_servlets(self):
        assert len(RUBIS_SERVLETS) == 17

    def test_rubbos_has_16_servlets(self):
        assert len(RUBBOS_SERVLETS) == 16

    def test_acadportal_has_79_servlets(self):
        assert len(ACADPORTAL_SERVLETS) == 79

    def test_acadportal_expected_split(self):
        extractable = sum(1 for s in ACADPORTAL_SERVLETS if s.expected_extractable)
        assert extractable == 58

    def test_names_unique(self):
        for suite in (RUBIS_SERVLETS, RUBBOS_SERVLETS, ACADPORTAL_SERVLETS):
            names = [s.name for s in suite]
            assert len(names) == len(set(names))


class TestExtractionFractions:
    def _count(self, servlets, catalog):
        return sum(
            servlet_extracted(
                optimize_program(s.source, s.function, catalog)
            )
            for s in servlets
        )

    def test_rubis_full_extraction(self):
        assert self._count(RUBIS_SERVLETS, rubis_catalog()) == 17

    def test_rubbos_full_extraction(self):
        assert self._count(RUBBOS_SERVLETS, rubbos_catalog()) == 16

    def test_acadportal_58_of_79(self):
        assert self._count(ACADPORTAL_SERVLETS, acadportal_catalog()) == 58

    def test_per_servlet_expectation(self):
        catalog = acadportal_catalog()
        for servlet in ACADPORTAL_SERVLETS:
            report = optimize_program(servlet.source, servlet.function, catalog)
            assert servlet_extracted(report) == servlet.expected_extractable, servlet.name


class TestServletEquivalence:
    """Rewritten servlets print exactly what the originals print."""

    @pytest.mark.parametrize("servlet", RUBIS_SERVLETS[:8], ids=lambda s: s.name)
    def test_rubis_output_preserved(self, servlet):
        catalog = rubis_catalog()
        db = rubis_database(scale=30, catalog=catalog)
        report = optimize_program(servlet.source, servlet.function, catalog)
        assert report.rewritten is not None
        c1, c2 = Connection(db), Connection(db)
        i1 = Interpreter(report.original, c1)
        i1.run(servlet.function)
        i2 = Interpreter(report.rewritten, c2)
        i2.run(servlet.function)
        assert i1.last_out == i2.last_out

    @pytest.mark.parametrize("servlet", RUBBOS_SERVLETS[:6], ids=lambda s: s.name)
    def test_rubbos_output_preserved(self, servlet):
        catalog = rubbos_catalog()
        db = rubbos_database(scale=30, catalog=catalog)
        report = optimize_program(servlet.source, servlet.function, catalog)
        c1, c2 = Connection(db), Connection(db)
        i1 = Interpreter(report.original, c1)
        i1.run(servlet.function)
        i2 = Interpreter(report.rewritten, c2)
        i2.run(servlet.function)
        assert i1.last_out == i2.last_out

    def test_acadportal_join_servlet(self):
        catalog = acadportal_catalog()
        db = acadportal_database(scale=20, catalog=catalog)
        servlet = next(s for s in ACADPORTAL_SERVLETS if s.name == "StudentGrades")
        report = optimize_program(servlet.source, servlet.function, catalog)
        c1, c2 = Connection(db), Connection(db)
        i1 = Interpreter(report.original, c1)
        i1.run(servlet.function)
        i2 = Interpreter(report.rewritten, c2)
        i2.run(servlet.function)
        assert i1.last_out == i2.last_out
        assert c2.stats.queries_executed < c1.stats.queries_executed
