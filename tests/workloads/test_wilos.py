"""Table 1 reproduction tests: every sample's disposition must match."""

import pytest

from repro.core import extract_sql
from repro.db import Connection
from repro.interp import Interpreter
from repro.workloads import (
    EXPECT_CAPABLE,
    EXPECT_FAILED,
    EXPECT_SUCCESS,
    SAMPLE_30_SIMPLIFIED,
    WILOS_SAMPLES,
    expected_counts,
    sample,
    wilos_catalog,
    wilos_database,
)

_CATALOG = wilos_catalog()


class TestTable1Dispositions:
    @pytest.mark.parametrize("wilos_sample", WILOS_SAMPLES, ids=lambda s: f"{s.number:02d}-{s.file}")
    def test_status_matches_paper(self, wilos_sample):
        report = extract_sql(wilos_sample.source, wilos_sample.function, _CATALOG)
        assert report.status == wilos_sample.expected

    def test_totals(self):
        counts = expected_counts()
        assert counts == {
            EXPECT_SUCCESS: 17,
            EXPECT_CAPABLE: 7,
            EXPECT_FAILED: 9,
        }

    def test_qbs_reference_totals(self):
        from repro.baselines import qbs_success_count

        assert qbs_success_count() == 21

    def test_every_sample_parses(self):
        from repro.lang import parse_program

        for wilos_sample in WILOS_SAMPLES:
            program = parse_program(wilos_sample.source)
            assert program.function(wilos_sample.function)


class TestSuccessfulSamplesExecute:
    """Each rewritten success sample must be runtime-equivalent."""

    _ARGS = {
        "getChecklists": (1,),
        "hasTemplate": (1,),
        "checkLogin": ("login1", "pw1"),
        "isActiveUser": ("login2",),
        "allPhasesDone": (3,),
    }

    @pytest.mark.parametrize(
        "wilos_sample",
        [s for s in WILOS_SAMPLES if s.expected == EXPECT_SUCCESS],
        ids=lambda s: f"{s.number:02d}-{s.function}",
    )
    def test_equivalence(self, wilos_sample):
        from repro.core import optimize_program

        report = optimize_program(wilos_sample.source, wilos_sample.function, _CATALOG)
        assert report.rewritten is not None, "success sample must be rewritten"
        db = wilos_database(scale=40, catalog=_CATALOG)
        args = self._ARGS.get(wilos_sample.function, ())
        c1, c2 = Connection(db), Connection(db)
        r1 = Interpreter(report.original, c1).run(wilos_sample.function, *args)
        r2 = Interpreter(report.rewritten, c2).run(wilos_sample.function, *args)
        if isinstance(r1, list):
            assert list(map(str, r1)) == list(map(str, r2))
        elif isinstance(r1, set):
            assert set(map(str, r1)) == set(map(str, r2))
        else:
            assert r1 == r2
        assert c2.stats.queries_executed <= c1.stats.queries_executed


def test_sample_30_simplified_joins(database=None):
    """Experiment 6's variant of #30 must extract a join."""
    from repro.core import extract_sql

    report = extract_sql(SAMPLE_30_SIMPLIFIED, "userRoleReport", _CATALOG)
    assert report.status == EXPECT_SUCCESS
    assert "JOIN" in (report.variables["result"].sql or "")


def test_sample_accessor():
    assert sample(6).line == 297
    assert sample(1).number == 1


def test_database_generator_is_deterministic():
    db1 = wilos_database(scale=20, seed=3)
    db2 = wilos_database(scale=20, seed=3)
    assert db1.rows("project") == db2.rows("project")
    assert db1.rows("wilosuser") == db2.rows("wilosuser")
