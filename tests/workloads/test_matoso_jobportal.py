"""Matoso (Figure 2) and JobPortal (Figure 12) workload tests."""

from repro.core import optimize_program
from repro.db import Connection
from repro.interp import Interpreter
from repro.workloads import (
    FIND_MAX_SCORE,
    FIND_MAX_SCORE_WITH_PLAYER,
    JOB_REPORT,
    jobportal_catalog,
    jobportal_database,
    matoso_catalog,
    matoso_database,
)


class TestMatoso:
    def test_findmaxscore_extracts(self):
        catalog = matoso_catalog()
        report = optimize_program(FIND_MAX_SCORE, "findMaxScore", catalog)
        assert report.status == "success"
        assert "GREATEST" in report.variables["scoreMax"].sql

    def test_findmaxscore_equivalence(self):
        catalog = matoso_catalog()
        db = matoso_database(rows=200, catalog=catalog)
        report = optimize_program(FIND_MAX_SCORE, "findMaxScore", catalog)
        c1, c2 = Connection(db), Connection(db)
        r1 = Interpreter(report.original, c1).run("findMaxScore")
        r2 = Interpreter(report.rewritten, c2).run("findMaxScore")
        assert r1 == r2
        assert c2.stats.rows_transferred == 1

    def test_dependent_aggregation_variant(self):
        """Appendix B: score + the board that achieved it."""
        catalog = matoso_catalog()
        db = matoso_database(rows=100, catalog=catalog)
        report = optimize_program(
            FIND_MAX_SCORE_WITH_PLAYER, "findMaxScoreWithPlayer", catalog
        )
        assert report.variables["scoreMax"].ok
        assert report.variables["bestBoard"].ok
        c1, c2 = Connection(db), Connection(db)
        r1 = Interpreter(report.original, c1).run("findMaxScoreWithPlayer")
        r2 = Interpreter(report.rewritten, c2).run("findMaxScoreWithPlayer")
        assert r1 == r2

    def test_data_generator_round_distribution(self):
        db = matoso_database(rows=40, rounds=4)
        rounds = {row["rnd_id"] for row in db.rows("board")}
        assert rounds == {1, 2, 3, 4}


class TestJobPortal:
    def test_consolidation_merges_four_queries(self):
        catalog = jobportal_catalog()
        report = optimize_program(JOB_REPORT, "report", catalog)
        assert report.consolidations
        assert report.consolidations[0].queries_merged == 5  # outer + 4 inner

    def test_consolidated_sql_shape(self):
        catalog = jobportal_catalog()
        report = optimize_program(JOB_REPORT, "report", catalog)
        sql = report.consolidations[0].sql
        assert sql.count("OUTER APPLY") == 4
        assert "applnMode = 'online'" in sql

    def test_report_output_preserved(self):
        catalog = jobportal_catalog()
        db = jobportal_database(applicants=50, catalog=catalog)
        report = optimize_program(JOB_REPORT, "report", catalog)
        c1, c2 = Connection(db), Connection(db)
        i1 = Interpreter(report.original, c1)
        i1.run("report", 7)
        i2 = Interpreter(report.rewritten, c2)
        i2.run("report", 7)
        assert i1.last_out == i2.last_out
        assert c1.stats.queries_executed > 100
        assert c2.stats.queries_executed == 1

    def test_conditional_query_only_for_online(self):
        catalog = jobportal_catalog()
        db = jobportal_database(applicants=30, catalog=catalog)
        report = optimize_program(JOB_REPORT, "report", catalog)
        conn = Connection(db)
        interp = Interpreter(report.rewritten, conn)
        interp.run("report", 7)
        online = sum(
            1 for row in db.rows("applicants") if row["applnMode"] == "online"
        )
        # 3 unconditional prints per applicant + 1 per online applicant
        assert len(interp.last_out) == 3 * len(db.rows("applicants")) + online
