"""Seeded-random monotonicity properties of the cost model (Appendix C).

The AND-OR search in :mod:`repro.cost.volcano` is only sound if the
underlying estimates behave like a plausible optimizer's: restricting a
query can never make it look *bigger*.  These properties are checked over
randomly generated operator trees — no hypothesis dependency, failures
reproduce by seed.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    Col,
    Distinct,
    Limit,
    Lit,
    Project,
    ProjectItem,
    RelExpr,
    Select,
    Sort,
    SortKey,
    Table,
)
from repro.cost import CostModel
from repro.sqlparse import combine_conjunctive, parse_query

_TABLES = ["orders", "players", "visits", "reviews"]
_COLUMNS = ["id", "rank", "qty", "score"]


def _random_pred(rng: random.Random) -> BinOp:
    op = rng.choice([">", "<", ">=", "<=", "=", "!="])
    return BinOp(op, Col(rng.choice(_COLUMNS)), Lit(rng.randint(-10, 50)))


def _random_tree(rng: random.Random, depth: int = 0) -> RelExpr:
    """A random operator tree rooted at a base table."""
    rel: RelExpr = Table(rng.choice(_TABLES))
    for _ in range(rng.randint(0, 3 - depth if depth < 3 else 0)):
        roll = rng.random()
        if roll < 0.4:
            rel = Select(rel, _random_pred(rng))
        elif roll < 0.55:
            rel = Distinct(rel)
        elif roll < 0.7:
            rel = Sort(rel, (SortKey(Col(rng.choice(_COLUMNS))),))
        elif roll < 0.85:
            rel = Limit(rel, rng.randint(1, 40))
        else:
            cols = rng.sample(_COLUMNS, rng.randint(1, 3))
            rel = Project(rel, tuple(ProjectItem(Col(c)) for c in cols))
    return rel


class TestCardinalityMonotonicity:
    @pytest.mark.parametrize("seed", range(6))
    def test_selection_never_increases_cardinality(self, seed):
        """card(σ_p(Q)) ≤ card(Q) for any tree Q and predicate p."""
        rng = random.Random(seed)
        model = CostModel()
        for _ in range(100):
            tree = _random_tree(rng)
            base = model.cardinality(tree).rows
            restricted = model.cardinality(Select(tree, _random_pred(rng))).rows
            assert restricted <= base

    @pytest.mark.parametrize("seed", range(6))
    def test_conjunct_pushed_into_parsed_query(self, seed):
        """Same property through the SQL front end: adding one more
        conjunct via combine_conjunctive never increases the estimate."""
        rng = random.Random(100 + seed)
        model = CostModel()
        for _ in range(50):
            table = rng.choice(_TABLES)
            query = parse_query(
                f"select * from {table} where {rng.choice(_COLUMNS)} > {rng.randint(0, 30)}"
            )
            tightened = combine_conjunctive(query, _random_pred(rng))
            assert model.cardinality(tightened).rows <= model.cardinality(query).rows

    @pytest.mark.parametrize("seed", range(4))
    def test_limit_never_increases_cardinality(self, seed):
        rng = random.Random(200 + seed)
        model = CostModel()
        for _ in range(60):
            tree = _random_tree(rng)
            n = rng.randint(1, 50)
            assert model.cardinality(Limit(tree, n)).rows <= model.cardinality(tree).rows
            assert model.cardinality(Limit(tree, n)).rows <= n

    @pytest.mark.parametrize("seed", range(4))
    def test_distinct_and_sort_shape(self, seed):
        """δ never increases cardinality; τ preserves it exactly."""
        rng = random.Random(300 + seed)
        model = CostModel()
        for _ in range(60):
            tree = _random_tree(rng)
            base = model.cardinality(tree).rows
            assert model.cardinality(Distinct(tree)).rows <= base
            sort = Sort(tree, (SortKey(Col(rng.choice(_COLUMNS))),))
            assert model.cardinality(sort).rows == base

    @pytest.mark.parametrize("seed", range(4))
    def test_scalar_aggregate_is_one_row(self, seed):
        rng = random.Random(400 + seed)
        model = CostModel()
        for _ in range(40):
            tree = _random_tree(rng)
            agg = Aggregate(tree, (), (AggItem(AggCall("count", None), "agg"),))
            assert model.cardinality(agg).rows == 1.0


class TestCostMonotonicity:
    @pytest.mark.parametrize("seed", range(6))
    def test_selection_never_increases_query_cost(self, seed):
        """The same scan with a smaller result can't cost more: cost(σ_p(Q))
        ≤ cost(Q).  (Scanned rows are identical; only transfer shrinks.)"""
        rng = random.Random(500 + seed)
        model = CostModel()
        for _ in range(100):
            tree = _random_tree(rng)
            base = model.query_cost_ms(tree)
            restricted = model.query_cost_ms(Select(tree, _random_pred(rng)))
            assert restricted <= base + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_cost_bounded_below_by_round_trip(self, seed):
        rng = random.Random(600 + seed)
        model = CostModel()
        for _ in range(60):
            tree = _random_tree(rng)
            assert model.query_cost_ms(tree) >= model.cost.round_trip_ms

    def test_per_row_queries_scale_linearly(self):
        model = CostModel()
        inner = parse_query("select * from orders where id = 1")
        one = model.per_row_queries_cost_ms(1.0, inner)
        ten = model.per_row_queries_cost_ms(10.0, inner)
        assert abs(ten - 10.0 * one) < 1e-9
