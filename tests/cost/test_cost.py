"""Cost-based rewriting tests (Appendix C)."""

import pytest

from repro.core import extract_sql
from repro.cost import AndNode, CostModel, Memo, cost_based_plan
from repro.sqlparse import parse_query
from repro.workloads import sample, wilos_catalog, wilos_database

_CATALOG = wilos_catalog()


class TestMemo:
    def test_optimize_picks_cheapest_alternative(self):
        memo = Memo()
        group = memo.new_group("g")
        group.add(AndNode(op="expensive", local_cost=10.0))
        group.add(AndNode(op="cheap", local_cost=2.0))
        best = memo.optimize(group.group_id)
        assert best.alternative.op == "cheap"
        assert best.cost == 2.0

    def test_costs_compose_through_children(self):
        memo = Memo()
        child = memo.new_group("child")
        child.add(AndNode(op="leaf", local_cost=5.0))
        parent = memo.new_group("parent")
        parent.add(AndNode(op="seq", children=[child.group_id], local_cost=1.0))
        assert memo.optimize(parent.group_id).cost == 6.0

    def test_duplicate_derivations_rejected(self):
        memo = Memo()
        group = memo.new_group()
        assert group.add(AndNode(op="a", local_cost=1.0))
        assert not group.add(AndNode(op="a", local_cost=1.0))
        assert len(group.alternatives) == 1

    def test_empty_group_raises(self):
        memo = Memo()
        group = memo.new_group()
        with pytest.raises(ValueError):
            memo.optimize(group.group_id)

    def test_memoization_returns_same_plan(self):
        memo = Memo()
        group = memo.new_group()
        group.add(AndNode(op="a", local_cost=1.0))
        assert memo.optimize(group.group_id) is memo.optimize(group.group_id)


class TestCostModel:
    def setup_method(self):
        self.db = wilos_database(scale=100, catalog=_CATALOG)
        self.model = CostModel(self.db)

    def test_table_cardinality_from_database(self):
        estimate = self.model.cardinality(parse_query("select * from project"))
        assert estimate.rows == 100

    def test_selection_reduces_cardinality(self):
        base = self.model.cardinality(parse_query("select * from project")).rows
        filtered = self.model.cardinality(
            parse_query("select * from project where launched = true")
        ).rows
        assert filtered < base

    def test_aggregate_is_one_row(self):
        estimate = self.model.cardinality(
            parse_query("select sum(budget) as s from project")
        )
        assert estimate.rows == 1

    def test_limit_caps_cardinality(self):
        estimate = self.model.cardinality(parse_query("select * from project limit 5"))
        assert estimate.rows == 5

    def test_aggregate_query_cheaper_than_scan(self):
        scan = self.model.query_cost_ms(parse_query("select * from project"))
        agg = self.model.query_cost_ms(parse_query("select sum(budget) as s from project"))
        assert agg < scan

    def test_unknown_table_uses_default(self):
        estimate = self.model.cardinality(parse_query("select * from nonexistent"))
        assert estimate.rows == 1000.0


class TestCostBasedPlan:
    def test_rewrites_clean_aggregation(self):
        db = wilos_database(scale=100, catalog=_CATALOG)
        report = extract_sql(sample(9).source, sample(9).function, _CATALOG)
        plan = cost_based_plan(report, db)
        assert plan.rewrite_loops

    def test_declines_figure7a(self):
        source = """
        f(pivot) {
            q = executeQuery("from Project as p");
            total = 0;
            weird = null;
            for (t : q) {
                total = total + t.getBudget();
                if (t.getName().compareTo(pivot) > 0) { weird = t.getName(); }
            }
            return new Pair(total, weird);
        }
        """
        db = wilos_database(scale=100, catalog=_CATALOG)
        report = extract_sql(source, "f", _CATALOG)
        plan = cost_based_plan(report, db)
        assert not plan.rewrite_loops
        assert plan.keep_loops

    def test_n_plus_one_always_rewritten(self):
        """Eliminating a per-row query is worth it at any size."""
        db = wilos_database(scale=100, catalog=_CATALOG)
        report = extract_sql(sample(10).source, sample(10).function, _CATALOG)
        plan = cost_based_plan(report, db)
        assert plan.rewrite_loops

    def test_plan_reports_memo_size(self):
        db = wilos_database(scale=50, catalog=_CATALOG)
        report = extract_sql(sample(9).source, sample(9).function, _CATALOG)
        plan = cost_based_plan(report, db)
        assert plan.memo_size >= 2
        assert plan.total_cost_ms > 0
