"""Baseline tests: batching, prefetching, QBS reference data."""

from repro.baselines import (
    QBS_RESULTS,
    batching_applicable,
    eqsql_only_successes,
    prefetch_applicable,
    qbs_success_count,
    qbs_total_time_s,
    run_batched_report,
    run_prefetch_report,
)
from repro.db import Connection
from repro.interp import Interpreter
from repro.core import optimize_program
from repro.workloads import (
    JOB_REPORT,
    WILOS_SAMPLES,
    jobportal_catalog,
    jobportal_database,
)

_INNER = [
    ("personal", "name", False),
    ("feedback1", "score1", False),
    ("feedback2", "score2", False),
    ("qualifications", "degree", True),
]


class TestApplicability:
    def test_batching_applies_to_7_of_33(self):
        count = sum(
            1 for s in WILOS_SAMPLES if batching_applicable(s.source, s.function)
        )
        assert count == 7

    def test_batching_requires_query_in_loop(self):
        assert not batching_applicable(
            "f() { q = executeQuery(\"from T\"); s = 0; for (t : q) { s = s + 1; } return s; }",
            "f",
        )
        assert batching_applicable(
            "f() { q = executeQuery(\"from T\"); for (t : q) { u = executeScalar(\"select x from u\"); } }",
            "f",
        )

    def test_prefetch_applies_to_any_query(self):
        assert prefetch_applicable("f() { q = executeQuery(\"from T\"); return q; }", "f")
        assert not prefetch_applicable("f(x) { return x + 1; }", "f")

    def test_overlap_with_eqsql_is_4(self):
        overlap = sum(
            1
            for s in WILOS_SAMPLES
            if batching_applicable(s.source, s.function)
            and s.expected in ("success", "capable")
        )
        assert overlap == 4


class TestQbsReference:
    def test_success_count_is_21(self):
        assert qbs_success_count() == 21

    def test_total_time_positive(self):
        assert qbs_total_time_s() > 2000  # sum of the published seconds

    def test_every_sample_covered(self):
        assert set(QBS_RESULTS) == set(range(1, 34))

    def test_eqsql_only_successes(self):
        statuses = {s.number: s.expected for s in WILOS_SAMPLES}
        only = eqsql_only_successes(statuses)
        assert only == [1, 2, 3, 4, 18, 26]


class TestExecutableStrategies:
    def _outputs(self, applicants=40):
        catalog = jobportal_catalog()
        db = jobportal_database(applicants=applicants, catalog=catalog)
        report = optimize_program(JOB_REPORT, "report", catalog)

        original_conn = Connection(db)
        original = Interpreter(report.original, original_conn)
        original.run("report", 7)

        batch_conn = Connection(db)
        batched = run_batched_report(db, batch_conn, 7, _INNER)

        prefetch_conn = Connection(db)
        prefetched = run_prefetch_report(db, prefetch_conn, 7, _INNER)

        eqsql_conn = Connection(db)
        eqsql = Interpreter(report.rewritten, eqsql_conn)
        eqsql.run("report", 7)

        return (
            (original.last_out, original_conn.stats),
            (batched, batch_conn.stats),
            (prefetched, prefetch_conn.stats),
            (eqsql.last_out, eqsql_conn.stats),
        )

    def test_all_strategies_agree(self):
        (orig, _), (batch, _), (prefetch, _), (eqsql, _) = self._outputs()
        assert orig == batch == prefetch == eqsql

    def test_batching_reduces_round_trips(self):
        (_, orig), (_, batch), _, _ = self._outputs()
        assert batch.round_trips < orig.round_trips / 3

    def test_prefetch_reduces_latency_not_transfer(self):
        (_, orig), _, (_, prefetch), _ = self._outputs()
        assert prefetch.simulated_time_ms < orig.simulated_time_ms
        assert prefetch.rows_transferred == orig.rows_transferred

    def test_eqsql_single_query_wins(self):
        (_, orig), (_, batch), (_, prefetch), (_, eqsql) = self._outputs()
        assert eqsql.queries_executed == 1
        assert eqsql.simulated_time_ms < batch.simulated_time_ms
        assert eqsql.simulated_time_ms < prefetch.simulated_time_ms
        assert eqsql.simulated_time_ms < orig.simulated_time_ms
