"""Program rewriting and dead-code elimination tests (Section 5.2)."""

from repro.algebra import Catalog
from repro.core import optimize_program
from repro.lang import (
    Assign,
    Call,
    ForEach,
    parse_program,
    unparse_program,
    walk_statements,
)
from repro.rewrite import eliminate_dead_code


class TestDeadCodeElimination:
    def run_dce(self, source, function="f"):
        return eliminate_dead_code(parse_program(source), function)

    def test_unused_assignment_removed(self):
        result = self.run_dce("f() { x = 1; y = 2; return y; }")
        targets = [
            s.target
            for s in walk_statements(result.function("f").body)
            if isinstance(s, Assign)
        ]
        assert targets == ["y"]

    def test_transitively_dead_chain_removed(self):
        result = self.run_dce("f() { a = 1; b = a + 1; c = b + 1; return 0; }")
        assert len(result.function("f").body.statements) == 1

    def test_live_chain_kept(self):
        result = self.run_dce("f() { a = 1; b = a + 1; return b; }")
        assert len(result.function("f").body.statements) == 3

    def test_overwritten_value_removed(self):
        result = self.run_dce("f() { x = 1; x = 2; return x; }")
        values = [
            s.value.value
            for s in result.function("f").body.statements
            if isinstance(s, Assign)
        ]
        assert values == [2]

    def test_loop_with_dead_body_removed(self):
        result = self.run_dce(
            'f() { q = executeQuery("from T"); for (t : q) { s = s + 1; } return 0; }'
        )
        assert not any(
            isinstance(s, ForEach)
            for s in walk_statements(result.function("f").body)
        )

    def test_loop_with_live_accumulator_kept(self):
        result = self.run_dce(
            'f() { q = executeQuery("from T"); s = 0; for (t : q) { s = s + 1; } return s; }'
        )
        assert any(
            isinstance(s, ForEach)
            for s in walk_statements(result.function("f").body)
        )

    def test_loop_carried_helper_kept(self):
        """b feeds a across iterations; removing b would be unsound."""
        result = self.run_dce(
            """
            f(b) {
                q = executeQuery("from T");
                a = 0;
                for (t : q) { a = a + b; b = t.getX(); }
                return a;
            }
            """
        )
        loop = next(
            s for s in walk_statements(result.function("f").body)
            if isinstance(s, ForEach)
        )
        targets = {s.target for s in loop.body.statements if isinstance(s, Assign)}
        assert targets == {"a", "b"}

    def test_db_update_never_removed(self):
        result = self.run_dce(
            'f() { executeUpdate("delete from T"); return 0; }'
        )
        assert len(result.function("f").body.statements) == 2

    def test_print_never_removed(self):
        result = self.run_dce('f() { print("hello"); return 0; }')
        assert len(result.function("f").body.statements) == 2

    def test_unknown_call_conservatively_kept(self):
        result = self.run_dce("f() { x = mystery(); return 0; }")
        assert len(result.function("f").body.statements) == 2

    def test_pure_query_with_unused_result_removed(self):
        result = self.run_dce(
            'f() { q = executeQuery("from T"); return 1; }'
        )
        assert len(result.function("f").body.statements) == 1

    def test_empty_if_removed(self):
        result = self.run_dce("f(c) { if (c) { x = 1; } return 0; }")
        from repro.lang import If

        assert not any(
            isinstance(s, If) for s in walk_statements(result.function("f").body)
        )

    def test_condition_reads_stay_live_through_if(self):
        result = self.run_dce("f(c, a) { y = 0; if (c) { y = a; } return y; }")
        assert len(result.function("f").body.statements) == 3

    def test_zero_trip_loop_keeps_preloop_initializer(self):
        """A cursor loop may run zero times, so a body assignment must not
        kill liveness above the loop.  Regression for difftest case 0:622
        (corpus: case-0-622-dce-zero-trip-init), where `v = null;` was
        removed and the program read an unbound variable on an empty table."""
        result = self.run_dce(
            """
            f() {
                v = null;
                q = executeQuery("from T");
                for (t : q) { v = t.getX(); }
                return v;
            }
            """
        )
        assignments_to_v = [
            s
            for s in walk_statements(result.function("f").body)
            if isinstance(s, Assign) and s.target == "v"
        ]
        assert len(assignments_to_v) == 2  # initializer AND body assignment


class TestEndToEndRewrite:
    def test_loop_fully_replaced(self, catalog, database):
        from tests.conftest import run_both

        source = """
        f() {
            q = executeQuery("from Board as b where b.rnd_id = 1");
            m = 0;
            for (t : q) {
                if (t.getP1() > m) { m = t.getP1(); }
            }
            return m;
        }
        """
        report = optimize_program(source, "f", catalog)
        assert report.rewritten is not None
        rendered = unparse_program(report.rewritten)
        assert "for (" not in rendered
        v1, v2, s1, s2 = run_both(report, database, "f")
        assert v1 == v2 == 10

    def test_partial_extraction_keeps_loop(self, catalog, database):
        """Paper Section 5.3 / Figure 7(a): when another live variable in the
        loop cannot be extracted, the heuristic declines the rewrite."""
        source = """
        f(x) {
            q = executeQuery("from Board as b");
            agg = 0;
            weird = 0;
            for (t : q) {
                agg = agg + t.getP1();
                weird = weird + agg;
            }
            return agg + weird;
        }
        """
        report = optimize_program(source, "f", catalog)
        # agg alone extracts, weird does not; all-or-nothing heuristic
        assert report.variables["agg"].ok
        assert not report.variables["weird"].ok
        assert not report.rewritten_loops

    def test_rewritten_program_parses_and_runs(self, catalog, database):
        from tests.conftest import run_both

        source = """
        f() {
            q = executeQuery("from Project as p");
            names = new ArrayList();
            for (t : q) {
                if (t.getBudget() > 8) { names.add(t.getName()); }
            }
            return names;
        }
        """
        report = optimize_program(source, "f", catalog)
        v1, v2, s1, s2 = run_both(report, database, "f")
        assert v1 == v2 == ["alpha", "beta", "gamma"]
        assert s2.rows_transferred <= s1.rows_transferred

    def test_preamble_binds_attribute_params(self, catalog, database):
        """Bindings like `u.getRole_id()` become preamble assignments."""
        from tests.conftest import run_both

        source = """
        f(u) {
            q = executeQuery("from Role as r");
            names = new ArrayList();
            for (t : q) {
                if (t.getId() == u.getRole_id()) { names.add(t.getRole_name()); }
            }
            return names;
        }
        """
        report = optimize_program(source, "f", catalog)
        if report.rewritten is None:
            return  # acceptable: parameterised on entity attribute
        rendered = unparse_program(report.rewritten)
        assert "u__role_id" in rendered
