"""Emitter unit tests: extracted expressions → MiniJava statements."""

import pytest

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    Col,
    Distinct,
    Lit,
    Project,
    ProjectItem,
    Select,
    Table,
)
from repro.ir import DagBuilder
from repro.lang import Assign, Block, ForEach, If, unparse_stmt
from repro.rewrite import EmitError, Emitter


@pytest.fixture
def dag():
    return DagBuilder()


def render(statements):
    return "\n".join(unparse_stmt(s) for s in statements)


class TestScalarEmission:
    def test_constant(self, dag):
        statements = Emitter().statements_for("x", dag.const(5))
        assert render(statements) == "x = 5;"

    def test_scalar_query(self, dag):
        rel = Aggregate(Table("t"), (), (AggItem(AggCall("max", Col("v")), "agg"),))
        statements = Emitter().statements_for("m", dag.scalar_query(rel))
        assert 'executeScalar("SELECT MAX(v) AS agg FROM t")' in render(statements)

    def test_exists(self, dag):
        statements = Emitter().statements_for("found", dag.exists(Table("t")))
        assert 'executeExists("SELECT * FROM t")' in render(statements)

    def test_not_exists_negates(self, dag):
        statements = Emitter().statements_for(
            "ok", dag.exists(Table("t"), negated=True)
        )
        assert "!executeExists" in render(statements)

    def test_combine_max_emits_null_check(self, dag):
        rel = Aggregate(Table("t"), (), (AggItem(AggCall("max", Col("v")), "agg"),))
        node = dag.op("combine_max", dag.const(0), dag.scalar_query(rel))
        statements = Emitter().statements_for("m", node)
        text = render(statements)
        assert "== null" in text
        assert "Math.max(0," in text

    def test_ternary(self, dag):
        node = dag.op("?", dag.op(">", dag.var("a"), dag.const(0)), dag.const(1), dag.const(2))
        statements = Emitter().statements_for("x", node)
        assert "a > 0 ? 1 : 2" in render(statements)

    def test_comparison_with_scalar_query_guards_null(self, dag):
        rel = Aggregate(Table("t"), (), (AggItem(AggCall("max", Col("v")), "agg"),))
        node = dag.op(">", dag.scalar_query(rel), dag.const(0))
        statements = Emitter().statements_for("x", node)
        text = render(statements)
        assert "!= null &&" in text

    def test_unemittable_raises(self, dag):
        with pytest.raises(EmitError):
            Emitter().statements_for("x", dag.op("append", dag.var("a"), dag.const(1)))


class TestCollectionEmission:
    def test_whole_rows_direct_assignment(self, dag):
        statements = Emitter().statements_for("xs", dag.query(Table("t")))
        assert render(statements) == 'xs = executeQuery("SELECT * FROM t");'

    def test_single_column_unwraps(self, dag):
        rel = Project(Table("t"), (ProjectItem(Col("name")),))
        statements = Emitter().statements_for("xs", dag.query(rel))
        text = render(statements)
        assert "getName()" in text
        assert "new ArrayList()" in text
        assert isinstance(statements[-1], ForEach)

    def test_distinct_builds_set(self, dag):
        rel = Distinct(Project(Table("t"), (ProjectItem(Col("name")),)))
        statements = Emitter().statements_for("xs", dag.query(rel))
        assert "new HashSet()" in render(statements)

    def test_pair_unwrapping(self, dag):
        rel = Project(
            Table("t"),
            (ProjectItem(Col("k"), "k"), ProjectItem(Col("v"), "col1")),
        )
        node = dag.op("as_pairs", dag.query(rel))
        statements = Emitter().statements_for("xs", node)
        text = render(statements)
        assert "new Pair(" in text
        assert "getK()" in text and "getCol1()" in text

    def test_param_binding_preamble(self, dag):
        rel = Select(Table("t"), BinOp("=", Col("k"), Lit(1)))
        node = dag.query(rel, (("u__role_id", dag.attr(dag.var("u"), "role_id")),))
        statements = Emitter().statements_for("xs", node)
        text = render(statements)
        assert "u__role_id = u.getRole_id();" in text

    def test_plain_var_param_needs_no_preamble(self, dag):
        from repro.algebra import Param

        rel = Select(Table("t"), BinOp("=", Col("k"), Param("uid")))
        node = dag.query(rel, (("uid", dag.var("uid")),))
        statements = Emitter().statements_for("xs", node)
        assert ":uid" in render(statements)
        assert len([s for s in statements if isinstance(s, Assign)]) == 1


class TestTemporaries:
    def test_fresh_names_unique(self):
        emitter = Emitter()
        names = {emitter.fresh() for _ in range(10)}
        assert len(names) == 10

    def test_dialect_threaded_through(self, dag):
        rel = Aggregate(Table("t"), (), (AggItem(AggCall("max", Col("v")), "agg"),))
        node = dag.op("combine_max", dag.const(0), dag.scalar_query(rel))
        text = render(Emitter(dialect="ansi").statements_for("m", node))
        assert "GREATEST" not in text  # ANSI uses CASE WHEN
