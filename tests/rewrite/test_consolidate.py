"""Query consolidation tests (paper Appendix B, Figures 12–13)."""

from repro.algebra import Catalog
from repro.db import Connection
from repro.interp import Interpreter
from repro.ir import preprocess_program
from repro.lang import parse_program, unparse_program
from repro.rewrite import consolidate_loops

JOBPORTAL = """
report() {
    rs = executeQuery("from Applicants as a where a.jobId = 7");
    for (a : rs) {
        id = a.getApplicantId();
        name = executeScalar("select p.name from Personal p where p.applicantId = " + id);
        print(name);
        if (a.getApplnMode() == "online") {
            s = executeScalar("select f.score1 from Feedback1 f where f.applicantId = " + id);
            print(s);
        }
    }
}
"""


def consolidate(source, catalog, function="report"):
    program = preprocess_program(parse_program(source))
    return consolidate_loops(program, function, catalog)


class TestConsolidation:
    def test_queries_merged(self, catalog):
        _, records = consolidate(JOBPORTAL, catalog)
        assert len(records) == 1
        assert records[0].queries_merged == 3

    def test_sql_shape_matches_figure13(self, catalog):
        _, records = consolidate(JOBPORTAL, catalog)
        sql = records[0].sql
        assert sql.count("OUTER APPLY") == 2
        assert "applnMode = 'online'" in sql  # guard pushed into the apply

    def test_scalar_calls_become_attribute_reads(self, catalog):
        program, _ = consolidate(JOBPORTAL, catalog)
        rendered = unparse_program(program)
        assert "executeScalar" not in rendered
        assert ".getC0()" in rendered and ".getC1()" in rendered

    def test_equivalence_and_query_count(self, catalog, database):
        original = preprocess_program(parse_program(JOBPORTAL))
        rewritten, records = consolidate_loops(original, "report", catalog)
        assert records
        c1, c2 = Connection(database), Connection(database)
        i1 = Interpreter(original, c1)
        i1.run("report")
        i2 = Interpreter(rewritten, c2)
        i2.run("report")
        assert i1.last_out == i2.last_out == ["ann", 9, "bob"]
        assert c1.stats.queries_executed == 4
        assert c2.stats.queries_executed == 1

    def test_loop_without_scalar_queries_untouched(self, catalog):
        source = """
        f() {
            q = executeQuery("from Project as p");
            for (t : q) { print(t.getName()); }
        }
        """
        _, records = consolidate(source, catalog, "f")
        assert records == []

    def test_uncorrelated_scalar_query_untouched(self, catalog):
        source = """
        f() {
            q = executeQuery("from Project as p");
            for (t : q) {
                m = executeScalar("select max(p1) from board");
                print(m);
            }
        }
        """
        _, records = consolidate(source, catalog, "f")
        assert records == []

    def test_inline_iterable_supported(self, catalog, database):
        source = """
        f() {
            for (a : executeQuery("from Applicants as a")) {
                n = executeScalar("select p.name from Personal p where p.applicantId = " + a.getApplicantId());
                print(n);
            }
        }
        """
        program = preprocess_program(parse_program(source))
        rewritten, records = consolidate_loops(program, "f", catalog)
        assert len(records) == 1
        c1, c2 = Connection(database), Connection(database)
        i1 = Interpreter(program, c1)
        i1.run("f")
        i2 = Interpreter(rewritten, c2)
        i2.run("f")
        assert i1.last_out == i2.last_out
