"""JDBC-style cursor loops (``while (rs.next())``) through the whole
pipeline: normalisation + extraction + consolidation."""

from repro.core import extract_sql, optimize_program
from repro.db import Connection
from repro.interp import Interpreter


class TestCursorWhileExtraction:
    SOURCE = """
    total() {
        rs = executeQuery("select p1 from board where rnd_id = 1");
        total = 0;
        while (rs.next()) {
            total = total + rs.getInt("p1");
        }
        return total;
    }
    """

    def test_extracts_aggregate(self, catalog):
        report = extract_sql(self.SOURCE, "total", catalog)
        assert report.status == "success"
        assert "SUM(p1)" in report.variables["total"].sql

    def test_equivalence(self, catalog, database):
        from tests.conftest import run_both

        report = optimize_program(self.SOURCE, "total", catalog)
        v1, v2, _, _ = run_both(report, database, "total")
        assert v1 == v2 == 11


class TestCursorWhileConsolidation:
    SOURCE = """
    report() {
        rs = executeQuery("from Applicants as a where a.jobId = 7");
        while (rs.next()) {
            id = rs.getInt("applicantId");
            name = executeScalar("select p.name from Personal p where p.applicantId = " + id);
            print(name);
        }
    }
    """

    def test_data_access_merged_into_one_query(self, catalog):
        """The single-print N+1 while-loop fully extracts: the printed
        stream becomes one OUTER APPLY query (rule T7), so not even a
        consolidation is needed."""
        report = optimize_program(self.SOURCE, "report", catalog)
        assert report.rewritten is not None
        extraction = report.variables["__out__"]
        assert extraction.ok
        assert "OUTER APPLY" in extraction.sql

    def test_output_preserved(self, catalog, database):
        report = optimize_program(self.SOURCE, "report", catalog)
        c1, c2 = Connection(database), Connection(database)
        i1 = Interpreter(report.original, c1)
        i1.run("report")
        i2 = Interpreter(report.rewritten, c2)
        i2.run("report")
        assert i1.last_out == i2.last_out == ["ann", "bob"]
        assert c2.stats.queries_executed == 1


class TestDialectReporting:
    def test_postgres_dialect_uses_lateral_for_apply(self, catalog):
        source = """
        report() {
            rs = executeQuery("from Applicants as a");
            for (a : rs) {
                n = executeScalar("select p.name from Personal p where p.applicantId = " + a.getApplicantId());
                print(n);
            }
        }
        """
        report = extract_sql(source, "report", catalog, dialect="postgres")
        assert "LEFT JOIN LATERAL" in report.variables["__out__"].sql

    def test_sqlserver_dialect_uses_outer_apply(self, catalog):
        source = """
        f() {
            q = executeQuery("from Board as b");
            m = 0;
            for (t : q) {
                s = Math.max(t.getP1(), t.getP2());
                if (s > m) { m = s; }
            }
            return m;
        }
        """
        report = extract_sql(source, "f", catalog, dialect="sqlserver")
        sql = report.variables["m"].sql
        assert "CASE WHEN" in sql  # no GREATEST on SQL Server
