"""Failure-injection and robustness tests for the extraction pipeline."""

import pytest

from repro import Catalog
from repro.core import STATUS_FAILED, extract_sql, optimize_program


@pytest.fixture
def minimal_catalog():
    catalog = Catalog()
    catalog.define("t", ["id", "x"], key=("id",))
    return catalog


class TestMalformedInputs:
    def test_malformed_query_string_fails_cleanly(self, minimal_catalog):
        source = """
        f() {
            q = executeQuery("SELEKT ** FRUM nowhere !!");
            s = 0;
            for (t : q) { s = s + t.getX(); }
            return s;
        }
        """
        report = extract_sql(source, "f", minimal_catalog)
        assert report.status == STATUS_FAILED

    def test_unknown_function_name_raises_keyerror(self, minimal_catalog):
        with pytest.raises(KeyError):
            extract_sql("f() { return 1; }", "missing", minimal_catalog)

    def test_syntax_error_raises_parse_error(self, minimal_catalog):
        from repro.lang import ParseError

        with pytest.raises(ParseError):
            extract_sql("f() { x = ; }", "f", minimal_catalog)

    def test_query_with_runtime_only_table_still_extracts(self):
        """A table missing from the catalog blocks only rules that need
        schema (T4 keys); σ/γ extraction proceeds."""
        empty_catalog = Catalog()
        empty_catalog.define("placeholder", ["id"])  # unrelated
        source = """
        f() {
            q = executeQuery("from Mystery as m");
            s = 0;
            for (t : q) { s = s + t.getX(); }
            return s;
        }
        """
        report = extract_sql(source, "f", empty_catalog)
        assert report.status == "success"
        assert "Mystery" in report.variables["s"].sql


class TestDegenerateShapes:
    def test_empty_loop_body(self, minimal_catalog):
        report = extract_sql(
            'f() { q = executeQuery("from T as t"); for (t : q) { } return 0; }',
            "f",
            minimal_catalog,
        )
        # Nothing to extract, nothing to break.
        assert report.variables == {}

    def test_loop_over_reassigned_query(self, minimal_catalog):
        """The *last* assignment before the loop defines the source."""
        source = """
        f() {
            q = executeQuery("from T as t");
            q = executeQuery("select * from t where x > 5");
            s = 0;
            for (t : q) { s = s + t.getX(); }
            return s;
        }
        """
        report = extract_sql(source, "f", minimal_catalog)
        assert report.status == "success"
        assert "x > 5" in report.variables["s"].sql

    def test_two_independent_loops(self, minimal_catalog):
        source = """
        f() {
            q = executeQuery("from T as t");
            a = 0;
            for (t : q) { a = a + t.getX(); }
            b = 0;
            for (t : q) { if (t.getX() > 0) { b = b + 1; } }
            return a + b;
        }
        """
        report = extract_sql(source, "f", minimal_catalog)
        assert report.variables["a"].ok
        assert report.variables["b"].ok
        assert report.variables["a"].loop_sid != report.variables["b"].loop_sid

    def test_loop_variable_shadowing_function_param(self, minimal_catalog):
        source = """
        f(t) {
            q = executeQuery("from T as x");
            s = 0;
            for (t : q) { s = s + t.getX(); }
            return s;
        }
        """
        report = extract_sql(source, "f", minimal_catalog)
        assert report.status == "success"

    def test_deeply_nested_conditionals(self, minimal_catalog):
        source = """
        f() {
            q = executeQuery("from T as t");
            s = 0;
            for (t : q) {
                if (t.getX() > 0) {
                    if (t.getX() < 100) {
                        if (t.getId() != 3) {
                            s = s + t.getX();
                        }
                    }
                }
            }
            return s;
        }
        """
        report = extract_sql(source, "f", minimal_catalog)
        assert report.status == "success"
        sql = report.variables["s"].sql
        assert sql.count("AND") >= 1 or sql.count("WHERE") >= 1

    def test_rewrite_of_unrewritable_program_returns_none(self, minimal_catalog):
        source = "f(xs) { s = 0; for (t : xs) { s = s + t.getX(); } return s; }"
        report = optimize_program(source, "f", minimal_catalog)
        assert report.rewritten is None


class TestStability:
    def test_extraction_is_deterministic(self, minimal_catalog):
        source = """
        f() {
            q = executeQuery("from T as t");
            s = 0;
            for (t : q) { if (t.getX() > 1) { s = s + t.getX(); } }
            return s;
        }
        """
        first = extract_sql(source, "f", minimal_catalog)
        second = extract_sql(source, "f", minimal_catalog)
        assert first.variables["s"].sql == second.variables["s"].sql

    def test_report_helpers(self, minimal_catalog):
        source = """
        f() {
            q = executeQuery("from T as t");
            s = 0;
            for (t : q) { s = s + t.getX(); }
            return s;
        }
        """
        report = extract_sql(source, "f", minimal_catalog)
        assert report.extraction("s").ok
        assert report.queries() == [report.variables["s"].sql]
