"""CLI tests for ``python -m repro``."""

import json

import pytest

from repro.__main__ import main

SOURCE = """
unfinished() {
    projects = executeQuery("from Project as p");
    names = new ArrayList();
    for (p : projects) {
        if (p.getFinished() == false) { names.add(p.getName()); }
    }
    return names;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "sample.mj"
    path.write_text(SOURCE)
    return str(path)


class TestExtractCommand:
    def test_inline_table_schema(self, source_file, capsys):
        code = main(
            [
                "extract",
                source_file,
                "-f",
                "unfinished",
                "--table",
                "project:id,name,finished:id",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "status:   success" in out
        assert "SELECT name FROM Project p" in out

    def test_json_schema(self, source_file, tmp_path, capsys):
        schema = tmp_path / "schema.json"
        schema.write_text(
            json.dumps({"project": {"columns": ["id", "name", "finished"], "key": ["id"]}})
        )
        code = main(
            ["extract", source_file, "-f", "unfinished", "--schema", str(schema)]
        )
        assert code == 0
        assert "success" in capsys.readouterr().out

    def test_rewrite_flag_prints_program(self, source_file, capsys):
        code = main(
            [
                "extract",
                source_file,
                "-f",
                "unfinished",
                "--table",
                "project:id,name,finished:id",
                "--rewrite",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rewritten program" in out
        assert "executeQuery" in out

    def test_dialect_selection(self, source_file, capsys):
        main(
            [
                "extract",
                source_file,
                "-f",
                "unfinished",
                "--table",
                "project:id,name,finished:id",
                "--dialect",
                "sqlserver",
            ]
        )
        out = capsys.readouterr().out
        assert "success" in out

    def test_failure_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.mj"
        bad.write_text(
            """
            f(pivot) {
                q = executeQuery("from Project as p");
                xs = new ArrayList();
                for (t : q) {
                    if (t.getName().compareTo(pivot) > 0) { xs.add(t.getName()); }
                }
                return xs;
            }
            """
        )
        code = main(
            ["extract", str(bad), "-f", "f", "--table", "project:id,name:id"]
        )
        assert code == 1

    def test_json_flag(self, source_file, capsys):
        code = main(
            [
                "extract",
                source_file,
                "-f",
                "unfinished",
                "--table",
                "project:id,name,finished:id",
                "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "success"
        assert "SELECT name FROM Project p" in data["variables"]["names"]["sql"]

    def test_json_flag_with_rewrite(self, source_file, capsys):
        code = main(
            [
                "extract",
                source_file,
                "-f",
                "unfinished",
                "--table",
                "project:id,name,finished:id",
                "--rewrite",
                "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["rewritten"] is not None
        assert "executeQuery" in data["rewritten"]

    def test_missing_schema_errors(self, source_file):
        with pytest.raises(SystemExit):
            main(["extract", source_file, "-f", "unfinished"])

    def test_bad_table_spec_errors(self, source_file):
        with pytest.raises(SystemExit):
            main(["extract", source_file, "-f", "unfinished", "--table", "nocolumns"])


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3d" in out
    assert "GREATEST" in out
