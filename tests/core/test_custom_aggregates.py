"""User-defined aggregate tests (paper Section 5.2's UDF fallback)."""

import math

import pytest

from repro import Catalog, Connection, Database
from repro.core import extract_sql
from repro.interp import Interpreter
from repro.rewrite import eliminate_dead_code, insert_extractions
from repro.sqlparse import parse_query

PRODUCT_SOURCE = """
prod() {
    q = executeQuery("from Factors as f");
    p = 1;
    for (t : q) { p = p * t.getX(); }
    return p;
}
"""


@pytest.fixture
def factors_catalog():
    catalog = Catalog()
    catalog.define("factors", ["id", "x"], key=("id",))
    return catalog


@pytest.fixture
def factors_db(factors_catalog):
    db = Database(factors_catalog)
    db.register_aggregate(
        "product", lambda values: math.prod(values) if values else None
    )
    db.insert_many("factors", [{"id": 1, "x": 2}, {"id": 2, "x": 3}, {"id": 3, "x": 7}])
    return db


class TestCustomAggregates:
    def test_product_fold_fails_without_registration(self, factors_catalog):
        report = extract_sql(PRODUCT_SOURCE, "prod", factors_catalog)
        assert report.status == "failed"

    def test_product_fold_extracts_with_registration(self, factors_catalog):
        report = extract_sql(
            PRODUCT_SOURCE,
            "prod",
            factors_catalog,
            custom_aggregates={"*": ("product", 1)},
        )
        assert report.status == "success"
        assert "PRODUCT(x)" in report.variables["p"].sql
        assert "T5.1-custom" in report.variables["p"].rule_trace

    def test_runtime_equivalence(self, factors_catalog, factors_db):
        report = extract_sql(
            PRODUCT_SOURCE,
            "prod",
            factors_catalog,
            custom_aggregates={"*": ("product", 1)},
        )
        extraction = report.variables["p"]
        rewritten = insert_extractions(
            report.original, "prod", {extraction.loop_sid: [("p", extraction.node)]}
        )
        rewritten = eliminate_dead_code(rewritten, "prod")
        c1, c2 = Connection(factors_db), Connection(factors_db)
        r1 = Interpreter(report.original, c1).run("prod")
        r2 = Interpreter(rewritten, c2).run("prod")
        assert r1 == r2 == 42

    def test_empty_input_falls_back_to_initial_value(self, factors_catalog):
        db = Database(factors_catalog)
        db.register_aggregate(
            "product", lambda values: math.prod(values) if values else None
        )
        report = extract_sql(
            PRODUCT_SOURCE,
            "prod",
            factors_catalog,
            custom_aggregates={"*": ("product", 1)},
        )
        extraction = report.variables["p"]
        rewritten = insert_extractions(
            report.original, "prod", {extraction.loop_sid: [("p", extraction.node)]}
        )
        rewritten = eliminate_dead_code(rewritten, "prod")
        conn = Connection(db)
        assert Interpreter(rewritten, conn).run("prod") == 1

    def test_engine_evaluates_registered_aggregate(self, factors_db):
        rows = factors_db.execute(parse_query("select product(x) as p from factors"))
        assert rows == [{"p": 42}]

    def test_registered_aggregate_in_group_by(self, factors_db):
        factors_db.insert("factors", {"id": 4, "x": 5})
        rows = factors_db.execute(
            parse_query("select product(x) as p from factors group by id")
        )
        assert len(rows) == 4

    def test_unregistered_aggregate_raises(self, factors_catalog):
        from repro.db import EngineError
        from repro.sqlparse import register_aggregate_name

        register_aggregate_name("mystery")
        db = Database(factors_catalog)
        db.insert("factors", {"id": 1, "x": 2})
        with pytest.raises(EngineError):
            db.execute(parse_query("select mystery(x) as m from factors"))
