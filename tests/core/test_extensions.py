"""Extension-feature tests: boolean-return loops, unordered mode,
temporary tables (the paper's Section 2 / Appendix B / future-work items)."""

from repro.algebra import Catalog
from repro.core import extract_sql, optimize_program
from repro.db import Connection, Database
from repro.interp import Entity, Interpreter
from repro.lang import unparse_program
from repro.workloads import sample, wilos_catalog, wilos_database


class TestBooleanReturnLoops:
    SOURCE = """
    anyFinished() {
        q = executeQuery("from Project as p");
        for (t : q) {
            if (t.getFinished()) { return true; }
        }
        return false;
    }
    """

    def test_extracts_exists(self, catalog):
        report = extract_sql(self.SOURCE, "anyFinished", catalog)
        assert report.status == "success"

    def test_equivalence_on_both_outcomes(self, catalog):
        report = optimize_program(self.SOURCE, "anyFinished", catalog)
        assert "executeExists" in unparse_program(report.rewritten)

        populated = Database(catalog)
        populated.insert_many(
            "project",
            [
                {"id": 1, "name": "a", "finished": False},
                {"id": 2, "name": "b", "finished": True},
            ],
        )
        empty = Database(catalog)
        for db, expected in ((populated, True), (empty, False)):
            c1, c2 = Connection(db), Connection(db)
            r1 = Interpreter(report.original, c1).run("anyFinished")
            r2 = Interpreter(report.rewritten, c2).run("anyFinished")
            assert r1 == r2 == expected

    def test_negated_form(self, catalog):
        source = """
        noneFinished() {
            q = executeQuery("from Project as p");
            for (t : q) {
                if (t.getFinished()) { return false; }
            }
            return true;
        }
        """
        report = extract_sql(source, "noneFinished", catalog)
        assert report.status == "success"

    def test_loop_with_more_work_not_normalised(self, catalog):
        """A loop doing more than the boolean check keeps its return and
        stays unanalysable (the paper's conservative stance)."""
        source = """
        f() {
            q = executeQuery("from Project as p");
            s = 0;
            for (t : q) {
                s = s + 1;
                if (t.getFinished()) { return s; }
            }
            return s;
        }
        """
        report = extract_sql(source, "f", catalog)
        assert report.status == "failed"


class TestUnorderedMode:
    JOIN_NO_KEY = """
    f() {
        users = executeQuery("from Keyless as u");
        xs = new ArrayList();
        for (u : users) {
            rs = executeQuery("select r.role_name from Role r where r.id = " + u.getRole_id());
            for (r : rs) { xs.add(r.getRole_name()); }
        }
        return xs;
    }
    """

    def _catalog(self):
        catalog = Catalog()
        catalog.define("keyless", ["name", "role_id"])  # deliberately no key
        catalog.define("role", ["id", "role_name"], key=("id",))
        return catalog

    def test_ordered_mode_requires_key(self):
        report = extract_sql(self.JOIN_NO_KEY, "f", self._catalog())
        assert report.status == "failed"

    def test_unordered_mode_waives_key(self):
        report = extract_sql(
            self.JOIN_NO_KEY, "f", self._catalog(), ordering_matters=False
        )
        assert report.status == "success"
        assert "JOIN" in report.variables["xs"].sql


class TestTempTables:
    def test_sample_29_fails_by_default(self):
        s = sample(29)
        report = extract_sql(s.source, s.function, wilos_catalog())
        assert report.status == "failed"

    def test_sample_29_succeeds_with_temp_tables(self):
        s = sample(29)
        report = optimize_program(
            s.source, s.function, wilos_catalog(), allow_temp_tables=True
        )
        assert report.status == "success"
        rendered = unparse_program(report.rewritten)
        assert 'registerTempTable("__temp_roles", roles);' in rendered
        assert "__temp_roles" in report.variables["result"].sql

    def test_temp_table_runtime_equivalence(self):
        s = sample(29)
        catalog = wilos_catalog()
        report = optimize_program(
            s.source, s.function, catalog, allow_temp_tables=True
        )
        db = wilos_database(scale=20, catalog=catalog)
        roles = [Entity(dict(r)) for r in db.rows("role")]
        c1, c2 = Connection(db), Connection(db)
        r1 = Interpreter(report.original, c1).run(s.function, roles)
        r2 = Interpreter(report.rewritten, c2).run(s.function, roles)
        assert r1 == r2
        # Shipping the collection costs a round trip and bytes.
        assert c2.stats.round_trips == 2

    def test_temp_table_transfer_accounted(self):
        catalog = wilos_catalog()
        db = wilos_database(scale=10, catalog=catalog)
        conn = Connection(db)
        conn.ship_temp_table("__tt", [{"x": 1}, {"x": 2}])
        assert conn.stats.bytes_transferred > 0
        assert db.rows("__tt") == [{"x": 1}, {"x": 2}]

    def test_query_derived_loops_not_affected(self, catalog):
        """The temp-table flag must not change query-derived extractions."""
        s = sample(9)
        with_flag = extract_sql(
            s.source, s.function, wilos_catalog(), allow_temp_tables=True
        )
        without = extract_sql(s.source, s.function, wilos_catalog())
        assert with_flag.variables["total"].sql == without.variables["total"].sql
