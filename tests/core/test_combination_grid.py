"""Combination-grid equivalence: predicate × payload × aggregation kind.

Systematically sweeps the space of loop shapes the rules cover and checks,
for each extractable combination, that the rewritten program matches the
original on real data.  This complements the per-rule unit tests with
cross-feature coverage (e.g. predicate push *and* scalar push *and* set
semantics in one loop).
"""

import pytest

from repro import Catalog, Connection, Database
from repro.core import optimize_program
from repro.interp import Interpreter

_CATALOG = Catalog()
_CATALOG.define("items", ["id", "grp", "price", "qty", "label"], key=("id",))


def _database():
    db = Database(_CATALOG)
    rows = [
        (1, 1, 10, 2, "ax"),
        (2, 1, 25, 1, "by"),
        (3, 2, 5, 7, "cz"),
        (4, 2, 40, 3, "dx"),
        (5, 3, 40, 0, "ey"),
        (6, 3, 15, 5, "fz"),
    ]
    for id_, grp, price, qty, label in rows:
        db.insert(
            "items",
            {"id": id_, "grp": grp, "price": price, "qty": qty, "label": label},
        )
    return db


PREDICATES = {
    "none": None,
    "eq": 't.getGrp() == 2',
    "cmp": 't.getPrice() > 12',
    "conj": 't.getPrice() > 5 && t.getQty() < 5',
    "neg": '!(t.getGrp() == 1)',
}

PAYLOADS = {
    "column": "t.getPrice()",
    "arith": "t.getPrice() * t.getQty()",
    "minmax": "Math.max(t.getPrice(), t.getQty())",
    "concat": 't.getLabel() + "#" + t.getGrp()',
    "ternary": "t.getPrice() > 20 ? t.getPrice() : 0",
}

AGGREGATIONS = {
    "sum": ("s = 0;", "s = s + ({payload});", "s"),
    "count": ("s = 0;", "s = s + 1;", "s"),
    "max": ("s = 0;", "s = Math.max(s, ({payload}));", "s"),
    "min": ("s = 999;", "if (({payload}) < s) {{ s = ({payload}); }}", "s"),
    "list": ("s = new ArrayList();", "s.add({payload});", "s"),
    "set": ("s = new HashSet();", "s.add({payload});", "s"),
    "exists": ("s = false;", "if (({payload}) > 20) {{ s = true; }}", "s"),
}


def _source(pred_key, payload_key, agg_key):
    init, update, var = AGGREGATIONS[agg_key]
    payload = PAYLOADS[payload_key]
    update = update.format(payload=payload)
    pred = PREDICATES[pred_key]
    body = update if pred is None else f"if ({pred}) {{ {update} }}"
    return f"""
    f() {{
        q = executeQuery("from Items as t");
        {init}
        for (t : q) {{
            {body}
        }}
        return {var};
    }}
    """


# concat payloads inside count/exists conditions make no sense; skip those.
_SKIP = {("count",), }


def _cases():
    for pred in PREDICATES:
        for payload in PAYLOADS:
            for agg in AGGREGATIONS:
                if agg in ("count", "exists") and payload != "column":
                    continue  # payload is unused (count) or non-numeric mix
                if agg in ("sum", "max", "min") and payload == "concat":
                    continue  # arithmetic over strings
                yield pred, payload, agg


@pytest.mark.parametrize(
    "pred,payload,agg", list(_cases()), ids=lambda v: str(v)
)
def test_grid_equivalence(pred, payload, agg):
    source = _source(pred, payload, agg)
    report = optimize_program(source, "f", _CATALOG)
    assert report.status == "success", report.variables["s"].reason
    assert report.rewritten is not None
    db = _database()
    c1, c2 = Connection(db), Connection(db)
    r1 = Interpreter(report.original, c1).run("f")
    r2 = Interpreter(report.rewritten, c2).run("f")
    assert r1 == r2, f"{pred}/{payload}/{agg}: {r1} != {r2}"
    assert c2.stats.rows_transferred <= c1.stats.rows_transferred
