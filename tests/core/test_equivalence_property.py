"""Property-based equivalence: Theorem 1 end-to-end.

For randomly generated table contents, the original program and the
rewritten (SQL-using) program must compute identical results with identical
printed output.  This is the paper's correctness claim exercised over the
whole pipeline (D-IR → F-IR → rules → SQL → rewrite) rather than unit by
unit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Catalog, Connection, Database
from repro.core import optimize_program
from repro.interp import Interpreter

_catalog = Catalog()
_catalog.define("board", ["id", "rnd_id", "p1", "p2"], key=("id",))
_catalog.define("orders", ["id", "cust", "amount"], key=("id",))
_catalog.define("customers", ["cust", "region"], key=("cust",))

_small_int = st.integers(min_value=-50, max_value=50)


def _board_rows():
    return st.lists(
        st.tuples(st.integers(1, 3), _small_int, _small_int),
        max_size=12,
    ).map(
        lambda rows: [
            {"id": i + 1, "rnd_id": rnd, "p1": p1, "p2": p2}
            for i, (rnd, p1, p2) in enumerate(rows)
        ]
    )


def _orders_rows():
    return st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)),
        max_size=12,
    ).map(
        lambda rows: [
            {"id": i + 1, "cust": cust, "amount": amount}
            for i, (cust, amount) in enumerate(rows)
        ]
    )


def _db_with(table, rows):
    db = Database(_catalog)
    db.insert_many(table, rows)
    if table != "customers":
        db.insert_many(
            "customers", [{"cust": c, "region": "x"} for c in ("a", "b", "c")]
        )
    return db


def _both(report, db, function):
    c1, c2 = Connection(db), Connection(db)
    i1 = Interpreter(report.original, c1)
    r1 = i1.run(function)
    i2 = Interpreter(report.rewritten, c2)
    r2 = i2.run(function)
    return r1, r2


MAX_SOURCE = """
f() {
    q = executeQuery("from Board as b where b.rnd_id = 1");
    m = 0;
    for (t : q) {
        s = Math.max(t.getP1(), t.getP2());
        if (s > m) { m = s; }
    }
    return m;
}
"""

SUM_SOURCE = """
f() {
    q = executeQuery("from Orders as o");
    total = 0;
    for (t : q) { total = total + t.getAmount(); }
    return total;
}
"""

FILTER_SOURCE = """
f() {
    q = executeQuery("from Orders as o");
    xs = new ArrayList();
    for (t : q) {
        if (t.getAmount() > 10) { xs.add(t.getAmount()); }
    }
    return xs;
}
"""

COUNT_SOURCE = """
f() {
    q = executeQuery("from Orders as o");
    n = 0;
    for (t : q) { if (t.getAmount() > 20) { n = n + 1; } }
    return n;
}
"""

EXISTS_SOURCE = """
f() {
    q = executeQuery("from Orders as o");
    found = false;
    for (t : q) { if (t.getAmount() > 90) { found = true; } }
    return found;
}
"""

GROUPBY_SOURCE = """
f() {
    custs = executeQuery("from Customers as c");
    result = new ArrayList();
    for (c : custs) {
        total = 0;
        orders = executeQuery("select o.amount from Orders o where o.cust = '" + c.getCust() + "'");
        for (o : orders) { total = total + o.getAmount(); }
        result.add(new Pair(c.getCust(), total));
    }
    return result;
}
"""

ARGMAX_SOURCE = """
f() {
    q = executeQuery("from Orders as o");
    best = null;
    m = 0;
    for (t : q) {
        if (t.getAmount() > m) { m = t.getAmount(); best = t.getCust(); }
    }
    return best;
}
"""

_REPORTS = {}


def _report(source, function="f"):
    if source not in _REPORTS:
        _REPORTS[source] = optimize_program(source, function, _catalog)
        assert _REPORTS[source].rewritten is not None
    return _REPORTS[source]


@given(_board_rows())
@settings(max_examples=60, deadline=None)
def test_max_equivalence(rows):
    report = _report(MAX_SOURCE)
    r1, r2 = _both(report, _db_with("board", rows), "f")
    assert r1 == r2


@given(_orders_rows())
@settings(max_examples=60, deadline=None)
def test_sum_equivalence(rows):
    report = _report(SUM_SOURCE)
    r1, r2 = _both(report, _db_with("orders", rows), "f")
    assert r1 == r2


@given(_orders_rows())
@settings(max_examples=60, deadline=None)
def test_filter_equivalence_preserves_order(rows):
    report = _report(FILTER_SOURCE)
    r1, r2 = _both(report, _db_with("orders", rows), "f")
    assert r1 == r2


@given(_orders_rows())
@settings(max_examples=60, deadline=None)
def test_count_equivalence(rows):
    report = _report(COUNT_SOURCE)
    r1, r2 = _both(report, _db_with("orders", rows), "f")
    assert r1 == r2


@given(_orders_rows())
@settings(max_examples=60, deadline=None)
def test_exists_equivalence(rows):
    report = _report(EXISTS_SOURCE)
    r1, r2 = _both(report, _db_with("orders", rows), "f")
    assert r1 == r2


@given(_orders_rows())
@settings(max_examples=40, deadline=None)
def test_groupby_equivalence(rows):
    report = _report(GROUPBY_SOURCE)
    r1, r2 = _both(report, _db_with("orders", rows), "f")
    assert r1 == r2


@given(_orders_rows())
@settings(max_examples=60, deadline=None)
def test_argmax_equivalence(rows):
    report = _report(ARGMAX_SOURCE)
    r1, r2 = _both(report, _db_with("orders", rows), "f")
    assert r1 == r2
