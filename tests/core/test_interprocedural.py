"""Interprocedural extraction tests (paper Section 3.3 / Appendix D.6:
"our techniques ... can be applied to complex programs that include
function calls")."""

from repro.core import extract_sql, optimize_program
from tests.conftest import run_both


class TestQueryBehindFunctionCall:
    SOURCE = """
    fetchBoards() {
        return executeQuery("from Board as b where b.rnd_id = 1");
    }
    findMax() {
        boards = fetchBoards();
        m = 0;
        for (t : boards) {
            if (t.getP1() > m) { m = t.getP1(); }
        }
        return m;
    }
    """

    def test_query_resolved_through_callee(self, catalog):
        report = extract_sql(self.SOURCE, "findMax", catalog)
        assert report.status == "success"
        assert "rnd_id = 1" in report.variables["m"].sql

    def test_equivalence(self, catalog, database):
        report = optimize_program(self.SOURCE, "findMax", catalog)
        v1, v2, _, _ = run_both(report, database, "findMax")
        assert v1 == v2 == 10


class TestComputationInHelper:
    SOURCE = """
    scoreOf(t) {
        return Math.max(t.getP1(), t.getP2());
    }
    best() {
        q = executeQuery("from Board as b");
        m = 0;
        for (t : q) {
            s = scoreOf(t);
            if (s > m) { m = s; }
        }
        return m;
    }
    """

    def test_helper_inlined_into_aggregate(self, catalog):
        report = extract_sql(self.SOURCE, "best", catalog)
        assert report.status == "success"
        assert "GREATEST" in report.variables["m"].sql

    def test_equivalence(self, catalog, database):
        report = optimize_program(self.SOURCE, "best", catalog)
        v1, v2, _, _ = run_both(report, database, "best")
        assert v1 == v2 == 99


class TestConditionalHelper:
    SOURCE = """
    isBig(t) {
        if (t.getBudget() > 15) { return true; }
        return false;
    }
    bigNames() {
        q = executeQuery("from Project as p");
        xs = new ArrayList();
        for (t : q) {
            if (isBig(t)) { xs.add(t.getName()); }
        }
        return xs;
    }
    """

    def test_conditional_helper_inlined(self, catalog):
        report = extract_sql(self.SOURCE, "bigNames", catalog)
        assert report.status == "success"
        assert "budget" in report.variables["xs"].sql

    def test_equivalence(self, catalog, database):
        report = optimize_program(self.SOURCE, "bigNames", catalog)
        v1, v2, _, _ = run_both(report, database, "bigNames")
        assert v1 == v2 == ["beta", "gamma"]


class TestParameterisedHelperQuery:
    SOURCE = """
    boardsOf(r) {
        return executeQuery("select * from board where rnd_id = :r");
    }
    total(r) {
        q = boardsOf(r);
        s = 0;
        for (t : q) { s = s + t.getP1(); }
        return s;
    }
    """

    def test_actual_parameter_threads_through(self, catalog):
        report = extract_sql(self.SOURCE, "total", catalog)
        assert report.status == "success"
        assert ":r" in report.variables["s"].sql

    def test_equivalence(self, catalog, database):
        from repro.db import Connection
        from repro.interp import Interpreter

        report = optimize_program(self.SOURCE, "total", catalog)
        assert report.rewritten is not None
        c1, c2 = Connection(database), Connection(database)
        r1 = Interpreter(report.original, c1).run("total", 1)
        r2 = Interpreter(report.rewritten, c2).run("total", 1)
        assert r1 == r2 == 11


class TestRecursionStaysSafe:
    def test_recursive_helper_fails_cleanly(self, catalog):
        source = """
        weird(t) { return weird(t); }
        f() {
            q = executeQuery("from Board as b");
            s = 0;
            for (t : q) { s = s + weird(t); }
            return s;
        }
        """
        report = extract_sql(source, "f", catalog)
        assert report.status == "failed"
