"""ExtractOptions: the consolidated options object and its compat path."""

import json

import pytest

from repro import Catalog, ExtractOptions, extract_sql, optimize_program
from repro.workloads import FIND_MAX_SCORE, matoso_catalog

SOURCE = """
unfinished() {
    projects = executeQuery("from Project as p");
    names = new ArrayList();
    for (p : projects) {
        if (p.getFinished() == false) { names.add(p.getName()); }
    }
    return names;
}
"""


def _catalog():
    return Catalog.from_dict(
        {"project": {"columns": ["id", "name", "finished"], "key": ["id"]}}
    )


class TestDataclass:
    def test_defaults(self):
        options = ExtractOptions()
        assert options.dialect == "repro"
        assert options.policy == "heuristic"
        assert options.ordering_matters is True
        assert options.allow_temp_tables is False

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExtractOptions().dialect = "mysql"

    def test_validation(self):
        with pytest.raises(ValueError):
            ExtractOptions(dialect="oracle")
        with pytest.raises(ValueError):
            ExtractOptions(policy="yolo")

    def test_dict_round_trip(self):
        options = ExtractOptions(dialect="postgres", ordering_matters=False)
        assert ExtractOptions.from_dict(options.to_dict()) == options

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            ExtractOptions.from_dict({"dialect": "repro", "turbo": True})

    def test_replace(self):
        options = ExtractOptions().replace(dialect="mysql")
        assert options.dialect == "mysql"
        with pytest.raises(ValueError):
            ExtractOptions().replace(dialect="nope")


class TestEquivalenceWithLegacyKwargs:
    def test_extract_sql_dialect(self):
        catalog = _catalog()
        with pytest.deprecated_call():
            legacy = extract_sql(SOURCE, "unfinished", catalog, dialect="postgres")
        modern = extract_sql(
            SOURCE, "unfinished", catalog, options=ExtractOptions(dialect="postgres")
        )
        assert legacy.status == modern.status
        assert legacy.variables["names"].sql == modern.variables["names"].sql

    def test_extract_sql_ordering_and_temp_tables(self):
        catalog = _catalog()
        with pytest.deprecated_call():
            legacy = extract_sql(
                SOURCE,
                "unfinished",
                catalog,
                ordering_matters=False,
                allow_temp_tables=True,
            )
        modern = extract_sql(
            SOURCE,
            "unfinished",
            catalog,
            options=ExtractOptions(ordering_matters=False, allow_temp_tables=True),
        )
        assert legacy.variables["names"].sql == modern.variables["names"].sql

    def test_optimize_program_policy(self):
        with pytest.deprecated_call():
            legacy = optimize_program(
                FIND_MAX_SCORE, "findMaxScore", matoso_catalog(), policy="heuristic"
            )
        modern = optimize_program(
            FIND_MAX_SCORE,
            "findMaxScore",
            matoso_catalog(),
            options=ExtractOptions(policy="heuristic"),
        )
        assert legacy.rewritten_loops == modern.rewritten_loops
        assert legacy.variables["scoreMax"].sql == modern.variables["scoreMax"].sql

    def test_mixing_styles_is_an_error(self):
        catalog = _catalog()
        with pytest.raises(TypeError):
            extract_sql(
                SOURCE,
                "unfinished",
                catalog,
                dialect="mysql",
                options=ExtractOptions(),
            )
        with pytest.raises(TypeError):
            optimize_program(
                SOURCE,
                "unfinished",
                catalog,
                policy="cost",
                options=ExtractOptions(),
            )

    def test_options_must_be_extract_options(self):
        with pytest.raises(TypeError):
            extract_sql(SOURCE, "unfinished", _catalog(), options={"dialect": "repro"})

    def test_unknown_policy_still_value_error(self):
        with pytest.deprecated_call():
            with pytest.raises(ValueError):
                optimize_program(SOURCE, "unfinished", _catalog(), policy="bogus")


class TestReportToDict:
    def test_round_trips_through_json(self):
        report = optimize_program(FIND_MAX_SCORE, "findMaxScore", matoso_catalog())
        data = report.to_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["status"] == "success"
        assert data["function"] == "findMaxScore"
        assert data["variables"]["scoreMax"]["sql"].startswith("SELECT")
        assert isinstance(data["rewritten"], str)  # unparsed program text

    def test_variable_extraction_to_dict(self):
        report = extract_sql(SOURCE, "unfinished", _catalog())
        entry = report.variables["names"].to_dict()
        assert entry["variable"] == "names"
        assert entry["status"] == "success"
        assert "node" not in entry  # internal IR never serializes

    def test_unrewritten_report_has_null_rewritten(self):
        report = extract_sql(SOURCE, "unfinished", _catalog())
        assert report.to_dict()["rewritten"] is None
