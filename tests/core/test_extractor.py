"""End-to-end extraction pipeline tests (paper Figure 1 walk-through)."""

from repro.core import (
    STATUS_CAPABLE,
    STATUS_FAILED,
    STATUS_SUCCESS,
    extract_sql,
    optimize_program,
)

FIGURE2 = """
findMaxScore() {
    boards = executeQuery("from Board as b where b.rnd_id = 1");
    scoreMax = 0;
    for (t : boards) {
        p1 = t.getP1();
        p2 = t.getP2();
        p3 = t.getP3();
        p4 = t.getP4();
        score = Math.max(p1, p2);
        score = Math.max(score, p3);
        score = Math.max(score, p4);
        if (score > scoreMax)
            scoreMax = score;
    }
    return scoreMax;
}
"""


class TestFigure2WalkThrough:
    """The paper's running example: Figure 2 → Figure 3(d)."""

    def test_extraction_succeeds(self, catalog):
        report = extract_sql(FIGURE2, "findMaxScore", catalog)
        assert report.status == STATUS_SUCCESS
        extraction = report.variables["scoreMax"]
        assert extraction.ok

    def test_sql_matches_figure3d(self, catalog):
        report = extract_sql(FIGURE2, "findMaxScore", catalog)
        sql = report.variables["scoreMax"].sql
        assert "MAX(GREATEST(GREATEST(GREATEST(p1, p2), p3), p4))" in sql
        assert "rnd_id = 1" in sql

    def test_only_live_variable_targeted(self, catalog):
        report = extract_sql(FIGURE2, "findMaxScore", catalog)
        assert set(report.variables) == {"scoreMax"}

    def test_equivalence(self, catalog, database):
        from tests.conftest import run_both

        report = optimize_program(FIGURE2, "findMaxScore", catalog)
        v1, v2, s1, s2 = run_both(report, database, "findMaxScore")
        assert v1 == v2 == 50
        assert s2.bytes_transferred < s1.bytes_transferred

    def test_empty_table_keeps_initial_value(self, catalog):
        from repro.db import Connection, Database
        from repro.interp import Interpreter

        report = optimize_program(FIGURE2, "findMaxScore", catalog)
        empty = Database(catalog)
        c1, c2 = Connection(empty), Connection(empty)
        r1 = Interpreter(report.original, c1).run("findMaxScore")
        r2 = Interpreter(report.rewritten, c2).run("findMaxScore")
        assert r1 == r2 == 0  # the imperative initial value survives

    def test_extraction_time_recorded(self, catalog):
        report = extract_sql(FIGURE2, "findMaxScore", catalog)
        assert report.extraction_time_ms > 0
        # the paper reports < 1–2 s per sample; we are well under
        assert report.extraction_time_ms < 2000

    def test_optimize_time_includes_rewrite_phase(self, catalog, monkeypatch):
        """``optimize_program`` used to report only ``extract_sql``'s elapsed
        time; the rewrite/DCE/consolidation phase ran after the stamp.  Delay
        consolidation artificially and check the report notices."""
        import time as time_module

        import repro.rewrite as rewrite_module

        real = rewrite_module.consolidate_loops

        def slow_consolidate(*args, **kwargs):
            time_module.sleep(0.05)
            return real(*args, **kwargs)

        monkeypatch.setattr(rewrite_module, "consolidate_loops", slow_consolidate)
        report = optimize_program(FIGURE2, "findMaxScore", catalog)
        assert report.extraction_time_ms >= 50.0


class TestStatusClassification:
    def test_capable_for_unimplemented_string_ops(self, catalog):
        """The Table 1 '✓' path: technique-representable, no SQL emitter."""
        source = """
        f() {
            q = executeQuery("from Project as p");
            xs = new ArrayList();
            for (t : q) {
                if (t.getName().startsWith("a")) { xs.add(t.getName()); }
            }
            return xs;
        }
        """
        report = extract_sql(source, "f", catalog)
        assert report.status == STATUS_CAPABLE

    def test_failed_for_custom_comparator(self, catalog):
        """The paper's explicit limitation (samples 5 and 7)."""
        source = """
        f(pivot) {
            q = executeQuery("from Project as p");
            xs = new ArrayList();
            for (t : q) {
                if (t.getName().compareTo(pivot) > 0) { xs.add(t.getName()); }
            }
            return xs;
        }
        """
        report = extract_sql(source, "f", catalog)
        assert report.status == STATUS_FAILED

    def test_failed_for_db_update_dependency(self, catalog):
        source = """
        f() {
            q = executeQuery("from Project as p");
            n = 0;
            for (t : q) {
                executeUpdate("update project set budget = 0");
                n = n + 1;
            }
            return n;
        }
        """
        report = extract_sql(source, "f", catalog)
        assert report.status == STATUS_FAILED

    def test_failed_for_while_loop(self, catalog):
        source = "f(n) { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }"
        report = extract_sql(source, "f", catalog, targets=["s"])
        assert report.status == STATUS_FAILED


class TestArgmaxIntegration:
    SOURCE = """
    f() {
        q = executeQuery("from Project as p");
        best = null;
        maxBudget = 0;
        for (p : q) {
            if (p.getBudget() > maxBudget) {
                maxBudget = p.getBudget();
                best = p.getName();
            }
        }
        return new Pair(maxBudget, best);
    }
    """

    def test_both_variables_extracted(self, catalog):
        report = extract_sql(self.SOURCE, "f", catalog)
        assert report.variables["maxBudget"].ok
        assert report.variables["best"].ok  # via the Appendix B relaxation

    def test_equivalence(self, catalog, database):
        from tests.conftest import run_both

        report = optimize_program(self.SOURCE, "f", catalog)
        v1, v2, _, _ = run_both(report, database, "f")
        assert v1 == v2 == (30, "gamma")

    def test_ties_pick_first(self, catalog, database):
        database.insert("project", {"id": 9, "name": "omega", "finished": False, "budget": 30})
        from tests.conftest import run_both

        report = optimize_program(self.SOURCE, "f", catalog)
        v1, v2, _, _ = run_both(report, database, "f")
        assert v1 == v2 == (30, "gamma")  # strict > keeps the first maximum


class TestPartialExtraction:
    def test_other_variables_extracted_when_one_fails(self, catalog):
        """Paper: 'techniques are able to extract equivalent SQL partially
        for some variables ... while leaving other parts of code intact'."""
        source = """
        f(pivot) {
            q = executeQuery("from Project as p");
            total = 0;
            weird = null;
            for (t : q) {
                total = total + t.getBudget();
                if (t.getName().compareTo(pivot) > 0) { weird = t.getName(); }
            }
            return total + weird;
        }
        """
        report = extract_sql(source, "f", catalog)
        assert report.variables["total"].ok
        assert not report.variables["weird"].ok
