"""Rewrite-policy tests: Section 5.3 heuristic vs Appendix C cost-based."""

import pytest

from repro.core import optimize_program
from repro.workloads import sample, wilos_catalog, wilos_database

_CATALOG = wilos_catalog()


class TestPolicies:
    def test_heuristic_rewrites_clean_aggregation(self):
        s = sample(9)
        report = optimize_program(s.source, s.function, _CATALOG, policy="heuristic")
        assert report.rewritten_loops

    def test_cost_policy_rewrites_clean_aggregation(self):
        s = sample(9)
        db = wilos_database(scale=100, catalog=_CATALOG)
        report = optimize_program(
            s.source, s.function, _CATALOG, policy="cost", database=db
        )
        assert report.rewritten_loops

    def test_cost_policy_can_decline_small_win(self):
        """A whole-tuple collect over a tiny table: the rewrite saves almost
        nothing and the cost model may keep the original; either decision
        must still yield an equivalent program."""
        from repro.db import Connection, Database
        from repro.interp import Interpreter

        s = sample(6)
        db = wilos_database(scale=10, catalog=_CATALOG)
        report = optimize_program(
            s.source, s.function, _CATALOG, policy="cost", database=db
        )
        target = report.rewritten if report.rewritten is not None else report.original
        c1, c2 = Connection(db), Connection(db)
        r1 = Interpreter(report.original, c1).run(s.function)
        r2 = Interpreter(target, c2).run(s.function)
        assert list(map(str, r1)) == list(map(str, r2))

    def test_unknown_policy_raises(self):
        s = sample(9)
        with pytest.raises(ValueError):
            optimize_program(s.source, s.function, _CATALOG, policy="yolo")

    def test_policies_agree_on_figure7a_shape(self):
        source = """
        f(pivot) {
            q = executeQuery("from Project as p");
            total = 0;
            weird = null;
            for (t : q) {
                total = total + t.getBudget();
                if (t.getName().compareTo(pivot) > 0) { weird = t.getName(); }
            }
            return new Pair(total, weird);
        }
        """
        db = wilos_database(scale=100, catalog=_CATALOG)
        heuristic = optimize_program(source, "f", _CATALOG, policy="heuristic")
        cost = optimize_program(source, "f", _CATALOG, policy="cost", database=db)
        assert not heuristic.rewritten_loops
        assert not cost.rewritten_loops
