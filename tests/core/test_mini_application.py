"""End-to-end mini application: several functions optimised and executed.

Simulates the downstream workflow: an application module with many entry
points, each run through ``optimize_program``, all rewrites verified for
output equality and for reduced database traffic — the way a user of this
library would adopt it.
"""

import pytest

from repro import Catalog, Connection, Database
from repro.core import optimize_program
from repro.interp import Interpreter

APPLICATION = """
activeUserNames() {
    users = executeQuery("from Users as u");
    names = new ArrayList();
    for (u : users) {
        if (u.getActive()) { names.add(u.getName()); }
    }
    return names;
}

orderVolume(minAmount) {
    orders = executeQuery("from Orders as o");
    volume = 0;
    for (o : orders) {
        if (o.getAmount() >= minAmount) { volume = volume + o.getAmount(); }
    }
    return volume;
}

customerTotals() {
    users = executeQuery("from Users as u where u.active = true");
    totals = new ArrayList();
    for (u : users) {
        t = 0;
        orders = executeQuery("select o.amount from Orders o where o.user_id = " + u.getId());
        for (o : orders) { t = t + o.getAmount(); }
        totals.add(new Pair(u.getName(), t));
    }
    return totals;
}

biggestSpender() {
    users = executeQuery("from Users as u");
    best = null;
    most = 0;
    for (u : users) {
        spent = executeScalar("select sum(o.amount) from Orders o where o.user_id = " + u.getId());
        if (spent == null) { spent = 0; }
        if (spent > most) { most = spent; best = u.getName(); }
    }
    return best;
}

hasUnshipped() {
    orders = executeQuery("from Orders as o");
    found = false;
    for (o : orders) {
        if (o.getShipped() == false) { found = true; }
    }
    return found;
}

auditReport() {
    orders = executeQuery("from Orders as o where o.amount > 15");
    for (o : orders) {
        who = executeScalar("select u.name from Users u where u.id = " + o.getUser_id());
        print(who);
        print(o.getAmount());
    }
}
"""

FUNCTIONS = {
    "activeUserNames": (),
    "orderVolume": (15,),
    "hasUnshipped": (),
    "customerTotals": (),
    "auditReport": (),
}


@pytest.fixture(scope="module")
def app_catalog():
    catalog = Catalog()
    catalog.define("users", ["id", "name", "active"], key=("id",))
    catalog.define("orders", ["id", "user_id", "amount", "shipped"], key=("id",))
    return catalog


@pytest.fixture
def app_db(app_catalog):
    db = Database(app_catalog)
    db.insert_many(
        "users",
        [
            {"id": 1, "name": "ann", "active": True},
            {"id": 2, "name": "bob", "active": False},
            {"id": 3, "name": "cat", "active": True},
        ],
    )
    db.insert_many(
        "orders",
        [
            {"id": 1, "user_id": 1, "amount": 10, "shipped": True},
            {"id": 2, "user_id": 1, "amount": 30, "shipped": False},
            {"id": 3, "user_id": 3, "amount": 20, "shipped": True},
            {"id": 4, "user_id": 2, "amount": 99, "shipped": True},
        ],
    )
    return db


@pytest.mark.parametrize("function,args", list(FUNCTIONS.items()))
def test_each_entry_point_optimises_and_matches(function, args, app_catalog, app_db):
    report = optimize_program(APPLICATION, function, app_catalog)
    assert report.rewritten is not None, f"{function} was not rewritten"
    c1, c2 = Connection(app_db), Connection(app_db)
    i1 = Interpreter(report.original, c1)
    r1 = i1.run(function, *args)
    i2 = Interpreter(report.rewritten, c2)
    r2 = i2.run(function, *args)
    if function == "auditReport":
        assert i1.last_out == i2.last_out
    else:
        assert r1 == r2
    assert c2.stats.queries_executed <= c1.stats.queries_executed
    assert c2.stats.simulated_time_ms <= c1.stats.simulated_time_ms * 1.05


def test_expected_results(app_catalog, app_db):
    expectations = {
        "activeUserNames": ((), ["ann", "cat"]),
        "orderVolume": ((15,), 149),
        "hasUnshipped": ((), True),
        "customerTotals": ((), [("ann", 40), ("cat", 20)]),
    }
    for function, (args, expected) in expectations.items():
        report = optimize_program(APPLICATION, function, app_catalog)
        conn = Connection(app_db)
        result = Interpreter(report.rewritten, conn).run(function, *args)
        assert result == expected, function


def test_audit_report_collapses_to_single_query(app_catalog, app_db):
    report = optimize_program(APPLICATION, "auditReport", app_catalog)
    conn = Connection(app_db)
    interp = Interpreter(report.rewritten, conn)
    interp.run("auditReport")
    assert conn.stats.queries_executed == 1
    assert interp.last_out == ["ann", 30, "cat", 20, "bob", 99]
