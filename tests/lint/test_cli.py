"""``python -m repro lint``: directory service, cache, exit codes, JSON."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.lint.cli import fail_threshold
from repro.lint.service import LintScanReport, lint_cache_key, lint_directory
from repro.lint import Severity

FIXTURES = Path(__file__).resolve().parent / "fixtures"

DIRTY_SOURCE = """
report() {
    rs = executeQueryCursor("from Project as p");
    n = 0;
    while (rs.next()) { n = n + 1; }
    while (rs.next()) { n = n + 1; }
    return n;
}
"""

CLEAN_SOURCE = """
total() {
    rs = executeQuery("from Project as p");
    t = 0;
    for (r : rs) { t = t + r.getBudget(); }
    return t;
}
"""


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "dirty.mj").write_text(DIRTY_SOURCE)
    (tmp_path / "clean.mj").write_text(CLEAN_SOURCE)
    (tmp_path / "broken.mj").write_text("this is ( not MiniJava")
    return tmp_path


class TestLintDirectory:
    def test_findings_and_parse_errors(self, tree):
        report = lint_directory(tree, use_cache=False)
        assert len(report.files) == 3
        assert set(report.parse_errors) == {"broken.mj"}
        codes = sorted(d["code"] for _p, d in report.all_diagnostics())
        assert codes == ["EQ104", "EQ304"]
        assert report.max_severity is Severity.ERROR

    def test_cold_then_warm_cache(self, tree):
        cold = lint_directory(tree, cache_dir=tree / ".cache")
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        assert cold.cache_stores == 2
        warm = lint_directory(tree, cache_dir=tree / ".cache")
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert [u["cached"] for u in warm.units] == [True, True]
        # Cached and fresh runs agree on the findings.
        assert [d for _p, d in warm.all_diagnostics()] == [
            d for _p, d in cold.all_diagnostics()
        ]

    def test_cache_keys_distinguish_lint_from_scan(self, tree):
        from repro import Catalog, ExtractOptions
        from repro.batch.cache import cache_key

        source = (tree / "dirty.mj").read_text()
        scan_key = cache_key(source, "report", Catalog(), ExtractOptions())
        assert lint_cache_key(source, "report") != scan_key

    def test_source_edit_invalidates_the_key(self):
        assert lint_cache_key("a", "f") != lint_cache_key("b", "f")
        assert lint_cache_key("a", "f") != lint_cache_key("a", "g")

    def test_exceeds_thresholds(self, tree):
        report = lint_directory(tree, use_cache=False)
        assert report.exceeds(Severity.ERROR)
        assert report.exceeds(Severity.INFO)
        assert not report.exceeds(None)

    def test_report_round_trips_through_json(self, tree):
        payload = json.loads(
            json.dumps(lint_directory(tree, use_cache=False).to_dict())
        )
        assert payload["counts"]["error"] == 1
        assert payload["cache"]["dir"] is None

    def test_parallel_matches_serial(self, tree):
        serial = lint_directory(tree, jobs=1, use_cache=False)
        parallel = lint_directory(tree, jobs=2, use_cache=False)
        assert [u["diagnostics"] for u in serial.units] == [
            u["diagnostics"] for u in parallel.units
        ]


class TestFailThreshold:
    def test_parses_choices(self):
        assert fail_threshold("error") is Severity.ERROR
        assert fail_threshold("warning") is Severity.WARNING
        assert fail_threshold("info") is Severity.INFO
        assert fail_threshold("none") is None


class TestCliExitCodes:
    def test_blocker_fails_the_default_threshold(self, tree, capsys):
        (tree / "broken.mj").unlink()
        code = main(["lint", str(tree), "--no-cache"])
        out = capsys.readouterr().out
        assert code == 1
        assert "EQ104" in out

    def test_fail_on_none_always_passes(self, tree, capsys):
        (tree / "broken.mj").unlink()
        assert main(["lint", str(tree), "--no-cache", "--fail-on", "none"]) == 0

    def test_info_only_findings_pass_the_error_threshold(self, tmp_path, capsys):
        (tmp_path / "leak.mj").write_text(
            """
f() {
    rs = executeQueryCursor("from Project as p");
    n = 0;
    while (rs.next()) { n = n + 1; }
    rs.close();
    executeQuery("from Project as p");
    return n;
}
"""
        )
        assert main(["lint", str(tmp_path), "--no-cache"]) == 0
        assert main(["lint", str(tmp_path), "--no-cache", "--fail-on", "info"]) == 1
        out = capsys.readouterr().out
        assert "EQ303" in out

    def test_parse_error_fails(self, tree, capsys):
        code = main(["lint", str(tree), "--no-cache", "--fail-on", "none"])
        assert code == 1
        assert "parse error" in capsys.readouterr().out

    def test_empty_directory_fails(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--no-cache"]) == 1
        assert "no source files" in capsys.readouterr().out

    def test_json_output(self, tree, capsys):
        (tree / "broken.mj").unlink()
        main(["lint", str(tree), "--no-cache", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"info": 1, "warning": 0, "error": 1}
        assert {u["function"] for u in payload["units"]} == {"report", "total"}


class TestCommittedFixtures:
    """The seeded fixture set CI asserts exact codes on."""

    def test_exact_codes(self):
        report = lint_directory(FIXTURES, use_cache=False)
        assert not report.parse_errors
        codes = [d["code"] for _p, d in report.all_diagnostics()]
        assert codes == ["EQ101"]

    def test_clean_fixture_is_clean(self):
        report = lint_directory(FIXTURES, use_cache=False)
        by_file = {
            Path(unit["file"]).name: unit["diagnostics"] for unit in report.units
        }
        assert by_file["clean.mj"] == []
        assert [d["code"] for d in by_file["side_effects.mj"]] == ["EQ101"]
        [diag] = by_file["side_effects.mj"]
        assert diag["span"] == {"line": 10, "col": 9}

    def test_examples_lint_clean_of_blockers_via_cli(self, capsys):
        root = Path(__file__).resolve().parents[2] / "examples" / "minijava"
        main(["lint", str(root), "--no-cache", "--json", "--fail-on", "none"])
        payload = json.loads(capsys.readouterr().out)
        blockers = [
            d
            for unit in payload["units"]
            for d in unit["diagnostics"]
            if d["code"].startswith("EQ1")
        ]
        assert blockers == []
