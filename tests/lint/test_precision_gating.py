"""Points-to-driven blocker gating: downgrades are proofs, not guesses.

The severity-aware ``is_blocker`` plus the alias-escape pass's two
downgrade paths (function-local receiver; defined callee proven neither
to retain nor mutate its argument).  Each downgrade keeps the diagnostic
— at ``INFO`` — so the finding stays visible while extraction proceeds;
and each one must vanish when ``precision=False``, restoring the original
conservative blocker.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, Severity, SourceSpan
from repro.lint.engine import lint_function
from repro.workloads import precision_sample


def diags(source: str, function: str, precision: bool = True):
    return lint_function(source, function, precision=precision)


def by_code(diagnostics, code: str):
    return [d for d in diagnostics if d.code == code]


class TestSeverityAwareBlocker:
    def make(self, severity: Severity) -> Diagnostic:
        return Diagnostic(
            code="EQ103",
            severity=severity,
            message="x",
            span=SourceSpan(1, 1),
            function="f",
        )

    def test_error_eq1xx_blocks(self):
        assert self.make(Severity.ERROR).is_blocker

    def test_downgraded_eq1xx_does_not_block(self):
        assert not self.make(Severity.INFO).is_blocker
        assert not self.make(Severity.WARNING).is_blocker


class TestRetainedLocalDowngrade:
    """The EQ103 shape the precision corpus recovers: the iterated result
    set is passed to a recursive helper the escape summary proves safe."""

    SAMPLE = precision_sample("retained-local")

    def test_precision_downgrades_to_info(self):
        found = by_code(diags(self.SAMPLE.source, self.SAMPLE.function), "EQ103")
        assert found, "the alias finding must stay visible"
        assert all(d.severity == Severity.INFO for d in found)
        assert not any(d.is_blocker for d in found)

    def test_without_precision_the_blocker_stays(self):
        found = by_code(
            diags(self.SAMPLE.source, self.SAMPLE.function, precision=False),
            "EQ103",
        )
        assert found and all(d.is_blocker for d in found)


class TestNoDowngradeWithoutProof:
    def test_opaque_callee_keeps_the_blocker(self):
        source = """
f() {
    rows = executeQuery("from T as t");
    total = 0;
    for (t : rows) {
        total = total + t.getA();
    }
    publish(rows);
    return total;
}
"""
        found = by_code(diags(source, "f"), "EQ103")
        assert found and all(d.is_blocker for d in found)

    def test_mutating_callee_keeps_the_blocker(self):
        source = """
f() {
    rows = executeQuery("from T as t");
    total = 0;
    for (t : rows) {
        total = total + t.getA();
    }
    drain(rows);
    return total;
}

drain(c) {
    c.clear();
    return 0;
}
"""
        found = by_code(diags(source, "f"), "EQ103")
        assert found and all(d.is_blocker for d in found)


class TestDeadBranchDischarge:
    """Blockers inside statically-dead branches disappear entirely: the
    branch is pruned before the lint gate ever runs."""

    def codes(self, name: str, precision: bool):
        sample = precision_sample(name)
        return {
            d.code
            for d in diags(sample.source, sample.function, precision=precision)
            if d.is_blocker
        }

    def test_dead_logging_blocker_discharged(self):
        assert "EQ102" in self.codes("dead-logging", precision=False)
        assert self.codes("dead-logging", precision=True) == set()

    def test_dead_writeback_blocker_discharged(self):
        assert "EQ101" in self.codes("dead-writeback", precision=False)
        assert self.codes("dead-writeback", precision=True) == set()
