"""Every registered pass, exercised on small programs with span assertions.

Each positive case pins the exact (line, col) the finding anchors to, so a
regression in span threading (lexer → parser → AST) or in a pass's anchor
choice fails loudly.  Negative cases pin the deliberate non-findings: the
idioms that look like violations but are sound.
"""

from repro.lint import lint_program


def findings(source: str):
    """(code, "line:col", variable, loop_sid) per diagnostic, report order."""
    return [
        (d.code, str(d.span), d.variable, d.loop_sid)
        for d in lint_program(source).diagnostics
    ]


def codes(source: str):
    return [d.code for d in lint_program(source).diagnostics]


class TestLoopSideEffects:
    def test_eq101_direct_write(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    for (r : rs) { executeUpdate("update project set done = 1"); }
    return 0;
}
"""
        assert findings(source) == [("EQ101", "4:20", "", 2)]

    def test_eq101_transitive_write_via_callee(self):
        source = """
mark() { executeUpdate("update project set done = 1"); return 0; }
f() {
    rs = executeQuery("from Project as p");
    for (r : rs) { mark(); }
    return 0;
}
"""
        [diag] = lint_program(source).diagnostics
        assert diag.code == "EQ101"
        assert str(diag.span) == "5:20"
        assert "transitively writes" in diag.message

    def test_eq102_undefined_callee(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    for (r : rs) { audit(r); }
    return 0;
}
"""
        [diag] = lint_program(source).diagnostics
        assert (diag.code, str(diag.span)) == ("EQ102", "4:20")
        assert "not defined" in diag.message

    def test_eq102_recursive_callee(self):
        source = """
spin(n) { return spin(n); }
f() {
    rs = executeQuery("from Project as p");
    for (r : rs) { spin(1); }
    return 0;
}
"""
        [diag] = lint_program(source).diagnostics
        assert (diag.code, str(diag.span)) == ("EQ102", "5:20")
        assert "recursive" in diag.message

    def test_println_in_loop_is_not_a_blocker(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    for (r : rs) { System.out.println(r.getName()); }
    return 0;
}
"""
        assert findings(source) == []


class TestAliasEscape:
    def test_eq103_setter_is_variable_scoped_on_the_receiver(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    for (r : rs) { r.setName("x"); }
    return 0;
}
"""
        assert findings(source) == [("EQ103", "4:20", "r", 2)]

    def test_eq103_result_set_escapes_to_unknown_callee(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { n = n + 1; }
    stash(rs);
    return n;
}
"""
        [diag] = lint_program(source).diagnostics
        assert (diag.code, str(diag.span), diag.loop_sid) == ("EQ103", "6:5", 3)
        assert diag.variable == ""  # loop-wide: poisons the whole fold

    def test_eq103_known_callee_that_mutates_the_parameter(self):
        source = """
drain(xs) { xs.clear(); return 0; }
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { n = n + 1; }
    drain(rs);
    return n;
}
"""
        [diag] = lint_program(source).diagnostics
        assert (diag.code, str(diag.span)) == ("EQ103", "7:5")
        assert "may be mutated" in diag.message

    def test_known_pure_callee_taking_the_result_set_is_fine(self):
        source = """
count(xs) { return 1; }
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { n = n + 1; }
    m = count(rs);
    return n + m;
}
"""
        assert findings(source) == []


class TestCursorConsumption:
    def test_eq104_while_loops_reconsume_a_cursor(self):
        source = """
f() {
    rs = executeQueryCursor("from Project as p");
    n = 0;
    while (rs.next()) { n = n + 1; }
    while (rs.next()) { n = n + 1; }
    return n;
}
"""
        assert findings(source) == [
            ("EQ304", "3:5", "rs", -1),  # companion: the cursor is never closed
            ("EQ104", "6:5", "", 6),
        ]

    def test_eq104_second_for_over_a_cursor(self):
        source = """
f() {
    rs = executeQueryCursor("from Project as p");
    n = 0;
    for (r : rs) { n = n + 1; }
    for (r : rs) { n = n + 1; }
    return n;
}
"""
        diags = lint_program(source).diagnostics
        eq104 = [d for d in diags if d.code == "EQ104"]
        assert [str(d.span) for d in eq104] == ["6:5"]
        assert "already exhausted" in eq104[0].message

    def test_materialised_result_iterated_twice_is_sound(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { n = n + 1; }
    for (r : rs) { n = n + 1; }
    return n;
}
"""
        assert findings(source) == []


class TestLoopExitSafety:
    def test_eq105_return_mid_loop(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    for (r : rs) { if (r.getBudget() > 10) { return 1; } }
    return 0;
}
"""
        [diag] = lint_program(source).diagnostics
        assert (diag.code, str(diag.span)) == ("EQ105", "4:46")
        assert "'return'" in diag.message

    def test_eq105_bare_break(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { if (r.getBudget() > 10) { break; } n = n + 1; }
    return n;
}
"""
        [diag] = lint_program(source).diagnostics
        assert (diag.code, str(diag.span)) == ("EQ105", "5:46")
        assert "'break'" in diag.message

    def test_boolean_early_exit_idiom_is_normalised_away(self):
        """``found = true; break;`` becomes a conditional fold during
        preprocessing — extractable, so no EQ105."""
        source = """
f() {
    rs = executeQuery("from Project as p");
    found = false;
    for (r : rs) { if (r.getBudget() > 10) { found = true; break; } }
    return found;
}
"""
        assert findings(source) == []

    def test_eq106_try_catch_in_loop(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { try { n = n + 1; } catch (e) { n = 0; } }
    return n;
}
"""
        assert findings(source) == [("EQ106", "5:20", "", 3)]

    def test_try_catch_outside_loops_is_fine(self):
        source = """
f() {
    n = 0;
    try { n = 1; } catch (e) { n = 2; }
    return n;
}
"""
        assert findings(source) == []


class TestNPlusOne:
    def test_eq301_query_per_iteration(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) {
        o = executeQuery("from Orders as x");
        for (y : o) { n = n + 1; }
    }
    return n;
}
"""
        [diag] = lint_program(source).diagnostics
        assert (diag.code, str(diag.span)) == ("EQ301", "6:13")
        assert "once per" in diag.message

    def test_loop_header_query_is_exempt(self):
        source = """
f() {
    n = 0;
    for (r : executeQuery("from Project as p")) { n = n + 1; }
    return n;
}
"""
        assert "EQ301" not in codes(source)


class TestSqlConcatenation:
    def test_eq302_inline_concatenation(self):
        source = """
f(name) {
    rs = executeQuery("from Project as p where p.name = '" + name + "'");
    n = 0;
    for (r : rs) { n = n + 1; }
    return n;
}
"""
        [diag] = lint_program(source).diagnostics
        assert (diag.code, str(diag.span)) == ("EQ302", "3:23")

    def test_eq302_taint_through_a_variable(self):
        source = """
f(name) {
    q = "from Project as p where p.name = '" + name + "'";
    rs = executeQuery(q);
    n = 0;
    for (r : rs) { n = n + 1; }
    return n;
}
"""
        [diag] = lint_program(source).diagnostics
        assert (diag.code, str(diag.span)) == ("EQ302", "4:10")
        assert "'q'" in diag.message

    def test_parameter_placeholders_are_the_endorsed_form(self):
        source = """
f() {
    rs = executeQuery("from Project as p where p.name = :name");
    n = 0;
    for (r : rs) { n = n + 1; }
    return n;
}
"""
        assert findings(source) == []

    def test_pure_literal_concatenation_is_fine(self):
        source = """
f() {
    q = "from Project " + "as p";
    rs = executeQuery(q);
    n = 0;
    for (r : rs) { n = n + 1; }
    return n;
}
"""
        assert findings(source) == []


class TestDeadResults:
    def test_eq303_discarded_and_never_read_results(self):
        source = """
f() {
    executeQuery("from Project as p");
    dead = executeQuery("from Orders as o");
    return 0;
}
"""
        assert findings(source) == [
            ("EQ303", "3:5", "", -1),
            ("EQ303", "4:5", "dead", -1),
        ]

    def test_used_result_is_not_dead(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { n = n + 1; }
    return n;
}
"""
        assert findings(source) == []


class TestUnclosedCursors:
    def test_eq304_cursor_without_close(self):
        source = """
f() {
    rs = executeQueryCursor("from Project as p");
    n = 0;
    while (rs.next()) { n = n + 1; }
    return n;
}
"""
        assert findings(source) == [("EQ304", "3:5", "rs", -1)]

    def test_closed_cursor_is_fine(self):
        source = """
f() {
    rs = executeQueryCursor("from Project as p");
    n = 0;
    while (rs.next()) { n = n + 1; }
    rs.close();
    return n;
}
"""
        assert findings(source) == []

    def test_materialised_executequery_needs_no_close(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { n = n + 1; }
    return n;
}
"""
        assert findings(source) == []


class TestCleanPrograms:
    def test_plain_aggregation_is_clean(self):
        source = """
f() {
    rs = executeQuery("from Project as p");
    total = 0;
    for (r : rs) { total = total + r.getBudget(); }
    return total;
}
"""
        assert findings(source) == []
