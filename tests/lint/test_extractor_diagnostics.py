"""Every extractor bail-out path emits a coded diagnostic with a real span.

The `reason` strings stay byte-compatible with the pre-lint extractor (the
workload and fuzzer suites match on them), so each case asserts both the
legacy reason and the new code/span.
"""

import json

from repro import (
    STATUS_CAPABLE,
    STATUS_FAILED,
    STATUS_SUCCESS,
    extract_sql,
)


def the_extraction(report, variable):
    extraction = report.variables[variable]
    assert extraction.variable == variable
    return extraction


def assert_coded(extraction, code):
    assert [d.code for d in extraction.diagnostics] == [code]
    [diag] = extraction.diagnostics
    assert not diag.span.is_empty, "bail-out diagnostics must carry a span"
    assert diag.severity is not None
    assert diag.message
    return diag


class TestSoundnessGate:
    def test_db_write_in_loop_blocks_with_eq101(self, catalog):
        source = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { executeUpdate("update project set done = 1"); n = n + 1; }
    return n;
}
"""
        extraction = the_extraction(extract_sql(source, "f", catalog), "n")
        assert extraction.status == STATUS_FAILED
        diag = assert_coded(extraction, "EQ101")
        assert str(diag.span) == "5:20"
        assert extraction.reason == diag.message  # reason mirrors the blocker

    def test_unknown_call_blocks_an_otherwise_extractable_loop(self, catalog):
        source = """
f() {
    rs = executeQuery("from Project as p");
    total = 0;
    for (r : rs) { audit(r); total = total + r.getBudget(); }
    return total;
}
"""
        extraction = the_extraction(extract_sql(source, "f", catalog), "total")
        assert extraction.status == STATUS_FAILED
        assert_coded(extraction, "EQ102")

    def test_clean_extraction_has_no_diagnostics(self, catalog):
        source = """
f() {
    rs = executeQuery("from Project as p");
    total = 0;
    for (r : rs) { total = total + r.getBudget(); }
    return total;
}
"""
        report = extract_sql(source, "f", catalog)
        extraction = the_extraction(report, "total")
        assert extraction.status == STATUS_SUCCESS
        assert extraction.diagnostics == []
        assert report.diagnostics == []


class TestBailOutCodes:
    def test_eq206_never_assigned(self, catalog):
        source = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { n = n + 1; }
    return n;
}
"""
        report = extract_sql(source, "f", catalog, targets=["ghost"])
        extraction = the_extraction(report, "ghost")
        assert extraction.status == STATUS_FAILED
        assert extraction.reason == "variable not assigned"
        diag = assert_coded(extraction, "EQ206")
        assert diag.span.line == 2  # anchored at the function header

    def test_eq201_unsupported_construct(self, catalog):
        source = """
f(pivot) {
    q = executeQuery("from Project as p");
    xs = new ArrayList();
    for (t : q) {
        if (t.getName().compareTo(pivot) > 0) { xs.add(t.getName()); }
    }
    return xs;
}
"""
        extraction = the_extraction(extract_sql(source, "f", catalog), "xs")
        assert extraction.status == STATUS_FAILED
        diag = assert_coded(extraction, "EQ201")
        assert diag.span.line == 5  # the loop statement

    def test_eq202_p1_violation(self, catalog):
        source = """
f() {
    rs = executeQuery("from Project as p");
    last = 0;
    for (r : rs) { last = r.getBudget(); }
    return last;
}
"""
        extraction = the_extraction(extract_sql(source, "f", catalog), "last")
        assert extraction.status == STATUS_FAILED
        assert extraction.reason.startswith("P1:")
        assert_coded(extraction, "EQ202")

    def test_eq203_p2_violation_beyond_argmax(self, catalog):
        source = """
f() {
    rs = executeQuery("from Project as p");
    a = 0;
    b = 0;
    for (r : rs) { a = a + r.getBudget(); b = b + a; }
    return b;
}
"""
        report = extract_sql(source, "f", catalog, targets=["b"])
        extraction = the_extraction(report, "b")
        assert extraction.status == STATUS_FAILED
        assert extraction.reason.startswith("P2:")
        assert_coded(extraction, "EQ203")

    def test_eq207_non_query_collection(self, catalog):
        source = """
f(xs) {
    s = 0;
    for (x : xs) { s = s + x.getBudget(); }
    return s;
}
"""
        extraction = the_extraction(extract_sql(source, "f", catalog), "s")
        assert extraction.status == STATUS_FAILED
        assert_coded(extraction, "EQ207")

    def test_eq204_transformation_incomplete(self, catalog):
        source = """
f() {
    q = executeQuery("from Project as p");
    xs = new ArrayList();
    for (t : q) {
        if (t.getName().startsWith("a")) { xs.add(t.getName()); }
    }
    return xs;
}
"""
        extraction = the_extraction(extract_sql(source, "f", catalog), "xs")
        assert extraction.status == STATUS_CAPABLE
        assert extraction.reason == "transformation incomplete: fold remains"
        assert_coded(extraction, "EQ204")

    def test_eq205_no_sql_emitter(self, catalog, monkeypatch):
        """The emitter gap is exercised directly: the pipeline succeeds but
        SQL rendering reports no emitter for the result."""
        import repro.core.extractor as extractor

        monkeypatch.setattr(extractor, "_sql_of", lambda node, dialect: None)
        source = """
f() {
    rs = executeQuery("from Project as p");
    total = 0;
    for (r : rs) { total = total + r.getBudget(); }
    return total;
}
"""
        extraction = the_extraction(extract_sql(source, "f", catalog), "total")
        assert extraction.status == STATUS_CAPABLE
        assert extraction.node is not None
        assert_coded(extraction, "EQ205")


class TestReportPlumbing:
    SOURCE = """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { executeUpdate("update project set done = 1"); n = n + 1; }
    return n;
}
"""

    def test_report_carries_function_level_diagnostics(self, catalog):
        report = extract_sql(self.SOURCE, "f", catalog)
        assert [d.code for d in report.diagnostics] == ["EQ101"]

    def test_to_dict_serialises_diagnostics(self, catalog):
        payload = json.loads(
            json.dumps(extract_sql(self.SOURCE, "f", catalog).to_dict())
        )
        assert [d["code"] for d in payload["diagnostics"]] == ["EQ101"]
        variable = payload["variables"]["n"]
        assert [d["code"] for d in variable["diagnostics"]] == ["EQ101"]
        assert variable["diagnostics"][0]["span"]["line"] == 5

    def test_every_failed_variable_carries_a_coded_span(self, catalog):
        """Acceptance sweep: run a batch of failing shapes and demand a
        non-empty span plus a code on every failure."""
        sources = {
            "write": self.SOURCE,
            "p1": """
f() {
    rs = executeQuery("from Project as p");
    last = 0;
    for (r : rs) { last = r.getBudget(); }
    return last;
}
""",
            "escape": """
f() {
    rs = executeQuery("from Project as p");
    n = 0;
    for (r : rs) { n = n + 1; }
    stash(rs);
    return n;
}
""",
        }
        for name, source in sources.items():
            report = extract_sql(source, "f", catalog)
            for variable, extraction in report.variables.items():
                if extraction.status != STATUS_FAILED:
                    continue
                assert extraction.diagnostics, (name, variable)
                for diag in extraction.diagnostics:
                    assert not diag.span.is_empty, (name, variable, diag)
                    assert diag.code.startswith("EQ"), (name, variable, diag)
