"""Engine-level behaviour: reports, the extraction gate, the corpus check."""

from pathlib import Path

import pytest

from repro.ir import preprocess_program
from repro.lang import ForEach, parse_program, walk_statements
from repro.lint import (
    CODES,
    Diagnostic,
    LintReport,
    Severity,
    SourceSpan,
    blockers_for,
    lint_function,
    lint_program,
    loop_nesting,
    registered_passes,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "minijava"


class TestCorpus:
    """Acceptance criterion: the shipped examples carry no soundness blocker."""

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES.glob("*.mj")), ids=lambda p: p.name
    )
    def test_examples_have_no_eq1xx(self, path):
        report = lint_program(path.read_text())
        assert report.blockers == [], report.render_text(str(path))


class TestLintReport:
    SOURCE = """
f() {
    rs = executeQueryCursor("from Project as p");
    n = 0;
    while (rs.next()) { n = n + 1; }
    while (rs.next()) { n = n + 1; }
    return n;
}
"""

    def test_counts_and_max_severity(self):
        report = lint_program(self.SOURCE)
        assert report.counts() == {"info": 1, "warning": 0, "error": 1}
        assert report.max_severity is Severity.ERROR
        assert [d.code for d in report.blockers] == ["EQ104"]

    def test_clean_report(self):
        report = lint_program("f() { return 0; }")
        assert report.functions == ["f"]
        assert report.max_severity is None
        assert report.render_text("app.mj") == "app.mj: clean (1 function(s) checked)"

    def test_render_text_one_line_per_finding(self):
        lines = lint_program(self.SOURCE).render_text("app.mj").splitlines()
        assert len(lines) == 2
        assert lines[0] == (
            "app.mj:3:5: info EQ304 cursor is never closed: "
            "cursor 'rs' is opened here [f]"
        )
        assert lines[1].startswith("app.mj:6:5: error EQ104 ")

    def test_diagnostics_sorted_by_position(self):
        spans = [d.span for d in lint_program(self.SOURCE).diagnostics]
        assert spans == sorted(spans)

    def test_to_dict(self):
        payload = lint_program(self.SOURCE).to_dict()
        assert payload["functions"] == ["f"]
        assert payload["counts"]["error"] == 1
        assert [d["code"] for d in payload["diagnostics"]] == ["EQ304", "EQ104"]

    def test_lint_function_scopes_to_one_function(self):
        source = self.SOURCE + "\ng() { return 1; }\n"
        assert lint_function(source, "g") == []
        assert [d.code for d in lint_function(source, "f")] == ["EQ304", "EQ104"]


NESTED = """
f() {
    rs = executeQuery("from Project as p");
    os = executeQuery("from Orders as o");
    n = 0;
    for (r : rs) {
        for (o : os) { n = n + 1; }
    }
    for (o : os) { n = n + 1; }
    return n;
}
"""


def _loops(func):
    return [s for s in walk_statements(func.body) if isinstance(s, ForEach)]


class TestLoopNesting:
    def test_outer_covers_inner(self):
        func = preprocess_program(parse_program(NESTED)).function("f")
        outer, inner, trailing = _loops(func)
        nesting = loop_nesting(func)
        assert nesting[outer.sid] == {outer.sid, inner.sid}
        assert nesting[inner.sid] == {inner.sid}
        assert nesting[trailing.sid] == {trailing.sid}


def _blocker(loop_sid, variable=""):
    return Diagnostic(
        span=SourceSpan(3, 1),
        code="EQ101",
        severity=Severity.ERROR,
        message="boom",
        variable=variable,
        loop_sid=loop_sid,
    )


class TestBlockersFor:
    def setup_method(self):
        func = preprocess_program(parse_program(NESTED)).function("f")
        self.outer, self.inner, self.trailing = (loop.sid for loop in _loops(func))
        self.nesting = loop_nesting(func)

    def test_inner_blocker_widens_to_enclosing_loop(self):
        diags = [_blocker(self.inner)]
        assert blockers_for(diags, self.nesting, self.outer, "n") == diags
        assert blockers_for(diags, self.nesting, self.inner, "n") == diags
        assert blockers_for(diags, self.nesting, self.trailing, "n") == []

    def test_outer_blocker_does_not_reach_the_inner_loop(self):
        diags = [_blocker(self.outer)]
        assert blockers_for(diags, self.nesting, self.inner, "n") == []

    def test_variable_scoped_blocker_only_hits_its_target(self):
        diags = [_blocker(self.inner, variable="r")]
        assert blockers_for(diags, self.nesting, self.outer, "r") == diags
        assert blockers_for(diags, self.nesting, self.outer, "n") == []

    def test_no_loop_means_no_blockers(self):
        assert blockers_for([_blocker(self.outer)], self.nesting, -1, "n") == []

    def test_warnings_never_block(self):
        warning = Diagnostic(
            span=SourceSpan(3, 1),
            code="EQ301",
            severity=Severity.WARNING,
            message="n+1",
            loop_sid=self.outer,
        )
        assert blockers_for([warning], self.nesting, self.outer, "n") == []


class TestRegistry:
    def test_every_pass_declares_known_codes(self):
        for name, pass_codes, _fn in registered_passes():
            assert set(pass_codes) <= set(CODES), name

    def test_every_eq1xx_and_eq3xx_code_has_a_pass(self):
        declared = set()
        for _name, pass_codes, _fn in registered_passes():
            declared.update(pass_codes)
        expected = {c for c in CODES if c.startswith(("EQ1", "EQ3"))}
        assert expected <= declared
