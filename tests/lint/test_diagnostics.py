"""Value-object behaviour: severities, spans, diagnostics, the code table."""

import json

import pytest

from repro.lint import BLOCKER_CODES, CODES, Diagnostic, Severity, SourceSpan, code_info


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_is_lowercase_name(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"
        assert str(Severity.INFO) == "info"

    def test_parse_round_trips(self):
        for severity in Severity:
            assert Severity.parse(str(severity)) is severity

    def test_parse_is_case_insensitive(self):
        assert Severity.parse("ERROR") is Severity.ERROR

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="bogus"):
            Severity.parse("bogus")


class TestSourceSpan:
    def test_of_reads_node_position(self):
        from repro.lang import parse_program

        func = parse_program("f() {\n    x = 1;\n    return x;\n}").functions[0]
        span = SourceSpan.of(func.body.statements[0])
        assert (span.line, span.col) == (2, 5)

    def test_default_is_empty(self):
        assert SourceSpan().is_empty
        assert not SourceSpan(3, 1).is_empty

    def test_str(self):
        assert str(SourceSpan(7, 12)) == "7:12"

    def test_orders_by_position(self):
        assert SourceSpan(2, 9) < SourceSpan(3, 1)
        assert SourceSpan(3, 1) < SourceSpan(3, 5)

    def test_to_dict(self):
        assert SourceSpan(4, 2).to_dict() == {"line": 4, "col": 2}


def _diag(line=3, col=5, code="EQ101", severity=Severity.ERROR, **kw):
    return Diagnostic(
        span=SourceSpan(line, col),
        code=code,
        severity=severity,
        message=kw.pop("message", "boom"),
        **kw,
    )


class TestDiagnostic:
    def test_blocker_is_the_eq1_band(self):
        assert _diag(code="EQ101").is_blocker
        assert _diag(code="EQ106").is_blocker
        assert not _diag(code="EQ204", severity=Severity.WARNING).is_blocker
        assert not _diag(code="EQ301", severity=Severity.WARNING).is_blocker

    def test_sorts_by_source_position_then_code(self):
        a = _diag(line=2, code="EQ301", severity=Severity.WARNING)
        b = _diag(line=2, col=9, code="EQ101")
        c = _diag(line=5, code="EQ101")
        assert sorted([c, b, a]) == [a, b, c]

    def test_render(self):
        diag = _diag(function="f")
        assert diag.render("app.mj") == "app.mj:3:5: error EQ101 boom [f]"
        assert diag.render() == "3:5: error EQ101 boom [f]"

    def test_to_dict_is_json_serialisable(self):
        diag = _diag(function="f", variable="total", hint="fix it")
        payload = json.loads(json.dumps(diag.to_dict()))
        assert payload["code"] == "EQ101"
        assert payload["severity"] == "error"
        assert payload["span"] == {"line": 3, "col": 5}
        assert payload["variable"] == "total"
        assert payload["hint"] == "fix it"

    def test_hashable(self):
        assert len({_diag(), _diag()}) == 1


class TestCodeTable:
    EXPECTED = {
        "EQ101", "EQ102", "EQ103", "EQ104", "EQ105", "EQ106",
        "EQ201", "EQ202", "EQ203", "EQ204", "EQ205", "EQ206", "EQ207",
        "EQ301", "EQ302", "EQ303", "EQ304",
    }

    def test_every_expected_code_is_registered(self):
        assert set(CODES) == self.EXPECTED

    def test_band_severities(self):
        for code, info in CODES.items():
            if code.startswith("EQ1"):
                assert info.severity is Severity.ERROR, code
            elif code.startswith("EQ2"):
                assert info.severity is Severity.WARNING, code
            else:
                assert info.severity in (Severity.WARNING, Severity.INFO), code

    def test_blocker_codes_are_exactly_the_eq1_band(self):
        assert BLOCKER_CODES == {c for c in CODES if c.startswith("EQ1")}

    def test_every_code_has_title_and_hint(self):
        for info in CODES.values():
            assert info.title and info.hint

    def test_code_info_lookup(self):
        assert code_info("EQ104").title == "query cursor consumed more than once"

    def test_code_info_miss_names_the_known_codes(self):
        with pytest.raises(KeyError, match="EQ999.*EQ101"):
            code_info("EQ999")
