"""Shared fixtures for the lint suite."""

import pytest

from repro import Catalog


@pytest.fixture
def catalog():
    return Catalog.from_dict(
        {
            "project": {
                "columns": ["id", "name", "finished", "budget"],
                "key": ["id"],
            },
            "orders": {
                "columns": ["id", "customer", "status", "total"],
                "key": ["id"],
            },
        }
    )
