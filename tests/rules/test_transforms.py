"""Transformation rule tests (paper Section 5.1 rules T1–T7)."""

import pytest

from repro.algebra import Catalog
from repro.ir import (
    EConst,
    EExists,
    EFold,
    EOp,
    EQuery,
    EScalarQuery,
    build_dir,
    contains_fold,
    preprocess_program,
)
from repro.fir import loop_to_fold
from repro.lang import parse_program
from repro.rules import RuleEngine


@pytest.fixture
def engine(catalog):
    return RuleEngine(catalog)


def fir_of(source, variable, function="f"):
    program = preprocess_program(parse_program(source))
    ve, ctx = build_dir(program, function)
    outcome = loop_to_fold(ve[variable], ctx.dag)
    assert outcome.ok, outcome.reason
    return outcome.node, ctx


def transform(source, variable, catalog, function="f"):
    node, ctx = fir_of(source, variable, function)
    engine = RuleEngine(catalog, ctx.dag)
    return engine.transform(node)


class TestT1T3Collection:
    def test_whole_tuple_append_is_query(self, catalog):
        result, trace = transform(
            """
            f() {
                q = executeQuery("from Project as p");
                xs = new ArrayList();
                for (t : q) { xs.add(t); }
            }
            """,
            "xs",
            catalog,
        )
        assert isinstance(result, EQuery)
        assert "T1" in trace

    def test_scalar_payload_becomes_projection(self, catalog):
        result, trace = transform(
            """
            f() {
                q = executeQuery("from Project as p");
                xs = new ArrayList();
                for (t : q) { xs.add(t.getName()); }
            }
            """,
            "xs",
            catalog,
        )
        assert isinstance(result, EQuery)
        assert "π" in str(result.rel)
        assert "T1+T3" in trace

    def test_set_insert_gets_distinct(self, catalog):
        result, _ = transform(
            """
            f() {
                q = executeQuery("from Project as p");
                xs = new HashSet();
                for (t : q) { xs.add(t.getName()); }
            }
            """,
            "xs",
            catalog,
        )
        assert "δ" in str(result.rel)

    def test_computed_payload_pushed(self, catalog):
        """T3: scalar functions pushed into the query."""
        result, _ = transform(
            """
            f() {
                q = executeQuery("from Board as b");
                xs = new ArrayList();
                for (t : q) { xs.add(Math.max(t.getP1(), t.getP2())); }
            }
            """,
            "xs",
            catalog,
        )
        assert "GREATEST" in str(result.rel)


class TestT2PredicatePush:
    def test_selection_pushed(self, catalog):
        result, trace = transform(
            """
            f() {
                q = executeQuery("from Project as p");
                xs = new ArrayList();
                for (t : q) { if (t.getFinished() == false) { xs.add(t.getName()); } }
            }
            """,
            "xs",
            catalog,
        )
        assert isinstance(result, EQuery)
        assert "T2" in trace
        assert "σ" in str(result.rel)

    def test_inverted_branch_negates(self, catalog):
        result, trace = transform(
            """
            f() {
                q = executeQuery("from Project as p");
                n = 0;
                for (t : q) { if (t.getFinished()) { } else { n = n + 1; } }
            }
            """,
            "n",
            catalog,
        )
        assert "T2" in trace
        assert "NOT" in str(result)


class TestT5Aggregation:
    def test_sum(self, catalog):
        result, trace = transform(
            'f() { q = executeQuery("from Orders as o"); s = 0; for (t : q) { s = s + t.getAmount(); } }',
            "s",
            catalog,
        )
        assert "T5.1" in trace
        assert result.op == "combine_sum"
        assert isinstance(result.operands[1], EScalarQuery)

    def test_count(self, catalog):
        result, trace = transform(
            'f() { q = executeQuery("from Orders as o"); n = 0; for (t : q) { n = n + 1; } }',
            "n",
            catalog,
        )
        assert "T5.1-count" in trace
        assert isinstance(result, EScalarQuery)
        assert "COUNT" in str(result.rel)

    def test_max_with_nonzero_init_combines(self, catalog):
        result, _ = transform(
            'f() { q = executeQuery("from Board as b"); m = 100; for (t : q) { m = Math.max(m, t.getP1()); } }',
            "m",
            catalog,
        )
        assert result.op == "combine_max"
        assert result.operands[0] == EConst(100)

    def test_conditional_sum_via_case(self, catalog):
        result, _ = transform(
            """
            f() {
                q = executeQuery("from Orders as o");
                s = 0;
                for (t : q) { s = s + (t.getAmount() > 10 ? t.getAmount() : 0); }
            }
            """,
            "s",
            catalog,
        )
        assert "CASE WHEN" in str(result)


class TestExistsForms:
    def test_or_becomes_exists(self, catalog):
        result, trace = transform(
            """
            f() {
                q = executeQuery("from Project as p");
                found = false;
                for (t : q) { if (t.getBudget() > 20) { found = true; } }
            }
            """,
            "found",
            catalog,
        )
        assert isinstance(result, EExists)
        assert not result.negated
        assert "T-exists" in trace

    def test_and_becomes_not_exists(self, catalog):
        result, trace = transform(
            """
            f() {
                q = executeQuery("from Project as p");
                all_ok = true;
                for (t : q) { if (t.getBudget() > 20) { } else { all_ok = false; } }
            }
            """,
            "all_ok",
            catalog,
        )
        assert isinstance(result, EExists)
        assert result.negated


class TestT4Join:
    JOIN_SOURCE = """
    f() {
        users = executeQuery("from WilosUser as u");
        xs = new ArrayList();
        for (u : users) {
            roles = executeQuery("select r.role_name from Role r where r.id = " + u.getRole_id());
            for (r : roles) { xs.add(r.getRole_name()); }
        }
    }
    """

    def test_join_identified(self, catalog):
        result, trace = transform(self.JOIN_SOURCE, "xs", catalog)
        assert isinstance(result, EQuery)
        assert "T4.1" in trace
        assert "⋈" in str(result.rel)

    def test_t6_fires_before_t4(self, catalog):
        _, trace = transform(self.JOIN_SOURCE, "xs", catalog)
        assert "T6" in trace

    def test_list_append_requires_outer_key(self):
        bare = Catalog()
        bare.define("wilosuser", ["id", "name", "role_id"])  # no key!
        bare.define("role", ["id", "role_name"])
        node, ctx = fir_of(self.JOIN_SOURCE, "xs")
        engine = RuleEngine(bare, ctx.dag)
        result, trace = engine.transform(node)
        assert contains_fold(result)  # T4.1 precondition fails
        assert "T4.1" not in trace

    def test_set_insert_works_without_key(self):
        bare = Catalog()
        bare.define("wilosuser", ["id", "name", "role_id"])
        bare.define("role", ["id", "role_name"])
        source = self.JOIN_SOURCE.replace("new ArrayList", "new HashSet")
        node, ctx = fir_of(source, "xs")
        engine = RuleEngine(bare, ctx.dag)
        result, trace = engine.transform(node)
        assert isinstance(result, EQuery)
        assert "T4.2" in trace
        assert "δ" in str(result.rel)


class TestT7Apply:
    def test_correlated_scalar_query_applied(self, catalog):
        result, trace = transform(
            """
            f() {
                custs = executeQuery("from Customers as c");
                xs = new ArrayList();
                for (c : custs) {
                    total = 0;
                    orders = executeQuery("select o.amount from Orders o where o.cust = '" + c.getCust() + "'");
                    for (o : orders) { total = total + o.getAmount(); }
                    xs.add(new Pair(c.getCust(), total));
                }
            }
            """,
            "xs",
            catalog,
        )
        assert "T7" in trace
        assert "OApply" in str(result)

    def test_direct_execute_scalar_applied(self, catalog):
        result, trace = transform(
            """
            f() {
                custs = executeQuery("from Customers as c");
                xs = new ArrayList();
                for (c : custs) {
                    t = executeScalar("select sum(o.amount) from Orders o where o.cust = '" + c.getCust() + "'");
                    xs.add(t);
                }
            }
            """,
            "xs",
            catalog,
        )
        assert "T7" in trace


class TestRuleEngineProperties:
    def test_trace_records_rules(self, catalog):
        _, trace = transform(
            'f() { q = executeQuery("from Orders as o"); s = 0; for (t : q) { s = s + t.getAmount(); } }',
            "s",
            catalog,
        )
        assert trace

    def test_disabled_rule_prevents_rewrite(self, catalog):
        node, ctx = fir_of(
            'f() { q = executeQuery("from Orders as o"); s = 0; for (t : q) { s = s + t.getAmount(); } }',
            "s",
        )
        engine = RuleEngine(catalog, ctx.dag, disabled=frozenset({"T5"}))
        result, _ = engine.transform(node)
        assert contains_fold(result)

    def test_transform_is_idempotent(self, catalog):
        node, ctx = fir_of(
            'f() { q = executeQuery("from Orders as o"); s = 0; for (t : q) { s = s + t.getAmount(); } }',
            "s",
        )
        engine = RuleEngine(catalog, ctx.dag)
        once, _ = engine.transform(node)
        twice, _ = engine.transform(once)
        assert once == twice
