"""MiniJava interpreter tests."""

import pytest

from repro.db import Connection
from repro.interp import Interpreter, InterpreterError, run_program
from repro.lang import parse_program


def run(source, database, function="main", args=()):
    conn = Connection(database)
    interp = Interpreter(parse_program(source), conn)
    result = interp.run(function, *args)
    return result, interp, conn


class TestBasics:
    def test_arithmetic(self, database):
        result, _, _ = run("main() { return 2 + 3 * 4; }", database)
        assert result == 14

    def test_integer_division_truncates(self, database):
        result, _, _ = run("main() { return 7 / 2; }", database)
        assert result == 3

    def test_float_division(self, database):
        result, _, _ = run("main() { return 7.0 / 2; }", database)
        assert result == 3.5

    def test_string_concat_coerces(self, database):
        result, _, _ = run('main() { return "x=" + 1; }', database)
        assert result == "x=1"

    def test_variables_and_reassignment(self, database):
        result, _, _ = run("main() { x = 1; x = x + 1; return x; }", database)
        assert result == 2

    def test_function_args(self, database):
        result, _, _ = run("f(a, b) { return a * b; }", database, "f", (3, 4))
        assert result == 12

    def test_unbound_variable_raises(self, database):
        with pytest.raises(InterpreterError):
            run("main() { return nope; }", database)

    def test_ternary(self, database):
        result, _, _ = run("main() { return 1 > 0 ? 10 : 20; }", database)
        assert result == 10

    def test_short_circuit_and(self, database):
        # RHS would fail (unbound) if evaluated.
        result, _, _ = run("main() { return false && nope > 1; }", database)
        assert result is False


class TestControlFlow:
    def test_if_else(self, database):
        source = "main(x) { if (x > 0) { return 1; } else { return -1; } }"
        assert run(source, database, "main", (5,))[0] == 1
        assert run(source, database, "main", (-5,))[0] == -1

    def test_while(self, database):
        result, _, _ = run(
            "main() { i = 0; s = 0; while (i < 5) { s = s + i; i = i + 1; } return s; }",
            database,
        )
        assert result == 10

    def test_break(self, database):
        result, _, _ = run(
            "main() { s = 0; for (x : items) { if (x > 1) { break; } s = s + x; } return s; }",
            database,
            "main",
        ) if False else (None, None, None)
        # break needs a collection; exercise with a literal list via new ArrayList
        source = """
        main() {
            items = new ArrayList();
            items.add(1); items.add(5); items.add(1);
            s = 0;
            for (x : items) { if (x > 1) { break; } s = s + x; }
            return s;
        }
        """
        assert run(source, database)[0] == 1

    def test_continue(self, database):
        source = """
        main() {
            items = new ArrayList();
            items.add(1); items.add(2); items.add(3);
            s = 0;
            for (x : items) { if (x == 2) { continue; } s = s + x; }
            return s;
        }
        """
        assert run(source, database)[0] == 4

    def test_step_limit_stops_infinite_loop(self, database):
        conn = Connection(database)
        interp = Interpreter(
            parse_program("main() { while (true) { x = 1; } }"), conn, max_steps=1000
        )
        with pytest.raises(InterpreterError):
            interp.run("main")


class TestCollections:
    def test_list_methods(self, database):
        source = """
        main() {
            xs = new ArrayList();
            xs.add(3); xs.add(1);
            return xs.size() + xs.get(0);
        }
        """
        assert run(source, database)[0] == 5

    def test_set_dedups(self, database):
        source = """
        main() {
            s = new HashSet();
            s.add(1); s.add(1); s.add(2);
            return s.size();
        }
        """
        assert run(source, database)[0] == 2

    def test_map(self, database):
        source = """
        main() {
            m = new HashMap();
            m.put("a", 1);
            return m.get("a") + m.size();
        }
        """
        assert run(source, database)[0] == 2

    def test_pair(self, database):
        source = 'main() { p = new Pair(1, "x"); return p.getSecond(); }'
        assert run(source, database)[0] == "x"

    def test_string_builder(self, database):
        source = """
        main() {
            sb = new StringBuilder();
            sb.append("a"); sb.append(1);
            return sb.toString();
        }
        """
        assert run(source, database)[0] == "a1"


class TestQueries:
    def test_execute_query_returns_entities(self, database):
        source = """
        main() {
            rows = executeQuery("select name from project where finished = false");
            names = new ArrayList();
            for (r : rows) { names.add(r.getName()); }
            return names;
        }
        """
        assert run(source, database)[0] == ["alpha", "gamma"]

    def test_hql_query(self, database):
        source = """
        main() {
            rows = executeQuery("from Project as p");
            return rows.size();
        }
        """
        assert run(source, database)[0] == 4

    def test_named_parameter_binds_from_env(self, database):
        source = """
        main(r) {
            rows = executeQuery("select * from board where rnd_id = :r");
            return rows.size();
        }
        """
        assert run(source, database, "main", (1,))[0] == 2

    def test_string_concat_query(self, database):
        source = """
        main() {
            lim = 2;
            rows = executeQuery("select * from board where rnd_id = " + lim);
            return rows.size();
        }
        """
        assert run(source, database)[0] == 1

    def test_execute_scalar(self, database):
        source = 'main() { return executeScalar("select max(p1) from board"); }'
        assert run(source, database)[0] == 99

    def test_execute_scalar_empty_is_null(self, database):
        source = 'main() { return executeScalar("select p1 from board where id = 999"); }'
        assert run(source, database)[0] is None

    def test_execute_exists(self, database):
        source = 'main() { return executeExists("select * from role where id = 1"); }'
        assert run(source, database)[0] is True

    def test_cursor_while_loop(self, database):
        source = """
        main() {
            rs = executeQueryCursor("select p1 from board");
            total = 0;
            while (rs.next()) {
                total = total + rs.getInt("p1");
            }
            return total;
        }
        """
        assert run(source, database)[0] == 110

    def test_entity_getter_and_field(self, database):
        source = """
        main() {
            rows = executeQuery("from Board as b where b.id = 3");
            for (t : rows) { return t.getP1() + t.p2; }
        }
        """
        assert run(source, database)[0] == 101


class TestOutput:
    def test_print_captured(self, database):
        _, interp, _ = run('main() { print("hello"); print(42); }', database)
        assert interp.output == ["hello", "42"]

    def test_system_out_println(self, database):
        _, interp, _ = run('main() { System.out.println("x"); }', database)
        assert interp.output == ["x"]

    def test_null_prints_as_null(self, database):
        _, interp, _ = run("main() { print(null); }", database)
        assert interp.output == ["null"]


class TestUserFunctions:
    def test_call_user_function(self, database):
        source = """
        double(x) { return x * 2; }
        main() { return double(21); }
        """
        assert run(source, database)[0] == 42

    def test_recursive_function(self, database):
        source = """
        fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        main() { return fact(5); }
        """
        assert run(source, database)[0] == 120

    def test_wrong_arity_raises(self, database):
        source = "f(a) { return a; } main() { return f(1, 2); }"
        with pytest.raises(InterpreterError):
            run(source, database)


def test_run_program_helper(database):
    conn = Connection(database)
    result, output = run_program(
        'main() { print("a"); return 7; }', conn, "main"
    )
    assert result == 7
    assert output == ["a"]
