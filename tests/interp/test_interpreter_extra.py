"""Additional interpreter coverage: classic for loops, augmented ops,
nested functions, cursor API details."""

import pytest

from repro.db import Connection
from repro.interp import Interpreter, InterpreterError
from repro.lang import parse_program


def run(source, database, function="main", args=()):
    conn = Connection(database)
    interp = Interpreter(parse_program(source), conn)
    return interp.run(function, *args), interp, conn


class TestClassicForLoop:
    def test_counts(self, database):
        result, _, _ = run(
            "main() { s = 0; for (i = 0; i < 5; i++) { s = s + i; } return s; }",
            database,
        )
        assert result == 10

    def test_empty_iteration(self, database):
        result, _, _ = run(
            "main() { s = 0; for (i = 9; i < 5; i++) { s = s + 1; } return s; }",
            database,
        )
        assert result == 0

    def test_augmented_assignment(self, database):
        result, _, _ = run(
            "main() { s = 1; s += 4; s *= 2; s -= 3; s /= 1; return s; }",
            database,
        )
        assert result == 7


class TestCursorDetails:
    def test_cursor_next_past_end(self, database):
        source = """
        main() {
            rs = executeQueryCursor("select id from role");
            n = 0;
            while (rs.next()) { n = n + 1; }
            more = rs.next();
            return more;
        }
        """
        result, _, _ = run(source, database)
        assert result is False

    def test_getstring_before_next_raises(self, database):
        source = """
        main() {
            rs = executeQueryCursor("select id from role");
            return rs.getInt("id");
        }
        """
        with pytest.raises(Exception):
            run(source, database)

    def test_qualified_column_access(self, database):
        source = """
        main() {
            rows = executeQuery("select u.name from wilosuser u join role r on r.id = u.role_id");
            xs = new ArrayList();
            for (t : rows) { xs.add(t.getName()); }
            return xs;
        }
        """
        result, _, _ = run(source, database)
        assert result == ["ann", "bob", "cat"]


class TestEntitySemantics:
    def test_entities_compare_by_plain_columns(self, database):
        source = """
        main() {
            a = executeQuery("select id from role where id = 1");
            b = executeQuery("select r.id from role r where r.id = 1");
            return a.get(0) == b.get(0);
        }
        """
        result, _, _ = run(source, database)
        assert result is True

    def test_entity_in_set_dedups(self, database):
        source = """
        main() {
            s = new HashSet();
            a = executeQuery("select id from role where id = 1");
            s.add(a.get(0));
            b = executeQuery("select id from role where id = 1");
            s.add(b.get(0));
            return s.size();
        }
        """
        result, _, _ = run(source, database)
        assert result == 1

    def test_missing_column_raises(self, database):
        source = """
        main() {
            rows = executeQuery("select id from role");
            for (t : rows) { return t.getNothing(); }
        }
        """
        with pytest.raises(Exception):
            run(source, database)


class TestStringsAndNulls:
    def test_string_methods_chain(self, database):
        result, _, _ = run(
            'main() { return "  HeLLo ".trim().toLowerCase().substring(0, 4); }',
            database,
        )
        assert result == "hell"

    def test_null_method_call_raises(self, database):
        with pytest.raises(InterpreterError):
            run("main() { x = null; return x.size(); }", database)

    def test_equals_ignore_case(self, database):
        result, _, _ = run(
            'main() { return "ABC".equalsIgnoreCase("abc"); }', database
        )
        assert result is True


class TestOutputVar:
    def test_last_out_tracks_final_state(self, database):
        source = """
        main() {
            __out__ = new ArrayList();
            __out__.add(1);
            __out__.add(2);
            return 0;
        }
        """
        _, interp, _ = run(source, database)
        assert interp.last_out == [1, 2]

    def test_last_out_none_without_out_var(self, database):
        _, interp, _ = run("main() { return 0; }", database)
        assert interp.last_out is None
