"""Lexer tests."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)[:-1]]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_integer_literal(self):
        assert kinds("42") == [TokenType.INT]

    def test_float_literal(self):
        assert kinds("3.14") == [TokenType.FLOAT]

    def test_integer_followed_by_dot_method(self):
        # `1.toString` must not lex 1. as a float
        assert kinds("1.x") == [TokenType.INT, TokenType.DOT, TokenType.IDENT]

    def test_identifier(self):
        assert kinds("scoreMax") == [TokenType.IDENT]

    def test_identifier_with_underscore_and_digits(self):
        assert values("rnd_id2") == ["rnd_id2"]

    def test_keywords(self):
        assert kinds("if else for while return") == [
            TokenType.IF,
            TokenType.ELSE,
            TokenType.FOR,
            TokenType.WHILE,
            TokenType.RETURN,
        ]

    def test_boolean_and_null_literals(self):
        assert kinds("true false null") == [
            TokenType.TRUE,
            TokenType.FALSE,
            TokenType.NULL,
        ]


class TestOperators:
    def test_two_char_operators_win_over_single(self):
        assert kinds("== != <= >= && || += ++") == [
            TokenType.EQ,
            TokenType.NEQ,
            TokenType.LE,
            TokenType.GE,
            TokenType.AND,
            TokenType.OR,
            TokenType.PLUS_ASSIGN,
            TokenType.PLUS_PLUS,
        ]

    def test_single_char_operators(self):
        assert kinds("+ - * / % < > ! = ? :") == [
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.PERCENT,
            TokenType.LT,
            TokenType.GT,
            TokenType.NOT,
            TokenType.ASSIGN,
            TokenType.QUESTION,
            TokenType.COLON,
        ]

    def test_punctuation(self):
        assert kinds("( ) { } [ ] ; , .") == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.SEMI,
            TokenType.COMMA,
            TokenType.DOT,
        ]


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize('"hello"')
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello"

    def test_string_with_escapes(self):
        tokens = tokenize(r'"a\nb\t\"c\""')
        assert tokens[0].value == 'a\nb\t"c"'

    def test_string_containing_sql(self):
        tokens = tokenize('"select * from t where x = 1"')
        assert tokens[0].value == "select * from t where x = 1"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_string_with_newline_raises(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')


class TestComments:
    def test_line_comment_is_skipped(self):
        assert kinds("x // comment here\ny") == [TokenType.IDENT, TokenType.IDENT]

    def test_block_comment_is_skipped(self):
        assert kinds("x /* multi\nline */ y") == [TokenType.IDENT, TokenType.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("x /* never ends")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character_reports_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("x @ y")
        assert excinfo.value.line == 1

    def test_column_after_string(self):
        tokens = tokenize('"ab" x')
        assert tokens[1].column == 6


def test_full_statement():
    source = 'boards = executeQuery("from Board as b");'
    types = kinds(source)
    assert types == [
        TokenType.IDENT,
        TokenType.ASSIGN,
        TokenType.IDENT,
        TokenType.LPAREN,
        TokenType.STRING,
        TokenType.RPAREN,
        TokenType.SEMI,
    ]
