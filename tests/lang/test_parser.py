"""Parser tests for MiniJava."""

import pytest

from repro.lang import (
    Assign,
    Binary,
    Block,
    BoolLit,
    Call,
    ExprStmt,
    FieldAccess,
    ForEach,
    If,
    IntLit,
    MethodCall,
    Name,
    New,
    ParseError,
    Return,
    StringLit,
    Ternary,
    TryCatch,
    Unary,
    While,
    parse_function,
    parse_program,
    parse_statements,
    walk_statements,
)


class TestFunctions:
    def test_simple_function(self):
        func = parse_function("f() { return 1; }")
        assert func.name == "f"
        assert func.params == []
        assert isinstance(func.body.statements[0], Return)

    def test_function_with_params(self):
        func = parse_function("f(a, b) { return a; }")
        assert func.params == ["a", "b"]

    def test_function_with_typed_params(self):
        func = parse_function("f(int a, String b) { return a; }")
        assert func.params == ["a", "b"]

    def test_function_with_return_type(self):
        func = parse_function("int f() { return 1; }")
        assert func.name == "f"

    def test_multiple_functions(self):
        program = parse_program("f() { return 1; } g() { return 2; }")
        assert [f.name for f in program.functions] == ["f", "g"]

    def test_program_function_lookup(self):
        program = parse_program("f() { return 1; }")
        assert program.function("f").name == "f"
        with pytest.raises(KeyError):
            program.function("missing")


class TestStatements:
    def test_assignment(self):
        block = parse_statements("x = 5;")
        stmt = block.statements[0]
        assert isinstance(stmt, Assign)
        assert stmt.target == "x"
        assert isinstance(stmt.value, IntLit)

    def test_typed_declaration(self):
        block = parse_statements("int x = 5;")
        stmt = block.statements[0]
        assert isinstance(stmt, Assign)
        assert stmt.declared_type == "int"

    def test_generic_typed_declaration(self):
        block = parse_statements("List<Board> boards = executeQuery(\"from Board\");")
        stmt = block.statements[0]
        assert isinstance(stmt, Assign)
        assert stmt.target == "boards"

    def test_augmented_assignment_desugars(self):
        block = parse_statements("x += 2;")
        stmt = block.statements[0]
        assert isinstance(stmt.value, Binary)
        assert stmt.value.op == "+"

    def test_increment_desugars(self):
        block = parse_statements("x++;")
        stmt = block.statements[0]
        assert isinstance(stmt, Assign)
        assert stmt.value.op == "+"

    def test_if_without_else(self):
        block = parse_statements("if (x > 0) y = 1;")
        stmt = block.statements[0]
        assert isinstance(stmt, If)
        assert stmt.else_body is None
        assert isinstance(stmt.then_body, Block)

    def test_if_with_else(self):
        block = parse_statements("if (a) b = 1; else b = 2;")
        stmt = block.statements[0]
        assert stmt.else_body is not None

    def test_dangling_else_binds_to_nearest_if(self):
        block = parse_statements("if (a) if (b) x = 1; else x = 2;")
        outer = block.statements[0]
        assert outer.else_body is None
        inner = outer.then_body.statements[0]
        assert inner.else_body is not None

    def test_foreach(self):
        block = parse_statements("for (t : boards) { x = t; }")
        stmt = block.statements[0]
        assert isinstance(stmt, ForEach)
        assert stmt.var == "t"
        assert isinstance(stmt.iterable, Name)

    def test_typed_foreach(self):
        block = parse_statements("for (Board t : boards) { x = t; }")
        stmt = block.statements[0]
        assert stmt.var == "t"

    def test_while(self):
        block = parse_statements("while (x < 10) { x = x + 1; }")
        stmt = block.statements[0]
        assert isinstance(stmt, While)

    def test_classic_for_desugars_to_while(self):
        block = parse_statements("for (i = 0; i < 5; i++) { s = s + i; }")
        wrapper = block.statements[0]
        assert isinstance(wrapper, Block)
        init, loop = wrapper.statements
        assert isinstance(init, Assign)
        assert isinstance(loop, While)
        # update folded into the body tail
        assert isinstance(loop.body.statements[-1], Assign)

    def test_try_catch(self):
        block = parse_statements("try { x = 1; } catch (Exception e) { y = 2; }")
        stmt = block.statements[0]
        assert isinstance(stmt, TryCatch)
        assert stmt.catch_var == "e"

    def test_try_finally(self):
        block = parse_statements("try { x = 1; } finally { y = 2; }")
        stmt = block.statements[0]
        assert stmt.finally_body is not None

    def test_break_and_continue(self):
        block = parse_statements("for (t : xs) { break; }")
        from repro.lang import Break

        assert isinstance(block.statements[0].body.statements[0], Break)

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_statements("x = 5")


class TestExpressions:
    def expr(self, text):
        return parse_statements(f"__v = {text};").statements[0].value

    def test_precedence_mul_over_add(self):
        expr = self.expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_and(self):
        expr = self.expr("a > 1 && b < 2")
        assert expr.op == "&&"
        assert expr.left.op == ">"

    def test_parentheses_override(self):
        expr = self.expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_ternary(self):
        expr = self.expr("a > 0 ? 1 : 2")
        assert isinstance(expr, Ternary)

    def test_unary_not(self):
        expr = self.expr("!done")
        assert isinstance(expr, Unary)
        assert expr.op == "!"

    def test_unary_minus(self):
        expr = self.expr("-x")
        assert expr.op == "-"

    def test_method_call_chain(self):
        expr = self.expr("t.getP1()")
        assert isinstance(expr, MethodCall)
        assert expr.method == "getP1"

    def test_static_method_call(self):
        expr = self.expr("Math.max(a, b)")
        assert isinstance(expr, MethodCall)
        assert isinstance(expr.receiver, Name)
        assert expr.receiver.ident == "Math"

    def test_field_access(self):
        expr = self.expr("t.score")
        assert isinstance(expr, FieldAccess)
        assert expr.field == "score"

    def test_chained_member_access(self):
        expr = self.expr("a.b.c()")
        assert isinstance(expr, MethodCall)
        assert isinstance(expr.receiver, FieldAccess)

    def test_free_call(self):
        expr = self.expr('executeQuery("from T")')
        assert isinstance(expr, Call)
        assert isinstance(expr.args[0], StringLit)

    def test_new_with_generics(self):
        expr = self.expr("new ArrayList<String>()")
        assert isinstance(expr, New)
        assert expr.class_name == "ArrayList"

    def test_string_concat(self):
        expr = self.expr('"a" + x + "b"')
        assert expr.op == "+"

    def test_comparison_not_confused_with_generics(self):
        expr = self.expr("a < b")
        assert isinstance(expr, Binary)
        assert expr.op == "<"

    def test_boolean_literals(self):
        assert isinstance(self.expr("true"), BoolLit)


class TestStatementNumbering:
    def test_sids_are_unique_and_ordered(self):
        program = parse_program(
            """
            f() {
                x = 1;
                if (x > 0) { y = 2; }
                for (t : xs) { z = 3; }
            }
            """
        )
        sids = [s.sid for s in walk_statements(program.function("f").body)]
        assert sids == sorted(sids)
        assert len(sids) == len(set(sids))

    def test_all_statements_numbered(self):
        program = parse_program("f() { x = 1; y = 2; }")
        for stmt in walk_statements(program.function("f").body):
            assert stmt.sid >= 0
