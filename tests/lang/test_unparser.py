"""Unparser tests, including parse→unparse→parse round-trip properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse_program, unparse_expr, unparse_program, parse_statements

SAMPLE = """
findMaxScore() {
    boards = executeQuery("from Board as b where b.rnd_id = 1");
    scoreMax = 0;
    for (t : boards) {
        score = Math.max(t.getP1(), t.getP2());
        if (score > scoreMax) {
            scoreMax = score;
        }
    }
    return scoreMax;
}
"""


def normalize(program):
    return unparse_program(program)


def test_roundtrip_is_fixpoint():
    once = normalize(parse_program(SAMPLE))
    twice = normalize(parse_program(once))
    assert once == twice


def test_unparse_preserves_string_escapes():
    source = 'f() { x = "a\\"b\\nc"; return x; }'
    once = normalize(parse_program(source))
    reparsed = parse_program(once)
    stmt = reparsed.function("f").body.statements[0]
    assert stmt.value.value == 'a"b\nc'


def test_unparse_ternary_and_precedence():
    source = "f() { x = (a + b) * c; y = p ? 1 : 2; return x; }"
    once = normalize(parse_program(source))
    twice = normalize(parse_program(once))
    assert once == twice
    assert "(a + b) * c" in once


def test_unparse_while_and_try():
    source = """
    f() {
        try {
            while (x < 3) {
                x = x + 1;
            }
        } catch (e) {
            x = 0;
        }
    }
    """
    once = normalize(parse_program(source))
    assert "while" in once and "catch" in once
    assert once == normalize(parse_program(once))


# ----------------------------------------------------------------------
# Property: generated expressions round-trip through unparse/parse.

_names = st.sampled_from(["a", "b", "count", "scoreMax", "total"])


def _exprs():
    literals = st.one_of(
        st.integers(min_value=0, max_value=1000).map(str),
        st.sampled_from(["true", "false", "null"]),
        _names,
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, st.sampled_from(["+", "-", "*"]), children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
            st.tuples(children, st.sampled_from(["<", ">", "=="]), children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
            st.tuples(children, children).map(lambda t: f"Math.max({t[0]}, {t[1]})"),
            children.map(lambda c: f"(-{c})"),
        )

    return st.recursive(literals, extend, max_leaves=8)


@given(_exprs())
@settings(max_examples=150, deadline=None)
def test_expression_roundtrip_property(text):
    block = parse_statements(f"__v = {text};")
    rendered = unparse_expr(block.statements[0].value)
    block2 = parse_statements(f"__v = {rendered};")
    assert unparse_expr(block2.statements[0].value) == rendered


@given(
    st.lists(
        st.sampled_from(
            [
                "x = 1;",
                "y = x + 2;",
                "if (x > 0) { y = 2; } else { y = 3; }",
                "for (t : items) { s = s + 1; }",
                "while (x < 3) { x = x + 1; }",
                "return y;",
            ]
        ),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=80, deadline=None)
def test_program_roundtrip_property(statements):
    source = "f() {\n" + "\n".join(statements) + "\n}"
    once = normalize(parse_program(source))
    twice = normalize(parse_program(once))
    assert once == twice
