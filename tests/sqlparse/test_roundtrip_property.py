"""Seeded-random round-trip property for the SQL front end.

For a query AST ``A``: rendering ``A`` through any dialect and re-parsing
the text must reproduce ``A`` exactly — the algebra nodes are frozen
dataclasses, so ``==`` is deep structural equality.  This is the contract
the difftest oracle relies on: the SQL strings embedded in rewritten
programs are re-parsed by the engine, and any drift between generator and
parser silently changes query semantics.

No hypothesis dependency: cases come from a seeded ``random.Random``
grammar walk, so failures reproduce by seed.
"""

from __future__ import annotations

import random

import pytest

from repro.sqlgen import render_rel
from repro.sqlparse import parse_query

DIALECTS = ["repro", "postgres", "mysql", "sqlserver", "ansi"]

_TABLES = [("Orders", "a"), ("Players", "p"), ("Visits", "v")]
_COLUMNS = ["id", "rank", "qty", "score", "amount"]
_AGGS = ["max", "min", "sum", "count", "avg"]


def _term(rng: random.Random, alias: str) -> str:
    roll = rng.random()
    if roll < 0.5:
        col = rng.choice(_COLUMNS)
        return f"{alias}.{col}" if rng.random() < 0.5 else col
    if roll < 0.8:
        return str(rng.randint(-20, 100))
    return f"({rng.choice(_COLUMNS)} + {rng.randint(1, 9)})"


def _comparison(rng: random.Random, alias: str) -> str:
    op = rng.choice([">", "<", ">=", "<=", "=", "!="])
    return f"{_term(rng, alias)} {op} {_term(rng, alias)}"


def _predicate(rng: random.Random, alias: str, depth: int = 0) -> str:
    roll = rng.random()
    if depth >= 2 or roll < 0.55:
        return _comparison(rng, alias)
    if roll < 0.7:
        left = _predicate(rng, alias, depth + 1)
        right = _predicate(rng, alias, depth + 1)
        return f"({left} AND {right})"
    if roll < 0.85:
        left = _predicate(rng, alias, depth + 1)
        right = _predicate(rng, alias, depth + 1)
        return f"({left} OR {right})"
    col = rng.choice(_COLUMNS)
    return f"{col} IS NULL" if rng.random() < 0.5 else f"{col} IS NOT NULL"


def random_query(rng: random.Random) -> str:
    """One random SELECT over the toy schema, seeded and reproducible."""
    table, alias = rng.choice(_TABLES)
    shape = rng.random()
    if shape < 0.3:
        # Scalar aggregate.
        agg = rng.choice(_AGGS)
        call = "COUNT(*)" if agg == "count" else f"{agg.upper()}({rng.choice(_COLUMNS)})"
        select = f"SELECT {call} AS agg"
    elif shape < 0.5:
        # Grouped aggregate.
        group = rng.choice(_COLUMNS)
        agg = rng.choice(_AGGS)
        call = "COUNT(*)" if agg == "count" else f"{agg.upper()}({rng.choice(_COLUMNS)})"
        select = f"SELECT {group}, {call} AS agg"
    elif shape < 0.65:
        distinct = "DISTINCT " if rng.random() < 0.5 else ""
        cols = rng.sample(_COLUMNS, rng.randint(1, 3))
        select = f"SELECT {distinct}{', '.join(cols)}"
    else:
        select = "SELECT *"
    parts = [select, f"FROM {table} {alias}"]
    if rng.random() < 0.7:
        parts.append(f"WHERE {_predicate(rng, alias)}")
    if shape < 0.5 and "," in select:
        parts.append(f"GROUP BY {select.split()[1].rstrip(',')}")
    if "SELECT *" in select and rng.random() < 0.4:
        direction = rng.choice(["ASC", "DESC"])
        parts.append(f"ORDER BY {rng.choice(_COLUMNS)} {direction}")
    return " ".join(parts)


class TestRoundTripProperty:
    @pytest.mark.parametrize("seed", range(5))
    def test_parse_render_parse_is_identity(self, seed):
        rng = random.Random(seed)
        for case in range(80):
            query = random_query(rng)
            ast = parse_query(query)
            for dialect in DIALECTS:
                rendered = render_rel(ast, dialect)
                reparsed = parse_query(rendered)
                assert reparsed == ast, (
                    f"seed={seed} case={case} dialect={dialect}\n"
                    f"  query:    {query}\n"
                    f"  rendered: {rendered}\n"
                    f"  ast:      {ast}\n"
                    f"  reparsed: {reparsed}"
                )

    @pytest.mark.parametrize("seed", range(3))
    def test_render_is_deterministic_fixpoint(self, seed):
        """Once round-tripped, render ∘ parse is a fixpoint on the text."""
        rng = random.Random(1000 + seed)
        for _ in range(40):
            ast = parse_query(random_query(rng))
            for dialect in DIALECTS:
                once = render_rel(ast, dialect)
                twice = render_rel(parse_query(once), dialect)
                assert once == twice

    def test_hql_entity_queries_round_trip(self):
        """The generator's HQL shapes survive a repro-dialect round trip."""
        samples = [
            "from Orders as a0",
            "from Orders as a0 where a0.rank != 1",
            "from Visits as a0 order by a0.rank asc",
            "from Players as a1 where a1.score > 10 order by a1.rank desc",
        ]
        for text in samples:
            ast = parse_query(text)
            assert parse_query(render_rel(ast, "repro")) == ast
