"""SQL/HQL parser tests."""

import pytest

from repro.algebra import (
    AggCall,
    Aggregate,
    Alias,
    BinOp,
    CaseWhen,
    Col,
    Distinct,
    ExistsExpr,
    Join,
    Limit,
    Lit,
    OuterApply,
    Param,
    Project,
    ScalarSubquery,
    Select,
    Sort,
    Table,
    UnOp,
)
from repro.sqlparse import SqlParseError, parse_query


class TestBasicSelect:
    def test_select_star(self):
        rel = parse_query("select * from board")
        assert rel == Table("board")

    def test_select_columns(self):
        rel = parse_query("select p1, p2 from board")
        assert isinstance(rel, Project)
        assert [i.output_name for i in rel.items] == ["p1", "p2"]

    def test_where(self):
        rel = parse_query("select * from board where rnd_id = 1")
        assert isinstance(rel, Select)
        assert rel.pred == BinOp("=", Col("rnd_id"), Lit(1))

    def test_table_alias(self):
        rel = parse_query("select * from board b")
        assert rel == Table("board", "b")

    def test_table_alias_with_as(self):
        rel = parse_query("select * from board as b")
        assert rel == Table("board", "b")

    def test_qualified_columns(self):
        rel = parse_query("select b.p1 from board b")
        assert rel.items[0].expr == Col("p1", "b")

    def test_column_alias(self):
        rel = parse_query("select p1 as score from board")
        assert rel.items[0].alias == "score"


class TestHqlStyle:
    def test_from_only(self):
        rel = parse_query("from Board as b where b.rnd_id = 1")
        assert isinstance(rel, Select)
        assert rel.child == Table("Board", "b")

    def test_from_without_where(self):
        assert parse_query("from Board") == Table("Board")


class TestPredicates:
    def test_and_or_precedence(self):
        rel = parse_query("select * from t where a = 1 and b = 2 or c = 3")
        assert rel.pred.op == "OR"
        assert rel.pred.left.op == "AND"

    def test_not(self):
        rel = parse_query("select * from t where not a = 1")
        assert isinstance(rel.pred, UnOp)

    def test_is_null(self):
        rel = parse_query("select * from t where x is null")
        assert rel.pred.name == "ISNULL"

    def test_is_not_null(self):
        rel = parse_query("select * from t where x is not null")
        assert isinstance(rel.pred, UnOp)

    def test_like(self):
        rel = parse_query("select * from t where name like 'a%'")
        assert rel.pred.op == "LIKE"

    def test_comparison_operators(self):
        for op in ("<", ">", "<=", ">=", "!="):
            rel = parse_query(f"select * from t where x {op} 1")
            assert rel.pred.op == op
        rel = parse_query("select * from t where x <> 1")
        assert rel.pred.op == "!="

    def test_string_literal_with_escaped_quote(self):
        rel = parse_query("select * from t where name = 'it''s'")
        assert rel.pred.right == Lit("it's")


class TestParameters:
    def test_named_parameter(self):
        rel = parse_query("select * from t where id = :uid")
        assert rel.pred.right == Param("uid")

    def test_positional_parameter(self):
        rel = parse_query("select * from t where id = ?")
        assert isinstance(rel.pred.right, Param)


class TestAggregation:
    def test_count_star(self):
        rel = parse_query("select count(*) from t")
        assert isinstance(rel, Aggregate)
        assert rel.aggs[0].call == AggCall("count", None)

    def test_group_by(self):
        rel = parse_query("select cust, sum(amount) as total from orders group by cust")
        assert isinstance(rel, Aggregate)
        assert rel.group_by == (Col("cust"),)

    def test_group_by_with_reordered_select_keeps_projection(self):
        rel = parse_query(
            "select sum(amount) as total, cust from orders group by cust"
        )
        assert isinstance(rel, Project)

    def test_having(self):
        rel = parse_query(
            "select cust, sum(amount) as s from orders group by cust having s > 10"
        )
        assert isinstance(rel, Select)

    def test_distinct_aggregate(self):
        rel = parse_query("select count(distinct cust) from orders")
        assert rel.aggs[0].call.distinct


class TestJoins:
    def test_inner_join(self):
        rel = parse_query("select * from a join b on a.x = b.y")
        assert isinstance(rel, Join)
        assert rel.kind == "inner"

    def test_left_join(self):
        rel = parse_query("select * from a left join b on a.x = b.y")
        assert rel.kind == "left"

    def test_cross_join_comma(self):
        rel = parse_query("select * from a, b")
        assert rel.kind == "cross"

    def test_outer_apply(self):
        rel = parse_query(
            "select * from a outer apply (select * from b where b.x = a.x) s"
        )
        assert isinstance(rel, OuterApply)
        assert isinstance(rel.right, Alias)


class TestOrderLimit:
    def test_order_by(self):
        rel = parse_query("select * from t order by x desc, y")
        assert isinstance(rel, Sort)
        assert not rel.keys[0].ascending
        assert rel.keys[1].ascending

    def test_limit(self):
        rel = parse_query("select * from t limit 5")
        assert isinstance(rel, Limit)
        assert rel.count == 5

    def test_distinct(self):
        rel = parse_query("select distinct name from t")
        assert isinstance(rel, Distinct)


class TestSubqueries:
    def test_scalar_subquery(self):
        rel = parse_query(
            "select * from t where x > (select max(y) from u)"
        )
        assert isinstance(rel.pred.right, ScalarSubquery)

    def test_exists(self):
        rel = parse_query("select * from t where exists (select * from u)")
        assert isinstance(rel.pred, ExistsExpr)

    def test_not_exists(self):
        rel = parse_query("select * from t where not exists (select * from u)")
        assert isinstance(rel.pred, UnOp)

    def test_derived_table(self):
        rel = parse_query("select * from (select x from t) d")
        assert isinstance(rel, Alias)
        assert rel.name == "d"

    def test_case_when(self):
        rel = parse_query("select case when x > 0 then 1 else 0 end as s from t")
        assert isinstance(rel.items[0].expr, CaseWhen)

    def test_case_when_without_else(self):
        rel = parse_query("select case when x > 0 then 1 end as s from t")
        assert rel.items[0].expr.if_false == Lit(None)


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(SqlParseError):
            parse_query("")

    def test_trailing_garbage(self):
        with pytest.raises(SqlParseError):
            parse_query("select * from t zzz qqq")

    def test_missing_from(self):
        with pytest.raises(SqlParseError):
            parse_query("select *")

    def test_trailing_semicolon_ok(self):
        assert parse_query("select * from t;") == Table("t")
