"""End-to-end checks over the ``examples/python`` corpus.

Every function must extract SQL, and — the paper's Theorem 1 obligation —
the rewritten program must be *equivalent*: original and rewritten run
against the same seeded database (with ``engine="both"``, so the planned
executor is cross-checked against the reference engine on every query)
and must return the same value.
"""

from pathlib import Path

import pytest

from repro import Catalog, ExtractOptions, optimize_program
from repro.db import Connection
from repro.frontends import get_frontend
from repro.interp import Interpreter
from repro.lint import lint_program
from repro.rewrites.verify import seed_database

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "python"

#: function → interpreter arguments (the ``conn`` parameter is never read:
#: its only use, ``conn.cursor()``, is lowered away).
ARGS = {
    "unfinished_projects": (None,),
    "count_launched": (None,),
    "total_budget": (None,),
    "customer_total": (None, 3),
    "shipped_amounts": (None,),
    "max_order": (None,),
}


def corpus_functions():
    frontend = get_frontend("python")
    entries = []
    for path in sorted(CORPUS.glob("*.py")):
        source = path.read_text()
        for fn in frontend.parse(source).functions:
            entries.append((path.name, source, fn.name))
    return entries


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    return Catalog.from_json_file(str(CORPUS / "schema.json"))


def test_corpus_covers_at_least_five_call_sites():
    assert len(corpus_functions()) >= 5


@pytest.mark.parametrize(
    "file,source,function",
    corpus_functions(),
    ids=[f"{f}::{fn}" for f, _s, fn in corpus_functions()],
)
def test_extracts_and_stays_equivalent(file, source, function, catalog):
    report = optimize_program(
        source, function, catalog, options=ExtractOptions(frontend="python")
    )
    assert report.status == "success", report.to_dict()
    sqls = [e.sql for e in report.variables.values() if e.sql]
    assert sqls, "expected at least one extracted query"

    # Differential oracle: both versions on a seeded cross-checked database.
    database = seed_database(catalog, rows_per_table=30, seed=0, engine="both")
    args = ARGS[function]
    original = Interpreter(report.original, Connection(database)).run(function, *args)
    rewritten_conn = Connection(database)
    rewritten = Interpreter(report.rewritten, rewritten_conn).run(function, *args)
    assert original == rewritten

    # The rewrite must actually hit the database with the extracted query
    # (not fall back to re-running the loop client-side).
    assert rewritten_conn.stats.queries_executed >= 1


def test_corpus_is_lint_clean_of_blockers(catalog):
    frontend = get_frontend("python")
    for path in sorted(CORPUS.glob("*.py")):
        report = lint_program(frontend.parse(path.read_text()))
        blockers = [d.code for d in report.diagnostics if d.code.startswith("EQ1")]
        assert blockers == [], (path.name, blockers)


def test_rewritten_programs_render_as_python(catalog):
    frontend = get_frontend("python")
    source = (CORPUS / "projects.py").read_text()
    report = optimize_program(
        source, "total_budget", catalog, options=ExtractOptions(frontend="python")
    )
    rendered = frontend.unparse(report.rewritten)
    assert "def total_budget(conn):" in rendered
    assert "executeScalar(" in rendered or "executeQuery(" in rendered
