"""Cross-frontend parity: the same program in MiniJava and Python must
extract the same SQL and lint to the same diagnostic codes.

Each pair below is one imperative pattern written twice over the same
query text.  Everything downstream of the frontend — regions, D-IR,
rules, SQL generation, lint — is shared code, so any divergence here
means a frontend lowered its language onto the shared AST incorrectly.
"""

import pytest

from repro import Catalog, ExtractOptions, extract_sql, lint_program
from repro.frontends import get_frontend

CATALOG = Catalog.from_dict(
    {
        "project": {
            "columns": ["id", "name", "finished", "launched", "budget"],
            "key": ["id"],
        },
        "orders": {
            "columns": ["id", "customer", "status", "amount"],
            "key": ["id"],
        },
    }
)

#: (pair name, function name, MiniJava source, Python source).
PAIRS = [
    (
        "filtered-projection",
        "unfinished",
        """
        unfinished() {
            rows = executeQuery("SELECT name, finished FROM project");
            names = new ArrayList();
            for (p : rows) {
                if (p.getFinished() == 0) { names.add(p.getName()); }
            }
            return names;
        }
        """,
        (
            "def unfinished(conn):\n"
            "    cur = conn.cursor()\n"
            "    cur.execute(\"SELECT name, finished FROM project\")\n"
            "    names = []\n"
            "    for p in cur:\n"
            "        if p[\"finished\"] == 0:\n"
            "            names.append(p[\"name\"])\n"
            "    return names\n"
        ),
    ),
    (
        "running-sum",
        "total",
        """
        total() {
            rows = executeQuery("SELECT budget FROM project");
            total = 0;
            for (p : rows) {
                total = total + p.getBudget();
            }
            return total;
        }
        """,
        (
            "def total(conn):\n"
            "    cur = conn.cursor()\n"
            "    cur.execute(\"SELECT budget FROM project\")\n"
            "    total = 0\n"
            "    for p in cur:\n"
            "        total += p[\"budget\"]\n"
            "    return total\n"
        ),
    ),
    (
        "parameterised-aggregate",
        "customerTotal",
        """
        customerTotal(cust) {
            rows = executeQuery("SELECT amount FROM orders WHERE customer = " + cust);
            total = 0;
            for (o : rows) {
                total = total + o.getAmount();
            }
            return total;
        }
        """,
        (
            "def customerTotal(conn, cust):\n"
            "    cur = conn.cursor()\n"
            "    cur.execute(\"SELECT amount FROM orders WHERE customer = ?\", (cust,))\n"
            "    total = 0\n"
            "    for o in cur:\n"
            "        total = total + o[\"amount\"]\n"
            "    return total\n"
        ),
    ),
    (
        "running-max",
        "maxOrder",
        """
        maxOrder() {
            rows = executeQuery("SELECT amount FROM orders");
            best = 0;
            for (o : rows) {
                if (o.getAmount() > best) { best = o.getAmount(); }
            }
            return best;
        }
        """,
        (
            "def maxOrder(conn):\n"
            "    cur = conn.cursor()\n"
            "    cur.execute(\"SELECT amount FROM orders\")\n"
            "    best = 0\n"
            "    for o in cur:\n"
            "        if o[\"amount\"] > best:\n"
            "            best = o[\"amount\"]\n"
            "    return best\n"
        ),
    ),
]


def extracted_sql(report) -> dict[str, str]:
    return {
        name: extraction.sql
        for name, extraction in report.variables.items()
        if extraction.sql
    }


@pytest.mark.parametrize(
    "function,minijava,python",
    [(p[1], p[2], p[3]) for p in PAIRS],
    ids=[p[0] for p in PAIRS],
)
class TestExtractionParity:
    def test_identical_sql(self, function, minijava, python):
        mj = extract_sql(minijava, function, CATALOG)
        py = extract_sql(
            python, function, CATALOG, options=ExtractOptions(frontend="python")
        )
        assert mj.status == py.status == "success"
        assert extracted_sql(mj)
        assert list(extracted_sql(mj).values()) == list(extracted_sql(py).values())

    def test_identical_lint_codes(self, function, minijava, python):
        mj_codes = sorted(
            d.code for d in lint_program(get_frontend("minijava").parse(minijava)).diagnostics
        )
        py_codes = sorted(
            d.code for d in lint_program(get_frontend("python").parse(python)).diagnostics
        )
        assert mj_codes == py_codes


class TestLintSpansOnPython:
    def test_python_diagnostics_point_into_the_source(self):
        # The parameterised pair carries a dynamic-query advisory; its span
        # must land on a real line/column of the *Python* text.
        source = PAIRS[2][3]
        program = get_frontend("python").parse(source)
        report = lint_program(program)
        assert report.diagnostics, "expected at least one advisory"
        lines = source.splitlines()
        for diag in report.diagnostics:
            assert 1 <= diag.span.line <= len(lines)
            assert diag.span.col >= 1
            assert diag.span.col <= len(lines[diag.span.line - 1]) + 1
