"""Frontend plumbing through the batch scanner, lint service and caches."""

import json

import pytest

from repro import Catalog, ExtractOptions, scan_directory
from repro.__main__ import main
from repro.batch.cache import cache_key
from repro.lint.service import lint_cache_key, lint_directory

PY_SOURCE = (
    "def total_budget(conn):\n"
    "    cur = conn.cursor()\n"
    "    cur.execute(\"SELECT budget FROM project\")\n"
    "    total = 0\n"
    "    for p in cur:\n"
    "        total = total + p[\"budget\"]\n"
    "    return total\n"
)

MJ_SOURCE = """
totalBudget() {
    rows = executeQuery("SELECT budget FROM project");
    total = 0;
    for (p : rows) {
        total = total + p.getBudget();
    }
    return total;
}
"""


@pytest.fixture
def catalog():
    return Catalog.from_dict(
        {"project": {"columns": ["id", "name", "finished", "budget"], "key": ["id"]}}
    )


@pytest.fixture
def mixed_tree(tmp_path):
    (tmp_path / "app.mj").write_text(MJ_SOURCE)
    (tmp_path / "dao.py").write_text(PY_SOURCE)
    return tmp_path


class TestCacheKeys:
    def test_frontend_is_part_of_the_extraction_key(self, catalog):
        options = ExtractOptions()
        mj = cache_key("src", "f", catalog, options, frontend="minijava")
        py = cache_key("src", "f", catalog, options, frontend="python")
        assert mj != py

    def test_frontend_is_part_of_the_lint_key(self):
        assert lint_cache_key("src", "f", frontend="minijava") != lint_cache_key(
            "src", "f", frontend="python"
        )

    def test_default_frontend_keys_are_stable(self, catalog):
        options = ExtractOptions()
        assert cache_key("src", "f", catalog, options) == cache_key(
            "src", "f", catalog, options, frontend="minijava"
        )


class TestMixedScan:
    def test_both_languages_extract_in_one_scan(self, mixed_tree, catalog):
        report = scan_directory(mixed_tree, catalog, use_cache=False)
        by_file = {u["file"]: u for u in report.units}
        assert by_file["app.mj"]["frontend"] == "minijava"
        assert by_file["dao.py"]["frontend"] == "python"
        assert by_file["app.mj"]["status"] == "success"
        assert by_file["dao.py"]["status"] == "success"
        # Same loop, same query text, same shared pipeline: identical SQL.
        mj_sql = {v["sql"] for v in by_file["app.mj"]["variables"].values()}
        py_sql = {v["sql"] for v in by_file["dao.py"]["variables"].values()}
        assert mj_sql == py_sql

    def test_warm_rescan_hits_for_both_frontends(self, mixed_tree, catalog):
        cold = scan_directory(mixed_tree, catalog)
        warm = scan_directory(mixed_tree, catalog)
        assert cold.cache_misses == len(cold.units) == 2
        assert warm.cache_hits == 2 and warm.cache_misses == 0

    def test_frontend_restriction(self, mixed_tree, catalog):
        report = scan_directory(mixed_tree, catalog, use_cache=False, frontend="python")
        assert [u["file"] for u in report.units] == ["dao.py"]

    def test_scan_cli_frontend_flag(self, mixed_tree, tmp_path, capsys):
        schema = tmp_path / "schema.json"
        schema.write_text(
            json.dumps(
                {"project": {"columns": ["id", "name", "finished", "budget"], "key": ["id"]}}
            )
        )
        code = main(
            [
                "scan",
                str(mixed_tree),
                "--schema",
                str(schema),
                "--no-cache",
                "--frontend",
                "python",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [u["file"] for u in payload["units"]] == ["dao.py"]
        assert payload["units"][0]["frontend"] == "python"


class TestMixedLint:
    def test_lint_covers_both_frontends(self, mixed_tree):
        report = lint_directory(mixed_tree, use_cache=False)
        by_file = {u["file"]: u for u in report.units}
        assert by_file["app.mj"]["frontend"] == "minijava"
        assert by_file["dao.py"]["frontend"] == "python"
        assert "error" not in by_file["dao.py"]

    def test_lint_warm_rescan_hits(self, mixed_tree):
        cold = lint_directory(mixed_tree)
        warm = lint_directory(mixed_tree)
        assert cold.cache_misses == 2
        assert warm.cache_hits == 2 and warm.cache_misses == 0

    def test_lint_cli_frontend_flag(self, mixed_tree, capsys):
        code = main(
            ["lint", str(mixed_tree), "--no-cache", "--frontend", "python", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [u["file"] for u in payload["units"]] == ["dao.py"]


class TestExtractCli:
    def test_suffix_autodetection(self, mixed_tree, tmp_path, capsys):
        schema = tmp_path / "schema.json"
        schema.write_text(
            json.dumps(
                {"project": {"columns": ["id", "name", "finished", "budget"], "key": ["id"]}}
            )
        )
        code = main(
            [
                "extract",
                str(mixed_tree / "dao.py"),
                "-f",
                "total_budget",
                "--schema",
                str(schema),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frontend"] == "python"
        assert payload["status"] == "success"

    def test_explicit_frontend_flag_wins(self, mixed_tree, tmp_path, capsys):
        # Forcing the wrong frontend must fail loudly, not silently misparse.
        schema = tmp_path / "schema.json"
        schema.write_text(json.dumps({"project": {"columns": ["id"], "key": ["id"]}}))
        with pytest.raises(Exception):
            main(
                [
                    "extract",
                    str(mixed_tree / "dao.py"),
                    "-f",
                    "total_budget",
                    "--schema",
                    str(schema),
                    "--frontend",
                    "minijava",
                ]
            )
