"""Unit tests for the Python → shared-AST lowering."""

import pytest

from repro.frontends.python import (
    OPAQUE_CALL,
    PythonParseError,
    parse_python,
    unparse_python_program,
)
from repro.lang import (
    Assign,
    Binary,
    Call,
    ExprStmt,
    FieldAccess,
    ForEach,
    MethodCall,
    Name,
    Return,
    StringLit,
    While,
)


def lower_one(source: str):
    """The single function of ``source``, lowered."""
    program = parse_python(source)
    assert len(program.functions) == 1
    return program.functions[0]


def first_stmt(source: str):
    return lower_one(source).body.statements[0]


class TestDbApiIdioms:
    def test_cursor_factory_is_dropped_and_tracked(self):
        fn = lower_one(
            "def f(conn):\n"
            "    cur = conn.cursor()\n"
            "    cur.execute(\"SELECT id FROM t\")\n"
        )
        # Only the execute survives, as an assignment of executeQuery.
        (stmt,) = fn.body.statements
        assert isinstance(stmt, Assign) and stmt.target == "cur"
        assert isinstance(stmt.value, Call) and stmt.value.func == "executeQuery"
        assert isinstance(stmt.value.args[0], StringLit)

    def test_update_statements_lower_to_execute_update(self):
        stmt = first_stmt(
            "def f(cur):\n"
            "    cur.execute(\"DELETE FROM t\")\n"
        )
        assert isinstance(stmt, ExprStmt)
        assert isinstance(stmt.expr, Call) and stmt.expr.func == "executeUpdate"

    def test_unknown_sql_text_is_conservatively_an_update(self):
        stmt = first_stmt(
            "def f(cur, q):\n"
            "    cur.execute(q)\n"
        )
        assert isinstance(stmt, ExprStmt)
        assert stmt.expr.func == "executeUpdate"

    def test_placeholders_splice_to_concatenation(self):
        fn = lower_one(
            "def f(cur, x):\n"
            "    cur.execute(\"SELECT a FROM t WHERE id = ?\", (x,))\n"
        )
        (stmt,) = fn.body.statements
        query = stmt.value.args[0]
        assert isinstance(query, Binary) and query.op == "+"
        assert isinstance(query.left, StringLit)
        assert isinstance(query.right, Name) and query.right.ident == "x"

    def test_percent_s_placeholders_also_splice(self):
        fn = lower_one(
            "def f(cur, x, y):\n"
            "    cur.execute(\"SELECT a FROM t WHERE b = %s AND c = %s\", (x, y))\n"
        )
        (stmt,) = fn.body.statements
        names = [
            n.ident
            for n in _walk_exprs(stmt.value.args[0])
            if isinstance(n, Name)
        ]
        assert names == ["x", "y"]

    def test_fetchall_is_the_cursor_itself(self):
        fn = lower_one(
            "def f(cur):\n"
            "    cur.execute(\"SELECT a FROM t\")\n"
            "    rows = cur.fetchall()\n"
        )
        rows = fn.body.statements[1]
        assert isinstance(rows, Assign) and rows.target == "rows"
        assert isinstance(rows.value, Name) and rows.value.ident == "cur"

    def test_fetchone_zero_becomes_execute_scalar(self):
        fn = lower_one(
            "def f(cur):\n"
            "    cur.execute(\"SELECT SUM(a) FROM t\")\n"
            "    return cur.fetchone()[0]\n"
        )
        ret = fn.body.statements[1]
        assert isinstance(ret, Return)
        assert isinstance(ret.value, Call) and ret.value.func == "executeScalar"
        # The scalar call re-uses (a copy of) the last executed query text.
        assert isinstance(ret.value.args[0], StringLit)

    def test_iterating_a_cursor(self):
        fn = lower_one(
            "def f(cur):\n"
            "    cur.execute(\"SELECT a FROM t\")\n"
            "    for row in cur:\n"
            "        print(row[\"a\"])\n"
        )
        loop = fn.body.statements[1]
        assert isinstance(loop, ForEach) and loop.var == "row"
        assert isinstance(loop.iterable, Name) and loop.iterable.ident == "cur"

    def test_subscript_and_get_lower_to_field_access(self):
        fn = lower_one(
            "def f(row):\n"
            "    a = row[\"name\"]\n"
            "    b = row.get(\"name\")\n"
        )
        for stmt in fn.body.statements:
            assert isinstance(stmt.value, FieldAccess)
            assert stmt.value.field == "name"


class TestControlFlowAndFallbacks:
    def test_augmented_assignment_desugars(self):
        stmt = first_stmt("def f(x):\n    x += 1\n")
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.value, Binary) and stmt.value.op == "+"

    def test_dict_store_becomes_put(self):
        stmt = first_stmt("def f(d, k, v):\n    d[k] = v\n")
        assert isinstance(stmt, ExprStmt)
        assert isinstance(stmt.expr, MethodCall) and stmt.expr.method == "put"

    def test_attribute_store_becomes_bean_setter(self):
        stmt = first_stmt("def f(o, v):\n    o.name = v\n")
        assert isinstance(stmt.expr, MethodCall) and stmt.expr.method == "setName"

    def test_raise_lowers_to_opaque_return(self):
        stmt = first_stmt("def f():\n    raise ValueError(\"no\")\n")
        assert isinstance(stmt, Return)
        assert isinstance(stmt.value, Call) and stmt.value.func == OPAQUE_CALL

    def test_unsupported_loop_forms_poison_their_writes(self):
        stmt = first_stmt(
            "def f(pairs):\n"
            "    for a, b in pairs:\n"
            "        x = a\n"
        )
        assert isinstance(stmt, While)
        assert isinstance(stmt.cond, Call) and stmt.cond.func == OPAQUE_CALL

    def test_unknown_statements_poison_bound_names(self):
        fn = lower_one(
            "def f(xs):\n"
            "    ys = [x for x in xs]\n"
        )
        (stmt,) = fn.body.statements
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.value, Call) and stmt.value.func == OPAQUE_CALL

    def test_lowering_is_total_over_arbitrary_code(self):
        # A grab-bag of out-of-subset constructs: everything must lower.
        program = parse_python(
            "import os\n"
            "class Helper: pass\n"
            "def f(xs, **kw):\n"
            "    with open('x') as fh:\n"
            "        data = fh.read()\n"
            "    try:\n"
            "        y = int(data) // 2\n"
            "    except ValueError as exc:\n"
            "        y = 0\n"
            "    finally:\n"
            "        pass\n"
            "    lam = lambda a: a + 1\n"
            "    del xs\n"
            "    assert y is not None\n"
            "    while y:\n"
            "        y -= 1\n"
            "    return {k: v for k, v in kw.items()}\n"
        )
        assert [fn.name for fn in program.functions] == ["f"]

    def test_statements_are_numbered(self):
        fn = lower_one("def f(x):\n    y = x\n    return y\n")
        sids = [s.sid for s in fn.body.statements]
        assert all(isinstance(s, int) and s >= 0 for s in sids)
        assert len(set(sids)) == len(sids)


class TestSpans:
    def test_nodes_carry_one_based_python_positions(self):
        fn = lower_one(
            "def f(cur):\n"
            "    cur.execute(\"SELECT a FROM t\")\n"
            "    total = 0\n"
        )
        execute, total = fn.body.statements
        assert execute.line == 2 and execute.col == 5
        assert total.line == 3 and total.col == 5

    def test_parse_error_carries_position(self):
        with pytest.raises(PythonParseError) as err:
            parse_python("def f(:\n")
        assert err.value.line == 1
        assert err.value.col >= 1


class TestUnparser:
    def test_renders_python_syntax(self):
        source = (
            "def f(conn):\n"
            "    cur = conn.cursor()\n"
            "    cur.execute(\"SELECT amount FROM orders\")\n"
            "    total = 0\n"
            "    for o in cur:\n"
            "        total = total + o[\"amount\"]\n"
            "    return total\n"
        )
        rendered = unparse_python_program(parse_python(source))
        assert rendered.startswith("def f(conn):")
        assert "for o in cur:" in rendered
        assert "return total" in rendered

    def test_round_trip_is_stable(self):
        source = (
            "def f(cur):\n"
            "    cur.execute(\"SELECT a FROM t\")\n"
            "    xs = []\n"
            "    for row in cur:\n"
            "        if row[\"a\"] > 1:\n"
            "            xs.append(row[\"a\"])\n"
            "    return xs\n"
        )
        once = unparse_python_program(parse_python(source))
        twice = unparse_python_program(parse_python(once))
        assert once == twice


def _walk_exprs(expr):
    yield expr
    for attr in ("left", "right", "operand", "receiver"):
        child = getattr(expr, attr, None)
        if child is not None:
            yield from _walk_exprs(child)
    for child in getattr(expr, "args", []) or []:
        yield from _walk_exprs(child)
