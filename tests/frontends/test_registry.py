"""The Frontend protocol, its registry, and the option/report plumbing."""

import pytest

from repro import ExtractOptions, extract_sql
from repro.algebra import Catalog
from repro.frontends import (
    DEFAULT_FRONTEND,
    Frontend,
    MiniJavaFrontend,
    PythonFrontend,
    available_frontends,
    detect_frontend,
    frontend_for_path,
    get_frontend,
    register_frontend,
    source_suffixes,
)
from repro.frontends.base import _REGISTRY
from repro.lang import Program


class TestRegistry:
    def test_builtins_are_registered(self):
        assert available_frontends() == ("minijava", "python")

    def test_get_frontend_resolves_names(self):
        assert isinstance(get_frontend("minijava"), MiniJavaFrontend)
        assert isinstance(get_frontend("python"), PythonFrontend)

    def test_unknown_name_raises_with_inventory(self):
        with pytest.raises(ValueError, match="minijava"):
            get_frontend("cobol")

    def test_double_registration_requires_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_frontend(MiniJavaFrontend())
        original = get_frontend("minijava")
        try:
            replacement = MiniJavaFrontend()
            assert register_frontend(replacement, replace=True) is replacement
            assert get_frontend("minijava") is replacement
        finally:
            _REGISTRY["minijava"] = original

    def test_non_frontend_rejected(self):
        with pytest.raises(TypeError):
            register_frontend(object())

    def test_nameless_frontend_rejected(self):
        class Anonymous(Frontend):
            def parse(self, source):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ValueError, match="no name"):
            register_frontend(Anonymous())

    def test_describe_is_json_ready(self):
        desc = get_frontend("python").describe()
        assert desc["name"] == "python"
        assert ".py" in desc["suffixes"]


class TestDetection:
    def test_suffix_map_covers_both_languages(self):
        mapping = source_suffixes()
        assert mapping[".mj"] == "minijava"
        assert mapping[".minijava"] == "minijava"
        assert mapping[".py"] == "python"

    def test_frontend_for_path(self):
        assert frontend_for_path("a/b/app.mj").name == "minijava"
        assert frontend_for_path("pkg/dao.py").name == "python"
        assert frontend_for_path("README.md") is None

    def test_detect_frontend_returns_names_with_default(self):
        assert detect_frontend("dao.py") == "python"
        assert detect_frontend("app.mj") == "minijava"
        assert detect_frontend("notes.txt") == DEFAULT_FRONTEND
        assert detect_frontend("notes.txt", default="python") == "python"


class TestOptionsAndReport:
    def test_default_frontend_is_minijava(self):
        assert ExtractOptions().frontend == "minijava"

    def test_unknown_frontend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown frontend"):
            ExtractOptions(frontend="cobol")

    def test_round_trips_through_dict(self):
        options = ExtractOptions(frontend="python")
        assert ExtractOptions.from_dict(options.to_dict()) == options

    def test_report_records_its_frontend(self):
        catalog = Catalog.from_dict(
            {"project": {"columns": ["id", "budget"], "key": ["id"]}}
        )
        minijava_report = extract_sql(
            'f() { q = executeQuery("from Project as p"); return q; }',
            "f",
            catalog,
        )
        assert minijava_report.frontend == "minijava"
        assert minijava_report.to_dict()["frontend"] == "minijava"

        python_report = extract_sql(
            "def f(conn):\n"
            "    cur = conn.cursor()\n"
            "    cur.execute(\"SELECT id, budget FROM project\")\n"
            "    return cur.fetchall()\n",
            "f",
            catalog,
            options=ExtractOptions(frontend="python"),
        )
        assert python_report.frontend == "python"
        assert python_report.to_dict()["frontend"] == "python"

    def test_preparsed_program_bypasses_the_frontend(self):
        catalog = Catalog.from_dict(
            {"project": {"columns": ["id"], "key": ["id"]}}
        )
        program = get_frontend("minijava").parse(
            'f() { q = executeQuery("from Project as p"); return q; }'
        )
        assert isinstance(program, Program)
        report = extract_sql(program, "f", catalog)
        assert report.function == "f"
        assert report.frontend == "minijava"

    def test_api_facade_exposes_the_registry(self):
        from repro import api

        assert api.get_frontend is get_frontend
        assert api.register_frontend is register_frontend
        assert "available_frontends" in api.__all__
