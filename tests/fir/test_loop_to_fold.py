"""Loop→fold translation and precondition tests (Sec 4.2, Figs 6–7)."""

import pytest

from repro.fir import check_preconditions_ddg, count_folds, loop_to_fold
from repro.ir import EFold, ELoop, EQuery, build_dir, preprocess_program
from repro.lang import ForEach, parse_program, walk_statements


def translate(source, variable, function="f"):
    program = preprocess_program(parse_program(source))
    ve, ctx = build_dir(program, function)
    return loop_to_fold(ve[variable], ctx.dag), ve, ctx


class TestSuccessfulTranslation:
    def test_sum_accumulator(self):
        outcome, _, _ = translate(
            'f() { q = executeQuery("from T"); agg = 0; for (t : q) { agg = agg + t.getX(); } }',
            "agg",
        )
        assert outcome.ok
        fold = outcome.node
        assert isinstance(fold, EFold)
        assert fold.var == "agg"
        assert isinstance(fold.source, EQuery)

    def test_conditional_max(self):
        outcome, _, _ = translate(
            """
            f() {
                q = executeQuery("from T");
                m = 0;
                for (t : q) { if (t.getX() > m) { m = t.getX(); } }
            }
            """,
            "m",
        )
        assert outcome.ok
        assert outcome.node.func.op == "max"

    def test_list_collect(self):
        outcome, _, _ = translate(
            """
            f() {
                q = executeQuery("from T");
                xs = new ArrayList();
                for (t : q) { xs.add(t.getX()); }
            }
            """,
            "xs",
        )
        assert outcome.ok
        assert outcome.node.func.op == "append"

    def test_nested_loop_translates_inner_first(self):
        outcome, _, _ = translate(
            """
            f() {
                q1 = executeQuery("from A");
                xs = new ArrayList();
                for (a : q1) {
                    q2 = executeQuery("select * from b where y = " + a.getId());
                    for (b : q2) { xs.add(b.getZ()); }
                }
            }
            """,
            "xs",
        )
        assert outcome.ok
        assert count_folds(outcome.node) == 2


class TestPreconditionFailures:
    def test_p3_database_write(self):
        outcome, _, _ = translate(
            """
            f() {
                q = executeQuery("from T");
                s = 0;
                for (t : q) { executeUpdate("delete from U"); s = s + 1; }
            }
            """,
            "s",
        )
        assert not outcome.ok
        assert "P3" in outcome.reason

    def test_p2_dependent_accumulators(self):
        """Figure 7: dummyVal depends on agg — extra lcfd edge."""
        outcome, _, _ = translate(
            """
            f() {
                q = executeQuery("from T");
                agg = 0; dummyVal = 0;
                for (t : q) {
                    agg = agg + t.getX();
                    dummyVal = dummyVal + agg;
                }
            }
            """,
            "dummyVal",
        )
        assert not outcome.ok
        assert "P2" in outcome.reason

    def test_agg_itself_still_translates(self):
        """Figure 7: agg's own slice satisfies the preconditions."""
        outcome, _, _ = translate(
            """
            f() {
                q = executeQuery("from T");
                agg = 0; dummyVal = 0;
                for (t : q) {
                    agg = agg + t.getX();
                    dummyVal = dummyVal + agg;
                }
            }
            """,
            "agg",
        )
        assert outcome.ok

    def test_p1_no_accumulation(self):
        outcome, _, _ = translate(
            'f() { q = executeQuery("from T"); for (t : q) { last = t.getX(); } }',
            "last",
        )
        assert not outcome.ok
        assert "P1" in outcome.reason

    def test_opaque_body_fails(self):
        outcome, _, _ = translate(
            """
            f(cmp) {
                q = executeQuery("from T");
                s = 0;
                for (t : q) { s = s + t.compareTo(cmp); }
            }
            """,
            "s",
        )
        assert not outcome.ok


class TestDdgPreconditions:
    """The paper's Figure 6 check over the DDG, cross-validating."""

    def _loop(self, source):
        program = preprocess_program(parse_program(source))
        func = program.function("f")
        return next(
            s for s in walk_statements(func.body) if isinstance(s, ForEach)
        )

    def test_figure7_agg_passes(self):
        loop = self._loop(
            """
            f() {
                q = executeQuery("from T");
                for (t : q) { agg = agg + t.getX(); dummyVal = dummyVal + agg; }
            }
            """
        )
        report = check_preconditions_ddg(loop, "agg")
        assert report.p1_cycle and report.p2_no_other_lcfd and report.p3_no_external
        assert report.ok

    def test_figure7_dummyval_fails_p2(self):
        loop = self._loop(
            """
            f() {
                q = executeQuery("from T");
                for (t : q) { agg = agg + t.getX(); dummyVal = dummyVal + agg; }
            }
            """
        )
        report = check_preconditions_ddg(loop, "dummyVal")
        assert not report.p2_no_other_lcfd
        assert not report.ok

    def test_db_write_fails_p3(self):
        loop = self._loop(
            """
            f() {
                q = executeQuery("from T");
                for (t : q) { executeUpdate("x"); s = s + 1; }
            }
            """
        )
        report = check_preconditions_ddg(loop, "s")
        assert not report.p3_no_external

    def test_ddg_agrees_with_dag_check(self):
        """Both precondition formulations must agree on these samples."""
        cases = [
            ("f() { q = executeQuery(\"from T\"); for (t : q) { s = s + t.getX(); } }", "s", True),
            (
                "f() { q = executeQuery(\"from T\"); for (t : q) { a = a + t.getX(); b = b + a; } }",
                "b",
                False,
            ),
        ]
        for source, var, expected in cases:
            program = preprocess_program(parse_program(source))
            func = program.function("f")
            loop = next(
                s for s in walk_statements(func.body) if isinstance(s, ForEach)
            )
            ddg_ok = check_preconditions_ddg(loop, var).ok
            outcome, _, _ = translate(source, var)
            assert ddg_ok == outcome.ok == expected
