"""Scalarisation tests: ee-DAG → relational scalar expressions."""

import pytest

from repro.algebra import BinOp, CaseWhen, Col, Func, Lit, Param, UnOp
from repro.fir import (
    CAPABLE_UNIMPLEMENTED_OPS,
    CapableButUnimplemented,
    NotScalarizable,
    scalarize,
)
from repro.ir import DagBuilder


@pytest.fixture
def dag():
    return DagBuilder()


class TestBasics:
    def test_constant(self, dag):
        assert scalarize(dag.const(5), "t") == Lit(5)

    def test_cursor_attribute(self, dag):
        node = dag.attr(dag.bound("t"), "p1")
        assert scalarize(node, "t") == Col("p1")

    def test_free_var_becomes_param(self, dag):
        assert scalarize(dag.var("uid"), "t") == Param("uid")

    def test_attr_of_free_var_becomes_param(self, dag):
        node = dag.attr(dag.var("u"), "role_id")
        assert scalarize(node, "t") == Param("u__role_id")

    def test_column_renaming(self, dag):
        node = dag.attr(dag.bound("t"), "p1")
        assert scalarize(node, "t", {"p1": "c0"}) == Col("c0")

    def test_arithmetic(self, dag):
        node = dag.op("+", dag.attr(dag.bound("t"), "a"), dag.const(1))
        assert scalarize(node, "t") == BinOp("+", Col("a"), Lit(1))

    def test_comparison(self, dag):
        node = dag.op(">", dag.attr(dag.bound("t"), "a"), dag.const(0))
        assert scalarize(node, "t") == BinOp(">", Col("a"), Lit(0))

    def test_equality_renders_sql_equals(self, dag):
        node = dag.op("==", dag.attr(dag.bound("t"), "a"), dag.const(1))
        assert scalarize(node, "t") == BinOp("=", Col("a"), Lit(1))

    def test_max_becomes_greatest(self, dag):
        node = dag.op("max", dag.attr(dag.bound("t"), "a"), dag.attr(dag.bound("t"), "b"))
        assert scalarize(node, "t") == Func("GREATEST", (Col("a"), Col("b")))

    def test_ternary_becomes_case(self, dag):
        node = dag.op("?", dag.op(">", dag.attr(dag.bound("t"), "a"), dag.const(0)), dag.const(1), dag.const(2))
        result = scalarize(node, "t")
        assert isinstance(result, CaseWhen)

    def test_not(self, dag):
        node = dag.op("not", dag.attr(dag.bound("t"), "flag"))
        assert scalarize(node, "t") == UnOp("NOT", Col("flag"))


class TestNullComparisons:
    def test_eq_null_becomes_is_null(self, dag):
        node = dag.op("==", dag.attr(dag.bound("t"), "a"), dag.const(None))
        assert scalarize(node, "t") == Func("ISNULL", (Col("a"),))

    def test_neq_null_becomes_is_not_null(self, dag):
        node = dag.op("!=", dag.attr(dag.bound("t"), "a"), dag.const(None))
        result = scalarize(node, "t")
        assert isinstance(result, UnOp) and result.op == "NOT"

    def test_null_on_left(self, dag):
        node = dag.op("==", dag.const(None), dag.attr(dag.bound("t"), "a"))
        assert scalarize(node, "t") == Func("ISNULL", (Col("a"),))


class TestCombineOps:
    def test_combine_max_uses_coalesce(self, dag):
        node = dag.op("combine_max", dag.const(0), dag.var("s"))
        result = scalarize(node, "t")
        assert result == Func(
            "GREATEST", (Lit(0), Func("COALESCE", (Param("s"), Lit(0))))
        )

    def test_combine_sum_defaults_zero(self, dag):
        node = dag.op("combine_sum", dag.const(5), dag.var("s"))
        result = scalarize(node, "t")
        assert result == BinOp("+", Lit(5), Func("COALESCE", (Param("s"), Lit(0))))


class TestFailures:
    def test_bare_bound_var_fails(self, dag):
        with pytest.raises(NotScalarizable):
            scalarize(dag.bound("v"), "t")

    def test_collection_ops_fail(self, dag):
        with pytest.raises(NotScalarizable):
            scalarize(dag.op("append", dag.bound("v"), dag.const(1)), "t")

    def test_opaque_fails(self, dag):
        from repro.ir import OPAQUE

        with pytest.raises(NotScalarizable):
            scalarize(OPAQUE, "t")

    @pytest.mark.parametrize("op", sorted(CAPABLE_UNIMPLEMENTED_OPS - {"empty_map", "map_put"}))
    def test_capable_ops_raise_distinct_error(self, dag, op):
        """The Table 1 '✓' mechanism: representable, no SQL emitter."""
        node = dag.intern(
            type(dag.op("+", dag.const(1), dag.const(1)))(op, (dag.attr(dag.bound("t"), "s"),))
        )
        with pytest.raises(CapableButUnimplemented):
            scalarize(node, "t")
