"""Dependent-aggregation (argmax/argmin) tests — Appendix B."""

from repro.ir import ELoop, EOp, build_dir, preprocess_program
from repro.fir import detect_argmax, try_dependent_aggregation
from repro.lang import parse_program

ARGMAX_SOURCE = """
f() {
    q = executeQuery("from Project as p");
    best = null;
    maxBudget = 0;
    for (p : q) {
        if (p.getBudget() > maxBudget) {
            maxBudget = p.getBudget();
            best = p.getName();
        }
    }
    return best;
}
"""

ARGMIN_SOURCE = ARGMAX_SOURCE.replace(">", "<").replace("maxBudget", "minBudget")


def loops_of(source):
    program = preprocess_program(parse_program(source))
    ve, ctx = build_dir(program, "f")
    loops = {k: v for k, v in ve.items() if isinstance(v, ELoop)}
    return loops, ctx


class TestDetection:
    def test_argmax_detected(self):
        loops, _ = loops_of(ARGMAX_SOURCE)
        match = detect_argmax(loops["best"], loops)
        assert match is not None
        assert match.direction == "max"
        assert match.agg_var == "maxBudget"
        assert match.arg_var == "best"

    def test_argmin_detected(self):
        loops, _ = loops_of(ARGMIN_SOURCE)
        match = detect_argmax(loops["best"], loops)
        assert match is not None
        assert match.direction == "min"

    def test_plain_aggregation_not_matched(self):
        loops, _ = loops_of(
            """
            f() {
                q = executeQuery("from T");
                s = 0;
                for (t : q) { s = s + t.getX(); }
            }
            """
        )
        match = detect_argmax(loops["s"], loops)
        assert match is None

    def test_mismatched_measure_not_matched(self):
        loops, _ = loops_of(
            """
            f() {
                q = executeQuery("from Project as p");
                best = null; m = 0;
                for (p : q) {
                    m = Math.max(m, p.getBudget());
                    if (p.getId() > m) { best = p.getName(); }
                }
            }
            """
        )
        match = detect_argmax(loops["best"], loops)
        assert match is None


class TestAlgebraConstruction:
    def test_orderby_limit_form(self):
        loops, ctx = loops_of(ARGMAX_SOURCE)
        node = try_dependent_aggregation(loops["best"], loops, ctx.dag)
        assert node is not None
        assert isinstance(node, EOp) and node.op == "?"
        text = str(node)
        assert "limit[1]" in text
        assert "DESC" in text

    def test_argmin_sorts_ascending(self):
        loops, ctx = loops_of(ARGMIN_SOURCE)
        node = try_dependent_aggregation(loops["best"], loops, ctx.dag)
        assert node is not None
        assert "ASC" in str(node)

    def test_guard_compares_against_initial_value(self):
        """With init 0 and strict >, rows with budget <= 0 never update."""
        loops, ctx = loops_of(ARGMAX_SOURCE)
        node = try_dependent_aggregation(loops["best"], loops, ctx.dag)
        guard = node.operands[0]
        assert guard.op == ">"

    def test_null_init_guards_on_existence(self):
        source = ARGMAX_SOURCE.replace("maxBudget = 0;", "maxBudget = null;")
        loops, ctx = loops_of(source)
        # Comparing against null crashes in Java too, but the canonicalised
        # max-accumulation is still recognised; the guard becomes NOT NULL.
        node = try_dependent_aggregation(loops["best"], loops, ctx.dag)
        if node is not None:
            assert node.operands[0].op in ("not_null", ">")
