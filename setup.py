"""Setup shim: the environment has setuptools but no `wheel`, so editable
installs must go through the legacy ``setup.py develop`` path."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Extracting Equivalent SQL from Imperative Code in "
        "Database Applications' (SIGMOD 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
