"""Quickstart — extract equivalent SQL from an imperative loop.

Runs the paper's pipeline end-to-end on a small program: parse, analyse,
extract, rewrite, then execute both versions against the in-memory
database and compare results and data transfer.

    python examples/quickstart.py
"""

from repro import Catalog, Connection, Database, optimize_program
from repro.interp import Interpreter
from repro.lang import unparse_program

SOURCE = """
totalRevenue() {
    orders = executeQuery("from Orders as o");
    total = 0;
    for (o : orders) {
        if (o.getStatus() == "shipped") {
            total = total + o.getAmount();
        }
    }
    return total;
}
"""


def main() -> None:
    # 1. Describe the schema the program runs against.
    catalog = Catalog()
    catalog.define("orders", ["id", "cust", "amount", "status"], key=("id",))

    # 2. Extract equivalent SQL and rewrite the program.
    report = optimize_program(SOURCE, "totalRevenue", catalog)
    extraction = report.variables["total"]
    print("extraction status:", extraction.status)
    print("equivalent SQL:   ", extraction.sql)
    print()
    print("rewritten program:")
    print(unparse_program(report.rewritten))
    print()

    # 3. Check equivalence and the data-transfer win on real data.
    db = Database(catalog)
    db.insert_many(
        "orders",
        [
            {"id": 1, "cust": "a", "amount": 10, "status": "shipped"},
            {"id": 2, "cust": "b", "amount": 25, "status": "pending"},
            {"id": 3, "cust": "a", "amount": 40, "status": "shipped"},
        ],
    )
    original_conn, rewritten_conn = Connection(db), Connection(db)
    original = Interpreter(report.original, original_conn).run("totalRevenue")
    rewritten = Interpreter(report.rewritten, rewritten_conn).run("totalRevenue")

    print(f"original  → {original}  ({original_conn.stats.snapshot()})")
    print(f"rewritten → {rewritten}  ({rewritten_conn.stats.snapshot()})")
    assert original == rewritten == 50


if __name__ == "__main__":
    main()
