"""Keyword search — extracting each form's equivalent query (Experiment 3).

Keyword-search systems over form interfaces need, per servlet, one SQL
query that retrieves exactly what the form prints; the paper automates what
[6] did manually.  This example runs the extractor over the RuBiS servlet
suite and prints each form's extracted query.

    python examples/keyword_search.py
"""

from repro.core import optimize_program
from repro.workloads import RUBIS_SERVLETS, rubis_catalog, servlet_extracted


def main() -> None:
    catalog = rubis_catalog()
    extracted = 0
    for servlet in RUBIS_SERVLETS:
        report = optimize_program(servlet.source, servlet.function, catalog)
        ok = servlet_extracted(report)
        extracted += ok
        queries = report.queries() or [c.sql for c in report.consolidations]
        print(f"{'✔' if ok else '✘'} {servlet.name}")
        for query in queries[:1]:
            print(f"    {query}")
    print(f"\nextracted: {extracted}/{len(RUBIS_SERVLETS)} servlets "
          f"(paper: 17/17 for RuBiS)")


if __name__ == "__main__":
    main()
