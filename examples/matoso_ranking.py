"""Matoso ranking — the paper's Figure 2 → Figure 3(d) walk-through.

Shows every intermediate stage the paper's Figure 3 illustrates:

  (a) D-IR: the Loop operator over σ_rnd_id=1(Board)
  (b) F-IR: the loop as a fold
  (c) rules applied: aggregation pushed into the query (T3 + T5.1)
  (d) the final SQL with GREATEST, plus the rewritten program

    python examples/matoso_ranking.py
"""

from repro import Connection, optimize_program
from repro.fir import loop_to_fold
from repro.interp import Interpreter
from repro.ir import build_dir, preprocess_program
from repro.lang import parse_program, unparse_program
from repro.rules import RuleEngine
from repro.workloads import FIND_MAX_SCORE, matoso_catalog, matoso_database


def main() -> None:
    catalog = matoso_catalog()
    program = preprocess_program(parse_program(FIND_MAX_SCORE))

    print("=== source (Figure 2) ===")
    print(unparse_program(program))

    # (a) D-IR
    ve, context = build_dir(program, "findMaxScore")
    print("\n=== (a) D-IR for scoreMax ===")
    print(ve["scoreMax"])

    # (b) F-IR
    outcome = loop_to_fold(ve["scoreMax"], context.dag)
    assert outcome.ok
    print("\n=== (b) F-IR (fold) ===")
    print(outcome.node)

    # (c) transformed F-IR
    engine = RuleEngine(catalog, context.dag)
    transformed, trace = engine.transform(outcome.node)
    print("\n=== (c) after rules", trace, "===")
    print(transformed)

    # (d) SQL + rewritten program
    report = optimize_program(FIND_MAX_SCORE, "findMaxScore", catalog)
    print("\n=== (d) equivalent SQL (Figure 3d) ===")
    print(report.variables["scoreMax"].sql)
    print("\n=== rewritten program ===")
    print(unparse_program(report.rewritten))

    # Execute both; Figure 10's point: transfer constant vs linear.
    print("\n=== execution (1000 boards) ===")
    database = matoso_database(rows=1000, catalog=catalog)
    for label, prog in (("original", report.original), ("rewritten", report.rewritten)):
        conn = Connection(database)
        result = Interpreter(prog, conn).run("findMaxScore")
        print(f"{label:>9}: result={result}  {conn.stats.snapshot()}")


if __name__ == "__main__":
    main()
