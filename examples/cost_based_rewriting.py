"""Cost-based rewriting — the Appendix C sketch, working.

Shows the Volcano/Cascades-style AND-OR search deciding per loop whether
using extracted SQL pays off.  The Figure 7(a) situation (an aggregate
extracted from a loop whose rows must be fetched anyway) is declined; a
pure aggregation loop is rewritten.

    python examples/cost_based_rewriting.py
"""

from repro.core import extract_sql
from repro.cost import CostModel, cost_based_plan
from repro.workloads import sample, wilos_catalog, wilos_database

FIGURE7A = """
f() {
    q = executeQuery("from Project as p");
    agg = 0;
    pretty = null;
    for (t : q) {
        agg = agg + t.getBudget();
        pretty = t.getName().substring(0, 3);
    }
    return new Pair(agg, pretty);
}
"""


def main() -> None:
    catalog = wilos_catalog()
    database = wilos_database(scale=200, catalog=catalog)

    print("=== Figure 7(a): aggregate + unextractable variable ===")
    report = extract_sql(FIGURE7A, "f", catalog)
    for name, extraction in report.variables.items():
        print(f"  {name}: {extraction.status}  {extraction.reason or extraction.sql}")
    plan = cost_based_plan(report, database)
    print(f"  cost-based decision: rewrite={sorted(plan.rewrite_loops)} "
          f"keep={sorted(plan.keep_loops)}  "
          f"(memo groups: {plan.memo_size}, est. cost {plan.total_cost_ms:.3f} ms)")

    print("\n=== Wilos #9: pure aggregation ===")
    clean = sample(9)
    report2 = extract_sql(clean.source, clean.function, catalog)
    plan2 = cost_based_plan(report2, database)
    print(f"  extracted SQL: {report2.variables['total'].sql}")
    print(f"  cost-based decision: rewrite={sorted(plan2.rewrite_loops)} "
          f"keep={sorted(plan2.keep_loops)}")

    print("\n=== cost model cardinalities ===")
    model = CostModel(database)
    from repro.sqlparse import parse_query

    for text in (
        "select * from project",
        "select * from project where launched = true",
        "select sum(budget) as s from project",
    ):
        estimate = model.cardinality(parse_query(text))
        print(f"  {text:55s} → ~{estimate.rows:,.0f} rows, "
              f"{model.query_cost_ms(parse_query(text)):.4f} ms")


if __name__ == "__main__":
    main()
