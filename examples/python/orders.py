"""Order analytics in the Python DB-API subset.

Parameterised queries (``?`` placeholders become named SQL parameters),
fetchall iteration, and a running-maximum loop — all extracted by the
same rule engine that serves the MiniJava frontend.
"""


def customer_total(conn, cust):
    cur = conn.cursor()
    cur.execute("SELECT amount FROM orders WHERE customer = ?", (cust,))
    total = 0
    for o in cur:
        total = total + o["amount"]
    return total


def shipped_amounts(conn):
    cur = conn.cursor()
    cur.execute("SELECT status, amount FROM orders")
    amounts = []
    for o in cur.fetchall():
        if o["status"] == "shipped":
            amounts.append(o["amount"])
    return amounts


def max_order(conn):
    cur = conn.cursor()
    cur.execute("SELECT amount FROM orders")
    best = 0
    for o in cur:
        if o["amount"] > best:
            best = o["amount"]
    return best
