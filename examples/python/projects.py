"""Project reporting loops in the Python DB-API subset.

The Python twin of ``examples/minijava/projects.mj``: the same imperative
patterns (filtered collection, count, running sum) written against a
PEP 249 cursor.  ``python -m repro scan examples/python --schema
examples/python/schema.json`` extracts one SQL query per loop.
"""


def unfinished_projects(conn):
    cur = conn.cursor()
    cur.execute("SELECT name, finished FROM project")
    names = []
    for p in cur:
        if p["finished"] == 0:
            names.append(p["name"])
    return names


def count_launched(conn):
    cur = conn.cursor()
    cur.execute("SELECT launched FROM project")
    n = 0
    for p in cur:
        if p["launched"] == 1:
            n = n + 1
    return n


def total_budget(conn):
    cur = conn.cursor()
    cur.execute("SELECT budget FROM project")
    total = 0
    for p in cur.fetchall():
        total = total + p["budget"]
    return total
