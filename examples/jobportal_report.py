"""JobPortal report — the paper's Figure 12 → Figure 13 consolidation.

A cursor loop interleaves data access with presentation: per applicant it
runs up to four correlated scalar queries (an N+1 pattern over a star
schema).  EqSQL consolidates everything into one OUTER APPLY query; the
presentation loop stays, reading attributes of the consolidated cursor.

    python examples/jobportal_report.py
"""

from repro import Connection, optimize_program
from repro.interp import Interpreter
from repro.lang import unparse_program
from repro.workloads import JOB_REPORT, jobportal_catalog, jobportal_database


def main() -> None:
    catalog = jobportal_catalog()
    report = optimize_program(JOB_REPORT, "report", catalog)
    assert report.consolidations, "consolidation must apply"

    print("=== original (Figure 12) ===")
    print(unparse_program(report.original))

    consolidation = report.consolidations[0]
    print(f"\n=== consolidated query (Figure 13) — merged "
          f"{consolidation.queries_merged} queries ===")
    print(consolidation.sql)

    print("\n=== rewritten program ===")
    print(unparse_program(report.rewritten))

    print("\n=== execution (500 applicants) ===")
    database = jobportal_database(applicants=500, catalog=catalog)
    for label, program in (("original", report.original), ("rewritten", report.rewritten)):
        conn = Connection(database)
        interp = Interpreter(program, conn)
        interp.run("report", 7)
        stats = conn.stats
        print(
            f"{label:>9}: queries={stats.queries_executed:5d}  "
            f"round_trips={stats.round_trips:5d}  "
            f"simulated={stats.simulated_time_ms:9.2f} ms  "
            f"printed={len(interp.last_out)} values"
        )


if __name__ == "__main__":
    main()
