"""Experiment 4 — optimization time, EqSQL (measured) vs QBS (published).

Paper: "for the code samples that we could successfully optimize, our
techniques extract equivalent SQL in much less time than those of [4],
even when run on a less powerful machine."  (static analysis vs synthesis)
"""

from conftest import record_table

from repro.baselines import EQSQL_MACHINE, QBS_MACHINE, QBS_RESULTS
from repro.core import STATUS_SUCCESS, extract_sql
from repro.workloads import WILOS_SAMPLES, wilos_catalog

_CATALOG = wilos_catalog()


def _measure():
    measurements = []
    for sample in WILOS_SAMPLES:
        qbs = QBS_RESULTS[sample.number]
        if qbs.time_s is None:
            continue
        report = extract_sql(sample.source, sample.function, _CATALOG)
        if report.status != STATUS_SUCCESS:
            continue
        measurements.append(
            (sample.number, qbs.time_s, report.extraction_time_ms / 1000.0)
        )
    return measurements


def test_optimization_time(benchmark):
    measurements = benchmark(_measure)
    assert measurements, "no overlapping successes to compare"
    rows = []
    speedups = []
    for number, qbs_s, eqsql_s, in measurements:
        speedup = qbs_s / eqsql_s
        speedups.append(speedup)
        rows.append([number, f"{qbs_s:.0f}", f"{eqsql_s:.4f}", f"{speedup:,.0f}×"])
    rows.append(
        ["", "min speedup", "", f"{min(speedups):,.0f}×"]
    )
    record_table(
        "Experiment 4 — optimization time on common successes\n"
        f"(QBS: {QBS_MACHINE}, published; EqSQL: measured here; paper EqSQL "
        f"machine: {EQSQL_MACHINE})",
        ["Sample", "QBS (s)", "EqSQL (s)", "Speedup"],
        rows,
    )
    # Every common sample must be faster by a wide margin.
    assert min(speedups) > 10
