"""Ablation — ee-DAG hash-consing (paper Section 3.3).

The paper's D-IR assigns composite ids and uses a hash table "in order to
efficiently check the existence of a node in the ee-DAG".  This ablation
measures D-IR construction with interning on vs off, and the sharing it
buys (DAG size vs tree size) on a program with heavy common-subexpression
reuse.
"""

from conftest import record_table

from repro.ir import (
    DIRBuilder,
    DIRContext,
    dag_size,
    preprocess_program,
    tree_size,
    unique_enodes,
)
from repro.lang import parse_program

# Chained reuse: every statement reuses the previous expressions, which is
# where sharing pays.
_LINES = ["a0 = x + y;"]
for i in range(1, 60):
    _LINES.append(f"a{i} = a{i-1} + (x + y) * a{i-1};")
SOURCE = "f(x, y) {\n" + "\n".join(_LINES) + f"\nreturn a59;\n}}"


def _build(interning: bool):
    program = preprocess_program(parse_program(SOURCE))
    context = DIRContext(program=program)
    context.dag._enable = interning
    builder = DIRBuilder(context)
    ve = builder.build_function("f")
    return ve, context


def test_hashcons_on(benchmark):
    ve, context = benchmark(_build, True)
    node = ve["a59"]
    shared = dag_size(node)
    total = tree_size(node)
    record_table(
        "Ablation — hash-consing (60-step CSE chain)",
        ["interning", "distinct nodes", "tree nodes", "sharing factor"],
        [["on", shared, total, f"{total / shared:,.0f}×"]],
    )
    # The chain doubles the tree every step; sharing must collapse it.
    assert total > 100 * shared


def test_hashcons_off(benchmark):
    ve, _ = benchmark(_build, False)
    node = ve["a59"]
    # Structural equality still holds without interning; only identity
    # sharing (and builder hit counts) differ.
    assert dag_size(node) >= 1


def test_interning_gives_identity_sharing():
    ve_on, ctx_on = _build(True)
    ve_off, ctx_off = _build(False)
    assert ctx_on.dag.hits > 0
    assert ctx_off.dag.hits == 0
