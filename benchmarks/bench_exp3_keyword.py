"""Experiment 3 — equivalent-SQL extraction for keyword search on forms.

Paper: all queries extracted for 17/17 RuBiS servlets, 16/16 RuBBoS,
58/79 AcadPortal (failures due to unsupported operations); and for ~20% of
AcadPortal forms the *manually* extracted query was less precise (fetched
more data than the form prints) than the tool's query.
"""

from conftest import record_table

from repro.core import optimize_program
from repro.sqlparse import parse_query
from repro.workloads import (
    ACADPORTAL_SERVLETS,
    MANUAL_QUERIES,
    RUBBOS_SERVLETS,
    RUBIS_SERVLETS,
    acadportal_catalog,
    rubbos_catalog,
    rubis_catalog,
    servlet_extracted,
)

_SUITES = [
    ("RuBiS", RUBIS_SERVLETS, rubis_catalog()),
    ("RuBBoS", RUBBOS_SERVLETS, rubbos_catalog()),
    ("AcadPortal", ACADPORTAL_SERVLETS, acadportal_catalog()),
]


def _extract_all():
    counts = {}
    for label, servlets, catalog in _SUITES:
        extracted = 0
        for servlet in servlets:
            report = optimize_program(servlet.source, servlet.function, catalog)
            if servlet_extracted(report):
                extracted += 1
        counts[label] = (extracted, len(servlets))
    return counts


def test_keyword_search_extraction(benchmark):
    counts = benchmark(_extract_all)
    rows = [
        [label, f"{extracted}/{total}"]
        for label, (extracted, total) in counts.items()
    ]
    record_table(
        "Experiment 3 — servlets with all queries extracted "
        "(paper: 17/17, 16/16, 58/79)",
        ["Application", "Extracted"],
        rows,
    )
    assert counts["RuBiS"] == (17, 17)
    assert counts["RuBBoS"] == (16, 16)
    assert counts["AcadPortal"] == (58, 79)


def _manual_precision():
    """Compare manual queries with tool output: a manual query is 'less
    precise' when it fetches more columns than the form prints."""
    from repro.algebra import output_columns

    catalog = acadportal_catalog()
    less_precise = 0
    for name, (manual_sql, printed_columns) in MANUAL_QUERIES.items():
        try:
            manual_cols = len(output_columns(parse_query(manual_sql), catalog))
        except (TypeError, KeyError):
            manual_cols = printed_columns
        if manual_cols > printed_columns:
            less_precise += 1
    return less_precise, len(MANUAL_QUERIES)


def test_manual_query_precision(benchmark):
    less_precise, total = benchmark(_manual_precision)
    fraction = less_precise / total
    record_table(
        "Experiment 3 — manually extracted queries vs tool "
        "(paper: ~20% of manual queries fetch more than printed)",
        ["Less precise", "Total compared", "Fraction"],
        [[less_precise, total, f"{fraction:.0%}"]],
    )
    assert 0.1 <= fraction <= 0.3
