"""Experiment 5 / Figure 8 — selection pushed into the query (Wilos #6).

The original fetches all project tuples and filters in Java; the rewritten
program fetches only the matching ~20% (the paper's selectivity).  Both
execution time and data transfer drop; the gain grows as selectivity
shrinks.
"""

import random

from conftest import record_table

from repro.core import optimize_program
from repro.db import Connection, Database
from repro.interp import Interpreter
from repro.workloads import sample, wilos_catalog

_CATALOG = wilos_catalog()
_SAMPLE = sample(6)  # ProjectService (297): getUnfinishedProjects
_SIZES = [100, 500, 1000, 5000]


def _database(size: int, selectivity: float = 0.2, seed: int = 5) -> Database:
    rng = random.Random(seed)
    db = Database(_CATALOG)
    for i in range(1, size + 1):
        db.insert(
            "project",
            {
                "id": i,
                "name": f"project{i}",
                "finished": rng.random() >= selectivity,  # unfinished = selected
                "launched": True,
                "budget": rng.randint(1, 100),
            },
        )
    return db


def _run(program, db):
    conn = Connection(db)
    result = Interpreter(program, conn).run(_SAMPLE.function)
    return result, conn.stats


def _series(selectivity: float = 0.2):
    report = optimize_program(_SAMPLE.source, _SAMPLE.function, _CATALOG)
    assert report.rewritten is not None
    rows = []
    for size in _SIZES:
        db = _database(size, selectivity)
        r1, s1 = _run(report.original, db)
        r2, s2 = _run(report.rewritten, db)
        assert r1 == r2
        rows.append(
            [
                size,
                f"{s1.simulated_time_ms:.3f}",
                f"{s2.simulated_time_ms:.3f}",
                s1.bytes_transferred,
                s2.bytes_transferred,
            ]
        )
    return rows


def test_figure8_selection(benchmark):
    rows = benchmark(_series)
    record_table(
        "Figure 8 — Selection (Wilos #6, 20% selectivity): original vs "
        "transformed (time in simulated ms)",
        ["rows", "orig time", "opt time", "orig bytes", "opt bytes"],
        rows,
    )
    for size, t1, t2, b1, b2 in rows:
        assert float(t2) < float(t1)
        assert b2 < b1


def test_figure8_selectivity_sweep(benchmark):
    """Paper: "the performance gain achieved is larger/smaller as the
    selectivity of the query is less/more"."""

    def sweep():
        gains = []
        report = optimize_program(_SAMPLE.source, _SAMPLE.function, _CATALOG)
        for selectivity in (0.05, 0.2, 0.5, 0.9):
            db = _database(1000, selectivity)
            _, s1 = _run(report.original, db)
            _, s2 = _run(report.rewritten, db)
            gains.append((selectivity, s1.simulated_time_ms / s2.simulated_time_ms))
        return gains

    gains = benchmark(sweep)
    record_table(
        "Figure 8 (sweep) — gain vs selectivity at 1000 rows",
        ["selectivity", "speedup"],
        [[s, f"{g:.2f}×"] for s, g in gains],
    )
    speedups = [g for _, g in gains]
    assert speedups[0] > speedups[-1]  # lower selectivity → larger gain
