"""Cost-based rewrite selection benchmark — emits ``BENCH_rewrites.json``.

For every extraction site in the ``examples/minijava`` corpus, three
policies are executed against the same seeded instance on the simulated
connection of each built-in deployment profile:

* ``as-written``       always keep the imperative loop;
* ``always-pushdown``  always take the extraction-based member (full
                       push-down, falling back to hybrid, then to the
                       original program when no extraction exists);
* ``chosen``           the per-site winner ``plan_rewrites`` selects under
                       that profile.

The point of the exercise: a fixed policy loses somewhere — push-down is
the wrong answer over a WAN for small aggregate results, as-written is the
wrong answer everywhere for N+1 loops — while the cost-based choice tracks
the cheaper of the two on every profile.  The recorded gate asserts
exactly that, plus the profile-sensitivity acceptance criterion (at least
one site's winner flips between ``local`` and ``wan``).

Usage::

    PYTHONPATH=src python benchmarks/bench_rewrites.py [--out PATH] [--seed N] [--rows N]

``--seed`` drives the generated instance and is echoed into the BENCH
JSON (the shared convention across ``bench_engine.py`` / ``bench_scan.py``
/ ``bench_rewrites.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Catalog, extract_sql, plan_rewrites
from repro.lang import parse_program
from repro.rewrites import seed_database
from repro.rewrites.verify import run_observables

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "minijava"

DEFAULT_SEED = 7
DEFAULT_ROWS = 400

PROFILES = ("local", "wan")

#: Tolerated overshoot of `chosen` vs. the best fixed policy: the analytic
#: model and the simulated connection agree on shape, not to the microsecond.
GATE_SLACK = 1.05


def _fallback_pushdown(site):
    """The always-push-down policy member for one site."""
    for kind in ("pushdown", "hybrid", "as-written"):
        alternative = site.alternative(kind)
        if alternative is not None:
            return alternative
    raise AssertionError(f"site {site.function} has no members")


def run(seed: int, rows: int) -> dict:
    catalog = Catalog.from_json_file(str(EXAMPLES / "schema.json"))
    functions = []
    for path in sorted(EXAMPLES.glob("*.mj")):
        source = path.read_text()
        for fn in parse_program(source).functions:
            functions.append((path.name, fn, extract_sql(source, fn.name, catalog)))

    profiles: dict = {}
    winners: dict[str, dict[str, str]] = {}
    for profile_name in PROFILES:
        from repro import get_profile

        profile = get_profile(profile_name)
        totals = {"as-written": 0.0, "always-pushdown": 0.0, "chosen": 0.0}
        per_site = []
        for file_name, fn, report in functions:
            database = seed_database(
                catalog, rows_per_table=rows, seed=seed, engine="planned"
            )
            plan = plan_rewrites(report, catalog, profile, database=database)
            if not plan.choices:
                continue
            choice = plan.choices[0]
            site = choice.site
            args = (1,) * len(fn.params)
            policies = {
                "as-written": site.alternative("as-written"),
                "always-pushdown": _fallback_pushdown(site),
                "chosen": choice.chosen.alternative,
            }
            measured = {}
            for policy, alternative in policies.items():
                _, _, _, stats = run_observables(
                    alternative.program,
                    fn.name,
                    seed_database(
                        catalog, rows_per_table=rows, seed=seed, engine="planned"
                    ),
                    args=args,
                    profile=profile,
                )
                measured[policy] = round(stats.simulated_time_ms, 3)
                totals[policy] += stats.simulated_time_ms
            winners.setdefault(f"{file_name}::{fn.name}", {})[profile_name] = (
                choice.chosen.kind
            )
            per_site.append(
                {
                    "function": f"{file_name}::{fn.name}",
                    "chosen": choice.chosen.kind,
                    "estimated_ms": round(choice.chosen.cost.total_ms, 3),
                    "simulated_ms": measured,
                }
            )
        profiles[profile_name] = {
            "totals_ms": {k: round(v, 3) for k, v in totals.items()},
            "chosen_speedup_vs_pushdown": round(
                totals["always-pushdown"] / totals["chosen"], 2
            ),
            "chosen_speedup_vs_as_written": round(
                totals["as-written"] / totals["chosen"], 2
            ),
            "sites": per_site,
        }

    flipped = sorted(
        name for name, by_profile in winners.items()
        if len(set(by_profile.values())) > 1
    )
    return {
        "benchmark": "chosen winner vs fixed rewrite policies (simulated)",
        "seed": seed,
        "rows_per_table": rows,
        "profiles": profiles,
        "winner_flips_between_profiles": flipped,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="instance-generation seed, echoed into the BENCH JSON",
    )
    parser.add_argument(
        "--rows", type=int, default=DEFAULT_ROWS, help="rows per seeded table"
    )
    parser.add_argument(
        "--out", default="BENCH_rewrites.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    report = run(args.seed, args.rows)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for profile_name, entry in report["profiles"].items():
        totals = entry["totals_ms"]
        print(
            f"{profile_name:>6}: as-written {totals['as-written']:10.1f} ms   "
            f"always-pushdown {totals['always-pushdown']:10.1f} ms   "
            f"chosen {totals['chosen']:10.1f} ms"
        )
    print(f"winner flips: {report['winner_flips_between_profiles']}")
    print(f"\nwrote {args.out}")

    failures = []
    if not report["winner_flips_between_profiles"]:
        failures.append("no site's winner differs between profiles")
    for profile_name, entry in report["profiles"].items():
        totals = entry["totals_ms"]
        best_fixed = min(totals["as-written"], totals["always-pushdown"])
        if totals["chosen"] > best_fixed * GATE_SLACK:
            failures.append(
                f"{profile_name}: chosen ({totals['chosen']} ms) loses to the "
                f"best fixed policy ({best_fixed} ms)"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: chosen policy tracks the best fixed policy on every profile")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
