"""Experiment 8 / Figure 11 — Original vs Batch vs Prefetch vs EqSQL on the
JobPortal star-schema report (Figures 12–13).

Paper: "EqSQL enhances performance by up to two orders of magnitude
compared to the original program, and up to one order of magnitude compared
to other optimizations", at 10/100/500/1000 iterations (applicants).
"""

from conftest import record_table

from repro.core import optimize_program
from repro.db import Connection
from repro.interp import Interpreter
from repro.workloads import JOB_REPORT, jobportal_catalog, jobportal_database
from repro.baselines import run_batched_report, run_prefetch_report

_CATALOG = jobportal_catalog()
_ITERATIONS = [10, 100, 500, 1000]
_INNER_QUERIES = [
    ("personal", "name", False),
    ("feedback1", "score1", False),
    ("feedback2", "score2", False),
    ("qualifications", "degree", True),  # conditional on applnMode
]


_REPORT = optimize_program(JOB_REPORT, "report", _CATALOG)
assert _REPORT.consolidations, "JobPortal consolidation must apply"


def _run_original(db):
    conn = Connection(db)
    interp = Interpreter(_REPORT.original, conn)
    interp.run("report", 7)
    return interp.last_out, conn.stats


def _run_eqsql(db):
    conn = Connection(db)
    interp = Interpreter(_REPORT.rewritten, conn)
    interp.run("report", 7)
    return interp.last_out, conn.stats


def _run_batch(db):
    conn = Connection(db)
    out = run_batched_report(db, conn, 7, _INNER_QUERIES)
    return out, conn.stats


def _run_prefetch(db):
    conn = Connection(db)
    out = run_prefetch_report(db, conn, 7, _INNER_QUERIES)
    return out, conn.stats


def _series():
    rows = []
    ratios = []
    for n in _ITERATIONS:
        db = jobportal_database(applicants=n, catalog=_CATALOG)
        out0, original = _run_original(db)
        out_b, batch = _run_batch(db)
        out_p, prefetch = _run_prefetch(db)
        out_e, eqsql = _run_eqsql(db)
        assert out0 == out_b == out_p == out_e, "all strategies must agree"
        rows.append(
            [
                n,
                f"{original.simulated_time_ms:.3f}",
                f"{batch.simulated_time_ms:.3f}",
                f"{prefetch.simulated_time_ms:.3f}",
                f"{eqsql.simulated_time_ms:.3f}",
            ]
        )
        ratios.append(
            (
                n,
                original.simulated_time_ms / eqsql.simulated_time_ms,
                batch.simulated_time_ms / eqsql.simulated_time_ms,
                prefetch.simulated_time_ms / eqsql.simulated_time_ms,
            )
        )
    return rows, ratios


def test_figure11_comparison(benchmark):
    rows, ratios = benchmark(_series)
    record_table(
        "Figure 11 — JobPortal report (simulated ms; log-scale in the paper)",
        ["iterations", "Original", "Batch", "Prefetch", "EqSQL"],
        rows,
    )
    record_table(
        "Figure 11 — speedups of EqSQL",
        ["iterations", "vs Original", "vs Batch", "vs Prefetch"],
        [[n, f"{a:.1f}×", f"{b:.1f}×", f"{c:.1f}×"] for n, a, b, c in ratios],
    )
    # Shape assertions from the paper's discussion:
    largest = ratios[-1]
    assert largest[1] > 50, "EqSQL ~2 orders of magnitude over Original"
    assert largest[2] > 2, "EqSQL beats batching"
    assert largest[3] > 2, "EqSQL beats prefetching"
    # The baselines themselves do improve on the original.
    for n, a, b, c in ratios[-2:]:
        assert a > b and a > c
