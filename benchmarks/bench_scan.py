"""Scan throughput — cold vs. warm vs. ``-j N`` over the bundled workloads.

Materializes the paper's workload corpus (Wilos Table 1 samples, the RUBiS
servlet suite, Matoso, JobPortal) as MiniJava files on disk, replicated
with distinguishing headers so content addressing cannot dedup them, then
measures:

* a cold serial scan (``-j 1``, empty cache);
* a warm re-scan of the same cache (zero extractions expected);
* cold parallel scans (``-j 2`` / ``-j 4``, fresh caches).

Parallel scaling is asserted only when the machine actually has the cores;
the table records the measurements either way.

Also runnable as a script, following the shared BENCH convention
(``--seed`` echoed into the JSON)::

    PYTHONPATH=src python benchmarks/bench_scan.py [--out PATH] [--seed N]

The seed salts the replica headers, giving every seed a distinct corpus
under content addressing — a recorded throughput number names the exact
corpus it scanned.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import record_table

from repro.batch import scan_directory
from repro.workloads import (
    FIND_MAX_SCORE,
    FIND_MAX_SCORE_WITH_PLAYER,
    JOB_REPORT,
    RUBIS_SERVLETS,
    WILOS_SAMPLES,
    jobportal_catalog,
    matoso_catalog,
    rubis_catalog,
    wilos_catalog,
)

#: Each workload is written this many times (with unique headers) so the
#: corpus is large enough for pool startup to amortize.
REPLICAS = 8

DEFAULT_SEED = 0


def _materialize(root: Path, seed: int = DEFAULT_SEED):
    """Write the workload corpus to disk; one (name, dir, catalog) per app.

    The seed goes into every file header, so different seeds give corpora
    that content addressing cannot conflate.
    """
    corpora = []
    salt = f"seed {seed}"

    wilos_dir = root / "wilos"
    wilos_dir.mkdir(parents=True)
    for replica in range(REPLICAS):
        for sample in WILOS_SAMPLES:
            path = wilos_dir / f"r{replica}_sample{sample.number:02d}.mj"
            path.write_text(
                f"// wilos sample {sample.number} replica {replica} {salt}\n{sample.source}"
            )
    corpora.append(("wilos", wilos_dir, wilos_catalog()))

    rubis_dir = root / "rubis"
    rubis_dir.mkdir(parents=True)
    for replica in range(REPLICAS):
        for servlet in RUBIS_SERVLETS:
            path = rubis_dir / f"r{replica}_{servlet.name}.mj"
            path.write_text(
                f"// rubis {servlet.name} replica {replica} {salt}\n{servlet.source}"
            )
    corpora.append(("rubis", rubis_dir, rubis_catalog()))

    matoso_dir = root / "matoso"
    matoso_dir.mkdir(parents=True)
    for replica in range(REPLICAS):
        (matoso_dir / f"r{replica}_ranking.mj").write_text(
            f"// matoso replica {replica} {salt}\n{FIND_MAX_SCORE}\n{FIND_MAX_SCORE_WITH_PLAYER}"
        )
    corpora.append(("matoso", matoso_dir, matoso_catalog()))

    jobportal_dir = root / "jobportal"
    jobportal_dir.mkdir(parents=True)
    for replica in range(REPLICAS):
        (jobportal_dir / f"r{replica}_report.mj").write_text(
            f"// jobportal replica {replica} {salt}\n{JOB_REPORT}"
        )
    corpora.append(("jobportal", jobportal_dir, jobportal_catalog()))

    return corpora


def _scan_all(corpora, jobs: int, cache_root: Path | None):
    """Scan every workload; returns (wall_s, units, extracted, cache_hits)."""
    start = time.perf_counter()
    units = extracted = hits = 0
    for name, directory, catalog in corpora:
        report = scan_directory(
            directory,
            catalog,
            jobs=jobs,
            cache_dir=cache_root / name if cache_root is not None else None,
            use_cache=cache_root is not None,
        )
        assert not report.parse_errors, report.parse_errors
        units += len(report.units)
        extracted += report.extracted
        hits += report.cache_hits
    return time.perf_counter() - start, units, extracted, hits


def measure(root: Path, seed: int = DEFAULT_SEED) -> dict:
    """Cold/warm/parallel scan measurements, JSON-ready (the BENCH entry)."""
    corpora = _materialize(root / "corpus", seed=seed)
    configs = {}
    cold_s, units, extracted, _ = _scan_all(corpora, 1, root / "cache-j1")
    configs["cold-j1"] = {"wall_s": round(cold_s, 3), "extracted": extracted}
    warm_s, _, warm_extracted, warm_hits = _scan_all(corpora, 1, root / "cache-j1")
    configs["warm-j1"] = {
        "wall_s": round(warm_s, 3),
        "extracted": warm_extracted,
        "cache_hits": warm_hits,
    }
    for jobs in (2, 4):
        wall_s, _, _, _ = _scan_all(corpora, jobs, root / f"cache-j{jobs}")
        configs[f"cold-j{jobs}"] = {"wall_s": round(wall_s, 3)}
    return {
        "benchmark": "batch scan throughput (cold/warm/parallel)",
        "seed": seed,
        "units": units,
        "replicas": REPLICAS,
        "cpus": os.cpu_count(),
        "configs": configs,
        "warm_speedup": round(cold_s / warm_s, 2),
        "units_per_s_cold": round(units / cold_s, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="corpus-salting seed, echoed into the BENCH JSON",
    )
    parser.add_argument("--out", default="BENCH_scan.json", help="output JSON path")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="bench-scan-") as tmp:
        report = measure(Path(tmp), seed=args.seed)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    return 0


def test_scan_scaling(tmp_path):
    corpora = _materialize(tmp_path / "corpus")

    cold_s, units, extracted, _ = _scan_all(corpora, 1, tmp_path / "cache-j1")
    assert extracted == units  # cold: everything runs

    warm_s, warm_units, warm_extracted, warm_hits = _scan_all(
        corpora, 1, tmp_path / "cache-j1"
    )
    assert warm_units == units
    assert warm_extracted == 0, "warm scan must be 100% cache hits"
    assert warm_hits == units

    cold2_s, _, _, _ = _scan_all(corpora, 2, tmp_path / "cache-j2")
    cold4_s, _, _, _ = _scan_all(corpora, 4, tmp_path / "cache-j4")

    warm_speedup = cold_s / warm_s
    rows = [
        ["cold -j 1", f"{cold_s:.3f}", f"{units / cold_s:,.0f}", "1.0×"],
        ["cold -j 2", f"{cold2_s:.3f}", f"{units / cold2_s:,.0f}", f"{cold_s / cold2_s:.2f}×"],
        ["cold -j 4", f"{cold4_s:.3f}", f"{units / cold4_s:,.0f}", f"{cold_s / cold4_s:.2f}×"],
        ["warm -j 1", f"{warm_s:.3f}", f"{units / warm_s:,.0f}", f"{warm_speedup:.2f}×"],
    ]
    record_table(
        f"Scan throughput — {units} units ({len(corpora)} workloads × "
        f"{REPLICAS} replicas), {os.cpu_count()} CPU(s)",
        ["Configuration", "Wall (s)", "Units/s", "Speedup vs cold -j 1"],
        rows,
    )

    # The cache must pay for itself: a warm scan only re-parses and probes.
    assert warm_speedup >= 2.0, f"warm speedup only {warm_speedup:.2f}x"
    # Parallel scaling needs physical cores to mean anything.
    if (os.cpu_count() or 1) >= 4:
        assert cold_s / cold4_s >= 2.0, f"-j 4 speedup only {cold_s / cold4_s:.2f}x"


if __name__ == "__main__":
    raise SystemExit(main())
