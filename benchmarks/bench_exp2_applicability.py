"""Experiment 2 — applicability of batching [11] / prefetching [19] vs
EqSQL on the 33 Wilos samples.

Paper: batching applies to 7/33, EqSQL to 24/33; in the 4 overlap cases
EqSQL performs at least as well (it additionally pushes σ/π); prefetching
applies essentially everywhere but reduces no data transfer.
"""

from conftest import record_table

from repro.baselines import batching_applicable, prefetch_applicable
from repro.workloads import EXPECT_CAPABLE, EXPECT_SUCCESS, WILOS_SAMPLES


def _classify():
    rows = []
    batching = eqsql = overlap = prefetch = 0
    for sample in WILOS_SAMPLES:
        batch = batching_applicable(sample.source, sample.function)
        eq = sample.expected in (EXPECT_SUCCESS, EXPECT_CAPABLE)
        pre = prefetch_applicable(sample.source, sample.function)
        batching += batch
        eqsql += eq
        overlap += batch and eq
        prefetch += pre
        rows.append(
            [
                sample.number,
                f"{sample.file} ({sample.line})",
                "yes" if batch else "-",
                "yes" if eq else "-",
                "yes" if pre else "-",
            ]
        )
    return rows, batching, eqsql, overlap, prefetch


def test_applicability(benchmark):
    rows, batching, eqsql, overlap, prefetch = benchmark(_classify)
    rows.append(["", "TOTAL", f"{batching}/33", f"{eqsql}/33", f"{prefetch}/33"])
    record_table(
        "Experiment 2 — technique applicability on Wilos "
        f"(overlap batching∩EqSQL = {overlap}; paper: 7/33, 24/33, overlap 4)",
        ["#", "Sample", "Batching", "EqSQL", "Prefetch"],
        rows,
    )
    assert batching == 7
    assert eqsql == 24
    assert overlap == 4
