"""Precision-layer recovery benchmark — emits ``BENCH_precision.json``.

Replays the :mod:`repro.workloads.precision` corpus twice — with the SSA
precision layer off (the purely syntactic pipeline) and on — and records,
per sample, the blocker codes that gate the baseline and whether the
precision run extracts.  Every recovered extraction is verified end to
end: the original and rewritten programs run against the same seeded
``engine="both"`` database (planned executor cross-checked against the
reference engine on every query) and must return the same value.

The recovered-extraction count is the headline number; CI's
``precision-smoke`` job replays this script and asserts the count matches
the checked-in ``BENCH_precision.json`` exactly.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro import ExtractOptions, optimize_program
from repro.db import Connection
from repro.interp import Interpreter
from repro.lang import parse_program
from repro.lint import lint_program
from repro.workloads import (
    PRECISION_SAMPLES,
    precision_catalog,
    precision_database,
)

DEFAULT_SCALE = 40
DEFAULT_SEED = 11


def run(scale: int, seed: int) -> dict:
    catalog = precision_catalog()
    samples = []
    recovered = 0
    for sample in PRECISION_SAMPLES:
        baseline = optimize_program(
            sample.source,
            sample.function,
            catalog,
            options=ExtractOptions(precision=False),
        )
        baseline_sqls = [
            e.sql for e in baseline.variables.values() if e.sql
        ]
        blockers = sorted(
            {
                d.code
                for d in lint_program(
                    parse_program(sample.source), precision=False
                ).diagnostics
                if d.is_blocker
            }
        )

        precise = optimize_program(
            sample.source,
            sample.function,
            catalog,
            options=ExtractOptions(precision=True),
        )
        precise_sqls = [e.sql for e in precise.variables.values() if e.sql]

        equivalent = None
        original_value = None
        if precise.status == "success" and precise_sqls:
            db = precision_database(scale=scale, seed=seed, catalog=catalog)
            db.default_engine = "both"
            original_value = Interpreter(
                precise.original, Connection(db)
            ).run(sample.function)
            rewritten_value = Interpreter(
                precise.rewritten, Connection(db)
            ).run(sample.function)
            equivalent = original_value == rewritten_value

        is_recovery = (
            baseline.status != "success"
            and not baseline_sqls
            and precise.status == "success"
            and bool(precise_sqls)
            and equivalent is True
        )
        recovered += is_recovery
        samples.append(
            {
                "name": sample.name,
                "function": sample.function,
                "baseline_status": baseline.status,
                "baseline_blockers": blockers,
                "expected_blockers": list(sample.blocked_without),
                "precision_status": precise.status,
                "extracted_queries": precise_sqls,
                "equivalent": equivalent,
                "original_value": original_value,
                "recovered": is_recovery,
            }
        )

    return {
        "benchmark": "precision-layer recovered extractions",
        "scale": scale,
        "seed": seed,
        "total_samples": len(samples),
        "recovered_extractions": recovered,
        "samples": samples,
    }


def check(report: dict) -> list[str]:
    """Acceptance conditions; empty list means the run is healthy."""
    failures = []
    if report["recovered_extractions"] < 5:
        failures.append(
            f"only {report['recovered_extractions']} recovered extractions; "
            "need at least 5"
        )
    for entry in report["samples"]:
        if not entry["recovered"]:
            failures.append(f"{entry['name']}: not recovered ({entry})")
        if entry["baseline_blockers"] != entry["expected_blockers"]:
            failures.append(
                f"{entry['name']}: baseline blockers "
                f"{entry['baseline_blockers']} != expected "
                f"{entry['expected_blockers']}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=int, default=DEFAULT_SCALE, help="rows in the seeded table"
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="database seed"
    )
    parser.add_argument(
        "--out", default="BENCH_precision.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for entry in report["samples"]:
        status = "recovered" if entry["recovered"] else "NOT RECOVERED"
        print(
            f"{entry['name']:>16}: baseline {entry['baseline_status']:7} "
            f"{','.join(entry['baseline_blockers']) or '-':>6}  ->  "
            f"precision {entry['precision_status']:7}  {status}"
        )
    print(
        f"\nrecovered {report['recovered_extractions']} / "
        f"{report['total_samples']} extractions"
    )
    print(f"wrote {args.out}")

    failures = check(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
