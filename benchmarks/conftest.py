"""Benchmark harness infrastructure.

Benchmarks record the tables/series the paper reports through
:func:`record_table`; a terminal-summary hook prints everything at the end
of the run (so the output survives pytest's capture).  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

_TABLES: list[tuple[str, list[str], list[list]]] = []


def record_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Record one result table for the end-of-run report."""
    _TABLES.append((title, headers, rows))


def _format_table(title: str, headers: list[str], rows: list[list]) -> str:
    rendered = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction results")
    for title, headers, rows in _TABLES:
        terminalreporter.write_line("")
        for line in _format_table(title, headers, rows).splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
