"""Experiment 1 / Table 1 — applicability and extraction time on the 33
Wilos samples, EqSQL (measured here) vs QBS (published numbers; QBS ran on
a 128 GB / 32-core machine, the paper's EqSQL on 8 GB / 8 cores).

Paper's headline: QBS 21/33 automatic, EqSQL 17/33 automatic + 7 more
technique-capable; every EqSQL extraction takes < 2 s vs QBS's 19–310 s;
6 samples EqSQL handles that QBS cannot.
"""

import time

from conftest import record_table

from repro.baselines import QBS_RESULTS, eqsql_only_successes, qbs_success_count
from repro.core import STATUS_CAPABLE, STATUS_SUCCESS, extract_sql
from repro.workloads import WILOS_SAMPLES, wilos_catalog

_CATALOG = wilos_catalog()


def _run_all():
    results = {}
    for sample in WILOS_SAMPLES:
        start = time.perf_counter()
        report = extract_sql(sample.source, sample.function, _CATALOG)
        elapsed_ms = (time.perf_counter() - start) * 1000
        results[sample.number] = (report.status, elapsed_ms)
    return results


def test_table1(benchmark):
    results = benchmark(_run_all)

    rows = []
    for sample in WILOS_SAMPLES:
        status, elapsed_ms = results[sample.number]
        qbs = QBS_RESULTS[sample.number]
        qbs_col = f"{qbs.time_s:.0f}" if qbs.time_s is not None else "–"
        if status == STATUS_SUCCESS:
            eqsql_col = f"{elapsed_ms/1000:.3f}s"
        elif status == STATUS_CAPABLE:
            eqsql_col = "✓"
        else:
            eqsql_col = "–"
        rows.append(
            [sample.number, f"{sample.file} ({sample.line})", qbs_col, eqsql_col]
        )

    statuses = {n: s for n, (s, _) in results.items()}
    success = sum(1 for s, _ in results.values() if s == STATUS_SUCCESS)
    capable = sum(1 for s, _ in results.values() if s == STATUS_CAPABLE)
    rows.append(["", "TOTAL", f"{qbs_success_count()}/33 automatic",
                 f"{success}/33 automatic + {capable} ✓"])
    rows.append(["", "EqSQL-only successes (paper: 6)",
                 "", str(eqsql_only_successes(statuses))])
    record_table(
        "Table 1 — SQL extraction: QBS (reported, 128GB/32c) vs EqSQL (measured)",
        ["#", "File (Line)", "QBS (s)", "EqSQL"],
        rows,
    )

    # The paper's claims must hold in the reproduction.
    assert success == 17 and capable == 7
    assert all(
        elapsed_ms < 2000 for s, elapsed_ms in results.values() if s == STATUS_SUCCESS
    )
    assert len(eqsql_only_successes(statuses)) == 6
