"""Experiment 7 / Figure 10 — aggregation (Matoso findMaxScore, Figure 2).

Paper: "the data transferred for the optimized query is constant, as only
the single result value is transferred in all cases.  In contrast, data
transfer for the original query increases linearly with table size."
"""

from conftest import record_table

from repro.core import optimize_program
from repro.db import Connection
from repro.interp import Interpreter
from repro.workloads import FIND_MAX_SCORE, matoso_catalog, matoso_database

_CATALOG = matoso_catalog()
_SIZES = [100, 500, 1000, 5000]


def _run(program, db):
    conn = Connection(db)
    result = Interpreter(program, conn).run("findMaxScore")
    return result, conn.stats


def _series():
    report = optimize_program(FIND_MAX_SCORE, "findMaxScore", _CATALOG)
    assert report.rewritten is not None
    rows = []
    for size in _SIZES:
        db = matoso_database(rows=size, catalog=_CATALOG)
        r1, s1 = _run(report.original, db)
        r2, s2 = _run(report.rewritten, db)
        assert r1 == r2
        rows.append(
            [
                size,
                f"{s1.simulated_time_ms:.3f}",
                f"{s2.simulated_time_ms:.3f}",
                s1.bytes_transferred,
                s2.bytes_transferred,
            ]
        )
    return rows


def test_figure10_aggregation(benchmark):
    rows = benchmark(_series)
    record_table(
        "Figure 10 — Aggregation (Matoso findMaxScore)",
        ["boards", "orig time", "opt time", "orig bytes", "opt bytes"],
        rows,
    )
    orig_bytes = [r[3] for r in rows]
    opt_bytes = [r[4] for r in rows]
    # Original transfer grows linearly with table size...
    assert orig_bytes[-1] > 10 * orig_bytes[0]
    # ...optimized transfer is constant (one scalar).
    assert len(set(opt_bytes)) == 1
    for _, t1, t2, _, _ in rows:
        assert float(t2) <= float(t1)
