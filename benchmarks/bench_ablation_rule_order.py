"""Ablation — rule-application order (paper Section 5.3).

"The rule set is confluent ... the order of application of the competing
rules does not matter."  This bench runs every rotation of the rule list
over the Wilos successes and checks all orders reach the same normal form,
recording per-order wall time.
"""

import time

from conftest import record_table

from repro.core import STATUS_SUCCESS
from repro.fir import loop_to_fold
from repro.ir import build_dir, preprocess_program
from repro.lang import parse_program
from repro.rules import DEFAULT_RULES, RuleEngine
from repro.workloads import WILOS_SAMPLES, wilos_catalog

_CATALOG = wilos_catalog()
_SUCCESS_SAMPLES = [s for s in WILOS_SAMPLES if s.expected == STATUS_SUCCESS]


def _rotations():
    rules = list(DEFAULT_RULES)
    return [tuple(rules[i:] + rules[:i]) for i in range(len(rules))]


def _normal_forms(rule_order):
    forms = {}
    for sample in _SUCCESS_SAMPLES:
        program = preprocess_program(parse_program(sample.source))
        ve, ctx = build_dir(program, sample.function)
        engine = RuleEngine(_CATALOG, ctx.dag, rules=rule_order)
        for name, node in sorted(ve.items()):
            outcome = loop_to_fold(node, ctx.dag)
            if not outcome.ok:
                continue
            result, _ = engine.transform(outcome.node)
            forms[(sample.number, name)] = str(result)
    return forms


def test_rule_order_confluence(benchmark):
    def run_all():
        results = []
        for order in _rotations():
            start = time.perf_counter()
            forms = _normal_forms(order)
            elapsed = (time.perf_counter() - start) * 1000
            results.append((order, forms, elapsed))
        return results

    results = benchmark(run_all)
    baseline = results[0][1]
    rows = []
    for order, forms, elapsed in results:
        same = forms == baseline
        rows.append(
            ["→".join(name for name, _ in order), f"{elapsed:.1f}", "same" if same else "DIFFERENT"]
        )
        assert same, "rule set must be confluent (Section 5.3)"
    record_table(
        "Ablation — rule order (all rotations reach the same normal form)",
        ["order", "time (ms)", "normal form"],
        rows,
    )
