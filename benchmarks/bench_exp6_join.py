"""Experiment 6 / Figure 9 — nested-loop join rewritten to a join query
(Wilos #30, "slightly simplified to be handled by our current
implementation").

The original fetches WilosUser and Role fully (size ratio 40:1 as in the
paper) and joins them in nested loops client-side.  The rewrite is a join
query: faster (the engine picks the plan, no client nested loop), but
transferring *marginally more* data because role attributes are replicated
per user row — the paper calls this out explicitly.
"""

from conftest import record_table

from repro.core import optimize_program
from repro.db import Connection, Database
from repro.interp import Interpreter
from repro.workloads import wilos_catalog

_CATALOG = wilos_catalog()

# Two full fetches joined client-side; the 40:1 size ratio is in the data.
JOIN_SOURCE = """
userRoles() {
    users = executeQuery("from WilosUser as u");
    roles = executeQuery("from Role as r");
    result = new ArrayList();
    for (u : users) {
        for (r : roles) {
            if (r.getId() == u.getRole_id()) {
                result.add(new Pair(u.getName(), r.getRole_name()));
            }
        }
    }
    return result;
}
"""

_SIZES = [200, 1000, 4000]


def _database(users: int) -> Database:
    db = Database(_CATALOG)
    roles = max(1, users // 40)  # the paper's 40:1 ratio
    for i in range(1, roles + 1):
        # Descriptive role names: in the join result they are replicated
        # once per user row, which is what makes the transformed code
        # transfer marginally more data (the paper's observation).
        db.insert(
            "role",
            {
                "id": i,
                "role_name": f"role_number_{i}_of_the_wilos_process",
                "project_id": i,
            },
        )
    for i in range(1, users + 1):
        db.insert(
            "wilosuser",
            {
                "id": i,
                "name": f"user{i}",
                "login": f"login{i}",
                "pass_word": f"pw{i}",
                "role_id": i % roles + 1,
                "active": True,
            },
        )
    return db


def _run(program, db):
    conn = Connection(db)
    result = Interpreter(program, conn, max_steps=100_000_000).run("userRoles")
    return result, conn.stats


def _series():
    report = optimize_program(JOIN_SOURCE, "userRoles", _CATALOG)
    assert report.rewritten is not None
    rows = []
    for users in _SIZES:
        db = _database(users)
        r1, s1 = _run(report.original, db)
        r2, s2 = _run(report.rewritten, db)
        assert sorted(map(str, r1)) == sorted(map(str, r2))
        rows.append(
            [
                users,
                f"{s1.simulated_time_ms:.3f}",
                f"{s2.simulated_time_ms:.3f}",
                s1.bytes_transferred,
                s2.bytes_transferred,
            ]
        )
    return rows


def test_figure9_join(benchmark):
    rows = benchmark(_series)
    record_table(
        "Figure 9 — Join (Wilos #30 simplified, WilosUser:Role = 40:1)",
        ["users", "orig time", "opt time", "orig bytes", "opt bytes"],
        rows,
    )
    for users, t1, t2, b1, b2 in rows:
        assert float(t2) < float(t1), "join query must beat client nested loop"
    # The paper's callout: the transformed code transfers marginally more
    # data (role attributes replicated per user row) at the largest size.
    _, _, _, b1, b2 = rows[-1]
    assert b2 > b1
    assert b2 < 3 * b1  # "marginally", not wildly
