"""Ablation — cost-based rewriting vs the Section 5.3 heuristic (App. C).

The paper's Figure 7(a) discussion: when a loop must fetch all rows anyway
(another variable needs them), extracting a separate aggregate query is
pure overhead.  The always-rewrite policy regresses there; the Section 5.3
all-or-nothing heuristic and the Appendix C cost-based search both decline.
On a cleanly extractable loop, cost-based and heuristic agree to rewrite.
"""

from conftest import record_table

from repro.core import extract_sql, optimize_program
from repro.cost import cost_based_plan
from repro.db import Connection
from repro.interp import Interpreter
from repro.workloads import sample, wilos_catalog, wilos_database

_CATALOG = wilos_catalog()

# Figure 7(a): the aggregate extracts but `pretty` (string building with an
# unsupported op) keeps the rows flowing to the client.
FIGURE7A = """
f() {
    q = executeQuery("from Project as p");
    agg = 0;
    pretty = null;
    for (t : q) {
        agg = agg + t.getBudget();
        pretty = t.getName().substring(0, 3);
    }
    return new Pair(agg, pretty);
}
"""


def _simulate_always_rewrite(db):
    """What always-rewrite would cost on Figure 7(a): the loop still runs
    (rows fetched for `pretty`) plus the separate aggregate query."""
    from repro.sqlparse import parse_query

    conn = Connection(db)
    conn.execute_query(parse_query("select * from project"))
    conn.execute_query(parse_query("select sum(budget) as agg from project"))
    return conn.stats.simulated_time_ms


def _simulate_keep(db):
    from repro.sqlparse import parse_query

    conn = Connection(db)
    conn.execute_query(parse_query("select * from project"))
    return conn.stats.simulated_time_ms


def test_cost_based_declines_figure7a(benchmark):
    db = wilos_database(scale=200, catalog=_CATALOG)

    def decide():
        report = extract_sql(FIGURE7A, "f", _CATALOG)
        return cost_based_plan(report, db)

    plan = benchmark(decide)
    keep = _simulate_keep(db)
    always = _simulate_always_rewrite(db)
    record_table(
        "Ablation — Figure 7(a): rewrite decision policies",
        ["policy", "decision", "simulated cost (ms)"],
        [
            ["always-rewrite", "extract agg anyway", f"{always:.3f}"],
            ["heuristic (Sec 5.3)", "keep loop", f"{keep:.3f}"],
            [
                "cost-based (App C)",
                "keep loop" if not plan.rewrite_loops else "rewrite",
                f"{keep:.3f}",
            ],
        ],
    )
    assert not plan.rewrite_loops, "cost-based must decline the extra query"
    assert always > keep


def test_cost_based_agrees_on_clean_aggregation(benchmark):
    db = wilos_database(scale=200, catalog=_CATALOG)
    clean = sample(9)  # totalBudget: pure sum

    def decide():
        report = extract_sql(clean.source, clean.function, _CATALOG)
        return cost_based_plan(report, db), report

    plan, report = benchmark(decide)
    assert plan.rewrite_loops, "pure aggregation must be rewritten"

    # And the rewrite actually wins at runtime.
    opt = optimize_program(clean.source, clean.function, _CATALOG)
    c1, c2 = Connection(db), Connection(db)
    r1 = Interpreter(opt.original, c1).run(clean.function)
    r2 = Interpreter(opt.rewritten, c2).run(clean.function)
    assert r1 == r2
    record_table(
        "Ablation — clean aggregation (Wilos #9): both policies rewrite",
        ["variant", "simulated ms", "bytes"],
        [
            ["original", f"{c1.stats.simulated_time_ms:.3f}", c1.stats.bytes_transferred],
            ["rewritten", f"{c2.stats.simulated_time_ms:.3f}", c2.stats.bytes_transferred],
        ],
    )
    assert c2.stats.simulated_time_ms < c1.stats.simulated_time_ms
