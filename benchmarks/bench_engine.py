"""Planned vs. reference engine benchmark — emits ``BENCH_engine.json``.

Measures both execution engines on the operator shapes the planner
optimizes, at several scale factors:

* ``point_select`` — repeated key lookups (hash index vs. full scan);
* ``join``        — equi-join (hash join vs. nested loop);
* ``exists``      — correlated EXISTS (hash semi-join vs. per-row subquery);
* ``aggregation`` — grouped sum (incremental fold vs. materialize+fold);
* ``topn``        — ORDER BY + LIMIT (bounded heap vs. full sort).

Every measurement first asserts the engines return identical rows, so the
numbers can never come from diverging semantics.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke] [--out PATH] [--seed N]

``--seed`` drives the generated instances and is echoed into the BENCH
JSON (the shared convention across ``bench_engine.py`` / ``bench_scan.py``
/ ``bench_rewrites.py``), so a recorded result names the exact data it
measured.

``--smoke`` runs the small scale factors and asserts the planned engine
beats the reference engine on the join workload at the largest smoke scale
(the CI gate); the full run additionally asserts the ≥5× equi-join speedup
recorded in BENCH_engine.json.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    Catalog,
    Col,
    ExistsExpr,
    Join,
    Limit,
    Lit,
    Select,
    Sort,
    SortKey,
    Table,
)
from repro.db import Database

SMOKE_SCALES = [50, 200]
FULL_SCALES = [100, 400, 1600]

#: Required speedups on the equi-join workload at the largest scale.
SMOKE_MIN_JOIN_SPEEDUP = 1.0
FULL_MIN_JOIN_SPEEDUP = 5.0


DEFAULT_SEED = 1234


def build_database(scale: int, seed: int = DEFAULT_SEED) -> Database:
    rng = random.Random(seed + scale)
    catalog = Catalog()
    catalog.define("bench_left", ["id", "grp", "val"], key=("id",))
    catalog.define("bench_right", ["id", "fk", "amount"], key=("id",))
    db = Database(catalog)
    db.insert_many(
        "bench_left",
        [
            {"id": i, "grp": i % 17, "val": rng.randint(0, 1000)}
            for i in range(1, scale + 1)
        ],
    )
    db.insert_many(
        "bench_right",
        [
            {"id": i, "fk": rng.randint(1, scale), "amount": rng.randint(0, 500)}
            for i in range(1, scale + 1)
        ],
    )
    return db


def workloads(scale: int) -> dict:
    """Query (factory) per workload; point_select is a batch of lookups."""
    point_ids = [1 + (i * 37) % scale for i in range(50)]
    return {
        "point_select": [
            Select(Table("bench_left"), BinOp("=", Col("id"), Lit(i)))
            for i in point_ids
        ],
        "join": [
            Join(
                Table("bench_left", "l"),
                Table("bench_right", "r"),
                BinOp("=", Col("id", "l"), Col("fk", "r")),
            )
        ],
        "exists": [
            Select(
                Table("bench_left", "l"),
                ExistsExpr(
                    Select(
                        Table("bench_right", "r"),
                        BinOp(
                            "AND",
                            BinOp("=", Col("fk", "r"), Col("id", "l")),
                            BinOp(">", Col("amount", "r"), Lit(400)),
                        ),
                    )
                ),
            )
        ],
        "aggregation": [
            Aggregate(
                Table("bench_right"),
                (Col("fk"),),
                (AggItem(AggCall("sum", Col("amount")), "total"),),
            )
        ],
        "topn": [
            Limit(
                Sort(
                    Table("bench_right"),
                    (SortKey(Col("amount"), ascending=False), SortKey(Col("id"))),
                ),
                5,
            )
        ],
    }


def _time_engine(db: Database, queries, engine: str, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for query in queries:
            db.execute(query, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def run(scales, repeats: int = 3, seed: int = DEFAULT_SEED) -> dict:
    results: dict = {name: [] for name in workloads(scales[0])}
    for scale in scales:
        db = build_database(scale, seed=seed)
        for name, queries in workloads(scale).items():
            for query in queries:  # semantics gate before any timing
                planned = db.execute(query, engine="planned")
                reference = db.execute(query, engine="reference")
                assert planned == reference, (
                    f"ENGINE DIVERGENCE in {name} at scale {scale}: {query}"
                )
            planned_ms = _time_engine(db, queries, "planned", repeats)
            reference_ms = _time_engine(db, queries, "reference", repeats)
            speedup = reference_ms / planned_ms if planned_ms > 0 else float("inf")
            results[name].append(
                {
                    "scale": scale,
                    "planned_ms": round(planned_ms, 3),
                    "reference_ms": round(reference_ms, 3),
                    "speedup": round(speedup, 2),
                }
            )
            print(
                f"{name:>12} scale={scale:>5}: planned {planned_ms:8.2f} ms   "
                f"reference {reference_ms:8.2f} ms   speedup {speedup:6.2f}x"
            )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small scales + CI join-speedup gate"
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="instance-generation seed, echoed into the BENCH JSON",
    )
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    results = run(scales, repeats=args.repeats, seed=args.seed)

    largest_join = results["join"][-1]
    report = {
        "benchmark": "planned vs reference execution engine",
        "mode": "smoke" if args.smoke else "full",
        "seed": args.seed,
        "scales": scales,
        "workloads": results,
        "join_speedup_at_largest_scale": largest_join["speedup"],
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    required = SMOKE_MIN_JOIN_SPEEDUP if args.smoke else FULL_MIN_JOIN_SPEEDUP
    if largest_join["speedup"] < required:
        print(
            f"FAIL: join speedup {largest_join['speedup']}x at scale "
            f"{largest_join['scale']} is below the required {required}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: join speedup {largest_join['speedup']}x at scale "
        f"{largest_join['scale']} (required ≥ {required}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
