"""Columnar vs. row vs. reference engine benchmark — emits ``BENCH_engine.json``.

Measures the three execution strategies on the operator shapes the planner
optimizes, at several scale factors:

* ``point_select`` — repeated key lookups (hash index vs. full scan); also
  measured under ``columnar_mode="auto"`` to document that the planner's
  selectivity gate routes point predicates to the index probe;
* ``join``        — equi-join (vectorized hash join vs. row hash join vs.
  nested loop);
* ``exists``      — correlated EXISTS (vectorized semi-join vs. row hash
  semi-join vs. per-row subquery);
* ``aggregation`` — grouped sum (vectorized fold vs. row fold vs.
  materialize+fold);
* ``topn``        — ORDER BY + LIMIT (columnar heap vs. row heap vs. full
  sort);
* ``stats_build`` — exact full-pass statistics vs. reservoir-sampled
  statistics (``Database.stats(sample=...)``), with per-column NDV
  estimate ratios so the speedup is shown not to come at accuracy's cost.

The matrix pins each engine explicitly: ``columnar`` runs the planned
engine with ``columnar_mode="force"``, ``row`` with ``"off"``, and
``reference`` is the tree-walking oracle.  Every measurement first asserts
all strategies return identical rows, so the numbers can never come from
diverging semantics.

The reference evaluator's join and EXISTS are O(n²), so each workload has
a reference cutoff scale; beyond it ``reference_ms`` is recorded as
``null`` and only columnar vs. row is compared.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke] [--out PATH] [--seed N]

``--seed`` drives the generated instances and is echoed into the BENCH
JSON (the shared convention across ``bench_engine.py`` / ``bench_scan.py``
/ ``bench_rewrites.py``), so a recorded result names the exact data it
measured.

Gates (exit 1 on failure):

* smoke — planned join beats reference at the largest smoke scale,
  columnar aggregation at least matches the row path at 10⁴, and the
  auto-mode point select stays near the row path (the selectivity gate);
* full  — join ≥5× over reference at the largest scale the reference
  runs, columnar join ≥1.5× and top-N ≥1× over the row path at 10⁵,
  columnar aggregation ≥5× over the row path at 10⁵ and at least matching
  the reference at scale 100, sampled statistics ≥10× faster than the
  exact pass at 10⁶ with every NDV estimate within 2× of truth, and the
  auto-mode point select within 10% of the row path at 10⁴.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algebra import (
    AggCall,
    AggItem,
    Aggregate,
    BinOp,
    Catalog,
    Col,
    ExistsExpr,
    Join,
    Limit,
    Lit,
    Select,
    Sort,
    SortKey,
    Table,
)
from repro.db import Database
from repro.db.stats import STATS_SAMPLE_SIZE

SMOKE_SCALES = [50, 200, 10_000]
FULL_SCALES = [100, 1_600, 10_000, 100_000, 1_000_000]

#: Largest scale at which the reference evaluator still runs per workload
#: (its join/EXISTS are O(n²); point_select is 50 full scans).
REFERENCE_CUTOFFS = {
    "point_select": 10_000,
    "join": 2_000,
    "exists": 2_000,
    "aggregation": 100_000,
    "topn": 100_000,
}

#: Full-run gates.
FULL_MIN_JOIN_SPEEDUP = 5.0  # planned vs reference at the cutoff
FULL_MIN_JOIN_COL_VS_ROW = 1.5  # vectorized vs row hash join at 10⁵
FULL_MIN_TOPN_COL_VS_ROW = 1.0  # columnar heap vs row heap at 10⁵
FULL_COL_VS_ROW_GATE_SCALE = 100_000
FULL_MIN_COLUMNAR_AGG_SPEEDUP = 5.0  # columnar vs row at 10⁵
FULL_COLUMNAR_AGG_GATE_SCALE = 100_000
FULL_MIN_SCALE100_AGG_RATIO = 1.0  # columnar vs reference at scale 100
FULL_MIN_POINT_AUTO_VS_ROW = 0.9  # auto planner vs row at 10⁴
FULL_POINT_GATE_SCALE = 10_000
FULL_MIN_STATS_SPEEDUP = 10.0  # sampled vs exact build at 10⁶
FULL_STATS_GATE_SCALE = 1_000_000
STATS_NDV_TOLERANCE = 2.0  # sampled NDV within [truth/2, truth·2]
#: Smoke-run gates.
SMOKE_MIN_JOIN_SPEEDUP = 1.0
SMOKE_MIN_COLUMNAR_AGG_SPEEDUP = 1.0  # columnar vs row at 10⁴
SMOKE_COLUMNAR_AGG_GATE_SCALE = 10_000
SMOKE_MIN_POINT_AUTO_VS_ROW = 0.7  # noise headroom at tiny absolute times
SMOKE_POINT_GATE_SCALE = 10_000

DEFAULT_SEED = 1234


def build_database(scale: int, seed: int = DEFAULT_SEED) -> Database:
    rng = random.Random(seed + scale)
    catalog = Catalog()
    catalog.define("bench_left", ["id", "grp", "val"], key=("id",))
    catalog.define("bench_right", ["id", "fk", "amount"], key=("id",))
    db = Database(catalog)
    db.insert_many(
        "bench_left",
        [
            {"id": i, "grp": i % 17, "val": rng.randint(0, 1000)}
            for i in range(1, scale + 1)
        ],
    )
    db.insert_many(
        "bench_right",
        [
            {"id": i, "fk": rng.randint(1, scale), "amount": rng.randint(0, 500)}
            for i in range(1, scale + 1)
        ],
    )
    return db


def workloads(scale: int) -> dict:
    """Query batch per workload; point_select is a batch of lookups."""
    point_ids = [1 + (i * 37) % scale for i in range(50)]
    return {
        "point_select": [
            Select(Table("bench_left"), BinOp("=", Col("id"), Lit(i)))
            for i in point_ids
        ],
        "join": [
            Join(
                Table("bench_left", "l"),
                Table("bench_right", "r"),
                BinOp("=", Col("id", "l"), Col("fk", "r")),
            )
        ],
        "exists": [
            Select(
                Table("bench_left", "l"),
                ExistsExpr(
                    Select(
                        Table("bench_right", "r"),
                        BinOp(
                            "AND",
                            BinOp("=", Col("fk", "r"), Col("id", "l")),
                            BinOp(">", Col("amount", "r"), Lit(400)),
                        ),
                    )
                ),
            )
        ],
        "aggregation": [
            Aggregate(
                Table("bench_right"),
                (Col("fk"),),
                (AggItem(AggCall("sum", Col("amount")), "total"),),
            )
        ],
        "topn": [
            Limit(
                Sort(
                    Table("bench_right"),
                    (SortKey(Col("amount"), ascending=False), SortKey(Col("id"))),
                ),
                5,
            )
        ],
    }


def _run_planned(db: Database, queries, mode: str):
    db.columnar_mode = mode
    try:
        return [db.execute(query, engine="planned") for query in queries]
    finally:
        db.columnar_mode = "auto"


def _time_planned(db: Database, queries, mode: str, repeats: int) -> float:
    db.columnar_mode = mode
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for query in queries:
                db.execute(query, engine="planned")
            best = min(best, time.perf_counter() - start)
    finally:
        db.columnar_mode = "auto"
    return best * 1000.0


def _time_reference(db: Database, queries, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for query in queries:
            db.execute(query, engine="reference")
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _ratio(numerator: float | None, denominator: float) -> float | None:
    if numerator is None:
        return None
    if denominator <= 0:
        return float("inf")
    return round(numerator / denominator, 2)


def _bench_stats(db: Database, scale: int, repeats: int) -> dict:
    """Exact vs. sampled statistics build on bench_right (fresh each time:
    explicit ``sample=`` bypasses the cache by design)."""

    def best_of(builder):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            builder()
            best = min(best, time.perf_counter() - start)
        return best * 1000.0

    exact_ms = best_of(lambda: db.stats("bench_right", sample=0))
    sampled_ms = best_of(
        lambda: db.stats("bench_right", sample=STATS_SAMPLE_SIZE)
    )
    exact = db.stats("bench_right", sample=0)
    sampled = db.stats("bench_right", sample=STATS_SAMPLE_SIZE)
    ndv_ratios = {
        column: round(
            sampled.column(column).ndv / max(exact.column(column).ndv, 1), 3
        )
        for column in ("id", "fk", "amount")
    }
    return {
        "scale": scale,
        "exact_ms": round(exact_ms, 3),
        "sampled_ms": round(sampled_ms, 3),
        "sampled_speedup": _ratio(exact_ms, sampled_ms),
        "sampled": sampled.sampled,  # False below the sample size: exact
        "ndv_ratio": ndv_ratios,
    }


def run(scales, repeats: int = 3, seed: int = DEFAULT_SEED) -> dict:
    results: dict = {name: [] for name in workloads(scales[0])}
    results["stats_build"] = []
    for scale in scales:
        db = build_database(scale, seed=seed)
        for name, queries in workloads(scale).items():
            with_reference = scale <= REFERENCE_CUTOFFS[name]

            # Semantics gate before any timing: columnar ≡ row (≡ reference).
            columnar_rows = _run_planned(db, queries, "force")
            row_rows = _run_planned(db, queries, "off")
            assert columnar_rows == row_rows, (
                f"COLUMNAR/ROW DIVERGENCE in {name} at scale {scale}"
            )
            if with_reference:
                reference_rows = [
                    db.execute(query, engine="reference") for query in queries
                ]
                assert row_rows == reference_rows, (
                    f"ENGINE DIVERGENCE in {name} at scale {scale}"
                )

            columnar_ms = _time_planned(db, queries, "force", repeats)
            row_ms = _time_planned(db, queries, "off", repeats)
            reference_ms = (
                _time_reference(db, queries, repeats) if with_reference else None
            )
            entry = {
                "scale": scale,
                "columnar_ms": round(columnar_ms, 3),
                "row_ms": round(row_ms, 3),
                "reference_ms": (
                    None if reference_ms is None else round(reference_ms, 3)
                ),
                "columnar_vs_row": _ratio(row_ms, columnar_ms),
                "columnar_vs_reference": _ratio(reference_ms, columnar_ms),
                "row_vs_reference": _ratio(reference_ms, row_ms),
            }
            if name == "point_select":
                # The planner's own choice: the selectivity gate must send
                # point predicates down the index path, not the pipeline.
                assert _run_planned(db, queries, "auto") == row_rows
                auto_ms = _time_planned(db, queries, "auto", repeats)
                entry["auto_ms"] = round(auto_ms, 3)
                entry["auto_vs_row"] = _ratio(row_ms, auto_ms)
            results[name].append(entry)
            ref_text = (
                "      (skipped)"
                if reference_ms is None
                else f"{reference_ms:11.2f} ms"
            )
            print(
                f"{name:>12} scale={scale:>8}: columnar {columnar_ms:9.2f} ms   "
                f"row {row_ms:9.2f} ms   reference {ref_text}"
            )
        stats_entry = _bench_stats(db, scale, repeats)
        results["stats_build"].append(stats_entry)
        print(
            f"{'stats_build':>12} scale={scale:>8}: exact "
            f"{stats_entry['exact_ms']:9.2f} ms   sampled "
            f"{stats_entry['sampled_ms']:9.2f} ms   "
            f"speedup {stats_entry['sampled_speedup']}"
        )
    return results


def _entry_at(entries, scale):
    for entry in entries:
        if entry["scale"] == scale:
            return entry
    return None


def _check(label: str, actual, required: float, failures: list) -> None:
    if actual is None or actual < required:
        failures.append(f"{label}: {actual} is below the required {required}")
    else:
        print(f"OK: {label} = {actual} (required ≥ {required})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small scales + CI gates"
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="instance-generation seed, echoed into the BENCH JSON",
    )
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    results = run(scales, repeats=args.repeats, seed=args.seed)

    # The join-vs-reference gate compares at the largest scale the
    # reference still runs; the columnar-vs-row gates compare the two
    # planned paths at the dedicated (larger) gate scales.
    join_entries = [e for e in results["join"] if e["reference_ms"] is not None]
    join_ref_gate = join_entries[-1] if join_entries else None
    agg_gate_scale = (
        SMOKE_COLUMNAR_AGG_GATE_SCALE if args.smoke else FULL_COLUMNAR_AGG_GATE_SCALE
    )
    agg_gate = _entry_at(results["aggregation"], agg_gate_scale)
    scale100_agg = _entry_at(results["aggregation"], 100)
    point_gate_scale = (
        SMOKE_POINT_GATE_SCALE if args.smoke else FULL_POINT_GATE_SCALE
    )
    point_gate = _entry_at(results["point_select"], point_gate_scale)
    join_row_gate = _entry_at(results["join"], FULL_COL_VS_ROW_GATE_SCALE)
    topn_row_gate = _entry_at(results["topn"], FULL_COL_VS_ROW_GATE_SCALE)
    stats_gate = _entry_at(results["stats_build"], FULL_STATS_GATE_SCALE)

    report = {
        "benchmark": "columnar vs row vs reference execution engine",
        "version": 3,
        "mode": "smoke" if args.smoke else "full",
        "seed": args.seed,
        "scales": scales,
        "reference_cutoffs": REFERENCE_CUTOFFS,
        "workloads": results,
        "gates": {
            "join_speedup_vs_reference": (
                None
                if join_ref_gate is None
                else join_ref_gate["columnar_vs_reference"]
            ),
            "join_gate_scale": (
                None if join_ref_gate is None else join_ref_gate["scale"]
            ),
            "join_columnar_vs_row": (
                None if join_row_gate is None else join_row_gate["columnar_vs_row"]
            ),
            "topn_columnar_vs_row": (
                None if topn_row_gate is None else topn_row_gate["columnar_vs_row"]
            ),
            "col_vs_row_gate_scale": FULL_COL_VS_ROW_GATE_SCALE,
            "columnar_agg_speedup_vs_row": (
                None if agg_gate is None else agg_gate["columnar_vs_row"]
            ),
            "columnar_agg_gate_scale": agg_gate_scale,
            "scale100_agg_vs_reference": (
                None
                if scale100_agg is None
                else scale100_agg["columnar_vs_reference"]
            ),
            "point_select_auto_vs_row": (
                None if point_gate is None else point_gate["auto_vs_row"]
            ),
            "point_gate_scale": point_gate_scale,
            "stats_sampled_speedup": (
                None if stats_gate is None else stats_gate["sampled_speedup"]
            ),
            "stats_ndv_ratio": (
                None if stats_gate is None else stats_gate["ndv_ratio"]
            ),
            "stats_gate_scale": FULL_STATS_GATE_SCALE,
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    failures: list[str] = []
    min_join = SMOKE_MIN_JOIN_SPEEDUP if args.smoke else FULL_MIN_JOIN_SPEEDUP
    _check(
        "join speedup vs reference",
        None if join_ref_gate is None else join_ref_gate["columnar_vs_reference"],
        min_join,
        failures,
    )
    min_agg = (
        SMOKE_MIN_COLUMNAR_AGG_SPEEDUP
        if args.smoke
        else FULL_MIN_COLUMNAR_AGG_SPEEDUP
    )
    _check(
        f"columnar aggregation speedup vs row at scale {agg_gate_scale}",
        None if agg_gate is None else agg_gate["columnar_vs_row"],
        min_agg,
        failures,
    )
    min_point = (
        SMOKE_MIN_POINT_AUTO_VS_ROW if args.smoke else FULL_MIN_POINT_AUTO_VS_ROW
    )
    _check(
        f"auto-mode point select vs row at scale {point_gate_scale}",
        None if point_gate is None else point_gate["auto_vs_row"],
        min_point,
        failures,
    )
    if not args.smoke:
        _check(
            "scale-100 aggregation columnar vs reference",
            None if scale100_agg is None else scale100_agg["columnar_vs_reference"],
            FULL_MIN_SCALE100_AGG_RATIO,
            failures,
        )
        _check(
            f"columnar join vs row at scale {FULL_COL_VS_ROW_GATE_SCALE}",
            None if join_row_gate is None else join_row_gate["columnar_vs_row"],
            FULL_MIN_JOIN_COL_VS_ROW,
            failures,
        )
        _check(
            f"columnar top-N vs row at scale {FULL_COL_VS_ROW_GATE_SCALE}",
            None if topn_row_gate is None else topn_row_gate["columnar_vs_row"],
            FULL_MIN_TOPN_COL_VS_ROW,
            failures,
        )
        _check(
            f"sampled stats speedup at scale {FULL_STATS_GATE_SCALE}",
            None if stats_gate is None else stats_gate["sampled_speedup"],
            FULL_MIN_STATS_SPEEDUP,
            failures,
        )
        if stats_gate is not None:
            for column, ratio in stats_gate["ndv_ratio"].items():
                if not (1 / STATS_NDV_TOLERANCE <= ratio <= STATS_NDV_TOLERANCE):
                    failures.append(
                        f"sampled NDV for {column}: ratio {ratio} outside "
                        f"[{1 / STATS_NDV_TOLERANCE}, {STATS_NDV_TOLERANCE}]"
                    )
                else:
                    print(
                        f"OK: sampled NDV ratio for {column} = {ratio} "
                        f"(within {STATS_NDV_TOLERANCE}×)"
                    )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
