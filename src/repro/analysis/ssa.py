"""SSA construction over the CFG, plus its two scalar client analyses.

The precision layer (see :mod:`repro.ir.preprocess`) needs facts the
region-based D-IR translation cannot provide on its own:

* which branches are **statically dead** (their guard is a constant the
  program computes), so lint blockers inside them can be discharged before
  the extractor gives up on the loop;
* which variable uses are **provably copies** of another variable that is
  still live in the same version, so copy chains can be collapsed to the
  form the fold templates and the cursor-``while`` normaliser recognise.

Both are classic SSA clients: sparse conditional constant propagation
(Wegman–Zadeck) and copy propagation.  SSA itself is built with the
standard recipe over the existing machinery: dominance frontiers from
:func:`repro.analysis.dominators.immediate_dominators`
(Cooper–Harvey–Kennedy), iterated-frontier φ placement, and Cytron-style
renaming down the dominator tree.

Two departures from the textbook, both driven by soundness:

* **Opaque redefinitions.**  MiniJava values have reference semantics, so a
  variable passed to a call the analysis cannot see through (undefined or
  recursive callee, or a known callee that mutates the parameter) must be
  treated as *redefined* at the call.  Likewise receivers of mutating
  methods (``list.add``, ``rs.next``, entity setters) and the iterable of a
  ``ForEach`` (iterating may consume a forward-only cursor).  These defs
  produce ``kind="mutate"``/``"opaque"`` values that deliberately stop
  constant and copy propagation.
* **Per-statement environments.**  Renaming records, for every statement,
  the variable → SSA-value map in force on entry
  (:attr:`SSAForm.env_before`).  Copy propagation is only valid at a use
  site when the copy's *source* still holds the same SSA version it held at
  the copy — comparing the two snapshots is exactly that check, and it is
  what makes mapping SSA facts back onto the (non-SSA) AST sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interp.values import setter_to_column
from ..lang import (
    Assign,
    Binary,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    ForEach,
    FunctionDef,
    If,
    IntLit,
    MethodCall,
    Name,
    Return,
    Stmt,
    StringLit,
    Ternary,
    Unary,
    While,
    statement_expressions,
    walk_expressions,
)
from .cfg import CFG, build_cfg
from .dataflow import STATIC_RECEIVERS, _MUTATING_METHODS, expr_reads
from .dominators import immediate_dominators
from .effects import BUILTIN_CALLS, EffectSummary


# ----------------------------------------------------------------------
# Dominance frontiers


def dominance_frontiers(cfg: CFG, idom: dict[int, int]) -> dict[int, set[int]]:
    """Per-block dominance frontier (Cooper–Harvey–Kennedy)."""
    frontiers: dict[int, set[int]] = {block: set() for block in idom}
    for block in idom:
        preds = [p for p in cfg.blocks[block].predecessors if p in idom]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner = pred
            while runner != idom[block]:
                frontiers[runner].add(block)
                runner = idom[runner]
    return frontiers


# ----------------------------------------------------------------------
# SSA form


@dataclass
class SSAValue:
    """One SSA definition of one source variable.

    ``kind`` records what produced the value:

    ``param``   function parameter (defined at entry);
    ``assign``  the target of an :class:`~repro.lang.Assign`;
    ``cursor``  a ``ForEach`` loop variable (redefined per iteration);
    ``mutate``  receiver of a mutating method / consumed iterable;
    ``opaque``  conservative redefinition at an un-analysable call;
    ``phi``     a join point (operands align with the block's in-graph
                predecessor order, ``-1`` marking a path with no def);
    ``undef``   use of a never-defined variable.
    """

    vid: int
    var: str
    kind: str
    sid: int = -1
    block: int = -1
    rhs: Expr | None = None
    operands: list[int] = field(default_factory=list)

    @property
    def copy_of(self) -> str | None:
        """Source variable name when this def is a plain variable copy."""
        if self.kind == "assign" and isinstance(self.rhs, Name):
            return self.rhs.ident
        return None

    def describe(self) -> str:
        base = f"{self.var}#{self.vid} [{self.kind}]"
        if self.kind == "phi":
            ops = ", ".join(f"#{o}" if o >= 0 else "⊥" for o in self.operands)
            return f"{base} = φ({ops})"
        if self.sid >= 0:
            base += f" @s{self.sid}"
        return base


@dataclass
class SSAForm:
    """SSA view of one function, with per-statement environment snapshots."""

    func: FunctionDef
    cfg: CFG
    idom: dict[int, int]
    frontiers: dict[int, set[int]]
    values: list[SSAValue] = field(default_factory=list)
    #: statement sid → variable → SSA value id, on entry to the statement.
    env_before: dict[int, dict[str, int]] = field(default_factory=dict)
    #: block index → φ value ids placed at that block.
    phis: dict[int, list[int]] = field(default_factory=dict)

    def value(self, vid: int) -> SSAValue:
        return self.values[vid]

    def use(self, sid: int, var: str) -> int | None:
        """The SSA value a use of ``var`` at statement ``sid`` resolves to."""
        return self.env_before.get(sid, {}).get(var)

    def variables(self) -> list[str]:
        return sorted({v.var for v in self.values})

    def block_preds(self, index: int) -> list[int]:
        """In-dominator-graph predecessors, in φ-operand order."""
        return [p for p in self.cfg.blocks[index].predecessors if p in self.idom]


#: Methods that advance or invalidate their receiver when called.
_CONSUMING_METHODS = _MUTATING_METHODS | {"next", "close"}


def _stmt_defs(
    stmt: Stmt,
    effects: dict[str, EffectSummary] | None,
) -> list[tuple[str, str, Expr | None]]:
    """Direct (variable, kind, rhs) definitions of one statement.

    Uses are always resolved against the environment *before* the
    statement, so the relative order of multiple defs does not matter.
    """
    defs: list[tuple[str, str, Expr | None]] = []
    exprs: list[Expr] = []
    if isinstance(stmt, Assign):
        defs.append((stmt.target, "assign", stmt.value))
        exprs.append(stmt.value)
    elif isinstance(stmt, ExprStmt):
        exprs.append(stmt.expr)
    elif isinstance(stmt, ForEach):
        defs.append((stmt.var, "cursor", None))
        if isinstance(stmt.iterable, Name):
            # Iterating may consume a forward-only cursor.
            defs.append((stmt.iterable.ident, "mutate", None))
        exprs.append(stmt.iterable)
    elif isinstance(stmt, (If, While)):
        exprs.append(stmt.cond)
    elif isinstance(stmt, Return) and stmt.value is not None:
        exprs.append(stmt.value)

    for expr in exprs:
        for node in walk_expressions(expr):
            if isinstance(node, MethodCall):
                if (
                    isinstance(node.receiver, Name)
                    and node.receiver.ident not in STATIC_RECEIVERS
                    and (
                        node.method in _CONSUMING_METHODS
                        or setter_to_column(node.method) is not None
                    )
                ):
                    defs.append((node.receiver.ident, "mutate", None))
            elif isinstance(node, Call) and node.func not in BUILTIN_CALLS:
                summary = (effects or {}).get(node.func)
                for pos, arg in enumerate(node.args):
                    if not isinstance(arg, Name):
                        continue
                    if summary is None or summary.opaque:
                        defs.append((arg.ident, "opaque", None))
                    elif pos in summary.mutates_params:
                        defs.append((arg.ident, "mutate", None))
    return defs


def _stmt_uses(stmt: Stmt) -> set[str]:
    uses: set[str] = set()
    for expr in statement_expressions(stmt):
        uses |= {r for r in expr_reads(expr) if not r.startswith("@")}
    return uses


def build_ssa(
    func: FunctionDef,
    effects: dict[str, EffectSummary] | None = None,
) -> SSAForm:
    """Construct SSA form for a (statement-numbered) function.

    ``effects`` sharpens opaque-redefinition modelling for calls to
    functions defined in the same program; without it every non-builtin
    call conservatively redefines its variable arguments.
    """
    cfg = build_cfg(func)
    idom = immediate_dominators(cfg)
    frontiers = dominance_frontiers(cfg, idom)
    ssa = SSAForm(func=func, cfg=cfg, idom=idom, frontiers=frontiers)

    # -- collect def sites per variable --------------------------------
    def_blocks: dict[str, set[int]] = {}
    for block in cfg.blocks:
        if block.index not in idom:
            continue
        for stmt in block.statements:
            for var, _kind, _rhs in _stmt_defs(stmt, effects):
                def_blocks.setdefault(var, set()).add(block.index)
    for param in func.params:
        def_blocks.setdefault(param, set()).add(cfg.entry)

    # -- iterated dominance frontier φ placement -----------------------
    phi_vars: dict[int, list[str]] = {b: [] for b in idom}
    for var, blocks in sorted(def_blocks.items()):
        placed: set[int] = set()
        work = sorted(blocks)
        while work:
            block = work.pop()
            for target in sorted(frontiers.get(block, ())):
                if target in placed:
                    continue
                placed.add(target)
                phi_vars[target].append(var)
                if target not in blocks:
                    work.append(target)

    def new_value(var: str, kind: str, sid: int, block: int, rhs=None) -> int:
        vid = len(ssa.values)
        ssa.values.append(
            SSAValue(vid=vid, var=var, kind=kind, sid=sid, block=block, rhs=rhs)
        )
        return vid

    # Pre-create every φ so predecessors can fill operand slots regardless
    # of dominator-tree visit order.
    for block_index in sorted(idom):
        phi_ids = []
        for var in phi_vars.get(block_index, ()):
            vid = new_value(var, "phi", -1, block_index)
            ssa.values[vid].operands = [-1] * len(ssa.block_preds(block_index))
            phi_ids.append(vid)
        ssa.phis[block_index] = phi_ids

    # -- renaming down the dominator tree ------------------------------
    children: dict[int, list[int]] = {b: [] for b in idom}
    for block, dom in idom.items():
        if block != cfg.entry:
            children[dom].append(block)
    for kids in children.values():
        kids.sort()

    stacks: dict[str, list[int]] = {}
    for param in func.params:
        stacks[param] = [new_value(param, "param", -1, cfg.entry)]

    def rename(block_index: int) -> None:
        pushed: list[str] = []
        block = cfg.blocks[block_index]
        for vid in ssa.phis.get(block_index, ()):  # φ defs first
            var = ssa.values[vid].var
            stacks.setdefault(var, []).append(vid)
            pushed.append(var)

        for stmt in block.statements:
            ssa.env_before[stmt.sid] = {
                var: stack[-1] for var, stack in stacks.items() if stack
            }
            for var, kind, rhs in _stmt_defs(stmt, effects):
                vid = new_value(var, kind, stmt.sid, block_index, rhs)
                stacks.setdefault(var, []).append(vid)
                pushed.append(var)

        for succ in block.successors:
            if succ not in idom:
                continue
            slot = ssa.block_preds(succ).index(block_index)
            for vid in ssa.phis.get(succ, ()):
                stack = stacks.get(ssa.values[vid].var)
                if stack:
                    ssa.values[vid].operands[slot] = stack[-1]

        for child in children.get(block_index, ()):
            rename(child)

        for var in reversed(pushed):
            stacks[var].pop()

    rename(cfg.entry)
    return ssa


# ----------------------------------------------------------------------
# Client 1: sparse conditional constant propagation (Wegman–Zadeck)


class _Top:
    def __repr__(self):  # pragma: no cover - debug aid
        return "⊤"


class _Bottom:
    def __repr__(self):  # pragma: no cover - debug aid
        return "⊥"


TOP = _Top()
BOTTOM = _Bottom()

#: Operators folded over known constants.  Division and modulo are left out
#: on purpose: the interpreter's semantics for them must stay the single
#: source of truth for corner cases (negative truncation).
_INT_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}
_CMP_OPS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _same_const(a, b) -> bool:
    if isinstance(a, (_Top, _Bottom)) or isinstance(b, (_Top, _Bottom)):
        return a is b
    return type(a) is type(b) and a == b


def _meet(a, b):
    if a is TOP:
        return b
    if b is TOP:
        return a
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    return a if _same_const(a, b) else BOTTOM


@dataclass
class SCCPResult:
    """Constant facts and reachability proven by SCCP."""

    ssa: SSAForm
    lattice: dict[int, object] = field(default_factory=dict)
    executable_blocks: set[int] = field(default_factory=set)
    #: If-statement sid → the branch proven dead ("then" or "else").
    dead_branches: dict[int, str] = field(default_factory=dict)

    def const_of(self, vid: int):
        """The proven constant for an SSA value, or ``None``."""
        value = self.lattice.get(vid, BOTTOM)
        return None if value is TOP or value is BOTTOM else value

    def const_at(self, sid: int, var: str):
        """The proven constant for a use of ``var`` at ``sid``, or None."""
        vid = self.ssa.use(sid, var)
        return None if vid is None else self.const_of(vid)

    def eval_at(self, sid: int, expr: Expr):
        """Constant-evaluate an arbitrary expression at a statement."""
        value = _eval_expr(expr, self.ssa.env_before.get(sid, {}), self.lattice)
        return None if value is TOP or value is BOTTOM else value

    def constants(self) -> dict[str, object]:
        """``variable#vid`` → constant, for reporting."""
        out = {}
        for vid, value in sorted(self.lattice.items()):
            if not isinstance(value, (_Top, _Bottom)):
                ssa_value = self.ssa.value(vid)
                out[f"{ssa_value.var}#{vid}"] = value
        return out


def _eval_expr(expr: Expr, env: dict[str, int], lattice: dict[int, object]):
    """Constant-evaluate an expression under the SSA lattice.

    Anything the model does not cover (calls, getters, field reads, object
    construction, floats) is BOTTOM; only same-type literal operations
    fold, and only side-effect-free ones — calls never fold, which is what
    makes pruning a branch guarded by a folded condition sound.
    """
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, BoolLit):
        return expr.value
    if isinstance(expr, StringLit):
        return expr.value
    if isinstance(expr, FloatLit):
        return BOTTOM  # no float identities: rounding must stay runtime-owned
    if isinstance(expr, Name):
        vid = env.get(expr.ident)
        return BOTTOM if vid is None else lattice.get(vid, BOTTOM)
    if isinstance(expr, Unary):
        operand = _eval_expr(expr.operand, env, lattice)
        if operand is TOP or operand is BOTTOM:
            return operand
        if expr.op == "-" and _is_int(operand):
            return -operand
        if expr.op == "!" and isinstance(operand, bool):
            return not operand
        return BOTTOM
    if isinstance(expr, Binary):
        left = _eval_expr(expr.left, env, lattice)
        right = _eval_expr(expr.right, env, lattice)
        if left is TOP or right is TOP:
            return TOP
        if left is BOTTOM or right is BOTTOM:
            return BOTTOM
        both_int = _is_int(left) and _is_int(right)
        if expr.op in _INT_OPS and both_int:
            return _INT_OPS[expr.op](left, right)
        if expr.op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        if expr.op in _CMP_OPS and both_int:
            return _CMP_OPS[expr.op](left, right)
        if (
            expr.op in ("==", "!=")
            and isinstance(left, (str, bool))
            and type(left) is type(right)
        ):
            return (left == right) if expr.op == "==" else (left != right)
        if expr.op == "&&" and isinstance(left, bool) and isinstance(right, bool):
            return left and right
        if expr.op == "||" and isinstance(left, bool) and isinstance(right, bool):
            return left or right
        return BOTTOM
    if isinstance(expr, Ternary):
        cond = _eval_expr(expr.cond, env, lattice)
        if cond is TOP:
            return TOP
        if isinstance(cond, bool):
            return _eval_expr(expr.if_true if cond else expr.if_false, env, lattice)
        return BOTTOM
    return BOTTOM


def sccp(ssa: SSAForm) -> SCCPResult:
    """Sparse conditional constant propagation over an :class:`SSAForm`.

    Unreachable predecessors do not contribute to φ meets, which is what
    lets a constant survive a join with a statically-dead branch.
    """
    cfg = ssa.cfg
    lattice: dict[int, object] = {}
    for value in ssa.values:
        if value.kind in ("phi", "assign"):
            lattice[value.vid] = TOP
        else:
            lattice[value.vid] = BOTTOM  # params, mutations, cursors, undef

    defs_index: dict[int, list[SSAValue]] = {}
    for value in ssa.values:
        if value.sid >= 0:
            defs_index.setdefault(value.sid, []).append(value)

    # SSA value → blocks whose (re-)evaluation reads it.
    block_of_sid: dict[int, int] = {}
    for block in cfg.blocks:
        for stmt in block.statements:
            block_of_sid[stmt.sid] = block.index
    users: dict[int, set[int]] = {}
    for sid, env in ssa.env_before.items():
        owner = block_of_sid.get(sid)
        if owner is None:
            continue
        for vid in env.values():
            users.setdefault(vid, set()).add(owner)
    for phi_block, vids in ssa.phis.items():
        for vid in vids:
            for operand in ssa.values[vid].operands:
                if operand >= 0:
                    users.setdefault(operand, set()).add(phi_block)

    executable_edges: set[tuple[int, int]] = set()
    work: list[int] = [cfg.entry]

    def enqueue(index: int) -> None:
        if index not in work:
            work.append(index)

    def mark_edge(src: int, dst: int) -> None:
        if (src, dst) not in executable_edges:
            executable_edges.add((src, dst))
            enqueue(dst)

    def block_executable(index: int) -> bool:
        if index == cfg.entry:
            return True
        return any(
            (pred, index) in executable_edges
            for pred in cfg.blocks[index].predecessors
        )

    def descend(old, new):
        """One lattice step for a def: TOP → const → BOTTOM, never up."""
        if old is TOP:
            return new
        if old is BOTTOM or new is TOP:
            return old
        if new is BOTTOM or not _same_const(old, new):
            return BOTTOM
        return old

    def eval_block(index: int) -> None:
        block = cfg.blocks[index]
        changed_vids: list[int] = []

        # φ meets over executable incoming edges only.
        preds = ssa.block_preds(index)
        for vid in ssa.phis.get(index, ()):
            value = ssa.values[vid]
            result = TOP
            for slot, pred in enumerate(preds):
                if (pred, index) not in executable_edges:
                    continue
                operand = value.operands[slot]
                result = _meet(
                    result,
                    BOTTOM if operand < 0 else lattice.get(operand, BOTTOM),
                )
            new = descend(lattice.get(vid, TOP), result)
            if not _same_const(lattice.get(vid, TOP), new):
                lattice[vid] = new
                changed_vids.append(vid)

        last_if: If | None = None
        for stmt in block.statements:
            env = ssa.env_before.get(stmt.sid, {})
            for value in defs_index.get(stmt.sid, []):
                new = (
                    _eval_expr(value.rhs, env, lattice)
                    if value.kind == "assign"
                    else BOTTOM
                )
                descended = descend(lattice.get(value.vid, TOP), new)
                if not _same_const(lattice.get(value.vid, TOP), descended):
                    lattice[value.vid] = descended
                    changed_vids.append(value.vid)
            if isinstance(stmt, If):
                last_if = stmt

        # Successor edges: a constant If guard enables only one arm.
        if (
            last_if is not None
            and block.statements
            and block.statements[-1] is last_if
            and len(block.successors) >= 2
        ):
            cond = _eval_expr(
                last_if.cond, ssa.env_before.get(last_if.sid, {}), lattice
            )
            if isinstance(cond, bool):
                mark_edge(index, block.successors[0 if cond else 1])
            elif cond is BOTTOM:
                for succ in block.successors:
                    mark_edge(index, succ)
            # TOP: inputs unresolved; a user-block re-enqueue returns here.
        else:
            for succ in block.successors:
                mark_edge(index, succ)

        for vid in changed_vids:
            for dependent in users.get(vid, ()):
                if block_executable(dependent):
                    enqueue(dependent)

    iterations = 0
    limit = 64 * max(1, len(cfg.blocks)) * max(1, len(ssa.values))
    while work and iterations < limit:
        iterations += 1
        index = work.pop(0)
        if block_executable(index):
            eval_block(index)

    result = SCCPResult(
        ssa=ssa,
        lattice=lattice,
        executable_blocks={
            b.index for b in cfg.blocks if block_executable(b.index)
        },
    )

    # Dead-branch verdicts: an If in an executable block whose condition is
    # a proven boolean constant.  Conditions containing calls never fold
    # (calls evaluate to BOTTOM), so a folded guard is side-effect free and
    # the pruned branch is genuinely unreachable.
    for block in cfg.blocks:
        if block.index not in result.executable_blocks:
            continue
        for stmt in block.statements:
            if not isinstance(stmt, If):
                continue
            cond = _eval_expr(
                stmt.cond, ssa.env_before.get(stmt.sid, {}), lattice
            )
            if cond is True:
                result.dead_branches[stmt.sid] = "else"
            elif cond is False:
                result.dead_branches[stmt.sid] = "then"
    return result


# ----------------------------------------------------------------------
# Client 2: copy/φ-aware value propagation


def resolve_copy(ssa: SSAForm, sid: int, var: str, max_depth: int = 32) -> str | None:
    """The variable a use of ``var`` at ``sid`` provably equals, or None.

    Follows copy chains (``x = y``) and same-value φs.  A hop from ``x`` to
    ``y`` is valid only when ``y``'s SSA version at the *use* site equals
    its version at the copy — i.e. ``y`` was not redefined in between on
    any path.  That check is what makes mapping the SSA fact back onto the
    non-SSA AST sound (see module docstring).
    """
    env = ssa.env_before.get(sid)
    if env is None or var not in env:
        return None
    current = var
    vid = env[current]
    for _hop in range(max_depth):
        vid = resolve_same_value_phi(ssa, vid)
        value = ssa.value(vid)
        source = value.copy_of
        if source is None:
            break
        copy_env = ssa.env_before.get(value.sid)
        if copy_env is None:
            break
        source_at_copy = copy_env.get(source)
        source_at_use = env.get(source)
        if source_at_copy is None or source_at_copy != source_at_use:
            break
        current = source
        vid = source_at_use
    return current if current != var else None


def resolve_same_value_phi(ssa: SSAForm, vid: int) -> int:
    """Collapse φs whose operands all (transitively) name one value."""
    seen: set[int] = set()

    def resolve(v: int) -> int | None:
        if v in seen:
            return None  # back edge into the cycle: contributes nothing
        seen.add(v)
        value = ssa.value(v)
        if value.kind != "phi":
            return v
        resolved: int | None = None
        for operand in value.operands:
            if operand < 0:
                return -1  # a path with no definition: not a same-value φ
            inner = resolve(operand)
            if inner is None:
                continue
            if inner < 0:
                return -1
            if resolved is None:
                resolved = inner
            elif resolved != inner:
                return -1
        return resolved

    result = resolve(vid)
    return vid if result is None or result < 0 else result
