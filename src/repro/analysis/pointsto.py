"""Flow-sensitive intraprocedural points-to / escape analysis.

The lint layer's alias-escape pass (EQ103) is syntactic: a result set
passed anywhere the analysis cannot see is assumed aliased and mutated.
This module replaces that over-approximation with proven facts:

* every allocation site (``new``), query call, and cursor row gets an
  **abstract object**; a forward dataflow over the CFG tracks, per
  statement, which objects each variable may denote (union merge at
  joins — a *may* analysis);
* an object **escapes** when it is returned, stored into an object that
  escapes, appended to the observable output buffer, or passed to a call
  the analysis cannot prove keeps it local.  For calls to functions
  defined in the same program, the interprocedural
  :attr:`~repro.analysis.effects.EffectSummary.escapes_params` summary
  (computed on the :func:`~repro.analysis.effects.function_effects`
  fixpoint) decides per argument position;
* containment edges (``list.add(x)`` makes ``list`` contain ``x``) are
  accumulated so escape is closed transitively at the end: everything
  inside an escaped container escapes.

The soundness direction is one-way by construction: unknown callees,
unknown receivers, and parameters all degrade to "may escape", so a
``True`` from :meth:`PointsToResult.is_function_local` is a proof, while a
``False`` is merely lack of one.  The lint engine only ever *downgrades*
a blocker on a proof, never upgrades on its absence — the differential
fuzzer's ``lint-unsound`` verdict is the net under that contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interp.values import getter_to_column, setter_to_column
from ..lang import (
    Assign,
    Call,
    Expr,
    ForEach,
    FunctionDef,
    MethodCall,
    Name,
    New,
    Return,
    Stmt,
    Ternary,
    statement_expressions,
    walk_expressions,
)
from .cfg import build_cfg
from .dataflow import DB_READ_CALLS, STATIC_RECEIVERS
from .dominators import reverse_postorder
from .effects import BUILTIN_CALLS, EffectSummary

#: Variable the preprocessor collects observable output into; anything
#: stored there is part of the function's result and therefore escaped.
_OUT_VAR = "__out__"

#: Methods returning scalars (never aliases of their receiver's contents).
_SCALAR_METHODS = {"size", "length", "isEmpty", "contains", "next", "hasNext"}

#: Methods that store an argument into their receiver.
_STORING_METHODS = {"add", "append", "insert", "addAll", "put"}


@dataclass(frozen=True, order=True)
class AbstractObject:
    """One allocation/query/row/param site, or the unknown object."""

    kind: str  # "alloc" | "query" | "row" | "param" | "unknown"
    label: str
    sid: int = -1
    param: int = -1

    def describe(self) -> str:
        return self.label


UNKNOWN_OBJECT = AbstractObject(kind="unknown", label="?")

_EMPTY: frozenset[AbstractObject] = frozenset()
_UNKNOWN: frozenset[AbstractObject] = frozenset({UNKNOWN_OBJECT})


@dataclass
class PointsToResult:
    """Per-statement points-to states plus the escaped-object closure."""

    function: str
    #: statement sid → variable → abstract objects, on entry.
    at: dict[int, dict[str, frozenset[AbstractObject]]] = field(
        default_factory=dict
    )
    escaped: frozenset[AbstractObject] = _EMPTY
    contains: dict[AbstractObject, frozenset[AbstractObject]] = field(
        default_factory=dict
    )

    def objects_at(self, sid: int, var: str) -> frozenset[AbstractObject]:
        return self.at.get(sid, {}).get(var, _EMPTY)

    def is_function_local(self, sid: int, var: str) -> bool:
        """True when every object ``var`` may denote at ``sid`` is an
        allocation/query/row created in this function and proven never to
        escape it.  This is the proof obligation for downgrading an
        alias-escape blocker: no caller, callee, or output consumer can
        observe a mutation of a function-local object."""
        objects = self.objects_at(sid, var)
        if not objects:
            return False
        return all(
            obj.kind in ("alloc", "query", "row") and obj not in self.escaped
            for obj in objects
        )

    def may_alias(self, sid: int, var: str, other_objects) -> bool:
        """May ``var`` at ``sid`` denote any of ``other_objects``?

        The unknown object aliases everything — lack of information must
        read as "yes, possibly"."""
        objects = self.objects_at(sid, var)
        if UNKNOWN_OBJECT in objects or UNKNOWN_OBJECT in other_objects:
            return True
        return bool(objects & frozenset(other_objects))


def analyze_pointsto(
    func: FunctionDef,
    effects: dict[str, EffectSummary] | None = None,
) -> PointsToResult:
    """Run the analysis on one (statement-numbered) function.

    ``effects`` supplies interprocedural summaries for same-program
    callees; without it every non-builtin call is treated as unknown.
    """
    cfg = build_cfg(func)
    order = reverse_postorder(cfg)
    summaries = effects or {}

    # Monotone accumulators shared across iterations.
    escaped: set[AbstractObject] = set()
    contains: dict[AbstractObject, set[AbstractObject]] = {}

    def contents_of(obj: AbstractObject) -> frozenset[AbstractObject]:
        if obj.kind == "query":
            return frozenset(
                {AbstractObject(kind="row", label=f"row({obj.label})", sid=obj.sid)}
            )
        if obj.kind in ("alloc", "row"):
            return frozenset(contains.get(obj, ()))
        return _UNKNOWN  # params / unknown: contents unknowable

    def objs_of(
        expr: Expr, env: dict[str, frozenset[AbstractObject]], sid: int
    ) -> frozenset[AbstractObject]:
        if isinstance(expr, Name):
            if expr.ident in STATIC_RECEIVERS:
                return _EMPTY
            return env.get(expr.ident, _EMPTY)
        if isinstance(expr, New):
            return frozenset(
                {
                    AbstractObject(
                        kind="alloc",
                        label=f"new {expr.class_name}@s{sid}",
                        sid=sid,
                    )
                }
            )
        if isinstance(expr, Call):
            if expr.func in DB_READ_CALLS:
                return frozenset(
                    {AbstractObject(kind="query", label=f"query@s{sid}", sid=sid)}
                )
            if expr.func in BUILTIN_CALLS:
                return _EMPTY
            return _UNKNOWN  # user-function return values are not tracked
        if isinstance(expr, MethodCall):
            if (
                expr.method in _SCALAR_METHODS
                or getter_to_column(expr.method) is not None
            ):
                return _EMPTY
            if (
                isinstance(expr.receiver, Name)
                and expr.receiver.ident in STATIC_RECEIVERS
            ):
                return _EMPTY
            if expr.method == "get":
                merged: set[AbstractObject] = set()
                for obj in objs_of(expr.receiver, env, sid):
                    merged |= contents_of(obj)
                return frozenset(merged)
            return _UNKNOWN
        if isinstance(expr, Ternary):
            return objs_of(expr.if_true, env, sid) | objs_of(
                expr.if_false, env, sid
            )
        return _EMPTY  # literals, arithmetic, field reads

    def record_events(
        stmt: Stmt, env: dict[str, frozenset[AbstractObject]]
    ) -> bool:
        """Escape / containment events of one statement.  Returns True when
        an accumulator grew (forces another fixpoint round)."""
        grew = False

        def mark_escaped(objects: frozenset[AbstractObject]) -> None:
            nonlocal grew
            for obj in objects:
                if obj is not UNKNOWN_OBJECT and obj not in escaped:
                    escaped.add(obj)
                    grew = True

        def mark_contains(
            holders: frozenset[AbstractObject],
            values: frozenset[AbstractObject],
        ) -> None:
            nonlocal grew
            for holder in holders:
                if holder is UNKNOWN_OBJECT:
                    mark_escaped(values)
                    continue
                bucket = contains.setdefault(holder, set())
                fresh = {v for v in values if v not in bucket}
                if fresh:
                    bucket |= fresh
                    grew = True

        if isinstance(stmt, Return) and stmt.value is not None:
            mark_escaped(objs_of(stmt.value, env, stmt.sid))

        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if isinstance(node, Call) and node.func not in BUILTIN_CALLS:
                    summary = summaries.get(node.func)
                    for pos, arg in enumerate(node.args):
                        arg_objs = objs_of(arg, env, stmt.sid)
                        if summary is None:
                            mark_escaped(arg_objs)
                        elif pos in summary.escapes_params:
                            mark_escaped(arg_objs)
                elif isinstance(node, MethodCall):
                    if (
                        isinstance(node.receiver, Name)
                        and node.receiver.ident in STATIC_RECEIVERS
                    ):
                        continue
                    stores = (
                        node.method in _STORING_METHODS
                        or setter_to_column(node.method) is not None
                    )
                    if not stores:
                        continue
                    holder_objs = objs_of(node.receiver, env, stmt.sid)
                    value_objs: set[AbstractObject] = set()
                    for arg in node.args:
                        value_objs |= objs_of(arg, env, stmt.sid)
                    if (
                        isinstance(node.receiver, Name)
                        and node.receiver.ident == _OUT_VAR
                    ):
                        mark_escaped(frozenset(value_objs))
                    mark_contains(holder_objs, frozenset(value_objs))
        return grew

    def transfer(
        stmt: Stmt, env: dict[str, frozenset[AbstractObject]]
    ) -> dict[str, frozenset[AbstractObject]]:
        out = dict(env)
        if isinstance(stmt, Assign):
            out[stmt.target] = objs_of(stmt.value, env, stmt.sid)
        elif isinstance(stmt, ForEach):
            element: set[AbstractObject] = set()
            for obj in objs_of(stmt.iterable, env, stmt.sid):
                element |= contents_of(obj)
            if isinstance(stmt.iterable, Name) and not env.get(
                stmt.iterable.ident
            ):
                element.add(UNKNOWN_OBJECT)
            out[stmt.var] = frozenset(element)
        else:
            # Opaque calls may rebind nothing (reference semantics: callees
            # can mutate contents but not our local bindings), so bindings
            # survive; escape events above capture the rest.
            pass
        return out

    entry_env = {
        param: frozenset(
            {AbstractObject(kind="param", label=f"param {param}", param=i)}
        )
        for i, param in enumerate(func.params)
    }

    block_in: dict[int, dict[str, frozenset[AbstractObject]]] = {
        cfg.entry: entry_env
    }

    def merge(a, b):
        out = dict(a)
        for var, objs in b.items():
            out[var] = out.get(var, _EMPTY) | objs
        return out

    for _round in range(64):  # escape accumulators force extra rounds
        changed = False
        for index in order:
            env = dict(block_in.get(index, {}))
            if index == cfg.entry:
                env = merge(env, entry_env)
            for stmt in cfg.blocks[index].statements:
                changed |= record_events(stmt, env)
                env = transfer(stmt, env)
            for succ in cfg.blocks[index].successors:
                merged = merge(block_in.get(succ, {}), env)
                if merged != block_in.get(succ):
                    block_in[succ] = merged
                    changed = True
        if not changed:
            break

    # Close escape over containment: contents of escaped containers escape.
    worklist = list(escaped)
    while worklist:
        obj = worklist.pop()
        for inner in contains.get(obj, ()):  # pragma: no branch
            if inner not in escaped:
                escaped.add(inner)
                worklist.append(inner)

    # Record per-statement entry states from the stabilised block inputs.
    result = PointsToResult(function=func.name)
    for index in order:
        env = dict(block_in.get(index, {}))
        if index == cfg.entry:
            env = merge(env, entry_env)
        for stmt in cfg.blocks[index].statements:
            result.at[stmt.sid] = dict(env)
            env = transfer(stmt, env)
    result.escaped = frozenset(escaped)
    result.contains = {
        holder: frozenset(values) for holder, values in contains.items()
    }
    return result
