"""Dominator computation over the CFG.

Implements the Cooper–Harvey–Kennedy iterative algorithm.  Used to verify
the region property the paper relies on: a region's header dominates every
node in the region.
"""

from __future__ import annotations

from .cfg import CFG


def reverse_postorder(cfg: CFG) -> list[int]:
    """Return reachable block indices in reverse postorder from entry."""
    visited: set[int] = set()
    order: list[int] = []

    def dfs(index: int) -> None:
        visited.add(index)
        for succ in cfg.blocks[index].successors:
            if succ not in visited:
                dfs(succ)
        order.append(index)

    dfs(cfg.entry)
    order.reverse()
    return order


def immediate_dominators(cfg: CFG) -> dict[int, int]:
    """Compute the immediate dominator of every reachable block.

    Returns a map block → idom; the entry maps to itself.
    """
    order = reverse_postorder(cfg)
    position = {block: i for i, block in enumerate(order)}
    idom: dict[int, int] = {cfg.entry: cfg.entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in order:
            if block == cfg.entry:
                continue
            preds = [p for p in cfg.blocks[block].predecessors if p in idom]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(block) != new_idom:
                idom[block] = new_idom
                changed = True
    return idom


def dominators(cfg: CFG) -> dict[int, set[int]]:
    """Compute the full dominator sets from the idom tree."""
    idom = immediate_dominators(cfg)
    result: dict[int, set[int]] = {}

    def chain(block: int) -> set[int]:
        if block in result:
            return result[block]
        if block == cfg.entry:
            result[block] = {block}
            return result[block]
        result[block] = {block} | chain(idom[block])
        return result[block]

    for block in idom:
        chain(block)
    return result


def dominates(doms: dict[int, set[int]], a: int, b: int) -> bool:
    """True when block ``a`` dominates block ``b``."""
    return a in doms.get(b, set())
