"""Transitive side-effect summaries of user functions.

The D-IR builder inlines calls to user functions; calls it cannot resolve
(undefined names, recursion) are assumed pure in statement position.  The
lint passes (:mod:`repro.lint`) need to know, for a call inside a cursor
loop, whether the callee — directly or through further calls — writes the
database, produces output, mutates a parameter, or bottoms out in something
unknown.  This module computes those summaries once per program with a
fixpoint over the call graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interp.values import setter_to_column
from ..lang import (
    Assign,
    Call,
    FieldAccess,
    ForEach,
    FunctionDef,
    MethodCall,
    Name,
    New,
    Program,
    Return,
    Ternary,
    statement_expressions,
    walk_expressions,
    walk_statements,
)
from .dataflow import (
    DB_READ_CALLS,
    DB_WRITE_CALLS,
    OUTPUT_CALLS,
    STATIC_RECEIVERS,
    _MUTATING_METHODS,
)

#: Free-call names with modelled semantics (not user functions).
BUILTIN_CALLS = DB_READ_CALLS | DB_WRITE_CALLS | OUTPUT_CALLS


@dataclass(frozen=True)
class EffectSummary:
    """What calling a user function may do, transitively."""

    db_read: bool = False
    db_write: bool = False
    output: bool = False
    calls_unknown: bool = False  # reaches a call with no definition
    recursive: bool = False  # participates in a call-graph cycle
    mutates_params: frozenset[int] = frozenset()  # parameter positions
    #: Parameter positions whose object may outlive or leave the call:
    #: returned, stored into another object, or passed to a call with no
    #: definition.  Alias-closed within each function and propagated
    #: through the same fixpoint as ``mutates_params``, so it is a sound
    #: over-approximation even for recursive callees — which is what lets
    #: the points-to client trust ``escapes_params`` on ``opaque``
    #: summaries (anything reaching the unknown region is in the set).
    escapes_params: frozenset[int] = frozenset()

    @property
    def opaque(self) -> bool:
        """True when the builder cannot faithfully model a statement-position
        call to this function (it would silently assume purity)."""
        return self.calls_unknown or self.recursive


@dataclass
class _Facts:
    db_read: bool = False
    db_write: bool = False
    output: bool = False
    calls_unknown: bool = False
    mutates_params: set[int] = field(default_factory=set)
    escapes_params: set[int] = field(default_factory=set)
    #: (callee name, arg-position → caller-param-position) for user calls
    calls: list[tuple[str, dict[int, int]]] = field(default_factory=list)
    #: (callee name, arg-position → caller-param-positions *aliased* by the
    #: argument) — a superset of ``calls``' map, used only for escape
    #: propagation so mutation propagation keeps its historical precision.
    calls_aliased: list[tuple[str, dict[int, frozenset[int]]]] = field(
        default_factory=list
    )


def function_effects(program: Program) -> dict[str, EffectSummary]:
    """Compute an :class:`EffectSummary` for every function in ``program``."""
    defined = {func.name for func in program.functions}
    facts = {func.name: _direct_facts(func, defined) for func in program.functions}
    recursive = _functions_on_cycles(facts)

    # Fixpoint propagation over the call graph.
    changed = True
    while changed:
        changed = False
        for name, fact in facts.items():
            for callee, arg_map in fact.calls:
                other = facts[callee]
                before = (
                    fact.db_read,
                    fact.db_write,
                    fact.output,
                    fact.calls_unknown,
                    frozenset(fact.mutates_params),
                )
                fact.db_read |= other.db_read
                fact.db_write |= other.db_write
                fact.output |= other.output
                fact.calls_unknown |= other.calls_unknown
                for pos in other.mutates_params:
                    if pos in arg_map:
                        fact.mutates_params.add(arg_map[pos])
                after = (
                    fact.db_read,
                    fact.db_write,
                    fact.output,
                    fact.calls_unknown,
                    frozenset(fact.mutates_params),
                )
                changed |= before != after
            for callee, alias_map in fact.calls_aliased:
                other = facts[callee]
                before_escapes = frozenset(fact.escapes_params)
                for pos in other.escapes_params:
                    fact.escapes_params |= alias_map.get(pos, frozenset())
                changed |= before_escapes != frozenset(fact.escapes_params)

    return {
        name: EffectSummary(
            db_read=fact.db_read,
            db_write=fact.db_write,
            output=fact.output,
            calls_unknown=fact.calls_unknown,
            recursive=name in recursive,
            mutates_params=frozenset(fact.mutates_params),
            escapes_params=frozenset(fact.escapes_params),
        )
        for name, fact in facts.items()
    }


def _param_aliases(func: FunctionDef) -> dict[str, frozenset[int]]:
    """Flow-insensitive closure: variable → parameter positions it may alias.

    Deliberately coarse — any assignment whose right-hand side *reads* a
    param-aliasing variable taints the target, and a ``ForEach`` cursor
    inherits its iterable's aliases (elements live inside the container).
    Over-approximation only costs precision in ``escapes_params``, never
    soundness.
    """
    alias: dict[str, set[int]] = {
        name: {i} for i, name in enumerate(func.params)
    }
    changed = True
    while changed:
        changed = False
        for stmt in walk_statements(func.body):
            target: str | None = None
            sources: set[int] = set()
            if isinstance(stmt, Assign):
                target = stmt.target
                reads = walk_expressions(stmt.value)
            elif isinstance(stmt, ForEach):
                target = stmt.var
                reads = walk_expressions(stmt.iterable)
            else:
                continue
            for node in reads:
                if isinstance(node, Name) and node.ident in alias:
                    sources |= alias[node.ident]
            if target is not None and sources:
                current = alias.setdefault(target, set())
                if not sources <= current:
                    current |= sources
                    changed = True
    return {name: frozenset(positions) for name, positions in alias.items()}


def _expr_param_aliases(expr, alias: dict[str, frozenset[int]]) -> frozenset[int]:
    """Parameter positions whose *object* the value of ``expr`` may alias.

    Unlike a raw name walk this skips sub-expressions that cannot carry the
    alias out in the produced value: a ``Call``'s result is governed by the
    callee's own escape summary (the caller records the argument pass
    separately), and arithmetic produces fresh scalars.  Method calls and
    constructors conservatively taint with their receiver/arguments —
    ``c.get(0)`` may hand out an element of ``c``, ``new Pair(a, b)``
    retains both arguments.
    """
    if isinstance(expr, Name):
        return alias.get(expr.ident, frozenset())
    if isinstance(expr, Ternary):
        return _expr_param_aliases(expr.if_true, alias) | _expr_param_aliases(
            expr.if_false, alias
        )
    if isinstance(expr, MethodCall):
        positions = _expr_param_aliases(expr.receiver, alias)
        for arg in expr.args:
            positions |= _expr_param_aliases(arg, alias)
        return positions
    if isinstance(expr, New):
        positions: frozenset[int] = frozenset()
        for arg in expr.args:
            positions |= _expr_param_aliases(arg, alias)
        return positions
    if isinstance(expr, FieldAccess):
        return _expr_param_aliases(expr.receiver, alias)
    return frozenset()


def _direct_facts(func: FunctionDef, defined: set[str]) -> _Facts:
    fact = _Facts()
    params = {name: i for i, name in enumerate(func.params)}
    alias = _param_aliases(func)
    for stmt in walk_statements(func.body):
        if isinstance(stmt, Return) and stmt.value is not None:
            fact.escapes_params |= _expr_param_aliases(stmt.value, alias)
    for stmt in walk_statements(func.body):
        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if isinstance(node, Call):
                    if node.func in DB_WRITE_CALLS:
                        fact.db_write = True
                    elif node.func in DB_READ_CALLS:
                        fact.db_read = True
                    elif node.func in OUTPUT_CALLS:
                        fact.output = True
                    elif node.func in defined:
                        arg_map = {
                            i: params[arg.ident]
                            for i, arg in enumerate(node.args)
                            if isinstance(arg, Name) and arg.ident in params
                        }
                        fact.calls.append((node.func, arg_map))
                        fact.calls_aliased.append(
                            (
                                node.func,
                                {
                                    i: _expr_param_aliases(arg, alias)
                                    for i, arg in enumerate(node.args)
                                },
                            )
                        )
                    else:
                        fact.calls_unknown = True
                        for arg in node.args:
                            fact.escapes_params |= _expr_param_aliases(arg, alias)
                elif isinstance(node, MethodCall):
                    if (
                        node.method in ("println", "print")
                        and isinstance(node.receiver, FieldAccess)
                        and isinstance(node.receiver.receiver, Name)
                        and node.receiver.receiver.ident == "System"
                    ):
                        fact.output = True
                        continue
                    mutating = (
                        node.method in _MUTATING_METHODS
                        or setter_to_column(node.method) is not None
                    )
                    if (
                        mutating
                        and isinstance(node.receiver, Name)
                        and node.receiver.ident not in STATIC_RECEIVERS
                    ):
                        if node.receiver.ident in params:
                            fact.mutates_params.add(params[node.receiver.ident])
                        # Storing a param-aliasing value into another object
                        # lets it outlive this frame's view of it.
                        for arg in node.args:
                            fact.escapes_params |= _expr_param_aliases(arg, alias)
    return fact


def _functions_on_cycles(facts: dict[str, _Facts]) -> set[str]:
    """Names of functions that can (transitively) call themselves."""
    edges = {name: {callee for callee, _ in fact.calls} for name, fact in facts.items()}

    # Transitive closure of reachability; a function is recursive when it
    # reaches itself.  Program call graphs here are tiny, so O(n·e) is fine.
    reach: dict[str, set[str]] = {name: set(out) for name, out in edges.items()}
    changed = True
    while changed:
        changed = False
        for name, out in reach.items():
            extra: set[str] = set()
            for callee in out:
                extra |= reach.get(callee, set())
            if not extra <= out:
                out |= extra
                changed = True
    return {name for name, out in reach.items() if name in out}
