"""Transitive side-effect summaries of user functions.

The D-IR builder inlines calls to user functions; calls it cannot resolve
(undefined names, recursion) are assumed pure in statement position.  The
lint passes (:mod:`repro.lint`) need to know, for a call inside a cursor
loop, whether the callee — directly or through further calls — writes the
database, produces output, mutates a parameter, or bottoms out in something
unknown.  This module computes those summaries once per program with a
fixpoint over the call graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interp.values import setter_to_column
from ..lang import (
    Call,
    FieldAccess,
    FunctionDef,
    MethodCall,
    Name,
    Program,
    statement_expressions,
    walk_expressions,
    walk_statements,
)
from .dataflow import (
    DB_READ_CALLS,
    DB_WRITE_CALLS,
    OUTPUT_CALLS,
    STATIC_RECEIVERS,
    _MUTATING_METHODS,
)

#: Free-call names with modelled semantics (not user functions).
BUILTIN_CALLS = DB_READ_CALLS | DB_WRITE_CALLS | OUTPUT_CALLS


@dataclass(frozen=True)
class EffectSummary:
    """What calling a user function may do, transitively."""

    db_read: bool = False
    db_write: bool = False
    output: bool = False
    calls_unknown: bool = False  # reaches a call with no definition
    recursive: bool = False  # participates in a call-graph cycle
    mutates_params: frozenset[int] = frozenset()  # parameter positions

    @property
    def opaque(self) -> bool:
        """True when the builder cannot faithfully model a statement-position
        call to this function (it would silently assume purity)."""
        return self.calls_unknown or self.recursive


@dataclass
class _Facts:
    db_read: bool = False
    db_write: bool = False
    output: bool = False
    calls_unknown: bool = False
    mutates_params: set[int] = field(default_factory=set)
    #: (callee name, arg-position → caller-param-position) for user calls
    calls: list[tuple[str, dict[int, int]]] = field(default_factory=list)


def function_effects(program: Program) -> dict[str, EffectSummary]:
    """Compute an :class:`EffectSummary` for every function in ``program``."""
    defined = {func.name for func in program.functions}
    facts = {func.name: _direct_facts(func, defined) for func in program.functions}
    recursive = _functions_on_cycles(facts)

    # Fixpoint propagation over the call graph.
    changed = True
    while changed:
        changed = False
        for name, fact in facts.items():
            for callee, arg_map in fact.calls:
                other = facts[callee]
                before = (
                    fact.db_read,
                    fact.db_write,
                    fact.output,
                    fact.calls_unknown,
                    frozenset(fact.mutates_params),
                )
                fact.db_read |= other.db_read
                fact.db_write |= other.db_write
                fact.output |= other.output
                fact.calls_unknown |= other.calls_unknown
                for pos in other.mutates_params:
                    if pos in arg_map:
                        fact.mutates_params.add(arg_map[pos])
                after = (
                    fact.db_read,
                    fact.db_write,
                    fact.output,
                    fact.calls_unknown,
                    frozenset(fact.mutates_params),
                )
                changed |= before != after

    return {
        name: EffectSummary(
            db_read=fact.db_read,
            db_write=fact.db_write,
            output=fact.output,
            calls_unknown=fact.calls_unknown,
            recursive=name in recursive,
            mutates_params=frozenset(fact.mutates_params),
        )
        for name, fact in facts.items()
    }


def _direct_facts(func: FunctionDef, defined: set[str]) -> _Facts:
    fact = _Facts()
    params = {name: i for i, name in enumerate(func.params)}
    for stmt in walk_statements(func.body):
        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if isinstance(node, Call):
                    if node.func in DB_WRITE_CALLS:
                        fact.db_write = True
                    elif node.func in DB_READ_CALLS:
                        fact.db_read = True
                    elif node.func in OUTPUT_CALLS:
                        fact.output = True
                    elif node.func in defined:
                        arg_map = {
                            i: params[arg.ident]
                            for i, arg in enumerate(node.args)
                            if isinstance(arg, Name) and arg.ident in params
                        }
                        fact.calls.append((node.func, arg_map))
                    else:
                        fact.calls_unknown = True
                elif isinstance(node, MethodCall):
                    if (
                        node.method in ("println", "print")
                        and isinstance(node.receiver, FieldAccess)
                        and isinstance(node.receiver.receiver, Name)
                        and node.receiver.receiver.ident == "System"
                    ):
                        fact.output = True
                        continue
                    mutating = (
                        node.method in _MUTATING_METHODS
                        or setter_to_column(node.method) is not None
                    )
                    if (
                        mutating
                        and isinstance(node.receiver, Name)
                        and node.receiver.ident not in STATIC_RECEIVERS
                        and node.receiver.ident in params
                    ):
                        fact.mutates_params.add(params[node.receiver.ident])
    return fact


def _functions_on_cycles(facts: dict[str, _Facts]) -> set[str]:
    """Names of functions that can (transitively) call themselves."""
    edges = {name: {callee for callee, _ in fact.calls} for name, fact in facts.items()}

    # Transitive closure of reachability; a function is recursive when it
    # reaches itself.  Program call graphs here are tiny, so O(n·e) is fine.
    reach: dict[str, set[str]] = {name: set(out) for name, out in edges.items()}
    changed = True
    while changed:
        changed = False
        for name, out in reach.items():
            extra: set[str] = set()
            for callee in out:
                extra |= reach.get(callee, set())
            if not extra <= out:
                out |= extra
                changed = True
    return {name for name, out in reach.items() if name in out}
