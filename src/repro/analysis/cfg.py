"""Control flow graph construction for MiniJava functions.

The CFG is built over statement ids (``sid``).  Basic blocks group maximal
straight-line statement runs; edges follow the usual structured-control
rules, including ``break``/``continue``/``return``.  The CFG exists for the
dominator/region verification layer (the paper builds regions over Soot
CFGs); D-IR construction itself uses the structured region tree of
:mod:`repro.analysis.regions`, which the paper explicitly sanctions
("alternatively, it is possible to use an abstract syntax tree to identify
program regions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import (
    Assign,
    Block,
    Break,
    Continue,
    ExprStmt,
    ForEach,
    FunctionDef,
    If,
    Return,
    Stmt,
    TryCatch,
    While,
)


@dataclass
class BasicBlock:
    """A maximal straight-line run of statements."""

    index: int
    statements: list[Stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)
    label: str = ""

    def statement_ids(self) -> list[int]:
        return [stmt.sid for stmt in self.statements]


class CFG:
    """A control flow graph with dedicated entry and exit blocks."""

    def __init__(self):
        self.blocks: list[BasicBlock] = []
        self.entry = self._new_block("entry").index
        self.exit = self._new_block("exit").index

    def _new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(index=len(self.blocks), label=label)
        self.blocks.append(block)
        return block

    def add_edge(self, source: int, target: int) -> None:
        if target not in self.blocks[source].successors:
            self.blocks[source].successors.append(target)
        if source not in self.blocks[target].predecessors:
            self.blocks[target].predecessors.append(source)

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def reachable_blocks(self) -> set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            current = stack.pop()
            for succ in self.blocks[current].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def __str__(self) -> str:  # pragma: no cover - debug aid
        lines = []
        for block in self.blocks:
            ids = ",".join(str(s) for s in block.statement_ids())
            lines.append(
                f"B{block.index}[{block.label}]({ids}) -> {block.successors}"
            )
        return "\n".join(lines)


class _Builder:
    def __init__(self):
        self.cfg = CFG()
        self._current = self.cfg._new_block("b0").index
        self.cfg.add_edge(self.cfg.entry, self._current)
        # Stack of (continue_target, break_target) for enclosing loops.
        self._loop_stack: list[tuple[int, int]] = []
        self._terminated = False

    def build(self, func: FunctionDef) -> CFG:
        self._emit_block(func.body)
        if not self._terminated:
            self.cfg.add_edge(self._current, self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------

    def _fresh(self, label: str = "") -> int:
        block = self.cfg._new_block(label)
        return block.index

    def _emit_block(self, block: Block) -> None:
        for stmt in block.statements:
            if self._terminated:
                return  # unreachable code after return/break
            self._emit_stmt(stmt)

    def _emit_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, (Assign, ExprStmt)):
            self.cfg.blocks[self._current].statements.append(stmt)
            return
        if isinstance(stmt, Block):
            self._emit_block(stmt)
            return
        if isinstance(stmt, If):
            self._emit_if(stmt)
            return
        if isinstance(stmt, (While, ForEach)):
            self._emit_loop(stmt)
            return
        if isinstance(stmt, Return):
            self.cfg.blocks[self._current].statements.append(stmt)
            self.cfg.add_edge(self._current, self.cfg.exit)
            self._terminated = True
            return
        if isinstance(stmt, Break):
            if not self._loop_stack:
                raise ValueError("break outside loop")
            self.cfg.blocks[self._current].statements.append(stmt)
            self.cfg.add_edge(self._current, self._loop_stack[-1][1])
            self._terminated = True
            return
        if isinstance(stmt, Continue):
            if not self._loop_stack:
                raise ValueError("continue outside loop")
            self.cfg.blocks[self._current].statements.append(stmt)
            self.cfg.add_edge(self._current, self._loop_stack[-1][0])
            self._terminated = True
            return
        if isinstance(stmt, TryCatch):
            # Conservative straight-line treatment: try, then catch (may be
            # skipped), then finally.
            self._emit_block(stmt.try_body)
            if stmt.catch_body is not None and not self._terminated:
                before = self._current
                catch_block = self._fresh("catch")
                after = self._fresh("after-catch")
                self.cfg.add_edge(before, catch_block)
                self.cfg.add_edge(before, after)
                self._current = catch_block
                self._emit_block(stmt.catch_body)
                if not self._terminated:
                    self.cfg.add_edge(self._current, after)
                self._terminated = False
                self._current = after
            if stmt.finally_body is not None and not self._terminated:
                self._emit_block(stmt.finally_body)
            return
        raise TypeError(f"cannot emit CFG for {type(stmt).__name__}")

    def _emit_if(self, stmt: If) -> None:
        cond_block = self._current
        # The condition belongs to the block ending at the branch.
        self.cfg.blocks[cond_block].statements.append(stmt)
        then_block = self._fresh("then")
        join_block = self._fresh("join")
        self.cfg.add_edge(cond_block, then_block)

        self._current = then_block
        self._terminated = False
        self._emit_block(stmt.then_body)
        then_done = self._terminated
        if not then_done:
            self.cfg.add_edge(self._current, join_block)

        if stmt.else_body is not None:
            else_block = self._fresh("else")
            self.cfg.add_edge(cond_block, else_block)
            self._current = else_block
            self._terminated = False
            self._emit_block(stmt.else_body)
            else_done = self._terminated
            if not else_done:
                self.cfg.add_edge(self._current, join_block)
        else:
            self.cfg.add_edge(cond_block, join_block)
            else_done = False

        self._terminated = then_done and else_done
        self._current = join_block

    def _emit_loop(self, stmt: While | ForEach) -> None:
        header = self._fresh("loop-header")
        body_block = self._fresh("loop-body")
        exit_block = self._fresh("loop-exit")
        self.cfg.add_edge(self._current, header)
        # The loop header holds the loop statement itself (condition / cursor
        # advance).
        self.cfg.blocks[header].statements.append(stmt)
        self.cfg.add_edge(header, body_block)
        self.cfg.add_edge(header, exit_block)

        self._loop_stack.append((header, exit_block))
        self._current = body_block
        self._terminated = False
        self._emit_block(stmt.body)
        if not self._terminated:
            self.cfg.add_edge(self._current, header)
        self._loop_stack.pop()

        self._terminated = False
        self._current = exit_block


def build_cfg(func: FunctionDef) -> CFG:
    """Build the control flow graph of a function."""
    return _Builder().build(func)
