"""Dataflow analyses: def/use sets, dependence graph, slicing, liveness.

These implement the program-analysis vocabulary of Section 4.2 of the
paper: flow dependences, *loop-carried* flow dependences (lcfd), *external*
dependences (database/file/console — the paper conservatively treats the
whole database as one location), program slices, and live variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import (
    Assign,
    Block,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    ForEach,
    FunctionDef,
    If,
    MethodCall,
    Name,
    New,
    Return,
    Stmt,
    TryCatch,
    While,
    walk_expressions,
)
from ..interp.values import setter_to_column

#: Pseudo-locations for external effects (paper Section 4.2: the entire
#: database is treated as a single location for dependence analysis).
DB_LOCATION = "@db"
OUT_LOCATION = "@out"
RET_LOCATION = "@ret"

#: Static receivers that are classes, not variables.
STATIC_RECEIVERS = {
    "Math",
    "Integer",
    "Double",
    "String",
    "System",
    "Collections",
    "Objects",
}

#: Methods that mutate their receiver collection/builder.
_MUTATING_METHODS = {
    "add",
    "append",
    "insert",
    "addAll",
    "put",
    "remove",
    "clear",
    "sort",
}

#: Calls that read the database.
DB_READ_CALLS = {"executeQuery", "executeQueryCursor", "executeScalar", "executeExists"}
#: Calls that write the database.
DB_WRITE_CALLS = {"executeUpdate", "executeInsert", "executeDelete", "save", "persist"}
#: Calls that write program output.
OUTPUT_CALLS = {"print", "println"}


# ----------------------------------------------------------------------
# Def/use extraction


def expr_reads(expr: Expr) -> set[str]:
    """Variables and external locations read by an expression."""
    reads: set[str] = set()
    for node in walk_expressions(expr):
        if isinstance(node, Name):
            reads.add(node.ident)
        elif isinstance(node, Call):
            if node.func in DB_READ_CALLS:
                reads.add(DB_LOCATION)
            elif node.func in DB_WRITE_CALLS:
                reads.add(DB_LOCATION)
        elif isinstance(node, MethodCall):
            if isinstance(node.receiver, Name) and node.receiver.ident in STATIC_RECEIVERS:
                reads.discard(node.receiver.ident)
    # Remove static receivers that slipped in as Names.
    return reads - STATIC_RECEIVERS


def expr_writes(expr: Expr) -> set[str]:
    """Locations written by evaluating an expression (side effects)."""
    writes: set[str] = set()
    for node in walk_expressions(expr):
        if isinstance(node, Call):
            if node.func in DB_WRITE_CALLS:
                writes.add(DB_LOCATION)
            elif node.func in OUTPUT_CALLS:
                writes.add(OUT_LOCATION)
        elif isinstance(node, MethodCall):
            mutating = node.method in _MUTATING_METHODS or setter_to_column(node.method)
            if mutating and isinstance(node.receiver, Name):
                if node.receiver.ident not in STATIC_RECEIVERS:
                    writes.add(node.receiver.ident)
            if (
                node.method == "println"
                and isinstance(node.receiver, FieldAccess)
            ):
                writes.add(OUT_LOCATION)
    return writes


@dataclass(frozen=True)
class DefUse:
    """Def/use summary of one statement."""

    reads: frozenset[str]
    writes: frozenset[str]


def stmt_def_use(stmt: Stmt) -> DefUse:
    """Compute the direct def/use sets of a statement (non-recursive for
    compound statements: only their condition / header counts)."""
    if isinstance(stmt, Assign):
        reads = expr_reads(stmt.value)
        writes = {stmt.target} | expr_writes(stmt.value)
        return DefUse(frozenset(reads), frozenset(writes))
    if isinstance(stmt, ExprStmt):
        reads = expr_reads(stmt.expr)
        writes = expr_writes(stmt.expr)
        # A mutating method both reads and writes the receiver.
        reads |= {w for w in writes if not w.startswith("@")}
        return DefUse(frozenset(reads), frozenset(writes))
    if isinstance(stmt, If):
        return DefUse(frozenset(expr_reads(stmt.cond)), frozenset())
    if isinstance(stmt, ForEach):
        return DefUse(frozenset(expr_reads(stmt.iterable)), frozenset({stmt.var}))
    if isinstance(stmt, While):
        return DefUse(frozenset(expr_reads(stmt.cond)), frozenset())
    if isinstance(stmt, Return):
        reads = expr_reads(stmt.value) if stmt.value is not None else set()
        return DefUse(frozenset(reads), frozenset({RET_LOCATION}))
    return DefUse(frozenset(), frozenset())


def all_writes(stmt: Stmt) -> set[str]:
    """All locations written anywhere under a statement (recursive)."""
    writes: set[str] = set()

    def visit(s: Stmt) -> None:
        writes.update(stmt_def_use(s).writes)
        for child in _children(s):
            visit(child)

    visit(stmt)
    return writes


def all_reads(stmt: Stmt) -> set[str]:
    """All locations read anywhere under a statement (recursive)."""
    reads: set[str] = set()

    def visit(s: Stmt) -> None:
        reads.update(stmt_def_use(s).reads)
        for child in _children(s):
            visit(child)

    visit(stmt)
    return reads


def _children(stmt: Stmt) -> list[Stmt]:
    if isinstance(stmt, Block):
        return list(stmt.statements)
    if isinstance(stmt, If):
        children: list[Stmt] = list(stmt.then_body.statements)
        if stmt.else_body is not None:
            children.extend(stmt.else_body.statements)
        return children
    if isinstance(stmt, (ForEach, While)):
        return list(stmt.body.statements)
    if isinstance(stmt, TryCatch):
        children = list(stmt.try_body.statements)
        if stmt.catch_body is not None:
            children.extend(stmt.catch_body.statements)
        if stmt.finally_body is not None:
            children.extend(stmt.finally_body.statements)
        return children
    return []


# ----------------------------------------------------------------------
# Data dependence graph (Section 4.2)


@dataclass
class Dependence:
    """One dependence edge between statements."""

    source: int  # sid of the earlier statement (writer for flow deps)
    target: int  # sid of the dependent statement
    kind: str  # "flow", "lcfd", "control", "external"
    location: str = ""


@dataclass
class DependenceGraph:
    """Data-dependence graph over the statements of one loop body."""

    statements: list[Stmt] = field(default_factory=list)
    edges: list[Dependence] = field(default_factory=list)

    def edges_of_kind(self, kind: str) -> list[Dependence]:
        return [e for e in self.edges if e.kind == kind]

    def has_external_dependence(self) -> bool:
        return bool(self.edges_of_kind("external"))


def _flatten_with_control(
    block: Block, control: list[int]
) -> list[tuple[Stmt, list[int]]]:
    """Flatten a block into (statement, controlling-sids) pairs."""
    result: list[tuple[Stmt, list[int]]] = []
    for stmt in block.statements:
        result.append((stmt, list(control)))
        if isinstance(stmt, If):
            inner_control = control + [stmt.sid]
            result.extend(_flatten_with_control(stmt.then_body, inner_control))
            if stmt.else_body is not None:
                result.extend(_flatten_with_control(stmt.else_body, inner_control))
        elif isinstance(stmt, (ForEach, While)):
            result.extend(_flatten_with_control(stmt.body, control + [stmt.sid]))
        elif isinstance(stmt, Block):
            result.extend(_flatten_with_control(stmt, control))
        elif isinstance(stmt, TryCatch):
            result.extend(_flatten_with_control(stmt.try_body, control))
            if stmt.catch_body is not None:
                result.extend(_flatten_with_control(stmt.catch_body, control))
            if stmt.finally_body is not None:
                result.extend(_flatten_with_control(stmt.finally_body, control))
    return result


def build_loop_ddg(body: Block, cursor_var: str | None = None) -> DependenceGraph:
    """Build the dependence graph of a loop body.

    Includes intra-iteration flow dependences, loop-carried flow dependences
    (a read that can observe a previous iteration's write), control
    dependences, and external dependences (at least one write to an external
    location, per the paper's definition).
    """
    flat = _flatten_with_control(body, [])
    graph = DependenceGraph(statements=[stmt for stmt, _ in flat])
    summaries = {stmt.sid: stmt_def_use(stmt) for stmt, _ in flat}
    order = [stmt.sid for stmt, _ in flat]
    position = {sid: i for i, sid in enumerate(order)}

    # Control dependences.
    for stmt, controllers in flat:
        for controller in controllers:
            graph.edges.append(Dependence(controller, stmt.sid, "control"))

    # Flow dependences (conservative: no kill analysis; extra edges only make
    # slices larger, never unsound).
    for writer, _ in flat:
        written = summaries[writer.sid].writes
        if not written:
            continue
        for reader, _ in flat:
            common = written & summaries[reader.sid].reads
            common = {c for c in common if not c.startswith("@")}
            if not common:
                continue
            for location in common:
                if position[writer.sid] < position[reader.sid]:
                    graph.edges.append(
                        Dependence(writer.sid, reader.sid, "flow", location)
                    )
                else:
                    # A read at or before the write observes the previous
                    # iteration's value: a loop-carried flow dependence.
                    if cursor_var is not None and location == cursor_var:
                        continue  # the cursor's own advance is exempt (P2)
                    graph.edges.append(
                        Dependence(writer.sid, reader.sid, "lcfd", location)
                    )

    # External dependences: any pair touching the same external location with
    # at least one write.
    external = (DB_LOCATION, OUT_LOCATION)
    for first, _ in flat:
        for second, _ in flat:
            if position[first.sid] > position[second.sid]:
                continue
            for location in external:
                first_w = location in summaries[first.sid].writes
                second_w = location in summaries[second.sid].writes
                first_touch = first_w or location in summaries[first.sid].reads
                second_touch = second_w or location in summaries[second.sid].reads
                if first_touch and second_touch and (first_w or second_w):
                    graph.edges.append(
                        Dependence(first.sid, second.sid, "external", location)
                    )
    return graph


def loop_carried_vars(body: Block, cursor_var: str | None = None) -> set[str]:
    """Variables carrying values across iterations of a loop body.

    A variable is loop-carried when it is written in the body and some read
    of it can observe the previous iteration's value (read-before-write on
    some path, or a conditional write that may leave the old value).
    """
    graph = build_loop_ddg(body, cursor_var)
    return {edge.location for edge in graph.edges_of_kind("lcfd")}


# ----------------------------------------------------------------------
# Slicing (Weiser-style, over the loop body)


def slice_statements(graph: DependenceGraph, variable: str) -> set[int]:
    """Compute the sids of ``slice(R, end-of-R, variable)``.

    Statements that directly or transitively affect the variable's value at
    the end of the region, following flow/lcfd/control edges backwards.
    """
    writers = {
        stmt.sid
        for stmt in graph.statements
        if variable in stmt_def_use(stmt).writes
    }
    incoming: dict[int, list[Dependence]] = {}
    for edge in graph.edges:
        incoming.setdefault(edge.target, []).append(edge)

    result: set[int] = set()
    stack = list(writers)
    while stack:
        sid = stack.pop()
        if sid in result:
            continue
        result.add(sid)
        for edge in incoming.get(sid, []):
            if edge.kind in ("flow", "lcfd", "control") and edge.source not in result:
                stack.append(edge.source)
    return result


# ----------------------------------------------------------------------
# Liveness


def live_before(
    statements: list[Stmt], live_out: set[str]
) -> tuple[set[str], dict[int, set[str]]]:
    """Backward liveness over a statement list.

    Returns (live-in of the list, map sid → live-after-that-statement).
    """
    live_after: dict[int, set[str]] = {}
    live = set(live_out)
    for stmt in reversed(statements):
        live = _live_through(stmt, live, live_after)
    return live, live_after


def _live_through(
    stmt: Stmt, live: set[str], live_after: dict[int, set[str]]
) -> set[str]:
    live_after[stmt.sid] = set(live)
    if isinstance(stmt, (Assign, ExprStmt, Return)):
        summary = stmt_def_use(stmt)
        result = (live - {w for w in summary.writes if not w.startswith("@")}) | set(
            summary.reads
        )
        # Mutating calls keep the receiver live (it is read and written).
        if isinstance(stmt, ExprStmt):
            result |= {w for w in summary.writes if not w.startswith("@")} & live
        return result
    if isinstance(stmt, Block):
        inner, _ = live_before(stmt.statements, live)
        _merge_inner(stmt.statements, live, live_after)
        return inner
    if isinstance(stmt, If):
        then_live, _ = live_before(stmt.then_body.statements, live)
        _merge_inner(stmt.then_body.statements, live, live_after)
        if stmt.else_body is not None:
            else_live, _ = live_before(stmt.else_body.statements, live)
            _merge_inner(stmt.else_body.statements, live, live_after)
        else:
            else_live = set(live)
        return then_live | else_live | expr_reads(stmt.cond)
    if isinstance(stmt, (ForEach, While)):
        # Fixpoint: two passes suffice for structured loops.
        body_live = set(live)
        for _ in range(2):
            inner, _ = live_before(stmt.body.statements, body_live)
            body_live = body_live | inner
        _merge_inner(stmt.body.statements, body_live, live_after)
        result = set(live) | body_live
        if isinstance(stmt, ForEach):
            result -= {stmt.var}
            result |= expr_reads(stmt.iterable)
        else:
            result |= expr_reads(stmt.cond)
        return result
    if isinstance(stmt, TryCatch):
        bodies = [stmt.try_body.statements]
        if stmt.catch_body is not None:
            bodies.append(stmt.catch_body.statements)
        if stmt.finally_body is not None:
            bodies.append(stmt.finally_body.statements)
        result = set(live)
        for body in bodies:
            inner, _ = live_before(body, live)
            _merge_inner(body, live, live_after)
            result |= inner
        return result
    return set(live)


def _merge_inner(
    statements: list[Stmt], live_out: set[str], live_after: dict[int, set[str]]
) -> None:
    _, inner_map = live_before(statements, live_out)
    for sid, vars_ in inner_map.items():
        live_after.setdefault(sid, set()).update(vars_)


def live_after_loop(func: FunctionDef, loop_stmt: Stmt) -> set[str]:
    """Variables live immediately after a loop statement within a function."""
    _, live_after = live_before(func.body.statements, {RET_LOCATION})
    return {
        v for v in live_after.get(loop_stmt.sid, set()) if not v.startswith("@")
    }
