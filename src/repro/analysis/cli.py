"""The ``python -m repro analyze`` subcommand.

A debugging window into the precision layer: for one function it dumps
the facts the SSA/points-to analyses prove — the SSA values themselves,
the SCCP constant lattice and dead-branch verdicts, and the per-variable
points-to sets with the escaped-object closure.  These are exactly the
facts :mod:`repro.ir.preprocess` folds/prunes/propagates on and the lint
engine consults when downgrading alias-escape blockers, so when an
extraction surprises you this is the first thing to look at.

Target syntax is ``FILE::function`` (the frontend is auto-detected from
the file suffix, as for ``extract``).
"""

from __future__ import annotations

import argparse
import json

from ..frontends import available_frontends, detect_frontend, get_frontend
from ..lang import FunctionDef, Program, number_statements
from .effects import function_effects
from .pointsto import PointsToResult, analyze_pointsto
from .ssa import SCCPResult, build_ssa, sccp


def add_analyze_parser(sub) -> None:
    """Register the ``analyze`` subcommand on an argparse subparsers object."""
    analyze = sub.add_parser(
        "analyze",
        help="dump SSA form, constant facts, and points-to sets for a function",
    )
    analyze.add_argument(
        "target", help="analysis target, as FILE::function (e.g. app.mj::report)"
    )
    analyze.add_argument(
        "--frontend",
        default=None,
        choices=list(available_frontends()),
        help="language frontend parsing the file "
        "(default: auto-detect from the file suffix)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit the facts as JSON"
    )
    analyze.set_defaults(func=cmd_analyze)


def split_target(target: str) -> tuple[str, str]:
    path, sep, function = target.rpartition("::")
    if not sep or not path or not function:
        raise SystemExit(
            f"analyze target must be FILE::function, got {target!r}"
        )
    return path, function


def analysis_facts(program: Program, function: str) -> dict:
    """The precision layer's proven facts for one function, as plain data."""
    try:
        func: FunctionDef = program.function(function)
    except KeyError:
        known = ", ".join(sorted(f.name for f in program.functions))
        raise SystemExit(
            f"no function {function!r} (program defines: {known or 'none'})"
        )
    number_statements(program)
    effects = function_effects(program)
    ssa = build_ssa(func, effects)
    constants: SCCPResult = sccp(ssa)
    pointsto: PointsToResult = analyze_pointsto(func, effects)

    variables: dict[str, list[str]] = {}
    for env in pointsto.at.values():
        for var, objects in env.items():
            merged = variables.setdefault(var, [])
            for obj in sorted(objects):
                if obj.describe() not in merged:
                    merged.append(obj.describe())
    return {
        "function": function,
        "ssa": [value.describe() for value in ssa.values],
        "constants": constants.constants(),
        "dead_branches": {
            f"s{sid}": f"{arm} arm unreachable"
            for sid, arm in sorted(constants.dead_branches.items())
        },
        "pointsto": {
            "variables": {var: sorted(objs) for var, objs in variables.items()},
            "escaped": sorted(obj.describe() for obj in pointsto.escaped),
            "contains": {
                holder.describe(): sorted(v.describe() for v in values)
                for holder, values in sorted(pointsto.contains.items())
            },
        },
    }


def render_facts(facts: dict) -> str:
    lines = [f"function {facts['function']}"]
    lines.append("\nSSA values:")
    for entry in facts["ssa"]:
        lines.append(f"  {entry}")
    lines.append("\nconstants:")
    if facts["constants"]:
        for name, value in facts["constants"].items():
            lines.append(f"  {name} = {value!r}")
    else:
        lines.append("  (none proven)")
    lines.append("\ndead branches:")
    if facts["dead_branches"]:
        for sid, verdict in facts["dead_branches"].items():
            lines.append(f"  {sid}: {verdict}")
    else:
        lines.append("  (none proven)")
    pointsto = facts["pointsto"]
    lines.append("\npoints-to:")
    for var, objects in sorted(pointsto["variables"].items()):
        lines.append(f"  {var} -> {{{', '.join(objects)}}}")
    lines.append(
        "  escaped: "
        + (", ".join(pointsto["escaped"]) if pointsto["escaped"] else "(nothing)")
    )
    for holder, values in pointsto["contains"].items():
        lines.append(f"  {holder} contains {{{', '.join(values)}}}")
    return "\n".join(lines)


def cmd_analyze(args) -> int:
    path, function = split_target(args.target)
    frontend_name = args.frontend or detect_frontend(path)
    frontend = get_frontend(frontend_name)
    with open(path) as handle:
        source = handle.read()
    program = frontend.parse(source)
    facts = analysis_facts(program, function)
    facts = {"file": path, "frontend": frontend_name, **facts}
    if args.json:
        print(json.dumps(facts, indent=2))
    else:
        print(f"{path} [{frontend_name}]")
        print(render_facts(facts))
    return 0


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin
    parser = argparse.ArgumentParser(prog="repro analyze")
    sub = parser.add_subparsers(dest="command", required=True)
    add_analyze_parser(sub)
    args = parser.parse_args(argv)
    return args.func(args)
