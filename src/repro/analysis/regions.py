"""Program regions (Section 3.1 / Figure 4 of the paper).

Four region kinds are modelled, exactly as the paper lists them: basic
block, sequential, conditional, and loop.  The region hierarchy is built
from the structured AST (the paper: "alternatively, it is possible to use
an abstract syntax tree to identify program regions"), and a separate
verification routine checks the defining region property — the header
dominates all region nodes — against the CFG dominator analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import (
    Assign,
    Block,
    Break,
    Continue,
    Expr,
    ExprStmt,
    ForEach,
    FunctionDef,
    If,
    Return,
    Stmt,
    TryCatch,
    While,
)


class Region:
    """Base class for all regions."""

    def sub_regions(self) -> list["Region"]:
        return []

    def statements(self) -> list[Stmt]:
        """All statements contained in this region, in source order."""
        result: list[Stmt] = []
        self._collect(result)
        return result

    def _collect(self, out: list[Stmt]) -> None:
        for sub in self.sub_regions():
            sub._collect(out)


@dataclass
class BasicBlockRegion(Region):
    """A maximal run of simple statements (assignments / calls / returns)."""

    stmts: list[Stmt] = field(default_factory=list)

    def _collect(self, out: list[Stmt]) -> None:
        out.extend(self.stmts)

    def __repr__(self) -> str:
        ids = ",".join(str(s.sid) for s in self.stmts)
        return f"BB({ids})"


@dataclass
class SequentialRegion(Region):
    """Two regions in sequence (Figure 4(b))."""

    first: Region
    second: Region

    def sub_regions(self) -> list[Region]:
        return [self.first, self.second]

    def __repr__(self) -> str:
        return f"Seq({self.first!r}; {self.second!r})"


@dataclass
class ConditionalRegion(Region):
    """Condition + true region + false region (Figure 4(a))."""

    cond: Expr
    true_region: Region
    false_region: Region | None
    stmt: If | None = None

    def sub_regions(self) -> list[Region]:
        subs = [self.true_region]
        if self.false_region is not None:
            subs.append(self.false_region)
        return subs

    def _collect(self, out: list[Stmt]) -> None:
        if self.stmt is not None:
            out.append(self.stmt)
        super()._collect(out)

    def __repr__(self) -> str:
        return f"Cond({self.true_region!r} | {self.false_region!r})"


@dataclass
class LoopRegion(Region):
    """Loop header + body (Figure 4(c)).

    ``cursor_var`` and ``iterable`` are set for cursor loops (``for (t :
    coll)``); general ``while`` loops keep their condition in ``cond``.
    """

    body: Region
    cursor_var: str | None = None
    iterable: Expr | None = None
    cond: Expr | None = None
    stmt: Stmt | None = None

    @property
    def is_cursor_loop(self) -> bool:
        return self.cursor_var is not None

    def sub_regions(self) -> list[Region]:
        return [self.body]

    def _collect(self, out: list[Stmt]) -> None:
        if self.stmt is not None:
            out.append(self.stmt)
        super()._collect(out)

    def __repr__(self) -> str:
        if self.is_cursor_loop:
            return f"Loop({self.cursor_var}: {self.body!r})"
        return f"While({self.body!r})"


@dataclass
class EmptyRegion(Region):
    """An empty region (e.g. a missing else branch)."""

    def __repr__(self) -> str:
        return "Empty"


@dataclass
class OpaqueRegion(Region):
    """A region the analysis does not look into (try/catch, break...).

    D-IR construction fails for variables whose values flow through an
    opaque region, which mirrors the paper's conservative treatment.
    """

    stmt: Stmt | None = None
    inner: Region | None = None

    def sub_regions(self) -> list[Region]:
        return [self.inner] if self.inner is not None else []

    def _collect(self, out: list[Stmt]) -> None:
        if self.stmt is not None:
            out.append(self.stmt)
        super()._collect(out)

    def __repr__(self) -> str:
        return "Opaque"


def build_region(block: Block) -> Region:
    """Build the region hierarchy for a statement block."""
    regions: list[Region] = []
    run: list[Stmt] = []

    def flush() -> None:
        if run:
            regions.append(BasicBlockRegion(stmts=list(run)))
            run.clear()

    for stmt in block.statements:
        if isinstance(stmt, (Assign, ExprStmt, Return)):
            run.append(stmt)
        elif isinstance(stmt, If):
            flush()
            true_region = build_region(stmt.then_body)
            false_region = (
                build_region(stmt.else_body) if stmt.else_body is not None else None
            )
            regions.append(
                ConditionalRegion(
                    cond=stmt.cond,
                    true_region=true_region,
                    false_region=false_region,
                    stmt=stmt,
                )
            )
        elif isinstance(stmt, ForEach):
            flush()
            regions.append(
                LoopRegion(
                    body=build_region(stmt.body),
                    cursor_var=stmt.var,
                    iterable=stmt.iterable,
                    stmt=stmt,
                )
            )
        elif isinstance(stmt, While):
            flush()
            regions.append(
                LoopRegion(body=build_region(stmt.body), cond=stmt.cond, stmt=stmt)
            )
        elif isinstance(stmt, Block):
            flush()
            regions.append(build_region(stmt))
        elif isinstance(stmt, TryCatch):
            flush()
            # The try body is analysable on its own (Section 2: optimisation
            # happens within a try block); catch/finally stay opaque.
            inner = build_region(stmt.try_body)
            if stmt.catch_body is None and stmt.finally_body is None:
                regions.append(inner)
            else:
                regions.append(OpaqueRegion(stmt=stmt, inner=inner))
        elif isinstance(stmt, (Break, Continue)):
            flush()
            regions.append(OpaqueRegion(stmt=stmt))
        else:
            raise TypeError(f"cannot build region for {type(stmt).__name__}")

    flush()
    if not regions:
        return EmptyRegion()
    result = regions[0]
    for region in regions[1:]:
        result = SequentialRegion(first=result, second=region)
    return result


def build_function_region(func: FunctionDef) -> Region:
    """Build the region hierarchy of a whole function body."""
    return build_region(func.body)


def iter_regions(region: Region):
    """Yield ``region`` and every nested region, pre-order."""
    yield region
    for sub in region.sub_regions():
        yield from iter_regions(sub)


def contains_opaque(region: Region) -> bool:
    """True when any nested region is opaque (break/catch...)."""
    return any(isinstance(r, OpaqueRegion) for r in iter_regions(region))


def cursor_loops(region: Region) -> list[LoopRegion]:
    """All cursor-loop regions nested anywhere under ``region``."""
    return [
        r for r in iter_regions(region) if isinstance(r, LoopRegion) and r.is_cursor_loop
    ]
