"""Runtime values for the MiniJava interpreter.

Rows coming back from the database are wrapped in :class:`Entity` so that
application code can use Java-bean style access (``t.getP1()``, ``t.score``)
and JDBC-style access (``rs.getString("name")``).
"""

from __future__ import annotations

from typing import Any

from ..db.types import Row


class Entity:
    """One result row with bean-style and JDBC-style accessors."""

    def __init__(self, row: Row):
        self.row = row

    def get(self, column: str) -> Any:
        if column in self.row:
            return self.row[column]
        # Accept a unique alias-qualified match (e.g. "b.score" for "score").
        suffix = f".{column}"
        matches = [k for k in self.row if k.endswith(suffix)]
        if len(matches) == 1:
            return self.row[matches[0]]
        raise KeyError(f"row has no column {column!r}; columns: {sorted(self.row)}")

    def has(self, column: str) -> bool:
        if column in self.row:
            return True
        suffix = f".{column}"
        return sum(1 for k in self.row if k.endswith(suffix)) == 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Entity):
            return _plain(self.row) == _plain(other.row)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted(_plain(self.row).items())))

    def __repr__(self) -> str:
        return f"Entity({_plain(self.row)})"


def _plain(row: Row) -> dict:
    return {k: v for k, v in row.items() if "." not in k}


def getter_to_column(method: str) -> str | None:
    """Map a bean getter name to its column: ``getP1`` → ``p1``.

    Returns ``None`` when the method is not a getter.
    """
    if method.startswith("get") and len(method) > 3:
        rest = method[3:]
        return rest[0].lower() + rest[1:]
    if method.startswith("is") and len(method) > 2:
        rest = method[2:]
        return rest[0].lower() + rest[1:]
    return None


def setter_to_column(method: str) -> str | None:
    """Map a bean setter name to its column: ``setScore`` → ``score``."""
    if method.startswith("set") and len(method) > 3:
        rest = method[3:]
        return rest[0].lower() + rest[1:]
    return None


class ResultCursor:
    """A JDBC-style forward cursor over a query result (``rs.next()``)."""

    def __init__(self, rows: list[Row]):
        self._rows = rows
        self._index = -1

    def next(self) -> bool:
        self._index += 1
        return self._index < len(self._rows)

    @property
    def current(self) -> Entity:
        if not 0 <= self._index < len(self._rows):
            raise RuntimeError("cursor is not positioned on a row")
        return Entity(self._rows[self._index])

    def __iter__(self):
        return (Entity(row) for row in self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class StringBuilder:
    """Minimal ``StringBuilder``: append + toString."""

    def __init__(self, initial: str = ""):
        self._parts = [initial] if initial else []

    def append(self, value: Any) -> "StringBuilder":
        self._parts.append(to_display(value))
        return self

    def to_string(self) -> str:
        return "".join(self._parts)

    def __repr__(self) -> str:
        return f"StringBuilder({self.to_string()!r})"


def to_display(value: Any) -> str:
    """Java-ish string conversion used by ``print`` and string concat."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return str(value)
