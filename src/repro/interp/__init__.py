"""MiniJava interpreter over the simulated database connection."""

from .interpreter import Interpreter, InterpreterError, run_program
from .values import Entity, ResultCursor, StringBuilder, getter_to_column, setter_to_column

__all__ = [
    "Entity",
    "Interpreter",
    "InterpreterError",
    "ResultCursor",
    "StringBuilder",
    "getter_to_column",
    "run_program",
    "setter_to_column",
]
