"""Tree-walking interpreter for MiniJava programs over the DB substrate.

The interpreter serves two roles in the reproduction:

* *equivalence checking* — the extracted SQL must produce the same value the
  original imperative code computes (paper Theorem 1); tests run both.
* *performance experiments* — Experiments 5–8 execute original and rewritten
  programs against the simulated connection and compare time/transfer.

``executeQuery("...")`` strings may contain named parameters (``:x``) that
are bound from the program environment at call time, mirroring how the
paper's D-IR resolves query parameters to program variables.
"""

from __future__ import annotations

from typing import Any

from ..algebra import params_of, walk_scalar
from ..algebra.expressions import Param
from ..algebra.operators import Select, walk_relational
from ..db import Connection
from ..lang import (
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FieldAccess,
    FloatLit,
    ForEach,
    FunctionDef,
    If,
    IntLit,
    MethodCall,
    Name,
    New,
    NullLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Ternary,
    TryCatch,
    Unary,
    While,
)
from ..sqlparse import parse_query
from .values import (
    Entity,
    ResultCursor,
    StringBuilder,
    getter_to_column,
    setter_to_column,
    to_display,
)


class InterpreterError(Exception):
    """Raised on runtime failures in interpreted programs."""


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


_COLLECTION_CLASSES = {"ArrayList", "LinkedList", "List", "Vector"}
_SET_CLASSES = {"HashSet", "TreeSet", "Set", "LinkedHashSet"}
_MAP_CLASSES = {"HashMap", "TreeMap", "Map", "LinkedHashMap"}


class Interpreter:
    """Executes a MiniJava :class:`Program` against a :class:`Connection`."""

    def __init__(self, program: Program, connection: Connection, max_steps: int = 10_000_000):
        self._program = program
        self._connection = connection
        self._max_steps = max_steps
        self._steps = 0
        self.output: list[str] = []
        #: Final value of the ``__out__`` collection of the last-run
        #: function (set by print-preprocessing; used by equivalence tests).
        self.last_out: Any = None

    # ------------------------------------------------------------------
    # Entry points

    def run(self, function_name: str, *args: Any) -> Any:
        """Run a named function with positional arguments; return its value."""
        func = self._program.function(function_name)
        return self._call_function(func, list(args))

    def _call_function(self, func: FunctionDef, args: list[Any]) -> Any:
        if len(args) != len(func.params):
            raise InterpreterError(
                f"{func.name} expects {len(func.params)} args, got {len(args)}"
            )
        env = dict(zip(func.params, args))
        try:
            self._exec_block(func.body, env)
        except _ReturnSignal as signal:
            self.last_out = env.get("__out__", self.last_out)
            return signal.value
        self.last_out = env.get("__out__", self.last_out)
        return None

    # ------------------------------------------------------------------
    # Statements

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self._max_steps:
            raise InterpreterError("step limit exceeded (possible infinite loop)")

    def _exec_block(self, block: Block, env: dict[str, Any]) -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: Stmt, env: dict[str, Any]) -> None:
        self._tick()
        if isinstance(stmt, Assign):
            env[stmt.target] = self._eval(stmt.value, env)
            return
        if isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, env)
            return
        if isinstance(stmt, Block):
            self._exec_block(stmt, env)
            return
        if isinstance(stmt, If):
            if self._truthy(self._eval(stmt.cond, env)):
                self._exec_block(stmt.then_body, env)
            elif stmt.else_body is not None:
                self._exec_block(stmt.else_body, env)
            return
        if isinstance(stmt, ForEach):
            iterable = self._eval(stmt.iterable, env)
            for item in self._iterate(iterable):
                env[stmt.var] = item
                try:
                    self._exec_block(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return
        if isinstance(stmt, While):
            while self._truthy(self._eval(stmt.cond, env)):
                self._tick()
                try:
                    self._exec_block(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return
        if isinstance(stmt, Return):
            value = None if stmt.value is None else self._eval(stmt.value, env)
            raise _ReturnSignal(value)
        if isinstance(stmt, Break):
            raise _BreakSignal()
        if isinstance(stmt, Continue):
            raise _ContinueSignal()
        if isinstance(stmt, TryCatch):
            try:
                self._exec_block(stmt.try_body, env)
            except InterpreterError:
                if stmt.catch_body is not None:
                    self._exec_block(stmt.catch_body, env)
                else:
                    raise
            finally:
                if stmt.finally_body is not None:
                    self._exec_block(stmt.finally_body, env)
            return
        raise InterpreterError(f"cannot execute {type(stmt).__name__}")

    @staticmethod
    def _iterate(value: Any):
        if isinstance(value, ResultCursor):
            return iter(value)
        if isinstance(value, (list, tuple, set)):
            return iter(value)
        raise InterpreterError(f"value of type {type(value).__name__} is not iterable")

    @staticmethod
    def _truthy(value: Any) -> bool:
        if value is None:
            return False
        if isinstance(value, bool):
            return value
        raise InterpreterError(f"condition evaluated to non-boolean {value!r}")

    # ------------------------------------------------------------------
    # Expressions

    def _eval(self, expr: Expr, env: dict[str, Any]) -> Any:
        self._tick()
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, StringLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, NullLit):
            return None
        if isinstance(expr, Name):
            if expr.ident not in env:
                raise InterpreterError(f"unbound variable {expr.ident!r}")
            return env[expr.ident]
        if isinstance(expr, Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, Unary):
            operand = self._eval(expr.operand, env)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return not operand
            raise InterpreterError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Ternary):
            if self._truthy(self._eval(expr.cond, env)):
                return self._eval(expr.if_true, env)
            return self._eval(expr.if_false, env)
        if isinstance(expr, Call):
            return self._eval_call(expr, env)
        if isinstance(expr, MethodCall):
            return self._eval_method(expr, env)
        if isinstance(expr, FieldAccess):
            receiver = self._eval(expr.receiver, env)
            if isinstance(receiver, Entity):
                return receiver.get(expr.field)
            raise InterpreterError(
                f"cannot access field {expr.field!r} on {type(receiver).__name__}"
            )
        if isinstance(expr, New):
            return self._eval_new(expr, env)
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    def _eval_binary(self, expr: Binary, env: dict[str, Any]) -> Any:
        if expr.op == "&&":
            return self._truthy(self._eval(expr.left, env)) and self._truthy(
                self._eval(expr.right, env)
            )
        if expr.op == "||":
            return self._truthy(self._eval(expr.left, env)) or self._truthy(
                self._eval(expr.right, env)
            )
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        op = expr.op
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return to_display(left) + to_display(right)
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return left // right  # Java integer division
            return left / right
        if op == "%":
            return left % right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        raise InterpreterError(f"unknown binary operator {op!r}")

    def _eval_call(self, expr: Call, env: dict[str, Any]) -> Any:
        if expr.func in ("executeQuery", "executeQueryCursor"):
            if len(expr.args) != 1:
                raise InterpreterError("executeQuery takes exactly one argument")
            text = self._eval(expr.args[0], env)
            rows = self._run_query(text, env)
            if expr.func == "executeQueryCursor":
                return ResultCursor(rows)
            return [Entity(row) for row in rows]
        if expr.func == "executeScalar":
            text = self._eval(expr.args[0], env)
            rows = self._run_query(text, env)
            if not rows:
                return None
            first = rows[0]
            plain = [v for k, v in first.items() if "." not in k]
            return plain[0] if plain else None
        if expr.func == "executeExists":
            text = self._eval(expr.args[0], env)
            return bool(self._run_query(text, env))
        if expr.func == "registerTempTable":
            name = self._eval(expr.args[0], env)
            collection = self._eval(expr.args[1], env)
            rows = []
            for element in collection:
                if isinstance(element, Entity):
                    rows.append({k: v for k, v in element.row.items() if "." not in k})
                else:
                    rows.append({"val": element})
            self._connection.ship_temp_table(name, rows)
            return None
        if expr.func in ("print", "println"):
            rendered = "".join(to_display(self._eval(a, env)) for a in expr.args)
            self.output.append(rendered)
            return None
        # User-defined function.
        try:
            func = self._program.function(expr.func)
        except KeyError:
            raise InterpreterError(f"unknown function {expr.func!r}") from None
        args = [self._eval(a, env) for a in expr.args]
        return self._call_function(func, args)

    def _run_query(self, text: str, env: dict[str, Any]) -> list[dict]:
        if not isinstance(text, str):
            raise InterpreterError("executeQuery argument must be a string")
        query = parse_query(text)
        params = {}
        for name in sorted(_query_params(query)):
            if name not in env:
                raise InterpreterError(f"query parameter :{name} is unbound")
            params[name] = env[name]
        return self._connection.execute_query(query, params)

    def _eval_method(self, expr: MethodCall, env: dict[str, Any]) -> Any:
        # Static library receivers (Math.max etc.) must not be evaluated as
        # variables.
        if isinstance(expr.receiver, Name) and expr.receiver.ident not in env:
            static = self._eval_static_method(expr, env)
            if static is not _NO_STATIC:
                return static
        if (
            isinstance(expr.receiver, FieldAccess)
            and isinstance(expr.receiver.receiver, Name)
            and expr.receiver.receiver.ident == "System"
        ):
            # System.out.println(...)
            rendered = "".join(to_display(self._eval(a, env)) for a in expr.args)
            self.output.append(rendered)
            return None
        receiver = self._eval(expr.receiver, env)
        args = [self._eval(a, env) for a in expr.args]
        return self._dispatch_method(receiver, expr.method, args)

    def _eval_static_method(self, expr: MethodCall, env: dict[str, Any]) -> Any:
        assert isinstance(expr.receiver, Name)
        class_name = expr.receiver.ident
        method = expr.method
        if class_name == "Math":
            args = [self._eval(a, env) for a in expr.args]
            if method == "max":
                return max(args)
            if method == "min":
                return min(args)
            if method == "abs":
                return abs(args[0])
            raise InterpreterError(f"unknown Math method {method!r}")
        if class_name == "Integer" and method == "parseInt":
            return int(self._eval(expr.args[0], env))
        if class_name == "Double" and method == "parseDouble":
            return float(self._eval(expr.args[0], env))
        if class_name == "String" and method == "valueOf":
            return to_display(self._eval(expr.args[0], env))
        if class_name == "Collections":
            args = [self._eval(a, env) for a in expr.args]
            if method == "sort":
                args[0].sort()
                return None
            if method == "max":
                return max(args[0])
            if method == "min":
                return min(args[0])
        return _NO_STATIC

    def _dispatch_method(self, receiver: Any, method: str, args: list[Any]) -> Any:
        if isinstance(receiver, (ResultCursor,)):
            if method == "next":
                return receiver.next()
            # Delegate JDBC getters to the current row.
            return self._dispatch_method(receiver.current, method, args)
        if isinstance(receiver, Entity):
            if method in ("getString", "getInt", "getDouble", "getLong", "getBoolean", "getObject"):
                value = receiver.get(args[0])
                if method == "getInt" and value is not None:
                    return int(value)
                if method == "getDouble" and value is not None:
                    return float(value)
                return value
            column = getter_to_column(method)
            if column is not None and not args:
                return receiver.get(column)
            column = setter_to_column(method)
            if column is not None and len(args) == 1:
                receiver.row[column] = args[0]
                return None
            raise InterpreterError(f"unknown entity method {method!r}")
        if isinstance(receiver, list):
            return self._list_method(receiver, method, args)
        if isinstance(receiver, set):
            return self._set_method(receiver, method, args)
        if isinstance(receiver, dict):
            return self._map_method(receiver, method, args)
        if isinstance(receiver, str):
            return self._string_method(receiver, method, args)
        if isinstance(receiver, StringBuilder):
            if method == "append":
                return receiver.append(args[0])
            if method == "toString":
                return receiver.to_string()
            raise InterpreterError(f"unknown StringBuilder method {method!r}")
        if isinstance(receiver, tuple):
            if method in ("getFirst", "getKey", "getCol0"):
                return receiver[0]
            if method in ("getSecond", "getValue", "getCol1"):
                return receiver[1]
            if method == "get":
                return receiver[args[0]]
        if isinstance(receiver, (int, float)):
            if method in ("intValue", "doubleValue", "longValue"):
                return receiver
            if method == "compareTo":
                return (receiver > args[0]) - (receiver < args[0])
            if method == "equals":
                return receiver == args[0]
        if receiver is None:
            raise InterpreterError(f"null pointer: cannot call {method!r} on null")
        raise InterpreterError(
            f"cannot call {method!r} on {type(receiver).__name__}"
        )

    @staticmethod
    def _list_method(receiver: list, method: str, args: list[Any]) -> Any:
        if method in ("add", "append"):
            receiver.append(args[0])
            return True
        if method == "addAll":
            receiver.extend(args[0])
            return True
        if method == "get":
            return receiver[args[0]]
        if method == "size":
            return len(receiver)
        if method == "isEmpty":
            return not receiver
        if method == "contains":
            return args[0] in receiver
        if method == "remove":
            receiver.remove(args[0])
            return True
        if method == "clear":
            receiver.clear()
            return None
        if method == "iterator":
            return list(receiver)
        raise InterpreterError(f"unknown list method {method!r}")

    @staticmethod
    def _set_method(receiver: set, method: str, args: list[Any]) -> Any:
        if method in ("add", "insert"):
            added = args[0] not in receiver
            receiver.add(args[0])
            return added
        if method == "addAll":
            receiver.update(args[0])
            return True
        if method == "size":
            return len(receiver)
        if method == "isEmpty":
            return not receiver
        if method == "contains":
            return args[0] in receiver
        if method == "remove":
            receiver.discard(args[0])
            return True
        raise InterpreterError(f"unknown set method {method!r}")

    @staticmethod
    def _map_method(receiver: dict, method: str, args: list[Any]) -> Any:
        if method == "put":
            receiver[args[0]] = args[1]
            return None
        if method == "get":
            return receiver.get(args[0])
        if method == "containsKey":
            return args[0] in receiver
        if method == "size":
            return len(receiver)
        if method == "isEmpty":
            return not receiver
        if method == "keySet":
            return set(receiver.keys())
        if method == "values":
            return list(receiver.values())
        raise InterpreterError(f"unknown map method {method!r}")

    @staticmethod
    def _string_method(receiver: str, method: str, args: list[Any]) -> Any:
        if method == "length":
            return len(receiver)
        if method == "toUpperCase":
            return receiver.upper()
        if method == "toLowerCase":
            return receiver.lower()
        if method == "trim":
            return receiver.strip()
        if method == "equals":
            return receiver == args[0]
        if method == "equalsIgnoreCase":
            return receiver.lower() == str(args[0]).lower()
        if method == "contains":
            return args[0] in receiver
        if method == "startsWith":
            return receiver.startswith(args[0])
        if method == "endsWith":
            return receiver.endswith(args[0])
        if method == "substring":
            if len(args) == 2:
                return receiver[args[0] : args[1]]
            return receiver[args[0] :]
        if method == "indexOf":
            return receiver.find(args[0])
        if method == "concat":
            return receiver + args[0]
        if method == "isEmpty":
            return not receiver
        raise InterpreterError(f"unknown string method {method!r}")

    def _eval_new(self, expr: New, env: dict[str, Any]) -> Any:
        args = [self._eval(a, env) for a in expr.args]
        if expr.class_name in _COLLECTION_CLASSES:
            return list(args[0]) if args else []
        if expr.class_name in _SET_CLASSES:
            return set(args[0]) if args else set()
        if expr.class_name in _MAP_CLASSES:
            return {}
        if expr.class_name == "StringBuilder":
            return StringBuilder(args[0] if args else "")
        if expr.class_name in ("Pair", "Tuple"):
            return tuple(args)
        raise InterpreterError(f"unknown class {expr.class_name!r}")


_NO_STATIC = object()


def _query_params(query) -> set[str]:
    """Collect parameter names anywhere in a relational tree."""
    names: set[str] = set()
    for node in walk_relational(query):
        if isinstance(node, Select):
            names |= params_of(node.pred)
        for attr in ("pred", "items", "keys", "group_by", "aggs"):
            value = getattr(node, attr, None)
            if value is None:
                continue
            exprs = []
            if attr == "pred":
                exprs = [value]
            elif attr == "items":
                exprs = [item.expr for item in value]
            elif attr == "keys":
                exprs = [key.expr for key in value]
            elif attr == "group_by":
                exprs = list(value)
            elif attr == "aggs":
                exprs = [item.call.arg for item in value if item.call.arg is not None]
            for scalar in exprs:
                for sub in walk_scalar(scalar):
                    if isinstance(sub, Param):
                        names.add(sub.name)
    return names


def run_program(
    source_or_program: str | Program,
    connection: Connection,
    function: str = "main",
    args: tuple = (),
) -> tuple[Any, list[str]]:
    """Parse (if needed) and run a program; return (result, printed output)."""
    from ..lang import parse_program

    if isinstance(source_or_program, str):
        program = parse_program(source_or_program)
    else:
        program = source_or_program
    interp = Interpreter(program, connection)
    result = interp.run(function, *args)
    return result, interp.output
