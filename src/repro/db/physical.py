"""Physical operators for the planned execution engine.

The planner (:mod:`repro.db.planner`) lowers relational algebra trees into
trees of :class:`PhysicalOp` objects.  Operators are immutable and
stateless: one plan object is cached per algebra tree per
:class:`~repro.db.engine.Database` and re-executed with fresh
:class:`ExecContext` state (parameters, per-operator row counters), so a
cached plan can also serve correlated subqueries with different outer rows.

Execution is generator-based: every operator's ``execute`` yields rows, so
a ``LIMIT`` at the top of a pipeline stops pulling from its producer after
``n`` rows instead of materializing the whole input.  Blocking operators
(hash build sides, sorts, aggregation) materialize only what they must.

The golden rule of this module: every operator must produce *exactly* the
rows, values, and row order of :class:`~repro.db.engine.ReferenceEvaluator`
on every input, including NULL semantics and error behavior.  Anything the
planner cannot prove safe falls back to an operator that mirrors the
reference implementation line for line.
"""

from __future__ import annotations

from heapq import nsmallest
from itertools import islice
from typing import Any, Iterator

from ..algebra import AggCall, Aggregate, Join, OuterApply, Project, RelExpr, Sort
from .engine import (
    Database,
    ReferenceEvaluator,
    _hashable,
    _FingerprintColumns,
    _output_names_best_effort,
    _pad_left_row,
)
from .types import Row, is_truthy, sql_compare

#: Operator labels whose ``rows_scanned`` explain field reports base-table
#: rows actually read (wired into the connection's transfer accounting).
SCAN_LABELS = frozenset(
    {"SeqScan", "IndexLookup", "IndexNLJoin", "Columnar", "ColumnarHashJoin",
     "ColumnarSemiJoin", "ColumnarAntiJoin"}
)


class PlannedScalarEvaluator(ReferenceEvaluator):
    """Scalar evaluator whose relational subqueries run on planned plans.

    Inherits every scalar rule from the reference evaluator (so the two
    engines share one implementation of NULL semantics, functions, and
    column lookup) but routes ``EXISTS``/scalar-subquery evaluation through
    the plan cache instead of re-walking the algebra tree.
    """

    def __init__(self, ctx: "ExecContext"):
        super().__init__(ctx.db, ctx.params)
        self._ctx = ctx

    def eval_rel(self, node: RelExpr, outer: Row | None = None) -> list[Row]:
        plan = self._ctx.db.plan(node)
        return list(plan.execute(self._ctx, outer))


class ExecContext:
    """Per-execution state: database, parameters, and row counters."""

    __slots__ = ("db", "params", "rows_out", "probed", "scalar")

    def __init__(self, db: Database, params: dict[str, Any]):
        self.db = db
        self.params = params
        #: id(op) → rows the operator produced in this execution.
        self.rows_out: dict[int, int] = {}
        #: id(op) → base-table rows an index join touched.
        self.probed: dict[int, int] = {}
        self.scalar = PlannedScalarEvaluator(self)

    def merge(self, row: Row, outer: Row | None) -> Row:
        if not outer:
            return row
        merged = dict(outer)
        merged.update(row)
        return merged


class PhysicalOp:
    """One node of a physical plan."""

    label = "op"

    def children(self) -> tuple["PhysicalOp", ...]:
        return ()

    def detail(self) -> str:
        return ""

    def execute(self, ctx: ExecContext, outer: Row | None = None) -> Iterator[Row]:
        """Yield result rows, tracking the operator's output cardinality."""
        produced = 0
        iterator = self._rows(ctx, outer)
        try:
            for row in iterator:
                produced += 1
                yield row
        finally:
            key = id(self)
            ctx.rows_out[key] = ctx.rows_out.get(key, 0) + produced

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        raise NotImplementedError

    def scanned_rows(self, ctx: ExecContext) -> int:
        """Base-table rows this operator read (0 for non-scan operators)."""
        return 0


def explain_plan(op: PhysicalOp, ctx: ExecContext | None = None) -> dict:
    """Render a physical plan (optionally with actual row counts) as a
    nested dict: ``{"op", "detail", "rows_out", "rows_scanned", "children"}``.

    ``rows_out`` is the operator's output cardinality from the execution
    ``ctx`` (``None`` when the plan has not run); ``rows_scanned`` is the
    number of base-table rows the operator itself touched — the quantity the
    simulated server-side cost accounting charges for.
    """
    return {
        "op": op.label,
        "detail": op.detail(),
        "rows_out": None if ctx is None else ctx.rows_out.get(id(op), 0),
        "rows_scanned": 0 if ctx is None else op.scanned_rows(ctx),
        "children": [explain_plan(child, ctx) for child in op.children()],
    }


def total_scanned(explain: dict) -> int:
    """Sum the ``rows_scanned`` fields of an executed explain tree."""
    return explain["rows_scanned"] + sum(
        total_scanned(child) for child in explain["children"]
    )


# ----------------------------------------------------------------------
# Scans


class SeqScan(PhysicalOp):
    """Full scan of a base table, adding alias-qualified keys."""

    label = "SeqScan"

    def __init__(self, name: str, alias: str | None):
        self.name = name
        self.alias = alias or name

    def detail(self) -> str:
        if self.alias != self.name:
            return f"{self.name} AS {self.alias}"
        return self.name

    def scanned_rows(self, ctx: ExecContext) -> int:
        return ctx.rows_out.get(id(self), 0)

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        alias = self.alias
        for row in ctx.db.rows(self.name):
            copy = dict(row)
            for column, value in row.items():
                copy[f"{alias}.{column}"] = value
            yield copy


class IndexLookup(PhysicalOp):
    """Point lookup ``σ[col = expr](T)`` through a lazily built hash index.

    ``key_expr`` contains no columns of ``T`` (literals, parameters, or
    outer-correlated columns only), so it is evaluated once per execution
    against the outer scope.  A remaining ``residual`` predicate (the other
    conjuncts of the original selection) filters the bucket.  When the index
    cannot be built (unhashable values) or the probe key is unhashable, the
    operator delegates to ``fallback`` — a plain filtered scan with the full
    original predicate.
    """

    label = "IndexLookup"

    def __init__(self, name, alias, column, key_expr, residual, fallback):
        self.name = name
        self.alias = alias or name
        self.column = column
        self.key_expr = key_expr
        self.residual = residual
        self.fallback = fallback

    def detail(self) -> str:
        return f"{self.name}.{self.column} = {self.key_expr}"

    def scanned_rows(self, ctx: ExecContext) -> int:
        return ctx.rows_out.get(id(self), 0)

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        index = ctx.db.index_on(self.name, self.column, auto=True)
        if index is None:
            yield from self.fallback.execute(ctx, outer)
            return
        key = ctx.scalar.eval_scalar(self.key_expr, outer or {})
        if key is None:
            return  # col = NULL is unknown: no rows qualify
        try:
            bucket = index.get(key, ())
        except TypeError:  # unhashable probe value
            yield from self.fallback.execute(ctx, outer)
            return
        alias = self.alias
        scalar = ctx.scalar
        residual = self.residual
        for row in bucket:
            copy = dict(row)
            for column, value in row.items():
                copy[f"{alias}.{column}"] = value
            if residual is not None and not is_truthy(
                scalar.eval_scalar(residual, ctx.merge(copy, outer))
            ):
                continue
            yield copy


# ----------------------------------------------------------------------
# Row-at-a-time operators


class FilterOp(PhysicalOp):
    """σ — streaming selection."""

    label = "Filter"

    def __init__(self, child: PhysicalOp, pred):
        self.child = child
        self.pred = pred

    def children(self):
        return (self.child,)

    def detail(self) -> str:
        return str(self.pred)

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        scalar = ctx.scalar
        pred = self.pred
        for row in self.child.execute(ctx, outer):
            if is_truthy(scalar.eval_scalar(pred, ctx.merge(row, outer))):
                yield row


class ProjectOp(PhysicalOp):
    """π — streaming projection (shares the reference row builder)."""

    label = "Project"

    def __init__(self, child: PhysicalOp, node: Project):
        self.child = child
        self.node = node

    def children(self):
        return (self.child,)

    def detail(self) -> str:
        return ", ".join(str(item) for item in self.node.items)

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        scalar = ctx.scalar
        node = self.node
        for row in self.child.execute(ctx, outer):
            yield scalar._project_row(node, row, outer)


class AliasOp(PhysicalOp):
    """Derived-table alias: re-qualifies plain columns."""

    label = "Alias"

    def __init__(self, child: PhysicalOp, name: str):
        self.child = child
        self.name = name

    def children(self):
        return (self.child,)

    def detail(self) -> str:
        return self.name

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        name = self.name
        for row in self.child.execute(ctx, outer):
            copy = dict(row)
            for column, value in row.items():
                if "." not in column:
                    copy[f"{name}.{column}"] = value
            yield copy


class LimitOp(PhysicalOp):
    """Streaming LIMIT: stops pulling from the producer after ``count``."""

    label = "Limit"

    def __init__(self, child: PhysicalOp, count: int):
        self.child = child
        self.count = count

    def children(self):
        return (self.child,)

    def detail(self) -> str:
        return str(self.count)

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        if self.count < 0:
            # Degenerate negative limit: match Python slice semantics of the
            # reference implementation exactly.
            yield from list(self.child.execute(ctx, outer))[: self.count]
            return
        yield from islice(self.child.execute(ctx, outer), self.count)


class DistinctOp(PhysicalOp):
    """δ — streaming duplicate elimination with a cached fingerprint layout."""

    label = "Distinct"

    def __init__(self, child: PhysicalOp):
        self.child = child

    def children(self):
        return (self.child,)

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        seen = set()
        fingerprint_columns = _FingerprintColumns()
        for row in self.child.execute(ctx, outer):
            fingerprint = fingerprint_columns.fingerprint(row)
            if fingerprint not in seen:
                seen.add(fingerprint)
                yield row


# ----------------------------------------------------------------------
# Sorting


class SortOp(PhysicalOp):
    """τ — full materializing sort (single pass over a composite key)."""

    label = "Sort"

    def __init__(self, child: PhysicalOp, node: Sort):
        self.child = child
        self.node = node

    def children(self):
        return (self.child,)

    def detail(self) -> str:
        return ", ".join(str(k) for k in self.node.keys)

    def _key_fn(self, ctx: ExecContext, outer: Row | None):
        scalar = ctx.scalar
        keys = self.node.keys

        def sort_key(row: Row):
            scope = ctx.merge(row, outer)
            return tuple(scalar._sort_key(k, scope) for k in keys)

        return sort_key

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        rows = list(self.child.execute(ctx, outer))
        rows.sort(key=self._key_fn(ctx, outer))
        yield from rows


class TopN(SortOp):
    """Sort+Limit fused into a bounded heap (``heapq.nsmallest``).

    ``nsmallest`` is documented to be equivalent to ``sorted(...)[:n]``
    (including stability), so the fusion cannot change tie-breaking.
    """

    label = "TopN"

    def __init__(self, child: PhysicalOp, node: Sort, count: int):
        super().__init__(child, node)
        self.count = count

    def detail(self) -> str:
        return f"{self.count} by {super().detail()}"

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        if self.count <= 0:
            # Fall back to exact reference slice semantics for 0/negative.
            rows = list(self.child.execute(ctx, outer))
            rows.sort(key=self._key_fn(ctx, outer))
            yield from rows[: self.count]
            return
        yield from nsmallest(
            self.count, self.child.execute(ctx, outer), key=self._key_fn(ctx, outer)
        )


# ----------------------------------------------------------------------
# Joins


def _combine(left: Row, right: Row) -> Row:
    # Left values win on bare-name collisions; qualified keys of both sides
    # are preserved because they never collide (same construction as the
    # reference evaluator's join).
    return {**right, **left}


class NestedLoopJoin(PhysicalOp):
    """⋈ — the general join; mirrors the reference evaluator exactly."""

    label = "NestedLoopJoin"

    def __init__(self, left: PhysicalOp, right: PhysicalOp, node: Join):
        self.left = left
        self.right = right
        self.node = node

    def children(self):
        return (self.left, self.right)

    def detail(self) -> str:
        text = self.node.kind
        if self.node.pred is not None:
            text += f" on {self.node.pred}"
        return text

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        node = self.node
        scalar = ctx.scalar
        right_rows = list(self.right.execute(ctx, outer))
        pred = node.pred
        left_kind = node.kind == "left"
        for left in self.left.execute(ctx, outer):
            matched = False
            for right in right_rows:
                combined = _combine(left, right)
                if pred is not None and not is_truthy(
                    scalar.eval_scalar(pred, ctx.merge(combined, outer))
                ):
                    continue
                matched = True
                yield combined
            if left_kind and not matched:
                yield _pad_left_row(left, right_rows, node.right, ctx.db)


class HashJoin(PhysicalOp):
    """Hash equi-join: build a hash table on the right input, probe with
    the left.

    ``left_keys``/``right_keys`` are the parallel equality-conjunct sides
    extracted by the planner; ``residual`` holds the remaining conjuncts and
    is evaluated on the combined row exactly like the reference predicate.
    Rows whose key contains NULL never match (SQL ``=`` is unknown on NULL).
    Unhashable key values degrade to the nested-loop strategy so semantics
    never change.
    """

    label = "HashJoin"

    def __init__(self, left, right, node: Join, left_keys, right_keys, residual):
        self.left = left
        self.right = right
        self.node = node
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.residual = residual

    def children(self):
        return (self.left, self.right)

    def detail(self) -> str:
        keys = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        text = f"{self.node.kind} on {keys}"
        if self.residual is not None:
            text += f" residual {self.residual}"
        return text

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        node = self.node
        scalar = ctx.scalar
        right_rows = list(self.right.execute(ctx, outer))
        table: dict[tuple, list[Row]] = {}
        for right in right_rows:
            scope = ctx.merge(right, outer)
            key = tuple(scalar.eval_scalar(e, scope) for e in self.right_keys)
            if any(v is None for v in key):
                continue  # NULL keys can never satisfy the equality
            try:
                table.setdefault(key, []).append(right)
            except TypeError:
                # Unhashable join key: the nested loop is the only strategy
                # that preserves Python/SQL equality semantics exactly.
                yield from self._nested(ctx, outer, right_rows)
                return

        residual = self.residual
        left_kind = node.kind == "left"
        for left in self.left.execute(ctx, outer):
            scope = ctx.merge(left, outer)
            key = tuple(scalar.eval_scalar(e, scope) for e in self.left_keys)
            if any(v is None for v in key):
                bucket = ()
            else:
                try:
                    bucket = table.get(key, ())
                except TypeError:
                    bucket = [
                        right
                        for right in right_rows
                        if self._keys_equal(ctx, outer, key, right)
                    ]
            matched = False
            for right in bucket:
                combined = _combine(left, right)
                if residual is not None and not is_truthy(
                    scalar.eval_scalar(residual, ctx.merge(combined, outer))
                ):
                    continue
                matched = True
                yield combined
            if left_kind and not matched:
                yield _pad_left_row(left, right_rows, node.right, ctx.db)

    def _keys_equal(self, ctx, outer, left_key, right: Row) -> bool:
        scalar = ctx.scalar
        scope = ctx.merge(right, outer)
        for value, expr in zip(left_key, self.right_keys):
            if not is_truthy(sql_compare("=", value, scalar.eval_scalar(expr, scope))):
                return False
        return True

    def _nested(self, ctx, outer, right_rows) -> Iterator[Row]:
        node = self.node
        scalar = ctx.scalar
        pred = node.pred
        left_kind = node.kind == "left"
        for left in self.left.execute(ctx, outer):
            matched = False
            for right in right_rows:
                combined = _combine(left, right)
                if pred is not None and not is_truthy(
                    scalar.eval_scalar(pred, ctx.merge(combined, outer))
                ):
                    continue
                matched = True
                yield combined
            if left_kind and not matched:
                yield _pad_left_row(left, right_rows, node.right, ctx.db)


class IndexNLJoin(PhysicalOp):
    """Index nested-loop join: probe a registered hash index on the right
    base table once per left row.

    Chosen by the planner only when the right side is a bare table with an
    explicitly registered index on the join column; the index persists
    across executions, which is what makes this beat a hash join for
    repeated (N+1-style) query workloads.  Delegates to ``fallback`` (the
    hash join) when the index cannot be built.
    """

    label = "IndexNLJoin"

    def __init__(self, left, node: Join, table, alias, column, left_key, residual, fallback):
        self.left = left
        self.node = node
        self.table = table
        self.alias = alias or table
        self.column = column
        self.left_key = left_key
        self.residual = residual
        self.fallback = fallback

    def children(self):
        return (self.left,)

    def detail(self) -> str:
        return f"{self.node.kind} {self.table}.{self.column} = {self.left_key}"

    def scanned_rows(self, ctx: ExecContext) -> int:
        return ctx.probed.get(id(self), 0)

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        index = ctx.db.index_on(self.table, self.column)
        if index is None:
            yield from self.fallback.execute(ctx, outer)
            return
        node = self.node
        scalar = ctx.scalar
        alias = self.alias
        residual = self.residual
        left_kind = node.kind == "left"
        base_rows = ctx.db.rows(self.table)
        probed = 0
        try:
            for left in self.left.execute(ctx, outer):
                scope = ctx.merge(left, outer)
                key = scalar.eval_scalar(self.left_key, scope)
                if key is None:
                    bucket = ()
                else:
                    try:
                        bucket = index.get(key, ())
                    except TypeError:
                        bucket = [
                            row
                            for row in base_rows
                            if is_truthy(sql_compare("=", key, row.get(self.column)))
                        ]
                matched = False
                for base in bucket:
                    probed += 1
                    right = dict(base)
                    for column, value in base.items():
                        right[f"{alias}.{column}"] = value
                    combined = _combine(left, right)
                    if residual is not None and not is_truthy(
                        scalar.eval_scalar(residual, ctx.merge(combined, outer))
                    ):
                        continue
                    matched = True
                    yield combined
                if left_kind and not matched:
                    if base_rows:
                        first = dict(base_rows[0])
                        for column, value in base_rows[0].items():
                            first[f"{alias}.{column}"] = value
                        pad_rows = [first]
                    else:
                        pad_rows = []
                    yield _pad_left_row(left, pad_rows, node.right, ctx.db)
        finally:
            ctx.probed[id(self)] = ctx.probed.get(id(self), 0) + probed


class HashSemiJoin(PhysicalOp):
    """Decorrelated EXISTS / NOT EXISTS as a hash semi/anti-join.

    The build side is the inner query with its correlation conjuncts
    removed (proved uncorrelated by the planner); its key tuples form a
    hash set probed once per outer row.  NULL build keys are excluded (the
    inner equality would be unknown) and NULL probe keys never match — the
    outer row is then dropped for EXISTS and kept for NOT EXISTS, exactly
    the reference three-valued behavior.  With no keys, this degenerates to
    the constant-EXISTS case: the build side decides emptiness once instead
    of once per outer row.  Unhashable keys delegate to ``fallback`` (the
    per-row reference strategy).
    """

    label = "HashSemiJoin"

    def __init__(self, child, build, outer_keys, inner_keys, negated, fallback):
        self.child = child
        self.build = build
        self.outer_keys = tuple(outer_keys)
        self.inner_keys = tuple(inner_keys)
        self.negated = negated
        self.fallback = fallback
        if negated:
            self.label = "HashAntiJoin"

    def children(self):
        return (self.child, self.build)

    def detail(self) -> str:
        if not self.outer_keys:
            return "uncorrelated"
        return ", ".join(
            f"{o} = {i}" for o, i in zip(self.outer_keys, self.inner_keys)
        )

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        scalar = ctx.scalar
        keys: set[tuple] = set()
        nonempty = False
        for row in self.build.execute(ctx, outer):
            nonempty = True
            if not self.inner_keys:
                break  # emptiness is all the uncorrelated case needs
            scope = ctx.merge(row, outer)
            key = tuple(scalar.eval_scalar(e, scope) for e in self.inner_keys)
            if any(v is None for v in key):
                continue
            try:
                keys.add(key)
            except TypeError:
                yield from self.fallback.execute(ctx, outer)
                return

        negated = self.negated
        if not self.outer_keys:
            keep = (not nonempty) if negated else nonempty
            if keep:
                yield from self.child.execute(ctx, outer)
            return

        for row in self.child.execute(ctx, outer):
            scope = ctx.merge(row, outer)
            key = tuple(scalar.eval_scalar(e, scope) for e in self.outer_keys)
            if any(v is None for v in key):
                hit = False
            else:
                try:
                    hit = key in keys
                except TypeError:
                    hit = any(_tuples_equal(key, k) for k in keys)
            if (not hit) if negated else hit:
                yield row


def _tuples_equal(left: tuple, right: tuple) -> bool:
    return all(is_truthy(sql_compare("=", l, r)) for l, r in zip(left, right))


# ----------------------------------------------------------------------
# Aggregation


class _AggState:
    """Incremental state for one simple aggregate call within one group."""

    __slots__ = ("call", "count", "total", "best")

    def __init__(self, call: AggCall):
        self.call = call
        self.count = 0  # non-NULL values seen (rows for COUNT(*))
        self.total = None
        self.best = None

    def add(self, value: Any) -> None:
        func = self.call.func
        if func == "count" and self.call.arg is None:
            self.count += 1
            return
        if value is None:
            return  # SQL: aggregates skip NULLs
        self.count += 1
        if func in ("sum", "avg"):
            # Start from 0 + value so non-summable types (strings) raise the
            # same TypeError the reference's sum(values) raises.
            self.total = 0 + value if self.total is None else self.total + value
        elif func == "min":
            if self.best is None or value < self.best:
                self.best = value
        elif func == "max":
            if self.best is None or value > self.best:
                self.best = value

    def result(self) -> Any:
        func = self.call.func
        if func == "count":
            return self.count
        if self.count == 0:
            return None
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count
        return self.best


def _simple_aggs(node: Aggregate) -> bool:
    """True when every aggregate folds incrementally (no DISTINCT, no
    custom aggregates needing the full value list)."""
    for item in node.aggs:
        if item.call.distinct:
            return False
        if item.call.func not in ("count", "sum", "min", "max", "avg"):
            return False
    return True


class HashAggregate(PhysicalOp):
    """γ — hash group-by with incremental folding for built-in aggregates.

    Groups in first-seen order (matching the reference).  Simple aggregates
    (COUNT/SUM/MIN/MAX/AVG without DISTINCT) accumulate row by row without
    materializing the group's rows; DISTINCT and custom aggregates fall
    back to the reference's materialize-then-fold path per group.
    """

    label = "HashAggregate"

    def __init__(self, child: PhysicalOp, node: Aggregate):
        self.child = child
        self.node = node
        self.simple = _simple_aggs(node)

    def children(self):
        return (self.child,)

    def detail(self) -> str:
        groups = ", ".join(str(g) for g in self.node.group_by)
        calls = ", ".join(str(a) for a in self.node.aggs)
        return f"[{groups}; {calls}]" + ("" if self.simple else " (materialized)")

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        node = self.node
        scalar = ctx.scalar
        child = self.child.execute(ctx, outer)

        if not self.simple:
            yield from self._materialized(ctx, outer, child)
            return

        if not node.group_by:
            states = [_AggState(item.call) for item in node.aggs]
            for row in child:
                scope = ctx.merge(row, outer)
                for state in states:
                    arg = state.call.arg
                    state.add(
                        None if arg is None else scalar.eval_scalar(arg, scope)
                    )
            yield self._emit((), states)
            return

        groups: dict[tuple, list[_AggState]] = {}
        group_by = node.group_by
        for row in child:
            scope = ctx.merge(row, outer)
            key = tuple(
                _hashable(scalar.eval_scalar(g, scope)) for g in group_by
            )
            states = groups.get(key)
            if states is None:
                states = [_AggState(item.call) for item in node.aggs]
                groups[key] = states
            for state in states:
                arg = state.call.arg
                state.add(None if arg is None else scalar.eval_scalar(arg, scope))
        for key, states in groups.items():
            yield self._emit(key, states)

    def _emit(self, key: tuple, states: list[_AggState]) -> Row:
        from ..algebra import Col

        node = self.node
        result: Row = {}
        for group_expr, value in zip(node.group_by, key):
            name = group_expr.name if isinstance(group_expr, Col) else str(group_expr)
            result[name] = value
        for item, state in zip(node.aggs, states):
            result[item.output_name] = state.result()
        return result

    def _materialized(self, ctx, outer, child) -> Iterator[Row]:
        node = self.node
        scalar = ctx.scalar
        if not node.group_by:
            yield scalar._fold_group(node, (), list(child), outer)
            return
        groups: dict[tuple, list[Row]] = {}
        for row in child:
            scope = ctx.merge(row, outer)
            key = tuple(
                _hashable(scalar.eval_scalar(g, scope)) for g in node.group_by
            )
            groups.setdefault(key, []).append(row)
        for key, rows in groups.items():
            yield scalar._fold_group(node, key, rows, outer)


# ----------------------------------------------------------------------
# Apply


class ApplyOp(PhysicalOp):
    """OUTER APPLY: evaluate the (correlated) right plan once per left row.

    The right side is a planned subtree, so point lookups inside it can use
    indexes; padding on an empty right side mirrors the reference exactly.
    """

    label = "OuterApply"

    def __init__(self, left: PhysicalOp, right: PhysicalOp, node: OuterApply):
        self.left = left
        self.right = right
        self.node = node

    def children(self):
        return (self.left, self.right)

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        node = self.node
        for left in self.left.execute(ctx, outer):
            scope = ctx.merge(left, outer)
            inner_rows = list(self.right.execute(ctx, scope))
            if inner_rows:
                for inner in inner_rows:
                    combined = dict(left)
                    for key, value in inner.items():
                        if key not in combined:
                            combined[key] = value
                    yield combined
            else:
                padded = dict(left)
                for name in _output_names_best_effort(node.right, ctx.db.catalog):
                    padded.setdefault(name, None)
                yield padded
