"""In-memory database substrate with a simulated client/server boundary."""

from .connection import Connection, ConnectionStats, CostParameters, describe_plan
from .engine import Database, EngineDivergenceError, EngineError, ReferenceEvaluator
from .types import Row, row_size_bytes, value_size_bytes

__all__ = [
    "Connection",
    "ConnectionStats",
    "CostParameters",
    "Database",
    "EngineDivergenceError",
    "EngineError",
    "ReferenceEvaluator",
    "Row",
    "describe_plan",
    "row_size_bytes",
    "value_size_bytes",
]
