"""In-memory database substrate with a simulated client/server boundary."""

from .connection import Connection, ConnectionStats, CostParameters, describe_plan
from .engine import Database, EngineDivergenceError, EngineError, ReferenceEvaluator
from .stats import (
    COLUMNAR_MIN_ROWS,
    STATS_EXACT_MAX,
    STATS_SAMPLE_SIZE,
    CardinalityEstimator,
    ColumnStats,
    Histogram,
    TableStats,
    build_sampled_table_stats,
    estimate_ndv,
)
from .types import Row, row_size_bytes, value_size_bytes

__all__ = [
    "COLUMNAR_MIN_ROWS",
    "STATS_EXACT_MAX",
    "STATS_SAMPLE_SIZE",
    "CardinalityEstimator",
    "ColumnStats",
    "Connection",
    "ConnectionStats",
    "CostParameters",
    "Database",
    "EngineDivergenceError",
    "EngineError",
    "Histogram",
    "ReferenceEvaluator",
    "Row",
    "TableStats",
    "build_sampled_table_stats",
    "estimate_ndv",
    "describe_plan",
    "row_size_bytes",
    "value_size_bytes",
]
