"""Simulated client/server database connection.

The paper's experiments (5–8) measure end-to-end time and network data
transfer of database applications.  This module reproduces the *client
boundary*: every ``executeQuery`` pays one network round trip, result rows
pay a per-row and per-byte transfer cost, and the server pays a per-row
scan/processing cost.  The clock is deterministic (simulated milliseconds),
so experiment shapes are reproducible independent of host load; wall time is
additionally measured by the pytest-benchmark harness.

Defaults are calibrated to a LAN client/server pair similar to the paper's
testbed (client and MySQL server on one machine): ~0.35 ms per round trip,
~100 MB/s effective transfer, and a light per-row server cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..algebra import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    OuterApply,
    Project,
    RelExpr,
    Select,
    Sort,
    Table,
    walk_relational,
)
from .engine import Database
from .physical import total_scanned
from .types import Row, row_size_bytes


@dataclass
class CostParameters:
    """Tunable knobs of the simulated network and server."""

    round_trip_ms: float = 0.35
    bytes_per_ms: float = 100_000.0
    per_result_row_ms: float = 0.0008
    per_scanned_row_ms: float = 0.0004
    per_query_overhead_ms: float = 0.05


@dataclass
class ConnectionStats:
    """Accumulated accounting for one connection."""

    queries_executed: int = 0
    round_trips: int = 0
    rows_transferred: int = 0
    bytes_transferred: int = 0
    rows_scanned: int = 0
    simulated_time_ms: float = 0.0
    query_log: list[str] = field(default_factory=list)

    def snapshot(self) -> dict[str, Any]:
        return {
            "queries_executed": self.queries_executed,
            "round_trips": self.round_trips,
            "rows_transferred": self.rows_transferred,
            "bytes_transferred": self.bytes_transferred,
            "rows_scanned": self.rows_scanned,
            "simulated_time_ms": round(self.simulated_time_ms, 6),
        }


class Connection:
    """A client connection to a :class:`Database` with cost accounting."""

    def __init__(
        self,
        database: Database,
        cost: CostParameters | None = None,
        log_queries: bool = False,
    ):
        self.database = database
        self.cost = cost or CostParameters()
        self.stats = ConnectionStats()
        self._log_queries = log_queries

    def reset_stats(self) -> None:
        self.stats = ConnectionStats()

    def execute_query(
        self, query: RelExpr, params: dict[str, Any] | None = None
    ) -> list[Row]:
        """Execute a query, accounting one round trip plus transfer costs.

        With the planned engine, server-side work is charged from the
        executed physical plan's actual per-operator scan counts; the
        reference engine (no plan) falls back to the static estimate.
        """
        rows, explain = self.database.execute_explained(query, params)
        if explain is not None:
            scanned = total_scanned(explain)
        else:
            scanned = self._estimate_scanned_rows(query)
        transferred_bytes = sum(row_size_bytes(row) for row in rows)

        self.stats.queries_executed += 1
        self.stats.round_trips += 1
        self.stats.rows_transferred += len(rows)
        self.stats.bytes_transferred += transferred_bytes
        self.stats.rows_scanned += scanned
        self.stats.simulated_time_ms += (
            self.cost.round_trip_ms
            + self.cost.per_query_overhead_ms
            + scanned * self.cost.per_scanned_row_ms
            + len(rows) * self.cost.per_result_row_ms
            + transferred_bytes / self.cost.bytes_per_ms
        )
        if self._log_queries:
            self.stats.query_log.append(str(query))
        return rows

    def ship_temp_table(self, name: str, rows: list[Row]) -> None:
        """Create a temporary table server-side from client data.

        Paper Section 2: when a loop iterates a collection not derived from
        a query, "it is possible to create a temporary table at the
        database with the contents of the collection".  Costs one round
        trip plus the rows' transfer.
        """
        columns: list[str] = []
        for row in rows:
            for column in row:
                if "." not in column and column not in columns:
                    columns.append(column)
        self.database.create_table(name, columns or ["val"])
        self.database.insert_many(name, rows)

        shipped = sum(row_size_bytes(row) for row in rows)
        self.stats.round_trips += 1
        self.stats.queries_executed += 1
        self.stats.bytes_transferred += shipped
        self.stats.simulated_time_ms += (
            self.cost.round_trip_ms
            + self.cost.per_query_overhead_ms
            + shipped / self.cost.bytes_per_ms
            + len(rows) * self.cost.per_result_row_ms
        )

    def _estimate_scanned_rows(self, query: RelExpr) -> int:
        """Server-side work estimate: sum of base-table cardinalities.

        Joins over indexes would scan less; the shape-level takeaway (server
        work grows with inputs, not with what crosses the wire) is preserved.
        """
        scanned = 0
        for node in walk_relational(query):
            if isinstance(node, Table):
                scanned += self.database.stats(node.name).row_count
            elif isinstance(node, OuterApply):
                # The applied side runs once per outer row: charge it again
                # (its base tables are counted once by the walk) scaled by
                # the outer cardinality estimate.
                outer_rows = self._estimate_scanned_rows(node.left)
                inner_tables = [
                    t for t in walk_relational(node.right) if isinstance(t, Table)
                ]
                for table in inner_tables:
                    # With the index a real server would use, each probe is
                    # logarithmic; approximate with a small constant per row.
                    scanned += max(1, outer_rows // 10)
        return scanned


def describe_plan(query: RelExpr) -> str:
    """One-line description of a query's operator mix (used in reports)."""
    counts: dict[str, int] = {}
    for node in walk_relational(query):
        label = {
            Table: "scan",
            Select: "σ",
            Project: "π",
            Join: "⋈",
            Aggregate: "γ",
            Sort: "τ",
            Distinct: "δ",
            Limit: "limit",
            OuterApply: "apply",
        }.get(type(node))
        if label:
            counts[label] = counts.get(label, 0) + 1
    return ", ".join(f"{k}×{v}" for k, v in sorted(counts.items()))
