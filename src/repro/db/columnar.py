"""Columnar batch-at-a-time execution for the scan→filter→project→aggregate
hot path.

Row-at-a-time execution pays a per-row toll the hot paths never need: every
scanned row is copied into a fresh dict with alias-qualified keys, and every
predicate/aggregate argument is re-evaluated by a recursive tree walk with
per-node ``isinstance`` dispatch.  This module executes the same plans over
*column arrays* instead:

* :meth:`Database.columns` caches each base table transposed into
  ``{column: [values...]}`` arrays (invalidated by the same dirty-marking
  that rebuilds hash indexes), so repeated queries share one transposition;
* scalar expressions are evaluated **vector-at-a-time** (one tight list
  comprehension per operator node instead of one tree walk per row);
* a selection predicate produces a **selection vector** (the list of
  passing row indices); downstream stages gather only the columns they
  actually reference, restricted to selected rows;
* the pipeline head folds aggregates with per-function loops over the
  gathered arrays, or materializes result rows only at the row↔column
  boundary — hash joins and every other Volcano operator upstream are
  untouched and keep consuming ordinary row dicts.

The golden rule still applies: a :class:`ColumnarPipeline` must produce
*exactly* the reference evaluator's rows, values, and order.  Everything
row-order-sensitive (group first-seen order, emission order, NULL
semantics, ``0 + value`` summation) mirrors the row operators verbatim, and
the planner only lowers to a pipeline when every expression is in the
vectorizable subset (no subqueries, functions, or CASE) and every column
reference provably resolves inside the scanned table.  One documented
corner remains: expressions are evaluated column-by-column, so when *both*
engines raise a type error the raising row can differ — but whether an
error occurs is identical because the reference evaluates both sides of
every AND/OR too.

The **adaptive switch** has two layers: at plan time the Volcano search
only considers a pipeline when the table's statistics put it at or above
:data:`~repro.db.stats.COLUMNAR_MIN_ROWS`; at run time the pipeline
re-checks the live row count and delegates to its row-at-a-time
``fallback`` plan below the threshold (a safety net for plans executed
around the statistics cache).
"""

from __future__ import annotations

import operator
from typing import Any, Iterator

from ..algebra import (
    Aggregate,
    BinOp,
    Col,
    Lit,
    Param,
    Project,
    ScalarExpr,
    UnOp,
    walk_scalar,
)
from .engine import EngineError, _hashable, _like_regex
from .physical import ExecContext, PhysicalOp
from .types import Row, sql_and, sql_compare, sql_not, sql_or

#: Binary operators the vector evaluator implements (identically to the
#: reference's scalar rules).
_ALLOWED_BINOPS = frozenset(
    {"AND", "OR", "=", "!=", "<", ">", "<=", ">=", "+", "-", "*", "/", "%",
     "||", "LIKE"}
)

_CMP = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


# ----------------------------------------------------------------------
# Plan-time support checks


def supported_expr(expr: ScalarExpr, alias: str, columns: set[str]) -> bool:
    """True when ``expr`` is vectorizable over a scan of one table.

    Requires every node to be in the vector evaluator's subset and every
    column reference to resolve *strictly* against the scan's row (bare
    name, or qualified by the scan alias) — the condition under which a
    merged outer row can never divert the lookup, so batch evaluation
    against the raw columns is exact.
    """
    for node in walk_scalar(expr):
        if isinstance(node, (Lit, Param)):
            continue
        if isinstance(node, Col):
            if node.name == "*" or node.name not in columns:
                return False
            if node.qualifier is not None and node.qualifier != alias:
                return False
            continue
        if isinstance(node, BinOp):
            if node.op.upper() not in _ALLOWED_BINOPS:
                return False
            continue
        if isinstance(node, UnOp):
            if node.op.upper() not in ("NOT", "-"):
                return False
            continue
        return False  # Func, CaseWhen, ExistsExpr, ScalarSubquery, unknown
    return True


def used_columns(exprs) -> set[str]:
    """Column names referenced by any of ``exprs``."""
    used: set[str] = set()
    for expr in exprs:
        used.update(
            node.name for node in walk_scalar(expr) if isinstance(node, Col)
        )
    return used


# ----------------------------------------------------------------------
# Vector evaluation
#
# A vectorized result is a tag pair: ``("c", value)`` for a broadcast
# constant, ``("v", [values...])`` for a per-row vector.  Constants stay
# scalar through as many operators as possible so ``col > :p`` compiles to
# a single comprehension against the raw column array.


def _veval(expr: ScalarExpr, cols: dict, params: dict) -> tuple[str, Any]:
    if isinstance(expr, Lit):
        return "c", expr.value
    if isinstance(expr, Col):
        return "v", cols[expr.name]
    if isinstance(expr, Param):
        if expr.name not in params:
            raise EngineError(f"unbound parameter :{expr.name}")
        return "c", params[expr.name]
    if isinstance(expr, BinOp):
        return _veval_binop(expr, cols, params)
    if isinstance(expr, UnOp):
        op = expr.op.upper()
        kind, data = _veval(expr.operand, cols, params)
        if op == "NOT":
            if kind == "c":
                return "c", sql_not(data)
            return "v", [sql_not(v) for v in data]
        if op == "-":
            if kind == "c":
                return "c", None if data is None else -data
            return "v", [None if v is None else -v for v in data]
        raise EngineError(f"unknown unary operator {expr.op!r}")
    raise EngineError(f"cannot vectorize {type(expr).__name__}")


def _veval_binop(expr: BinOp, cols: dict, params: dict) -> tuple[str, Any]:
    op = expr.op.upper()
    lk, lv = _veval(expr.left, cols, params)
    rk, rv = _veval(expr.right, cols, params)

    if op == "AND":
        if lk == "c" and rk == "c":
            return "c", sql_and(lv, rv)
        if lk == "c":
            return "v", [sql_and(lv, b) for b in rv]
        if rk == "c":
            return "v", [sql_and(a, rv) for a in lv]
        return "v", [sql_and(a, b) for a, b in zip(lv, rv)]
    if op == "OR":
        if lk == "c" and rk == "c":
            return "c", sql_or(lv, rv)
        if lk == "c":
            return "v", [sql_or(lv, b) for b in rv]
        if rk == "c":
            return "v", [sql_or(a, rv) for a in lv]
        return "v", [sql_or(a, b) for a, b in zip(lv, rv)]

    fn = _CMP.get(op)
    if fn is None:
        fn = _ARITH.get(op)
    if fn is not None:
        if lk == "c" and rk == "c":
            if op in _CMP:
                return "c", sql_compare(op, lv, rv)
            return "c", None if lv is None or rv is None else fn(lv, rv)
        if lk == "c":
            if lv is None:
                return "c", None
            a = lv
            return "v", [None if b is None else fn(a, b) for b in rv]
        if rk == "c":
            if rv is None:
                return "c", None
            b = rv
            return "v", [None if a is None else fn(a, b) for a in lv]
        return "v", [
            None if a is None or b is None else fn(a, b) for a, b in zip(lv, rv)
        ]

    if op == "||":
        if lk == "c" and rk == "c":
            return "c", None if lv is None or rv is None else str(lv) + str(rv)
        if lk == "c":
            if lv is None:
                return "c", None
            a = str(lv)
            return "v", [None if b is None else a + str(b) for b in rv]
        if rk == "c":
            if rv is None:
                return "c", None
            b = str(rv)
            return "v", [None if a is None else str(a) + b for a in lv]
        return "v", [
            None if a is None or b is None else str(a) + str(b)
            for a, b in zip(lv, rv)
        ]

    if op == "LIKE":
        if rk == "c":
            if rv is None:
                return "c", None
            regex = _like_regex(str(rv))
            match = regex.fullmatch
            if lk == "c":
                return "c", None if lv is None else match(str(lv)) is not None
            return "v", [
                None if a is None else match(str(a)) is not None for a in lv
            ]
        if lk == "c":
            if lv is None:
                return "c", None
            a = str(lv)
            return "v", [
                None
                if b is None
                else _like_regex(str(b)).fullmatch(a) is not None
                for b in rv
            ]
        return "v", [
            None
            if a is None or b is None
            else _like_regex(str(b)).fullmatch(str(a)) is not None
            for a, b in zip(lv, rv)
        ]

    raise EngineError(f"unknown binary operator {expr.op!r}")


def _broadcast(kind: str, data, n: int) -> list:
    return data if kind == "v" else [data] * n


# ----------------------------------------------------------------------
# Grouping and folds


def _group_ids(vec: list) -> tuple[list[int], list]:
    """Assign a dense group id per row; returns (ids, first-seen keys)."""
    gid: dict = {}
    gids: list[int] = []
    get = gid.get
    append = gids.append
    try:
        for v in vec:
            g = get(v, -1)
            if g < 0:
                g = gid[v] = len(gid)
            append(g)
    except TypeError:  # unhashable group value: retry via _hashable
        gid.clear()
        gids.clear()
        get = gid.get
        append = gids.append
        for v in vec:
            h = _hashable(v)
            g = get(h, -1)
            if g < 0:
                g = gid[h] = len(gid)
            append(g)
    return gids, list(gid)


def _group_ids_multi(vecs: list[list]) -> tuple[list[int], list]:
    gid: dict = {}
    gids: list[int] = []
    try:
        for key in zip(*vecs):
            g = gid.get(key, -1)
            if g < 0:
                g = gid[key] = len(gid)
            gids.append(g)
    except TypeError:
        gid.clear()
        gids.clear()
        for key in zip(*vecs):
            h = tuple(_hashable(v) for v in key)
            g = gid.get(h, -1)
            if g < 0:
                g = gid[h] = len(gid)
            gids.append(g)
    return gids, list(gid)


def _fold(func: str, gids: list[int], ngroups: int, vec: list) -> list:
    """Fold one aggregate over grouped values.  Mirrors ``_AggState``:
    NULLs are skipped, SUM starts from ``0 + value`` (so non-summable types
    raise the reference's TypeError), AVG divides with true division."""
    if func == "count":
        counts = [0] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                counts[g] += 1
        return counts
    if func == "sum":
        totals: list = [None] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                t = totals[g]
                totals[g] = 0 + v if t is None else t + v
        return totals
    if func == "min":
        best: list = [None] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                b = best[g]
                if b is None or v < b:
                    best[g] = v
        return best
    if func == "max":
        best = [None] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                b = best[g]
                if b is None or v > b:
                    best[g] = v
        return best
    if func == "avg":
        totals = [None] * ngroups
        counts = [0] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                counts[g] += 1
                t = totals[g]
                totals[g] = 0 + v if t is None else t + v
        return [
            None if c == 0 else t / c for t, c in zip(totals, counts)
        ]
    raise EngineError(f"unknown aggregate {func!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# The pipeline operator


class ColumnarPipeline(PhysicalOp):
    """Columnar execution of ``[γ|π|·] ∘ [σ|·] ∘ scan(T)``.

    ``head`` is ``("aggregate", Aggregate)``, ``("project", Project)``, or
    ``("filter", None)`` (emit the filtered scan rows themselves).  The
    row↔column boundary sits at this operator's output: whatever consumes
    it (a hash join's build side, a sort, the client) sees ordinary row
    dicts, bit-identical to the row-at-a-time plan's.

    ``fallback`` is the equivalent row-at-a-time plan, taken when the live
    table is below ``min_rows`` (the runtime half of the adaptive switch).
    """

    label = "Columnar"

    def __init__(
        self,
        name: str,
        alias: str | None,
        table_columns: tuple[str, ...],
        pred: ScalarExpr | None,
        head: tuple[str, Any],
        fallback: PhysicalOp,
        min_rows: int,
    ):
        self.name = name
        self.alias = alias or name
        self.table_columns = tuple(table_columns)
        self.pred = pred
        self.head_kind, self.head_node = head
        self.fallback = fallback
        self.min_rows = min_rows
        #: Columns the post-selection stages read (gathered via the
        #: selection vector; everything else is never touched).
        if self.head_kind == "aggregate":
            node = self.head_node
            exprs = list(node.group_by) + [
                item.call.arg for item in node.aggs if item.call.arg is not None
            ]
            self.head_columns = used_columns(exprs)
        elif self.head_kind == "project":
            self.head_columns = used_columns(
                item.expr for item in self.head_node.items
            )
        else:
            self.head_columns = set(self.table_columns)

    def children(self) -> tuple[PhysicalOp, ...]:
        return ()

    def detail(self) -> str:
        stages = [f"scan {self.name}"]
        if self.alias != self.name:
            stages[0] += f" AS {self.alias}"
        if self.pred is not None:
            stages.append(f"σ[{self.pred}]")
        if self.head_kind == "aggregate":
            node = self.head_node
            groups = ", ".join(str(g) for g in node.group_by)
            calls = ", ".join(str(a) for a in node.aggs)
            stages.append(f"γ[{groups}; {calls}]")
        elif self.head_kind == "project":
            stages.append(
                "π[" + ", ".join(str(i) for i in self.head_node.items) + "]"
            )
        return " → ".join(stages) + f" (min_rows={self.min_rows})"

    def scanned_rows(self, ctx: ExecContext) -> int:
        return ctx.probed.get(id(self), 0)

    # ------------------------------------------------------------------

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        db = ctx.db
        rows = db.rows(self.name)
        n = len(rows)
        if n < self.min_rows:
            # Adaptive switch, runtime layer: tiny inputs take the cheap
            # row-at-a-time path.
            yield from self.fallback.execute(ctx, outer)
            return
        cols = db.columns(self.name)
        ctx.probed[id(self)] = ctx.probed.get(id(self), 0) + n
        params = ctx.params

        sel: list[int] | None = None  # None = every row selected
        if self.pred is not None:
            kind, data = _veval(self.pred, cols, params)
            if kind == "c":
                if data is not True:
                    sel = []
            else:
                sel = [i for i, v in enumerate(data) if v is True]

        if self.head_kind == "filter":
            yield from self._emit_scan_rows(rows, sel)
            return

        # Gather only the columns the head reads, restricted to selected
        # rows — this is also what keeps error behavior aligned with the
        # reference, which never evaluates head expressions on filtered-out
        # rows.
        if sel is None:
            head_cols, m = cols, n
        else:
            head_cols = {
                name: [column[i] for i in sel]
                for name, column in cols.items()
                if name in self.head_columns
            }
            m = len(sel)

        if self.head_kind == "aggregate":
            yield from self._aggregate(head_cols, m, params)
        else:
            yield from self._project(head_cols, cols, sel, m, params)

    # ------------------------------------------------------------------

    def _emit_scan_rows(self, rows: list[Row], sel: list[int] | None):
        """Row boundary for filter-only pipelines: emit exactly what
        ``FilterOp(SeqScan)`` would."""
        alias = self.alias
        indices = range(len(rows)) if sel is None else sel
        for i in indices:
            row = rows[i]
            copy = dict(row)
            for column, value in row.items():
                copy[f"{alias}.{column}"] = value
            yield copy

    def _project(self, head_cols, cols, sel, m: int, params):
        node: Project = self.head_node
        outputs = []
        for item in node.items:
            kind, data = _veval(item.expr, head_cols, params)
            outputs.append((item.output_name, kind, data))
        alias = self.alias
        qualified = [(f"{alias}.{c}", cols[c]) for c in self.table_columns]
        indices = range(m) if sel is None else sel
        for j, src in enumerate(indices):
            result: Row = {}
            for name, kind, data in outputs:
                result[name] = data if kind == "c" else data[j]
            # Alias-qualified source columns pass through invisibly —
            # mirrors the reference's _project_row setdefault loop.
            for qname, column in qualified:
                if qname not in result:
                    result[qname] = column[src]
            yield result

    def _aggregate(self, head_cols, m: int, params):
        node: Aggregate = self.head_node

        if not node.group_by:
            result: Row = {}
            zeros = [0] * m
            for item in node.aggs:
                call = item.call
                if call.arg is None:  # COUNT(*)
                    result[item.output_name] = m
                    continue
                kind, data = _veval(call.arg, head_cols, params)
                vec = _broadcast(kind, data, m)
                result[item.output_name] = _fold(call.func, zeros, 1, vec)[0]
            yield result
            return

        group_vecs = [
            _broadcast(*_veval(g, head_cols, params), m) for g in node.group_by
        ]
        if len(group_vecs) == 1:
            gids, keys = _group_ids(group_vecs[0])
            single = True
        else:
            gids, keys = _group_ids_multi(group_vecs)
            single = False
        ngroups = len(keys)

        folded = []
        for item in node.aggs:
            call = item.call
            if call.arg is None:
                counts = [0] * ngroups
                for g in gids:
                    counts[g] += 1
                folded.append(counts)
                continue
            kind, data = _veval(call.arg, head_cols, params)
            folded.append(_fold(call.func, gids, ngroups, _broadcast(kind, data, m)))

        names = [
            g.name if isinstance(g, Col) else str(g) for g in node.group_by
        ]
        items = [item.output_name for item in node.aggs]
        for gi in range(ngroups):
            row: Row = {}
            if single:
                row[names[0]] = keys[gi]
            else:
                for name, value in zip(names, keys[gi]):
                    row[name] = value
            for name, values in zip(items, folded):
                row[name] = values[gi]
            yield row
