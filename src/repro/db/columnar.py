"""Columnar batch-at-a-time execution: scan→filter→project/aggregate
pipelines, sort/top-N heads, and vectorized hash/semi/anti joins.

Row-at-a-time execution pays a per-row toll the hot paths never need: every
scanned row is copied into a fresh dict with alias-qualified keys, and every
predicate/aggregate argument is re-evaluated by a recursive tree walk with
per-node ``isinstance`` dispatch.  This module executes the same plans over
*column arrays* instead:

* :meth:`Database.columns` caches each base table transposed into
  ``{column: [values...]}`` arrays (invalidated by the same dirty-marking
  that rebuilds hash indexes), so repeated queries share one transposition;
* scalar expressions are evaluated **vector-at-a-time** (one tight list
  comprehension per operator node instead of one tree walk per row);
* a selection predicate produces a **selection vector** (the list of
  passing row indices); downstream stages gather only the columns they
  actually reference, restricted to selected rows;
* the pipeline head folds aggregates with per-function loops over the
  gathered arrays, sorts/top-Ns by argsorting key vectors, or
  materializes result rows only at the row↔column boundary — every
  non-columnar Volcano operator upstream is untouched and keeps
  consuming ordinary row dicts;
* :class:`ColumnarHashJoin` and :class:`ColumnarSemiJoin` run the row
  hash-join phase order (build right, probe left in storage order) over
  key *vectors*, emitting joined rows straight from the column arrays.

The golden rule still applies: every columnar operator must produce
*exactly* the reference evaluator's rows, values, and order.  Everything
row-order-sensitive (group first-seen order, emission order, NULL join
keys, ``{**right, **left}`` merge and left-join padding, ``0 + value``
summation) mirrors the row operators verbatim, and the planner only
lowers to a columnar operator when every expression is in the
vectorizable subset (scalar functions in the shared ``_apply_func``
vocabulary and ``CASE WHEN`` included; subqueries, star, and unknown
functions excluded) and every column reference provably resolves inside
the scanned table(s).  One documented
corner remains: expressions are evaluated column-by-column, so when *both*
engines raise a type error the raising row can differ — but whether an
error occurs is identical because the reference evaluates both sides of
every AND/OR too.

The **adaptive switch** has two layers: at plan time the Volcano search
only considers a pipeline when the table's statistics put it at or above
:data:`~repro.db.stats.COLUMNAR_MIN_ROWS`; at run time the pipeline
re-checks the live row count and delegates to its row-at-a-time
``fallback`` plan below the threshold (a safety net for plans executed
around the statistics cache).
"""

from __future__ import annotations

import operator
from heapq import nsmallest
from typing import Any, Iterator

from ..algebra import (
    Aggregate,
    BinOp,
    CaseWhen,
    Col,
    Func,
    Join,
    Lit,
    Param,
    Project,
    ScalarExpr,
    Sort,
    UnOp,
    walk_scalar,
)
from .engine import EngineError, _apply_func, _hashable, _like_regex
from .physical import ExecContext, PhysicalOp, _tuples_equal
from .types import (
    Row,
    descending_key,
    nulls_last_key,
    sql_and,
    sql_compare,
    sql_not,
    sql_or,
)

#: Binary operators the vector evaluator implements (identically to the
#: reference's scalar rules).
_ALLOWED_BINOPS = frozenset(
    {"AND", "OR", "=", "!=", "<", ">", "<=", ">=", "+", "-", "*", "/", "%",
     "||", "LIKE"}
)

_CMP = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}

#: Scalar functions the vector evaluator accepts — exactly the set
#: :func:`repro.db.engine._apply_func` implements, which both engines share,
#: so per-element application can never disagree with the reference.
_VECTOR_FUNCS = frozenset(
    {"ISNULL", "COALESCE", "CONCAT", "GREATEST", "LEAST", "UPPER", "LOWER",
     "LENGTH", "ABS", "SUBSTRING", "TRIM", "ROUND"}
)


# ----------------------------------------------------------------------
# Plan-time support checks


def supported_expr(expr: ScalarExpr, alias: str, columns: set[str]) -> bool:
    """True when ``expr`` is vectorizable over a scan of one table.

    Requires every node to be in the vector evaluator's subset and every
    column reference to resolve *strictly* against the scan's row (bare
    name, or qualified by the scan alias) — the condition under which a
    merged outer row can never divert the lookup, so batch evaluation
    against the raw columns is exact.
    """
    for node in walk_scalar(expr):
        if isinstance(node, (Lit, Param)):
            continue
        if isinstance(node, Col):
            if node.name == "*" or node.name not in columns:
                return False
            if node.qualifier is not None and node.qualifier != alias:
                return False
            continue
        if isinstance(node, BinOp):
            if node.op.upper() not in _ALLOWED_BINOPS:
                return False
            continue
        if isinstance(node, UnOp):
            if node.op.upper() not in ("NOT", "-"):
                return False
            continue
        if isinstance(node, Func):
            if node.name.upper() not in _VECTOR_FUNCS:
                return False
            continue
        if isinstance(node, CaseWhen):
            continue  # cond/branches are visited by walk_scalar
        return False  # ExistsExpr, ScalarSubquery, unknown
    return True


def supported_join_expr(
    expr: ScalarExpr,
    lalias: str,
    lcols: set[str],
    ralias: str,
    rcols: set[str],
) -> bool:
    """True when ``expr`` is vectorizable over a two-table combined row.

    The operator subset matches :func:`supported_expr`; every column
    reference must resolve *strictly* against one of the two scans exactly
    as it would on the reference's ``{**right, **left}`` combined row —
    qualified by one of the scan aliases, or a bare name present in either
    table (left winning collisions, which :func:`residual_layout` mirrors).
    """
    for node in walk_scalar(expr):
        if isinstance(node, (Lit, Param)):
            continue
        if isinstance(node, Col):
            if node.name == "*":
                return False
            if node.qualifier is not None:
                if node.qualifier == lalias and node.name in lcols:
                    continue
                if node.qualifier == ralias and node.name in rcols:
                    continue
                return False
            if node.name in lcols or node.name in rcols:
                continue
            return False
        if isinstance(node, BinOp):
            if node.op.upper() not in _ALLOWED_BINOPS:
                return False
            continue
        if isinstance(node, UnOp):
            if node.op.upper() not in ("NOT", "-"):
                return False
            continue
        if isinstance(node, Func):
            if node.name.upper() not in _VECTOR_FUNCS:
                return False
            continue
        if isinstance(node, CaseWhen):
            continue
        return False
    return True


def residual_layout(
    expr: ScalarExpr | None,
    lalias: str,
    lcols: set[str],
    ralias: str,
    rcols: set[str],
) -> dict[str, tuple[str, str]]:
    """Map each namespace key a residual predicate reads to its source
    ``(side, column)``, mirroring the combined-row lookup order: a qualified
    reference binds to the matching alias (left first — the reference's
    ``{**right, **left}`` lets left win same-alias collisions), a bare one
    to the left table when it has the column, else the right."""
    layout: dict[str, tuple[str, str]] = {}
    if expr is None:
        return layout
    for node in walk_scalar(expr):
        if not isinstance(node, Col):
            continue
        if node.qualifier is not None:
            key = f"{node.qualifier}.{node.name}"
            side = "left" if node.qualifier == lalias else "right"
        else:
            key = node.name
            side = "left" if node.name in lcols else "right"
        layout[key] = (side, node.name)
    return layout


def used_columns(exprs) -> set[str]:
    """Column names referenced by any of ``exprs``."""
    used: set[str] = set()
    for expr in exprs:
        used.update(
            node.name for node in walk_scalar(expr) if isinstance(node, Col)
        )
    return used


# ----------------------------------------------------------------------
# Vector evaluation
#
# A vectorized result is a tag pair: ``("c", value)`` for a broadcast
# constant, ``("v", [values...])`` for a per-row vector.  Constants stay
# scalar through as many operators as possible so ``col > :p`` compiles to
# a single comprehension against the raw column array.


def _veval(expr: ScalarExpr, cols: dict, params: dict) -> tuple[str, Any]:
    if isinstance(expr, Lit):
        return "c", expr.value
    if isinstance(expr, Col):
        if expr.qualifier is not None:
            # Join namespaces carry alias-qualified keys; single-table
            # namespaces hold bare names only (the support check pinned the
            # qualifier to the scan alias, so falling through is exact).
            hit = cols.get(f"{expr.qualifier}.{expr.name}")
            if hit is not None:
                return "v", hit
        return "v", cols[expr.name]
    if isinstance(expr, Param):
        if expr.name not in params:
            raise EngineError(f"unbound parameter :{expr.name}")
        return "c", params[expr.name]
    if isinstance(expr, BinOp):
        return _veval_binop(expr, cols, params)
    if isinstance(expr, UnOp):
        op = expr.op.upper()
        kind, data = _veval(expr.operand, cols, params)
        if op == "NOT":
            if kind == "c":
                return "c", sql_not(data)
            return "v", [sql_not(v) for v in data]
        if op == "-":
            if kind == "c":
                return "c", None if data is None else -data
            return "v", [None if v is None else -v for v in data]
        raise EngineError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Func):
        parts = [_veval(a, cols, params) for a in expr.args]
        name = expr.name
        if all(kind == "c" for kind, _ in parts):
            return "c", _apply_func(name, [value for _, value in parts])
        n = max(len(data) for kind, data in parts if kind == "v")
        vecs = [_broadcast(kind, data, n) for kind, data in parts]
        return "v", [
            _apply_func(name, [vec[i] for vec in vecs]) for i in range(n)
        ]
    if isinstance(expr, CaseWhen):
        return _veval_case(expr, cols, params)
    raise EngineError(f"cannot vectorize {type(expr).__name__}")


def _veval_case(expr: CaseWhen, cols: dict, params: dict) -> tuple[str, Any]:
    """CASE WHEN with reference-identical branch evaluation: each branch is
    evaluated only on the partition of rows that takes it (the reference
    never evaluates the untaken branch), by gathering the branch's columns
    through the partition's index list."""
    kind, cond = _veval(expr.cond, cols, params)
    if kind == "c":
        branch = expr.if_true if cond is True else expr.if_false
        return _veval(branch, cols, params)
    n = len(cond)
    true_idx = [i for i, v in enumerate(cond) if v is True]
    if len(true_idx) == n:
        return _veval(expr.if_true, cols, params)
    if not true_idx:
        return _veval(expr.if_false, cols, params)
    taken = set(true_idx)
    false_idx = [i for i in range(n) if i not in taken]
    out: list = [None] * n
    for branch, idx in ((expr.if_true, true_idx), (expr.if_false, false_idx)):
        sub = _gather_cols(branch, cols, idx)
        kind, data = _veval(branch, sub, params)
        if kind == "c":
            for i in idx:
                out[i] = data
        else:
            for i, value in zip(idx, data):
                out[i] = value
    return "v", out


def _gather_cols(expr: ScalarExpr, cols: dict, idx: list[int]) -> dict:
    """Restrict a column namespace to the rows in ``idx``, keeping every
    (bare or qualified) key the expression's column references resolve to."""
    sub: dict = {}
    for node in walk_scalar(expr):
        if not isinstance(node, Col):
            continue
        keys = [node.name]
        if node.qualifier is not None:
            keys.insert(0, f"{node.qualifier}.{node.name}")
        for key in keys:
            if key in sub:
                break
            column = cols.get(key)
            if column is not None:
                sub[key] = [column[i] for i in idx]
                break
    return sub


def _veval_binop(expr: BinOp, cols: dict, params: dict) -> tuple[str, Any]:
    op = expr.op.upper()
    lk, lv = _veval(expr.left, cols, params)
    rk, rv = _veval(expr.right, cols, params)

    if op == "AND":
        if lk == "c" and rk == "c":
            return "c", sql_and(lv, rv)
        if lk == "c":
            return "v", [sql_and(lv, b) for b in rv]
        if rk == "c":
            return "v", [sql_and(a, rv) for a in lv]
        return "v", [sql_and(a, b) for a, b in zip(lv, rv)]
    if op == "OR":
        if lk == "c" and rk == "c":
            return "c", sql_or(lv, rv)
        if lk == "c":
            return "v", [sql_or(lv, b) for b in rv]
        if rk == "c":
            return "v", [sql_or(a, rv) for a in lv]
        return "v", [sql_or(a, b) for a, b in zip(lv, rv)]

    fn = _CMP.get(op)
    if fn is None:
        fn = _ARITH.get(op)
    if fn is not None:
        if lk == "c" and rk == "c":
            if op in _CMP:
                return "c", sql_compare(op, lv, rv)
            return "c", None if lv is None or rv is None else fn(lv, rv)
        if lk == "c":
            if lv is None:
                return "c", None
            a = lv
            return "v", [None if b is None else fn(a, b) for b in rv]
        if rk == "c":
            if rv is None:
                return "c", None
            b = rv
            return "v", [None if a is None else fn(a, b) for a in lv]
        return "v", [
            None if a is None or b is None else fn(a, b) for a, b in zip(lv, rv)
        ]

    if op == "||":
        if lk == "c" and rk == "c":
            return "c", None if lv is None or rv is None else str(lv) + str(rv)
        if lk == "c":
            if lv is None:
                return "c", None
            a = str(lv)
            return "v", [None if b is None else a + str(b) for b in rv]
        if rk == "c":
            if rv is None:
                return "c", None
            b = str(rv)
            return "v", [None if a is None else str(a) + b for a in lv]
        return "v", [
            None if a is None or b is None else str(a) + str(b)
            for a, b in zip(lv, rv)
        ]

    if op == "LIKE":
        if rk == "c":
            if rv is None:
                return "c", None
            regex = _like_regex(str(rv))
            match = regex.fullmatch
            if lk == "c":
                return "c", None if lv is None else match(str(lv)) is not None
            return "v", [
                None if a is None else match(str(a)) is not None for a in lv
            ]
        if lk == "c":
            if lv is None:
                return "c", None
            a = str(lv)
            return "v", [
                None
                if b is None
                else _like_regex(str(b)).fullmatch(a) is not None
                for b in rv
            ]
        return "v", [
            None
            if a is None or b is None
            else _like_regex(str(b)).fullmatch(str(a)) is not None
            for a, b in zip(lv, rv)
        ]

    raise EngineError(f"unknown binary operator {expr.op!r}")


def _broadcast(kind: str, data, n: int) -> list:
    return data if kind == "v" else [data] * n


def _selection(pred, cols: dict, params: dict) -> list[int] | None:
    """Evaluate a selection predicate over full-length columns; returns the
    selection vector, or ``None`` meaning every row is selected."""
    if pred is None:
        return None
    kind, data = _veval(pred, cols, params)
    if kind == "c":
        return None if data is True else []
    return [i for i, v in enumerate(data) if v is True]


# ----------------------------------------------------------------------
# Grouping and folds


def _group_ids(vec: list) -> tuple[list[int], list]:
    """Assign a dense group id per row; returns (ids, first-seen keys)."""
    gid: dict = {}
    gids: list[int] = []
    get = gid.get
    append = gids.append
    try:
        for v in vec:
            g = get(v, -1)
            if g < 0:
                g = gid[v] = len(gid)
            append(g)
    except TypeError:  # unhashable group value: retry via _hashable
        gid.clear()
        gids.clear()
        get = gid.get
        append = gids.append
        for v in vec:
            h = _hashable(v)
            g = get(h, -1)
            if g < 0:
                g = gid[h] = len(gid)
            append(g)
    return gids, list(gid)


def _group_ids_multi(vecs: list[list]) -> tuple[list[int], list]:
    gid: dict = {}
    gids: list[int] = []
    try:
        for key in zip(*vecs):
            g = gid.get(key, -1)
            if g < 0:
                g = gid[key] = len(gid)
            gids.append(g)
    except TypeError:
        gid.clear()
        gids.clear()
        for key in zip(*vecs):
            h = tuple(_hashable(v) for v in key)
            g = gid.get(h, -1)
            if g < 0:
                g = gid[h] = len(gid)
            gids.append(g)
    return gids, list(gid)


def _fold(func: str, gids: list[int], ngroups: int, vec: list) -> list:
    """Fold one aggregate over grouped values.  Mirrors ``_AggState``:
    NULLs are skipped, SUM starts from ``0 + value`` (so non-summable types
    raise the reference's TypeError), AVG divides with true division."""
    if func == "count":
        counts = [0] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                counts[g] += 1
        return counts
    if func == "sum":
        totals: list = [None] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                t = totals[g]
                totals[g] = 0 + v if t is None else t + v
        return totals
    if func == "min":
        best: list = [None] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                b = best[g]
                if b is None or v < b:
                    best[g] = v
        return best
    if func == "max":
        best = [None] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                b = best[g]
                if b is None or v > b:
                    best[g] = v
        return best
    if func == "avg":
        totals = [None] * ngroups
        counts = [0] * ngroups
        for g, v in zip(gids, vec):
            if v is not None:
                counts[g] += 1
                t = totals[g]
                totals[g] = 0 + v if t is None else t + v
        return [
            None if c == 0 else t / c for t, c in zip(totals, counts)
        ]
    raise EngineError(f"unknown aggregate {func!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# The pipeline operator


class ColumnarPipeline(PhysicalOp):
    """Columnar execution of ``[γ|π|τ|topn|·] ∘ [σ|·] ∘ scan(T)``.

    ``head`` is ``("aggregate", Aggregate)``, ``("project", Project)``,
    ``("sort", Sort)``, ``("topn", (Sort, count))``, or ``("filter", None)``
    (emit the filtered scan rows themselves).  The sort heads order a row
    *index* permutation by vectorized key columns (a bounded ``nsmallest``
    heap for top-N) and materialize only the emitted rows.  The
    row↔column boundary sits at this operator's output: whatever consumes
    it (a hash join's build side, a sort, the client) sees ordinary row
    dicts, bit-identical to the row-at-a-time plan's.

    ``fallback`` is the equivalent row-at-a-time plan, taken when the live
    table is below ``min_rows`` (the runtime half of the adaptive switch).
    """

    label = "Columnar"

    def __init__(
        self,
        name: str,
        alias: str | None,
        table_columns: tuple[str, ...],
        pred: ScalarExpr | None,
        head: tuple[str, Any],
        fallback: PhysicalOp,
        min_rows: int,
    ):
        self.name = name
        self.alias = alias or name
        self.table_columns = tuple(table_columns)
        self.pred = pred
        self.head_kind, self.head_node = head
        self.fallback = fallback
        self.min_rows = min_rows
        #: Columns the post-selection stages read (gathered via the
        #: selection vector; everything else is never touched).
        if self.head_kind == "aggregate":
            node = self.head_node
            exprs = list(node.group_by) + [
                item.call.arg for item in node.aggs if item.call.arg is not None
            ]
            self.head_columns = used_columns(exprs)
        elif self.head_kind == "project":
            self.head_columns = used_columns(
                item.expr for item in self.head_node.items
            )
        elif self.head_kind in ("sort", "topn"):
            self.head_columns = used_columns(
                key.expr for key in self._sort_node().keys
            )
        else:
            self.head_columns = set(self.table_columns)

    def _sort_node(self) -> Sort:
        return self.head_node[0] if self.head_kind == "topn" else self.head_node

    def children(self) -> tuple[PhysicalOp, ...]:
        return ()

    def detail(self) -> str:
        stages = [f"scan {self.name}"]
        if self.alias != self.name:
            stages[0] += f" AS {self.alias}"
        if self.pred is not None:
            stages.append(f"σ[{self.pred}]")
        if self.head_kind == "aggregate":
            node = self.head_node
            groups = ", ".join(str(g) for g in node.group_by)
            calls = ", ".join(str(a) for a in node.aggs)
            stages.append(f"γ[{groups}; {calls}]")
        elif self.head_kind == "project":
            stages.append(
                "π[" + ", ".join(str(i) for i in self.head_node.items) + "]"
            )
        elif self.head_kind in ("sort", "topn"):
            keys = ", ".join(str(k) for k in self._sort_node().keys)
            if self.head_kind == "topn":
                stages.append(f"top {self.head_node[1]} by [{keys}]")
            else:
                stages.append(f"τ[{keys}]")
        return " → ".join(stages) + f" (min_rows={self.min_rows})"

    def scanned_rows(self, ctx: ExecContext) -> int:
        return ctx.probed.get(id(self), 0)

    # ------------------------------------------------------------------

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        db = ctx.db
        rows = db.rows(self.name)
        n = len(rows)
        if n < self.min_rows:
            # Adaptive switch, runtime layer: tiny inputs take the cheap
            # row-at-a-time path.
            yield from self.fallback.execute(ctx, outer)
            return
        cols = db.columns(self.name)
        ctx.probed[id(self)] = ctx.probed.get(id(self), 0) + n
        params = ctx.params

        sel: list[int] | None = None  # None = every row selected
        if self.pred is not None:
            kind, data = _veval(self.pred, cols, params)
            if kind == "c":
                if data is not True:
                    sel = []
            else:
                sel = [i for i, v in enumerate(data) if v is True]

        if self.head_kind == "filter":
            yield from self._emit_scan_rows(rows, sel)
            return

        if self.head_kind in ("sort", "topn"):
            yield from self._order(rows, cols, sel, params)
            return

        # Gather only the columns the head reads, restricted to selected
        # rows — this is also what keeps error behavior aligned with the
        # reference, which never evaluates head expressions on filtered-out
        # rows.
        if sel is None:
            head_cols, m = cols, n
        else:
            head_cols = {
                name: [column[i] for i in sel]
                for name, column in cols.items()
                if name in self.head_columns
            }
            m = len(sel)

        if self.head_kind == "aggregate":
            yield from self._aggregate(head_cols, m, params)
        else:
            yield from self._project(head_cols, cols, sel, m, params)

    # ------------------------------------------------------------------

    def _emit_scan_rows(self, rows: list[Row], sel: list[int] | None):
        """Row boundary for filter-only pipelines: emit exactly what
        ``FilterOp(SeqScan)`` would."""
        alias = self.alias
        indices = range(len(rows)) if sel is None else sel
        for i in indices:
            row = rows[i]
            copy = dict(row)
            for column, value in row.items():
                copy[f"{alias}.{column}"] = value
            yield copy

    def _order(self, rows, cols, sel, params):
        """Sort (or heap top-N) an index permutation by vectorized keys,
        then emit the scan rows in that order.

        Composite keys wrap each component exactly like the row path's
        ``_sort_key`` (``nulls_last_key`` ascending, ``descending_key``
        descending) and always compare as tuples, so tie-breaking, NULL
        placement, and comparison errors match ``SortOp``/``TopN``.  Both
        sorts are stable over the selection order, which is the scan order —
        the same input order the row operators sort.
        """
        if self.head_kind == "topn":
            node, count = self.head_node
        else:
            node, count = self.head_node, None
        m = len(rows) if sel is None else len(sel)
        if sel is None:
            key_cols = cols
        else:
            key_cols = {
                name: [column[i] for i in sel]
                for name, column in cols.items()
                if name in self.head_columns
            }
        key_vecs = []
        for key in node.keys:
            vec = _broadcast(*_veval(key.expr, key_cols, params), m)
            transform = nulls_last_key if key.ascending else descending_key
            key_vecs.append([transform(v) for v in vec])
        keys = list(zip(*key_vecs))
        if count is None or count <= 0:
            order = sorted(range(m), key=keys.__getitem__)
            if count is not None:
                order = order[:count]  # reference slice semantics for <= 0
        else:
            order = nsmallest(count, range(m), key=keys.__getitem__)
        if sel is not None:
            order = [sel[j] for j in order]
        yield from self._emit_scan_rows(rows, order)

    def _project(self, head_cols, cols, sel, m: int, params):
        node: Project = self.head_node
        outputs = []
        for item in node.items:
            kind, data = _veval(item.expr, head_cols, params)
            outputs.append((item.output_name, kind, data))
        alias = self.alias
        qualified = [(f"{alias}.{c}", cols[c]) for c in self.table_columns]
        indices = range(m) if sel is None else sel
        for j, src in enumerate(indices):
            result: Row = {}
            for name, kind, data in outputs:
                result[name] = data if kind == "c" else data[j]
            # Alias-qualified source columns pass through invisibly —
            # mirrors the reference's _project_row setdefault loop.
            for qname, column in qualified:
                if qname not in result:
                    result[qname] = column[src]
            yield result

    def _aggregate(self, head_cols, m: int, params):
        node: Aggregate = self.head_node

        if not node.group_by:
            result: Row = {}
            zeros = [0] * m
            for item in node.aggs:
                call = item.call
                if call.arg is None:  # COUNT(*)
                    result[item.output_name] = m
                    continue
                kind, data = _veval(call.arg, head_cols, params)
                vec = _broadcast(kind, data, m)
                result[item.output_name] = _fold(call.func, zeros, 1, vec)[0]
            yield result
            return

        group_vecs = [
            _broadcast(*_veval(g, head_cols, params), m) for g in node.group_by
        ]
        if len(group_vecs) == 1:
            gids, keys = _group_ids(group_vecs[0])
            single = True
        else:
            gids, keys = _group_ids_multi(group_vecs)
            single = False
        ngroups = len(keys)

        folded = []
        for item in node.aggs:
            call = item.call
            if call.arg is None:
                counts = [0] * ngroups
                for g in gids:
                    counts[g] += 1
                folded.append(counts)
                continue
            kind, data = _veval(call.arg, head_cols, params)
            folded.append(_fold(call.func, gids, ngroups, _broadcast(kind, data, m)))

        names = [
            g.name if isinstance(g, Col) else str(g) for g in node.group_by
        ]
        items = [item.output_name for item in node.aggs]
        for gi in range(ngroups):
            row: Row = {}
            if single:
                row[names[0]] = keys[gi]
            else:
                for name, value in zip(names, keys[gi]):
                    row[name] = value
            for name, values in zip(items, folded):
                row[name] = values[gi]
            yield row


# ----------------------------------------------------------------------
# Vectorized joins
#
# Both operators below keep the whole build/probe cycle on column arrays:
# each side's predicate produces a selection vector, key expressions are
# evaluated as vectors over the gathered key columns only, and output rows
# are materialized straight from the raw column arrays at emission time —
# no intermediate scan dicts exist for rows that never reach the output.
# The golden rule is unchanged: emission order (left-major, build-insertion
# bucket order), NULL-key semantics (NULL build keys excluded, NULL probe
# keys never match), left-join padding, and unhashable-key degradation all
# mirror the row operators exactly.


class ColumnarHashJoin(PhysicalOp):
    """Vectorized hash equi-join over two base-table scans.

    ``left_side``/``right_side`` are ``(table, alias, columns, pred)``
    scan descriptions; ``left_keys``/``right_keys`` the planner's parallel
    equality-conjunct sides, each vectorizable over its own scan;
    ``residual`` the remaining conjuncts, evaluated in one vector pass over
    the candidate-pair namespace described by ``layout`` (see
    :func:`residual_layout`).  ``fallback`` is the row :class:`HashJoin`,
    taken below ``min_rows`` (adaptive switch) and on unhashable build
    keys (where the row path's nested-loop degrade is the only strategy
    that preserves equality semantics).
    """

    label = "ColumnarHashJoin"

    def __init__(
        self,
        node: Join,
        left_side,
        right_side,
        left_keys,
        right_keys,
        residual,
        layout,
        fallback: PhysicalOp,
        min_rows: int,
    ):
        self.node = node
        self.left_name, self.left_alias, left_columns, self.left_pred = left_side
        (
            self.right_name,
            self.right_alias,
            right_columns,
            self.right_pred,
        ) = right_side
        self.left_columns = tuple(left_columns)
        self.right_columns = tuple(right_columns)
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.residual = residual
        self.layout = dict(layout)
        self.fallback = fallback
        self.min_rows = min_rows
        self.left_qnames = tuple(
            f"{self.left_alias}.{c}" for c in self.left_columns
        )
        self.right_qnames = tuple(
            f"{self.right_alias}.{c}" for c in self.right_columns
        )
        self.left_key_columns = used_columns(self.left_keys)
        self.right_key_columns = used_columns(self.right_keys)

    def children(self) -> tuple[PhysicalOp, ...]:
        return ()

    def detail(self) -> str:
        keys = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        text = (
            f"{self.node.kind} {self.left_name} ⋈ {self.right_name} on {keys}"
        )
        if self.residual is not None:
            text += f" residual {self.residual}"
        return text + f" (min_rows={self.min_rows})"

    def scanned_rows(self, ctx: ExecContext) -> int:
        return ctx.probed.get(id(self), 0)

    # ------------------------------------------------------------------

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        db = ctx.db
        left_rows = db.rows(self.left_name)
        right_rows = db.rows(self.right_name)
        nl, nr = len(left_rows), len(right_rows)
        if nl + nr < self.min_rows:
            yield from self.fallback.execute(ctx, outer)
            return
        params = ctx.params
        left_cols = db.columns(self.left_name)
        right_cols = db.columns(self.right_name)

        # Build (right) side first — the same phase order as the row hash
        # join, which materializes its right child before streaming left.
        rsel = _selection(self.right_pred, right_cols, params)
        ridx = range(nr) if rsel is None else rsel
        mr = nr if rsel is None else len(rsel)
        if rsel is None:
            rkey_ns = right_cols
        else:
            rkey_ns = {
                name: [column[i] for i in rsel]
                for name, column in right_cols.items()
                if name in self.right_key_columns
            }
        rkey_vecs = [
            _broadcast(*_veval(e, rkey_ns, params), mr) for e in self.right_keys
        ]
        single = len(rkey_vecs) == 1
        table: dict = {}
        try:
            if single:
                vec = rkey_vecs[0]
                for j, orig in enumerate(ridx):
                    key = vec[j]
                    if key is not None:
                        table.setdefault(key, []).append(orig)
            else:
                for j, orig in enumerate(ridx):
                    key = tuple(vec[j] for vec in rkey_vecs)
                    if not any(v is None for v in key):
                        table.setdefault(key, []).append(orig)
        except TypeError:
            # Unhashable join key: degrade exactly like the row hash join.
            yield from self.fallback.execute(ctx, outer)
            return
        ctx.probed[id(self)] = ctx.probed.get(id(self), 0) + nl + nr

        # Probe (left) side.
        lsel = _selection(self.left_pred, left_cols, params)
        lidx = range(nl) if lsel is None else lsel
        ml = nl if lsel is None else len(lsel)
        if lsel is None:
            lkey_ns = left_cols
        else:
            lkey_ns = {
                name: [column[i] for i in lsel]
                for name, column in left_cols.items()
                if name in self.left_key_columns
            }
        lkey_vecs = [
            _broadcast(*_veval(e, lkey_ns, params), ml) for e in self.left_keys
        ]

        left_emit = [(c, left_cols[c]) for c in self.left_columns] + [
            (q, left_cols[c])
            for q, c in zip(self.left_qnames, self.left_columns)
        ]
        right_emit = [(c, right_cols[c]) for c in self.right_columns] + [
            (q, right_cols[c])
            for q, c in zip(self.right_qnames, self.right_columns)
        ]
        pad_names = self.right_columns + self.right_qnames
        left_kind = self.node.kind == "left"

        def bucket_for(j: int):
            if single:
                key = lkey_vecs[0][j]
                if key is None:
                    return ()
                try:
                    return table.get(key, ())
                except TypeError:
                    rvec = rkey_vecs[0]
                    return [
                        orig
                        for jj, orig in enumerate(ridx)
                        if sql_compare("=", key, rvec[jj]) is True
                    ]
            key = tuple(vec[j] for vec in lkey_vecs)
            if any(v is None for v in key):
                return ()
            try:
                return table.get(key, ())
            except TypeError:
                return [
                    orig
                    for jj, orig in enumerate(ridx)
                    if all(
                        sql_compare("=", kv, vec[jj]) is True
                        for kv, vec in zip(key, rkey_vecs)
                    )
                ]

        if self.residual is None:
            for j, li in enumerate(lidx):
                matched = False
                for ri in bucket_for(j):
                    row = {name: column[ri] for name, column in right_emit}
                    for name, column in left_emit:
                        row[name] = column[li]
                    matched = True
                    yield row
                if left_kind and not matched:
                    row = {name: column[li] for name, column in left_emit}
                    for name in pad_names:
                        row.setdefault(name, None)
                    yield row
            return

        # Residual conjuncts: collect every candidate pair left-major (the
        # emission order), then evaluate the residual once as a vector over
        # the pair namespace instead of once per pair.
        pair_left: list[int] = []
        pair_right: list[int] = []
        spans: list[tuple[int, int, int]] = []
        for j, li in enumerate(lidx):
            start = len(pair_right)
            for ri in bucket_for(j):
                pair_left.append(li)
                pair_right.append(ri)
            spans.append((li, start, len(pair_right)))
        npairs = len(pair_right)
        ns = {
            key: [
                (left_cols if side == "left" else right_cols)[column][i]
                for i in (pair_left if side == "left" else pair_right)
            ]
            for key, (side, column) in self.layout.items()
        }
        keep = _broadcast(*_veval(self.residual, ns, params), npairs)
        for li, start, end in spans:
            matched = False
            for p in range(start, end):
                if keep[p] is True:
                    ri = pair_right[p]
                    row = {name: column[ri] for name, column in right_emit}
                    for name, column in left_emit:
                        row[name] = column[li]
                    matched = True
                    yield row
            if left_kind and not matched:
                row = {name: column[li] for name, column in left_emit}
                for name in pad_names:
                    row.setdefault(name, None)
                yield row


class ColumnarSemiJoin(PhysicalOp):
    """Vectorized hash semi/anti-join (decorrelated EXISTS) over scans.

    The build side's key tuples form a hash set assembled from key vectors;
    the probe side emits its (filtered) scan rows on membership — or
    non-membership when ``negated``.  Only built by the planner when the
    correlation produced at least one key pair: the keyless (uncorrelated)
    case stays on the row operator, whose single emptiness probe stops the
    build after one row — a short-circuit a vectorized build would lose.
    NULL build keys are excluded, NULL probe keys never match, and
    unhashable keys delegate to the row semi-join, all exactly as
    :class:`~repro.db.physical.HashSemiJoin` behaves.
    """

    label = "ColumnarSemiJoin"

    def __init__(
        self,
        child_side,
        build_side,
        outer_keys,
        inner_keys,
        negated: bool,
        fallback: PhysicalOp,
        min_rows: int,
    ):
        (
            self.child_name,
            self.child_alias,
            child_columns,
            self.child_pred,
        ) = child_side
        (
            self.build_name,
            self.build_alias,
            build_columns,
            self.build_pred,
        ) = build_side
        self.child_columns = tuple(child_columns)
        self.build_columns = tuple(build_columns)
        self.outer_keys = tuple(outer_keys)
        self.inner_keys = tuple(inner_keys)
        self.negated = negated
        self.fallback = fallback
        self.min_rows = min_rows
        self.outer_key_columns = used_columns(self.outer_keys)
        self.inner_key_columns = used_columns(self.inner_keys)
        if negated:
            self.label = "ColumnarAntiJoin"

    def children(self) -> tuple[PhysicalOp, ...]:
        return ()

    def detail(self) -> str:
        keys = ", ".join(
            f"{o} = {i}" for o, i in zip(self.outer_keys, self.inner_keys)
        )
        return (
            f"{self.child_name} ⋉ {self.build_name} on {keys}"
            f" (min_rows={self.min_rows})"
        )

    def scanned_rows(self, ctx: ExecContext) -> int:
        return ctx.probed.get(id(self), 0)

    # ------------------------------------------------------------------

    def _rows(self, ctx: ExecContext, outer: Row | None) -> Iterator[Row]:
        db = ctx.db
        child_rows = db.rows(self.child_name)
        build_rows = db.rows(self.build_name)
        nc, nb = len(child_rows), len(build_rows)
        if nc + nb < self.min_rows:
            yield from self.fallback.execute(ctx, outer)
            return
        params = ctx.params
        build_cols = db.columns(self.build_name)

        bsel = _selection(self.build_pred, build_cols, params)
        mb = nb if bsel is None else len(bsel)
        if bsel is None:
            bkey_ns = build_cols
        else:
            bkey_ns = {
                name: [column[i] for i in bsel]
                for name, column in build_cols.items()
                if name in self.inner_key_columns
            }
        bkey_vecs = [
            _broadcast(*_veval(e, bkey_ns, params), mb) for e in self.inner_keys
        ]
        keys: set = set()
        try:
            for j in range(mb):
                key = tuple(vec[j] for vec in bkey_vecs)
                if not any(v is None for v in key):
                    keys.add(key)
        except TypeError:
            yield from self.fallback.execute(ctx, outer)
            return
        ctx.probed[id(self)] = ctx.probed.get(id(self), 0) + nc + nb

        child_cols = db.columns(self.child_name)
        csel = _selection(self.child_pred, child_cols, params)
        cidx = range(nc) if csel is None else csel
        mc = nc if csel is None else len(csel)
        if csel is None:
            ckey_ns = child_cols
        else:
            ckey_ns = {
                name: [column[i] for i in csel]
                for name, column in child_cols.items()
                if name in self.outer_key_columns
            }
        ckey_vecs = [
            _broadcast(*_veval(e, ckey_ns, params), mc) for e in self.outer_keys
        ]

        negated = self.negated
        alias = self.child_alias
        for j, ci in enumerate(cidx):
            key = tuple(vec[j] for vec in ckey_vecs)
            if any(v is None for v in key):
                hit = False
            else:
                try:
                    hit = key in keys
                except TypeError:
                    hit = any(_tuples_equal(key, k) for k in keys)
            if (not hit) if negated else hit:
                row = child_rows[ci]
                copy = dict(row)
                for column, value in row.items():
                    copy[f"{alias}.{column}"] = value
                yield copy
