"""In-memory relational engine evaluating extended relational algebra.

This is the database substrate for the reproduction: the paper ran against
MySQL 5.5; we evaluate the same algebra the extractor produces directly over
in-memory tables, with SQL NULL semantics, stable sorts, grouped
aggregation, DISTINCT, LIMIT, and OUTER APPLY.

Two execution engines share this module's :class:`Database`:

* ``reference`` — :class:`ReferenceEvaluator`, the original tree-walking
  interpreter.  Deliberately naive (nested-loop joins, per-row subquery
  re-evaluation) but obviously correct; it is the oracle every optimization
  is differentially checked against.
* ``planned`` — the physical planning layer in :mod:`repro.db.planner` /
  :mod:`repro.db.physical`: hash joins, hash semi/anti-joins, Top-N, index
  lookups, and streaming pipelines.  Must produce *identical* rows (values
  and order) to the reference evaluator on every query.

``engine="both"`` runs both and raises :class:`EngineDivergenceError` on
any mismatch — the differential safety net used by the fuzzer.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any

from ..algebra import (
    AggCall,
    Aggregate,
    Alias,
    BinOp,
    CaseWhen,
    Catalog,
    Col,
    Distinct,
    ExistsExpr,
    Func,
    Join,
    Limit,
    Lit,
    OuterApply,
    Param,
    Project,
    RelExpr,
    ScalarExpr,
    ScalarSubquery,
    Select,
    Sort,
    Table,
    UnOp,
)
from .types import (
    Row,
    descending_key,
    is_truthy,
    nulls_last_key,
    sql_and,
    sql_avg,
    sql_compare,
    sql_not,
    sql_or,
)

#: Engines `Database.execute` understands.
ENGINES = ("planned", "reference", "both")

#: Plan-cache size bound: beyond this many distinct trees the cache resets.
_PLAN_CACHE_LIMIT = 256


class EngineError(Exception):
    """Raised on evaluation failures (unknown table/column/function)."""


class EngineDivergenceError(EngineError):
    """Raised by ``engine="both"`` when planned and reference rows differ."""


class Database:
    """A named collection of in-memory tables plus their catalog."""

    #: Engine used when ``execute`` is called without an explicit one.
    default_engine = "planned"

    def __init__(self, catalog: Catalog | None = None, default_engine: str | None = None):
        self.catalog = catalog or Catalog()
        self._tables: dict[str, list[Row]] = {
            name: [] for name in self.catalog.tables
        }
        #: Custom (user-defined) aggregates: name → fn(values) -> value.
        #: The paper's Section 5.2 fallback when a folding function has no
        #: built-in SQL aggregate.
        self.aggregates: dict[str, object] = {}
        if default_engine is not None:
            self.default_engine = default_engine
        #: Registered hash indexes: (table, column) → value → rows, or
        #: ``None`` while dirty/unbuilt (rebuilt lazily on next lookup).
        self._indexes: dict[tuple[str, str], dict | None] = {}
        #: (table, column) pairs whose values turned out unhashable.
        self._unindexable: set[tuple[str, str]] = set()
        #: Physical plan cache keyed on the (hashable) algebra tree; each
        #: entry stores ``(stats_epoch, plan, search)`` so a plan chosen for
        #: one data distribution is never reused after the distribution
        #: changes, and cache hits still restore ``last_plan_search``.
        self._plan_cache: dict[RelExpr, Any] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: Cached column arrays per table (columnar execution reads these).
        self._columns: dict[str, dict[str, list]] = {}
        #: Cached statistics per table (built lazily from the column cache).
        self._table_stats: dict[str, Any] = {}
        #: Bumped by every invalidation; keys the plan cache and tells any
        #: consumer of :meth:`stats` whether its snapshot is still current.
        self._stats_epoch = 0
        self._columnar_mode = "auto"
        #: Search breadcrumbs from the most recent :meth:`plan` call —
        #: memo size, alternatives explored, and per-group cost margins.
        self.last_plan_search: dict | None = None

    def register_aggregate(self, name: str, fn) -> None:
        """Register a user-defined aggregate (and teach the SQL parser
        about it so generated SQL round-trips)."""
        from ..sqlparse import register_aggregate_name

        self.aggregates[name.lower()] = fn
        register_aggregate_name(name)

    # ------------------------------------------------------------------
    # DDL / DML

    def create_table(
        self, name: str, columns: list[str], key: tuple[str, ...] = ()
    ) -> None:
        """Create an empty table and register it in the catalog."""
        self.catalog.define(name, columns, key)
        self._tables[name.lower()] = []
        self._invalidate(name)
        # New tables can change name resolution and index choices.
        self._plan_cache.clear()

    def insert(self, name: str, row: Row) -> None:
        """Insert one row (missing columns become NULL)."""
        table = self.catalog.get(name)
        stored = {col: row.get(col) for col in table.column_names()}
        self._tables[name.lower()].append(stored)
        self._invalidate(name)

    def insert_many(self, name: str, rows: list[Row]) -> None:
        for row in rows:
            self.insert(name, row)

    def rows(self, name: str) -> list[Row]:
        """Return the raw rows of a base table (shared, do not mutate)."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise EngineError(f"unknown table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def clear(self, name: str) -> None:
        self._tables[name.lower()] = []
        self._invalidate(name)
        self._unindexable = {
            key for key in self._unindexable if key[0] != name.lower()
        }

    # ------------------------------------------------------------------
    # Hash indexes

    def create_index(self, name: str, column: str) -> None:
        """Register a hash index on ``table.column`` (built lazily).

        The planner uses registered indexes for index-nested-loop join
        plans and point lookups; indexes on declared key columns are also
        auto-registered the first time a point lookup needs one.
        """
        table = self.catalog.get(name)
        if not table.has_column(column):
            raise EngineError(f"no column {column!r} on table {name!r}")
        self._indexes.setdefault((name.lower(), column), None)
        # Index availability changes plan choices.
        self._plan_cache.clear()

    def has_index(self, name: str, column: str) -> bool:
        return (name.lower(), column) in self._indexes

    def index_on(self, name: str, column: str, auto: bool = False) -> dict | None:
        """Return the value→rows mapping for an index, building it lazily.

        With ``auto=True`` the index is registered on first use (the lazy
        auto-indexing path for equality lookups).  Returns ``None`` when no
        index is registered (and ``auto`` is off) or when the column's
        values are unhashable — callers must then fall back to a scan.
        """
        key = (name.lower(), column)
        if key in self._unindexable:
            return None
        if key not in self._indexes:
            if not auto:
                return None
            self._indexes[key] = None
        index = self._indexes[key]
        if index is None:
            index = {}
            try:
                for row in self.rows(name):
                    value = row.get(column)
                    if value is None:
                        continue  # NULL never matches an equality probe
                    index.setdefault(value, []).append(row)
            except TypeError:
                self._unindexable.add(key)
                return None
            self._indexes[key] = index
        return index

    def _invalidate(self, name: str) -> None:
        """Mark every index of ``name`` dirty (rebuilt on next lookup) and
        drop the table's cached column arrays and statistics.  The epoch
        bump retires every cached plan chosen under the old statistics."""
        lowered = name.lower()
        for key in self._indexes:
            if key[0] == lowered:
                self._indexes[key] = None
        self._columns.pop(lowered, None)
        self._table_stats.pop(lowered, None)
        self._stats_epoch += 1

    # ------------------------------------------------------------------
    # Columnar storage and statistics

    def columns(self, name: str) -> dict[str, list]:
        """Return ``name``'s rows transposed into column arrays.

        The transposition is cached and invalidated by the same
        dirty-marking that rebuilds hash indexes, so repeated columnar
        executions and statistics builds share one pass over the rows.
        The arrays are shared — callers must not mutate them.
        """
        lowered = name.lower()
        cached = self._columns.get(lowered)
        if cached is not None:
            return cached
        rows = self.rows(name)
        names = (
            self.catalog.get(name).column_names()
            if name in self.catalog
            else sorted({c for row in rows for c in row})
        )
        columns = {column: [row.get(column) for row in rows] for column in names}
        self._columns[lowered] = columns
        return columns

    def stats(self, name: str, sample: int | None = None):
        """Return the :class:`~repro.db.stats.TableStats` for a base table.

        With ``sample=None`` (the default) the cached statistics are
        returned, built lazily under the automatic policy: an exact full
        pass up to :data:`~repro.db.stats.STATS_EXACT_MAX` rows, and a
        reservoir-style sample of :data:`~repro.db.stats.STATS_SAMPLE_SIZE`
        rows above it (scaled NDV/NULL estimates, sample histograms).  Kept
        fresh by ``_invalidate``: any insert/clear/create_table drops the
        cached object and the next call rebuilds it from the current rows.

        An explicit ``sample`` bypasses both the cache and the policy and
        builds fresh statistics: ``sample=0`` forces an exact full pass;
        ``sample=k`` draws ``k`` rows (``k >= row count`` degrades to the
        exact build).  Explicit builds are never cached.
        """
        lowered = name.lower()
        if lowered not in self._tables:
            raise EngineError(f"unknown table {name!r}")
        from .stats import (
            STATS_EXACT_MAX,
            STATS_SAMPLE_SIZE,
            build_sampled_table_stats,
            build_table_stats,
        )

        if sample is not None:
            rows = self._tables[lowered]
            if sample <= 0:
                return build_table_stats(lowered, self._exact_columns(name))
            return build_sampled_table_stats(
                lowered, rows, self._column_names(name, rows), sample
            )

        cached = self._table_stats.get(lowered)
        if cached is not None:
            return cached
        rows = self._tables[lowered]
        if len(rows) > STATS_EXACT_MAX:
            stats = build_sampled_table_stats(
                lowered, rows, self._column_names(name, rows), STATS_SAMPLE_SIZE
            )
        else:
            stats = build_table_stats(lowered, self.columns(name))
        self._table_stats[lowered] = stats
        return stats

    def _column_names(self, name: str, rows: list[Row]) -> list[str] | None:
        if name in self.catalog:
            return self.catalog.get(name).column_names()
        return None

    def _exact_columns(self, name: str) -> dict[str, list]:
        """Column arrays for an exact statistics build, bypassing the cache
        so an explicit ``stats(sample=0)`` measures a genuine full pass."""
        rows = self.rows(name)
        names = self._column_names(name, rows) or sorted(
            {c for row in rows for c in row}
        )
        return {column: [row.get(column) for row in rows] for column in names}

    @property
    def columnar_mode(self) -> str:
        """Columnar execution policy: ``"auto"`` (statistics-driven cost
        choice with the adaptive small-input switch), ``"off"`` (always
        row-at-a-time), or ``"force"`` (columnar whenever structurally
        supported — used by the differential tests)."""
        return self._columnar_mode

    @columnar_mode.setter
    def columnar_mode(self, mode: str) -> None:
        if mode not in ("auto", "off", "force"):
            raise EngineError(f"unknown columnar mode {mode!r}")
        if mode != self._columnar_mode:
            self._columnar_mode = mode
            # Plans embed the mode's lowering choices.
            self._plan_cache.clear()

    # ------------------------------------------------------------------
    # Query evaluation

    def plan(self, query: RelExpr):
        """Return the (cached) physical plan for an algebra tree.

        Entries are keyed by the statistics epoch they were planned under:
        a plan chosen when a table was empty (or differently distributed)
        is re-planned — not reused — after the data changes.
        """
        entry = self._plan_cache.get(query)
        if entry is not None and entry[0] == self._stats_epoch:
            self.plan_cache_hits += 1
            self.last_plan_search = entry[2]
            return entry[1]
        from .planner import Planner

        self.plan_cache_misses += 1
        plan = Planner(self).lower(query)
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[query] = (self._stats_epoch, plan, self.last_plan_search)
        return plan

    def execute(
        self,
        query: RelExpr,
        params: dict[str, Any] | None = None,
        engine: str | None = None,
    ) -> list[Row]:
        """Evaluate a relational algebra tree and return the result rows.

        ``engine`` selects the execution engine: ``"planned"`` (physical
        operators), ``"reference"`` (the tree-walking oracle), or
        ``"both"`` (run both, raise :class:`EngineDivergenceError` on any
        mismatch).  Defaults to :attr:`default_engine`.
        """
        rows, _ = self.execute_explained(query, params, engine)
        return rows

    def execute_explained(
        self,
        query: RelExpr,
        params: dict[str, Any] | None = None,
        engine: str | None = None,
    ) -> tuple[list[Row], dict | None]:
        """Like :meth:`execute` but also returns the executed physical
        plan's ``explain()`` tree (``None`` for the reference engine)."""
        engine = engine or self.default_engine
        if engine == "reference":
            return ReferenceEvaluator(self, params or {}).eval_rel(query), None
        if engine not in ENGINES:
            raise EngineError(f"unknown engine {engine!r}")

        from .physical import ExecContext, explain_plan

        plan = self.plan(query)
        ctx = ExecContext(self, params or {})
        rows = list(plan.execute(ctx))
        explain = explain_plan(plan, ctx)
        if explain is not None:
            explain["plan_search"] = self.last_plan_search
        if engine == "both":
            reference = ReferenceEvaluator(self, params or {}).eval_rel(query)
            if rows != reference:
                raise EngineDivergenceError(
                    f"planned and reference engines disagree on {query}:\n"
                    f"  planned   ({len(rows)} rows): {rows[:5]!r}...\n"
                    f"  reference ({len(reference)} rows): {reference[:5]!r}..."
                )
            if _plan_uses_columnar(plan):
                # Three-way net: when the plan took the columnar path, also
                # run a row-at-a-time lowering of the same tree so columnar
                # ≡ row ≡ reference all hold.
                from .planner import Planner

                row_plan = Planner(self, columnar="off").lower(query)
                row_rows = list(row_plan.execute(ExecContext(self, params or {})))
                if rows != row_rows:
                    raise EngineDivergenceError(
                        f"columnar and row-at-a-time plans disagree on {query}:\n"
                        f"  columnar ({len(rows)} rows): {rows[:5]!r}...\n"
                        f"  row      ({len(row_rows)} rows): {row_rows[:5]!r}..."
                    )
        return rows, explain

    def explain(self, query: RelExpr, params: dict[str, Any] | None = None) -> dict:
        """Execute ``query`` on the planned engine and return its explain
        tree: one node per physical operator with the rows it produced."""
        _, explain = self.execute_explained(query, params, engine="planned")
        return explain


class ReferenceEvaluator:
    """The slow, obviously-correct tree-walking oracle.

    Every optimized engine is differentially tested against this class;
    keep it simple rather than fast.
    """

    def __init__(self, database: Database, params: dict[str, Any]):
        self._db = database
        self._params = params

    # ------------------------------------------------------------------
    # Relational operators

    def eval_rel(self, node: RelExpr, outer: Row | None = None) -> list[Row]:
        if isinstance(node, Table):
            return self._eval_table(node)
        if isinstance(node, Select):
            child = self.eval_rel(node.child, outer)
            return [
                row
                for row in child
                if is_truthy(self.eval_scalar(node.pred, self._merge(row, outer)))
            ]
        if isinstance(node, Project):
            child = self.eval_rel(node.child, outer)
            return [self._project_row(node, row, outer) for row in child]
        if isinstance(node, Join):
            return self._eval_join(node, outer)
        if isinstance(node, Aggregate):
            return self._eval_aggregate(node, outer)
        if isinstance(node, Sort):
            child = self.eval_rel(node.child, outer)
            for key in reversed(node.keys):
                child = sorted(
                    child,
                    key=lambda row, k=key: self._sort_key(k, self._merge(row, outer)),
                )
            return child
        if isinstance(node, Distinct):
            child = self.eval_rel(node.child, outer)
            seen = set()
            result = []
            fingerprint_columns = _FingerprintColumns()
            for row in child:
                fingerprint = fingerprint_columns.fingerprint(row)
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    result.append(row)
            return result
        if isinstance(node, Limit):
            return self.eval_rel(node.child, outer)[: node.count]
        if isinstance(node, OuterApply):
            return self._eval_outer_apply(node, outer)
        if isinstance(node, Alias):
            child = self.eval_rel(node.child, outer)
            result = []
            for row in child:
                copy = dict(row)
                for column, value in row.items():
                    if "." not in column:
                        copy[f"{node.name}.{column}"] = value
                result.append(copy)
            return result
        raise EngineError(f"cannot evaluate {type(node).__name__}")

    def _eval_table(self, node: Table) -> list[Row]:
        rows = self._db.rows(node.name)
        alias = node.alias or node.name
        result = []
        for row in rows:
            copy = dict(row)
            for column, value in row.items():
                copy[f"{alias}.{column}"] = value
            result.append(copy)
        return result

    def _eval_join(self, node: Join, outer: Row | None) -> list[Row]:
        left_rows = self.eval_rel(node.left, outer)
        right_rows = self.eval_rel(node.right, outer)
        result = []
        for left in left_rows:
            matched = False
            for right in right_rows:
                combined = {**right, **left}
                # Left values win on bare-name collisions; qualified keys of
                # both sides are preserved because they never collide.
                for key, value in right.items():
                    if key not in left:
                        combined[key] = value
                if node.pred is not None:
                    verdict = self.eval_scalar(node.pred, self._merge(combined, outer))
                    if not is_truthy(verdict):
                        continue
                matched = True
                result.append(combined)
            if node.kind == "left" and not matched:
                result.append(_pad_left_row(left, right_rows, node.right, self._db))
        return result

    def _eval_outer_apply(self, node: OuterApply, outer: Row | None) -> list[Row]:
        left_rows = self.eval_rel(node.left, outer)
        result = []
        for left in left_rows:
            scope = self._merge(left, outer)
            inner_rows = self.eval_rel(node.right, scope)
            if inner_rows:
                for inner in inner_rows:
                    combined = dict(left)
                    for key, value in inner.items():
                        if key not in combined:
                            combined[key] = value
                    result.append(combined)
            else:
                padded = dict(left)
                for name in _output_names_best_effort(node.right, self._db.catalog):
                    padded.setdefault(name, None)
                result.append(padded)
        return result

    def _eval_aggregate(self, node: Aggregate, outer: Row | None) -> list[Row]:
        child = self.eval_rel(node.child, outer)
        if not node.group_by:
            return [self._fold_group(node, (), child, outer)]
        groups: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        for row in child:
            key = tuple(
                _hashable(self.eval_scalar(g, self._merge(row, outer)))
                for g in node.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        return [self._fold_group(node, key, groups[key], outer) for key in order]

    def _fold_group(
        self, node: Aggregate, key: tuple, rows: list[Row], outer: Row | None
    ) -> Row:
        result: Row = {}
        for group_expr, value in zip(node.group_by, key):
            name = group_expr.name if isinstance(group_expr, Col) else str(group_expr)
            result[name] = _unhashable(value)
        for item in node.aggs:
            result[item.output_name] = self._eval_agg_call(item.call, rows, outer)
        return result

    def _eval_agg_call(self, call: AggCall, rows: list[Row], outer: Row | None) -> Any:
        if call.func == "count" and call.arg is None:
            return len(rows)
        values = [
            self.eval_scalar(call.arg, self._merge(row, outer)) for row in rows
        ]
        values = [v for v in values if v is not None]  # SQL: aggregates skip NULLs
        if call.distinct:
            seen: list[Any] = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen
        if call.func == "count":
            return len(values)
        if not values:
            return None
        if call.func == "sum":
            return sum(values)
        if call.func == "min":
            return min(values)
        if call.func == "max":
            return max(values)
        if call.func == "avg":
            return sql_avg(values)
        custom = self._db.aggregates.get(call.func.lower())
        if custom is not None:
            return custom(values)
        raise EngineError(f"unknown aggregate {call.func!r}")

    def _project_row(self, node: Project, row: Row, outer: Row | None) -> Row:
        scope = self._merge(row, outer)
        result: Row = {}
        for item in node.items:
            if isinstance(item.expr, Col) and item.expr.name == "*":
                for key, value in row.items():
                    result[key] = value
                continue
            result[item.output_name] = self.eval_scalar(item.expr, scope)
        # Alias-qualified source columns pass through invisibly (they do not
        # count as output or transfer): like SQL, ORDER BY above a SELECT
        # list may still reference the FROM tables' columns.
        for key, value in row.items():
            if "." in key:
                result.setdefault(key, value)
        return result

    def _sort_key(self, key, row: Row):
        value = self.eval_scalar(key.expr, row)
        if key.ascending:
            return nulls_last_key(value)
        return descending_key(value)

    @staticmethod
    def _merge(row: Row, outer: Row | None) -> Row:
        if not outer:
            return row
        merged = dict(outer)
        merged.update(row)
        return merged

    # ------------------------------------------------------------------
    # Scalar expressions

    def eval_scalar(self, expr: ScalarExpr, row: Row) -> Any:
        if isinstance(expr, Lit):
            return expr.value
        if isinstance(expr, Col):
            return self._lookup(expr, row)
        if isinstance(expr, Param):
            if expr.name not in self._params:
                raise EngineError(f"unbound parameter :{expr.name}")
            return self._params[expr.name]
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, row)
        if isinstance(expr, UnOp):
            if expr.op.upper() == "NOT":
                return sql_not(self.eval_scalar(expr.operand, row))
            if expr.op == "-":
                value = self.eval_scalar(expr.operand, row)
                return None if value is None else -value
            raise EngineError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Func):
            return self._eval_func(expr, row)
        if isinstance(expr, CaseWhen):
            if is_truthy(self.eval_scalar(expr.cond, row)):
                return self.eval_scalar(expr.if_true, row)
            return self.eval_scalar(expr.if_false, row)
        if isinstance(expr, ExistsExpr):
            rows = self.eval_rel(expr.query, row)
            return not rows if expr.negated else bool(rows)
        if isinstance(expr, ScalarSubquery):
            rows = self.eval_rel(expr.query, row)
            if not rows:
                return None
            first = rows[0]
            plain = [v for k, v in first.items() if "." not in k]
            return plain[0] if plain else None
        raise EngineError(f"cannot evaluate scalar {type(expr).__name__}")

    def _lookup(self, col: Col, row: Row) -> Any:
        if col.qualifier:
            qualified = f"{col.qualifier}.{col.name}"
            if qualified in row:
                return row[qualified]
        if col.name in row:
            return row[col.name]
        if col.qualifier is None:
            # Accept any unique qualified match.
            suffix = f".{col.name}"
            matches = [k for k in row if k.endswith(suffix)]
            if len(matches) == 1:
                return row[matches[0]]
        raise EngineError(f"unknown column {col}")

    def _eval_binop(self, expr: BinOp, row: Row) -> Any:
        op = expr.op.upper()
        if op == "AND":
            return sql_and(
                self.eval_scalar(expr.left, row), self.eval_scalar(expr.right, row)
            )
        if op == "OR":
            return sql_or(
                self.eval_scalar(expr.left, row), self.eval_scalar(expr.right, row)
            )
        left = self.eval_scalar(expr.left, row)
        right = self.eval_scalar(expr.right, row)
        if op in ("=", "!=", "<", ">", "<=", ">="):
            return sql_compare(op, left, right)
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
        if op == "||":
            return str(left) + str(right)
        if op == "LIKE":
            return _sql_like(str(left), str(right))
        raise EngineError(f"unknown binary operator {expr.op!r}")

    def _eval_func(self, expr: Func, row: Row) -> Any:
        args = [self.eval_scalar(a, row) for a in expr.args]
        return _apply_func(expr.name, args)


#: Backwards-compatible private alias (pre-planner name).
_Evaluator = ReferenceEvaluator


def _apply_func(name: str, args: list) -> Any:
    """Evaluate one scalar function call on already-evaluated arguments.

    The single source of scalar-function semantics: the reference
    evaluator's tree walk and the columnar engine's vectorized loops both
    call this helper, so the engines can never disagree on a function's
    NULL handling or result.
    """
    upper = name.upper()
    if upper == "ISNULL":
        return args[0] is None
    if upper == "COALESCE":
        for value in args:
            if value is not None:
                return value
        return None
    if upper == "CONCAT":
        # Render like Java string concatenation (the imperative code the
        # expression came from): lowercase booleans, "null" for NULL.
        from ..interp.values import to_display

        return "".join(to_display(a) for a in args)
    if any(a is None for a in args):
        return None
    if upper == "GREATEST":
        return max(args)
    if upper == "LEAST":
        return min(args)
    if upper == "UPPER":
        return args[0].upper()
    if upper == "LOWER":
        return args[0].lower()
    if upper == "LENGTH":
        return len(args[0])
    if upper == "ABS":
        return abs(args[0])
    if upper == "SUBSTRING":
        text, start = args[0], args[1]
        if len(args) > 2:
            return text[start - 1 : start - 1 + args[2]]
        return text[start - 1 :]
    if upper == "TRIM":
        return args[0].strip()
    if upper == "ROUND":
        digits = int(args[1]) if len(args) > 1 else 0
        return round(args[0], digits)
    raise EngineError(f"unknown scalar function {name!r}")


def _plan_uses_columnar(plan) -> bool:
    """True when a physical plan contains a columnar operator (pipeline,
    vectorized join, or vectorized semi/anti-join)."""
    label = getattr(plan, "label", "")
    if isinstance(label, str) and label.startswith("Columnar"):
        return True
    return any(_plan_uses_columnar(child) for child in plan.children())


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> re.Pattern:
    """Compile a SQL LIKE pattern once per distinct pattern string."""
    return re.compile(re.escape(pattern).replace("%", ".*").replace("_", "."))


def _sql_like(value: str, pattern: str) -> bool:
    return _like_regex(pattern).fullmatch(value) is not None


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def _unhashable(value: Any) -> Any:
    return value


class _FingerprintColumns:
    """Per-Distinct cache of the sorted plain-column order.

    The fingerprint column order is computed once per distinct row layout
    (the full key tuple) instead of re-sorting every row's items; rows from
    one relation almost always share a single layout.
    """

    __slots__ = ("_layouts",)

    def __init__(self):
        self._layouts: dict[tuple, tuple[str, ...]] = {}

    def fingerprint(self, row: Row) -> tuple:
        layout = tuple(row)
        columns = self._layouts.get(layout)
        if columns is None:
            columns = tuple(sorted(k for k in layout if "." not in k))
            self._layouts[layout] = columns
        return tuple((k, _hashable(row[k])) for k in columns)


def _pad_left_row(
    left: Row, right_rows: list[Row], right_rel: RelExpr, db: Database
) -> Row:
    """NULL-pad an unmatched left-join row.

    When the right side produced rows, its actual keys are authoritative;
    when it is empty, the pad set comes from the right relation's statically
    inferable output names (so a left join against an empty relation still
    emits the right side's columns as NULLs).
    """
    padded = dict(left)
    if right_rows:
        names = right_rows[0]
    else:
        names = _output_names_best_effort(right_rel, db.catalog)
    for key in names:
        padded.setdefault(key, None)
    return padded


def _output_names_best_effort(
    node: RelExpr, catalog: Catalog | None = None
) -> list[str]:
    """Column names an empty join/apply branch must pad with NULLs."""
    if isinstance(node, Project):
        return [item.output_name for item in node.items]
    if isinstance(node, Aggregate):
        names = [
            g.name if isinstance(g, Col) else str(g) for g in node.group_by
        ]
        names.extend(item.output_name for item in node.aggs)
        return names
    if isinstance(node, Table):
        if catalog is None or node.name not in catalog:
            return []
        columns = catalog.get(node.name).column_names()
        alias = node.alias or node.name
        return columns + [f"{alias}.{c}" for c in columns]
    if isinstance(node, Join):
        left = _output_names_best_effort(node.left, catalog)
        right = _output_names_best_effort(node.right, catalog)
        return left + [name for name in right if name not in left]
    if isinstance(node, Alias):
        child = _output_names_best_effort(node.child, catalog)
        return child + [f"{node.name}.{c}" for c in child if "." not in c]
    if isinstance(node, (Select, Sort, Distinct, Limit)):
        return _output_names_best_effort(node.child, catalog)
    return []
