"""In-memory relational engine evaluating extended relational algebra.

This is the database substrate for the reproduction: the paper ran against
MySQL 5.5; we evaluate the same algebra the extractor produces directly over
in-memory tables, with SQL NULL semantics, stable sorts, grouped
aggregation, DISTINCT, LIMIT, and OUTER APPLY.
"""

from __future__ import annotations

from typing import Any

from ..algebra import (
    AggCall,
    Aggregate,
    Alias,
    BinOp,
    CaseWhen,
    Catalog,
    Col,
    Distinct,
    ExistsExpr,
    Func,
    Join,
    Limit,
    Lit,
    OuterApply,
    Param,
    Project,
    RelExpr,
    ScalarExpr,
    ScalarSubquery,
    Select,
    Sort,
    Table,
    UnOp,
)
from .types import (
    Row,
    descending_key,
    is_truthy,
    nulls_last_key,
    sql_and,
    sql_compare,
    sql_not,
    sql_or,
)


class EngineError(Exception):
    """Raised on evaluation failures (unknown table/column/function)."""


class Database:
    """A named collection of in-memory tables plus their catalog."""

    def __init__(self, catalog: Catalog | None = None):
        self.catalog = catalog or Catalog()
        self._tables: dict[str, list[Row]] = {
            name: [] for name in self.catalog.tables
        }
        #: Custom (user-defined) aggregates: name → fn(values) -> value.
        #: The paper's Section 5.2 fallback when a folding function has no
        #: built-in SQL aggregate.
        self.aggregates: dict[str, object] = {}

    def register_aggregate(self, name: str, fn) -> None:
        """Register a user-defined aggregate (and teach the SQL parser
        about it so generated SQL round-trips)."""
        from ..sqlparse import register_aggregate_name

        self.aggregates[name.lower()] = fn
        register_aggregate_name(name)

    # ------------------------------------------------------------------
    # DDL / DML

    def create_table(
        self, name: str, columns: list[str], key: tuple[str, ...] = ()
    ) -> None:
        """Create an empty table and register it in the catalog."""
        self.catalog.define(name, columns, key)
        self._tables[name.lower()] = []

    def insert(self, name: str, row: Row) -> None:
        """Insert one row (missing columns become NULL)."""
        table = self.catalog.get(name)
        stored = {col: row.get(col) for col in table.column_names()}
        self._tables[name.lower()].append(stored)

    def insert_many(self, name: str, rows: list[Row]) -> None:
        for row in rows:
            self.insert(name, row)

    def rows(self, name: str) -> list[Row]:
        """Return the raw rows of a base table (shared, do not mutate)."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise EngineError(f"unknown table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def clear(self, name: str) -> None:
        self._tables[name.lower()] = []

    # ------------------------------------------------------------------
    # Query evaluation

    def execute(self, query: RelExpr, params: dict[str, Any] | None = None) -> list[Row]:
        """Evaluate a relational algebra tree and return the result rows."""
        return _Evaluator(self, params or {}).eval_rel(query)


class _Evaluator:
    def __init__(self, database: Database, params: dict[str, Any]):
        self._db = database
        self._params = params

    # ------------------------------------------------------------------
    # Relational operators

    def eval_rel(self, node: RelExpr, outer: Row | None = None) -> list[Row]:
        if isinstance(node, Table):
            return self._eval_table(node)
        if isinstance(node, Select):
            child = self.eval_rel(node.child, outer)
            return [
                row
                for row in child
                if is_truthy(self.eval_scalar(node.pred, self._merge(row, outer)))
            ]
        if isinstance(node, Project):
            child = self.eval_rel(node.child, outer)
            return [self._project_row(node, row, outer) for row in child]
        if isinstance(node, Join):
            return self._eval_join(node, outer)
        if isinstance(node, Aggregate):
            return self._eval_aggregate(node, outer)
        if isinstance(node, Sort):
            child = self.eval_rel(node.child, outer)
            for key in reversed(node.keys):
                child = sorted(
                    child,
                    key=lambda row, k=key: self._sort_key(k, self._merge(row, outer)),
                )
            return child
        if isinstance(node, Distinct):
            child = self.eval_rel(node.child, outer)
            seen = set()
            result = []
            for row in child:
                fingerprint = tuple(
                    sorted((k, _hashable(v)) for k, v in row.items() if "." not in k)
                )
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    result.append(row)
            return result
        if isinstance(node, Limit):
            return self.eval_rel(node.child, outer)[: node.count]
        if isinstance(node, OuterApply):
            return self._eval_outer_apply(node, outer)
        if isinstance(node, Alias):
            child = self.eval_rel(node.child, outer)
            result = []
            for row in child:
                copy = dict(row)
                for column, value in row.items():
                    if "." not in column:
                        copy[f"{node.name}.{column}"] = value
                result.append(copy)
            return result
        raise EngineError(f"cannot evaluate {type(node).__name__}")

    def _eval_table(self, node: Table) -> list[Row]:
        rows = self._db.rows(node.name)
        alias = node.alias or node.name
        result = []
        for row in rows:
            copy = dict(row)
            for column, value in row.items():
                copy[f"{alias}.{column}"] = value
            result.append(copy)
        return result

    def _eval_join(self, node: Join, outer: Row | None) -> list[Row]:
        left_rows = self.eval_rel(node.left, outer)
        right_rows = self.eval_rel(node.right, outer)
        result = []
        for left in left_rows:
            matched = False
            for right in right_rows:
                combined = {**right, **left}
                # Left values win on bare-name collisions; qualified keys of
                # both sides are preserved because they never collide.
                for key, value in right.items():
                    if key not in left:
                        combined[key] = value
                if node.pred is not None:
                    verdict = self.eval_scalar(node.pred, self._merge(combined, outer))
                    if not is_truthy(verdict):
                        continue
                matched = True
                result.append(combined)
            if node.kind == "left" and not matched:
                padded = dict(left)
                for key in right_rows[0] if right_rows else ():
                    padded.setdefault(key, None)
                result.append(padded)
        return result

    def _eval_outer_apply(self, node: OuterApply, outer: Row | None) -> list[Row]:
        left_rows = self.eval_rel(node.left, outer)
        result = []
        for left in left_rows:
            scope = self._merge(left, outer)
            inner_rows = self.eval_rel(node.right, scope)
            if inner_rows:
                for inner in inner_rows:
                    combined = dict(left)
                    for key, value in inner.items():
                        if key not in combined:
                            combined[key] = value
                    result.append(combined)
            else:
                padded = dict(left)
                for name in _output_names_best_effort(node.right):
                    padded.setdefault(name, None)
                result.append(padded)
        return result

    def _eval_aggregate(self, node: Aggregate, outer: Row | None) -> list[Row]:
        child = self.eval_rel(node.child, outer)
        if not node.group_by:
            return [self._fold_group(node, (), child, outer)]
        groups: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        for row in child:
            key = tuple(
                _hashable(self.eval_scalar(g, self._merge(row, outer)))
                for g in node.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        return [self._fold_group(node, key, groups[key], outer) for key in order]

    def _fold_group(
        self, node: Aggregate, key: tuple, rows: list[Row], outer: Row | None
    ) -> Row:
        result: Row = {}
        for group_expr, value in zip(node.group_by, key):
            name = group_expr.name if isinstance(group_expr, Col) else str(group_expr)
            result[name] = _unhashable(value)
        for item in node.aggs:
            result[item.output_name] = self._eval_agg_call(item.call, rows, outer)
        return result

    def _eval_agg_call(self, call: AggCall, rows: list[Row], outer: Row | None) -> Any:
        if call.func == "count" and call.arg is None:
            return len(rows)
        values = [
            self.eval_scalar(call.arg, self._merge(row, outer)) for row in rows
        ]
        values = [v for v in values if v is not None]  # SQL: aggregates skip NULLs
        if call.distinct:
            seen: list[Any] = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen
        if call.func == "count":
            return len(values)
        if not values:
            return None
        if call.func == "sum":
            return sum(values)
        if call.func == "min":
            return min(values)
        if call.func == "max":
            return max(values)
        if call.func == "avg":
            return sum(values) / len(values)
        custom = self._db.aggregates.get(call.func.lower())
        if custom is not None:
            return custom(values)
        raise EngineError(f"unknown aggregate {call.func!r}")

    def _project_row(self, node: Project, row: Row, outer: Row | None) -> Row:
        scope = self._merge(row, outer)
        result: Row = {}
        for item in node.items:
            if isinstance(item.expr, Col) and item.expr.name == "*":
                for key, value in row.items():
                    result[key] = value
                continue
            result[item.output_name] = self.eval_scalar(item.expr, scope)
        # Alias-qualified source columns pass through invisibly (they do not
        # count as output or transfer): like SQL, ORDER BY above a SELECT
        # list may still reference the FROM tables' columns.
        for key, value in row.items():
            if "." in key:
                result.setdefault(key, value)
        return result

    def _sort_key(self, key, row: Row):
        value = self.eval_scalar(key.expr, row)
        if key.ascending:
            return nulls_last_key(value)
        return descending_key(value)

    @staticmethod
    def _merge(row: Row, outer: Row | None) -> Row:
        if not outer:
            return row
        merged = dict(outer)
        merged.update(row)
        return merged

    # ------------------------------------------------------------------
    # Scalar expressions

    def eval_scalar(self, expr: ScalarExpr, row: Row) -> Any:
        if isinstance(expr, Lit):
            return expr.value
        if isinstance(expr, Col):
            return self._lookup(expr, row)
        if isinstance(expr, Param):
            if expr.name not in self._params:
                raise EngineError(f"unbound parameter :{expr.name}")
            return self._params[expr.name]
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, row)
        if isinstance(expr, UnOp):
            if expr.op.upper() == "NOT":
                return sql_not(self.eval_scalar(expr.operand, row))
            if expr.op == "-":
                value = self.eval_scalar(expr.operand, row)
                return None if value is None else -value
            raise EngineError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Func):
            return self._eval_func(expr, row)
        if isinstance(expr, CaseWhen):
            if is_truthy(self.eval_scalar(expr.cond, row)):
                return self.eval_scalar(expr.if_true, row)
            return self.eval_scalar(expr.if_false, row)
        if isinstance(expr, ExistsExpr):
            rows = self.eval_rel(expr.query, row)
            return not rows if expr.negated else bool(rows)
        if isinstance(expr, ScalarSubquery):
            rows = self.eval_rel(expr.query, row)
            if not rows:
                return None
            first = rows[0]
            plain = [v for k, v in first.items() if "." not in k]
            return plain[0] if plain else None
        raise EngineError(f"cannot evaluate scalar {type(expr).__name__}")

    def _lookup(self, col: Col, row: Row) -> Any:
        if col.qualifier:
            qualified = f"{col.qualifier}.{col.name}"
            if qualified in row:
                return row[qualified]
        if col.name in row:
            return row[col.name]
        if col.qualifier is None:
            # Accept any unique qualified match.
            suffix = f".{col.name}"
            matches = [k for k in row if k.endswith(suffix)]
            if len(matches) == 1:
                return row[matches[0]]
        raise EngineError(f"unknown column {col}")

    def _eval_binop(self, expr: BinOp, row: Row) -> Any:
        op = expr.op.upper()
        if op == "AND":
            return sql_and(
                self.eval_scalar(expr.left, row), self.eval_scalar(expr.right, row)
            )
        if op == "OR":
            return sql_or(
                self.eval_scalar(expr.left, row), self.eval_scalar(expr.right, row)
            )
        left = self.eval_scalar(expr.left, row)
        right = self.eval_scalar(expr.right, row)
        if op in ("=", "!=", "<", ">", "<=", ">="):
            return sql_compare(op, left, right)
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
        if op == "||":
            return str(left) + str(right)
        if op == "LIKE":
            return _sql_like(str(left), str(right))
        raise EngineError(f"unknown binary operator {expr.op!r}")

    def _eval_func(self, expr: Func, row: Row) -> Any:
        name = expr.name.upper()
        args = [self.eval_scalar(a, row) for a in expr.args]
        if name == "ISNULL":
            return args[0] is None
        if name == "COALESCE":
            for value in args:
                if value is not None:
                    return value
            return None
        if name == "CONCAT":
            # Render like Java string concatenation (the imperative code the
            # expression came from): lowercase booleans, "null" for NULL.
            from ..interp.values import to_display

            return "".join(to_display(a) for a in args)
        if any(a is None for a in args):
            return None
        if name == "GREATEST":
            return max(args)
        if name == "LEAST":
            return min(args)
        if name == "UPPER":
            return args[0].upper()
        if name == "LOWER":
            return args[0].lower()
        if name == "LENGTH":
            return len(args[0])
        if name == "ABS":
            return abs(args[0])
        if name == "SUBSTRING":
            text, start = args[0], args[1]
            if len(args) > 2:
                return text[start - 1 : start - 1 + args[2]]
            return text[start - 1 :]
        if name == "TRIM":
            return args[0].strip()
        if name == "ROUND":
            digits = int(args[1]) if len(args) > 1 else 0
            return round(args[0], digits)
        raise EngineError(f"unknown scalar function {expr.name!r}")


def _sql_like(value: str, pattern: str) -> bool:
    import re

    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value) is not None


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def _unhashable(value: Any) -> Any:
    return value


def _output_names_best_effort(node: RelExpr) -> list[str]:
    """Column names an empty OUTER APPLY branch must pad with NULLs."""
    if isinstance(node, Project):
        return [item.output_name for item in node.items]
    if isinstance(node, Aggregate):
        names = [
            g.name if isinstance(g, Col) else str(g) for g in node.group_by
        ]
        names.extend(item.output_name for item in node.aggs)
        return names
    if isinstance(node, (Select, Sort, Distinct, Limit)):
        return _output_names_best_effort(node.child)
    return []
