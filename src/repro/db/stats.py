"""Per-table statistics and cardinality estimation.

The planned engine's lowering decisions (access path, join strategy,
columnar vs. row execution) were originally fixed heuristics with no
knowledge of the data.  This module grounds them in observed table shape:

* :class:`TableStats` — row count plus per-column :class:`ColumnStats`
  (non-NULL count, NULL count, number of distinct values, min/max, and an
  equi-width :class:`Histogram` for all-numeric columns).  Statistics are
  collected lazily from the cached column arrays on first use and kept
  fresh by the same dirty-marking machinery that invalidates hash indexes
  (``Database._invalidate`` on insert/clear/create_table).
* :class:`CardinalityEstimator` — textbook selectivity arithmetic over
  those statistics: ``1/NDV`` for equality, histogram fractions for range
  predicates, independence for AND, inclusion–exclusion for OR, and
  ``|L|·|R| / max(NDV)`` for equi-joins.  Estimates feed the planner's
  Volcano search (:mod:`repro.db.planner`) and, optionally, the rewrite
  cost bridge (:class:`repro.rewrites.cost.AlternativeCostModel`).

Statistics are *estimates*: the planner only uses them to rank physical
alternatives that are all semantically identical, so a bad estimate can
cost performance but never correctness.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..algebra import (
    Aggregate,
    Alias,
    BinOp,
    Col,
    Distinct,
    Join,
    Limit,
    Lit,
    OuterApply,
    Param,
    Project,
    RelExpr,
    ScalarExpr,
    Select,
    Sort,
    Table,
    UnOp,
    walk_relational,
)
from .types import is_truthy

#: Equi-width histogram resolution (buckets per numeric column).
HISTOGRAM_BUCKETS = 16

#: Below this many rows the row-at-a-time path wins: per-batch dispatch,
#: column gathering, and result assembly cost more than they save.  The
#: crossover was measured on the ``bench_engine`` aggregation workload
#: (row path ≈ 3 µs/row of constant work vs. ≈ 0.2 ms of fixed columnar
#: overhead); the adaptive switch routes anything smaller to the row path.
COLUMNAR_MIN_ROWS = 64

#: Above this many rows ``Database.stats`` switches from an exact full-pass
#: build to a sampled one: one full O(n) statistics pass per epoch stops
#: being cheap around a few tens of thousands of rows, while a fixed-size
#: sample keeps the build O(sample) with NDV/histogram *estimates* instead
#: of exact counts.  Statistics only rank semantically-identical plans, so
#: the estimate error can cost performance but never correctness.
STATS_EXACT_MAX = 50_000

#: Rows drawn (without replacement) by a sampled statistics build.
STATS_SAMPLE_SIZE = 10_000

#: Fallback selectivities when no statistics apply.
DEFAULT_SELECTIVITY = 0.33
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_LIKE_SELECTIVITY = 0.25

#: Sentinel for "value unknown at plan time" (parameters).
_UNKNOWN = object()


@dataclass(frozen=True)
class Histogram:
    """Equi-width histogram over a numeric column."""

    lo: float
    hi: float
    counts: tuple[int, ...]
    total: int

    def fraction_le(self, value: float) -> float:
        """Approximate fraction of values ``<= value`` (linear within a
        bucket, the classic equi-width interpolation)."""
        if self.total == 0:
            return 0.0
        if value < self.lo:
            return 0.0
        if value >= self.hi:
            return 1.0
        width = (self.hi - self.lo) / len(self.counts)
        if width <= 0:
            return 1.0
        index = min(int((value - self.lo) / width), len(self.counts) - 1)
        below = sum(self.counts[:index])
        within = self.counts[index] * ((value - (self.lo + index * width)) / width)
        return min(1.0, max(0.0, (below + within) / self.total))


@dataclass(frozen=True)
class ColumnStats:
    """Shape summary of one column."""

    name: str
    row_count: int
    null_count: int
    ndv: int
    min_value: Any
    max_value: Any
    histogram: Histogram | None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "row_count": self.row_count,
            "null_count": self.null_count,
            "ndv": self.ndv,
            "min": self.min_value,
            "max": self.max_value,
            "histogram_buckets": (
                None if self.histogram is None else list(self.histogram.counts)
            ),
        }


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics for one base table.

    ``sampled`` marks statistics built from a reservoir-style sample rather
    than a full pass; ``sample_size`` records how many rows were drawn.
    Sampled NDV, NULL counts, and histograms are scaled estimates.
    """

    table: str
    row_count: int
    columns: Mapping[str, ColumnStats]
    sampled: bool = field(default=False)
    sample_size: int | None = field(default=None)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "row_count": self.row_count,
            "sampled": self.sampled,
            "sample_size": self.sample_size,
            "columns": {name: cs.to_dict() for name, cs in self.columns.items()},
        }


def _build_histogram(values: list, lo: float, hi: float) -> Histogram:
    buckets = HISTOGRAM_BUCKETS
    counts = [0] * buckets
    if hi <= lo:
        counts[0] = len(values)
        return Histogram(lo=lo, hi=hi, counts=tuple(counts), total=len(values))
    scale = buckets / (hi - lo)
    top = buckets - 1
    for value in values:
        index = int((value - lo) * scale)
        counts[index if index < top else top] += 1
    return Histogram(lo=lo, hi=hi, counts=tuple(counts), total=len(values))


def _column_stats(name: str, values: list) -> ColumnStats:
    non_null = [v for v in values if v is not None]
    null_count = len(values) - len(non_null)
    try:
        ndv = len(set(non_null))
    except TypeError:  # unhashable values: distinct-by-repr approximation
        ndv = len({repr(v) for v in non_null})
    min_value = max_value = None
    if non_null:
        try:
            min_value = min(non_null)
            max_value = max(non_null)
        except TypeError:  # mixed incomparable types: no order statistics
            min_value = max_value = None
    histogram = None
    if (
        min_value is not None
        and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in non_null
        )
    ):
        histogram = _build_histogram(non_null, float(min_value), float(max_value))
    return ColumnStats(
        name=name,
        row_count=len(values),
        null_count=null_count,
        ndv=ndv,
        min_value=min_value,
        max_value=max_value,
        histogram=histogram,
    )


def build_table_stats(
    table: str, columns: Mapping[str, list]
) -> TableStats:
    """Collect statistics from a table's column arrays (one full pass)."""
    stats = {name: _column_stats(name, values) for name, values in columns.items()}
    row_count = len(next(iter(columns.values()))) if columns else 0
    return TableStats(table=table.lower(), row_count=row_count, columns=stats)


def estimate_ndv(sample_distinct: int, sample_size: int, population: int) -> int:
    """Scale a sample's distinct count to a population NDV estimate.

    Assumes roughly uniform value multiplicity: a population with ``D``
    distinct values shows each of them in a without-replacement sample of
    ``k`` out of ``n`` rows with probability ``1 - (1 - k/n)**(n/D)``, so
    the expected sample-distinct count is ``f(D) = D·(1 - (1-k/n)**(n/D))``.
    ``f`` is monotone in ``D``; bisection inverts it on ``[d, n]``.  The
    endpoints are exact: an id-like column (``d == k``) solves to ``D = n``
    and a fully-covered low-cardinality column solves to ``D = d``.
    """
    d, k, n = sample_distinct, sample_size, population
    if d <= 0 or n <= 0:
        return 0
    if k >= n or d >= k:
        # Saturated sample: every draw was new — extrapolate linearly.
        return min(n, max(d, round(d * (n / max(k, 1)))))
    miss = 1.0 - k / n

    def expected(distinct: float) -> float:
        return distinct * (1.0 - miss ** (n / distinct))

    lo, hi = float(d), float(n)
    if expected(hi) <= d:
        return n
    for _ in range(50):
        mid = (lo + hi) / 2.0
        if expected(mid) < d:
            lo = mid
        else:
            hi = mid
    return max(d, min(n, round((lo + hi) / 2.0)))


def _sampled_column_stats(
    name: str, values: list, population: int, sample_size: int
) -> ColumnStats:
    """ColumnStats scaled up from a sample of ``sample_size`` rows.

    NULL counts scale linearly, NDV goes through :func:`estimate_ndv`,
    min/max come from the sample (an under-estimate of the true range), and
    the histogram is built from the sample directly — its consumer
    (:meth:`Histogram.fraction_le`) is fraction-based, so no scaling is
    needed.
    """
    non_null = [v for v in values if v is not None]
    sample_nulls = len(values) - len(non_null)
    null_count = round(sample_nulls * population / max(sample_size, 1))
    non_null_pop = max(population - null_count, len(non_null))
    try:
        sample_ndv = len(set(non_null))
    except TypeError:
        sample_ndv = len({repr(v) for v in non_null})
    ndv = estimate_ndv(sample_ndv, len(non_null), non_null_pop)
    min_value = max_value = None
    if non_null:
        try:
            min_value = min(non_null)
            max_value = max(non_null)
        except TypeError:
            min_value = max_value = None
    histogram = None
    if (
        min_value is not None
        and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in non_null
        )
    ):
        histogram = _build_histogram(non_null, float(min_value), float(max_value))
    return ColumnStats(
        name=name,
        row_count=population,
        null_count=null_count,
        ndv=ndv,
        min_value=min_value,
        max_value=max_value,
        histogram=histogram,
    )


def build_sampled_table_stats(
    table: str,
    rows: list,
    column_names: list[str] | None,
    sample_size: int = STATS_SAMPLE_SIZE,
) -> TableStats:
    """Collect statistics from a uniform random sample of ``rows``.

    Reads the row dicts directly (no column transposition) so the build
    cost is O(sample), not O(table).  The sample is drawn with a
    deterministic seed derived from the table name and row count — not
    Python's randomized ``hash()`` — so repeated builds over unchanged data
    produce identical statistics (and identical plans) across processes.
    Drawing ``sample_size`` distinct indices upfront is equivalent to
    reservoir sampling for a known population size, without the O(n) RNG
    draws Algorithm R would pay.
    """
    n = len(rows)
    if sample_size <= 0 or n <= sample_size:
        names = column_names or sorted({c for row in rows for c in row})
        columns = {c: [row.get(c) for row in rows] for c in names}
        return build_table_stats(table, columns)
    seed = zlib.crc32(table.lower().encode("utf-8")) ^ n
    indices = sorted(random.Random(seed).sample(range(n), sample_size))
    sampled = [rows[i] for i in indices]
    names = column_names or sorted({c for row in sampled for c in row})
    stats = {
        name: _sampled_column_stats(
            name, [row.get(name) for row in sampled], n, sample_size
        )
        for name in names
    }
    return TableStats(
        table=table.lower(),
        row_count=n,
        columns=stats,
        sampled=True,
        sample_size=sample_size,
    )


class CardinalityEstimator:
    """Selectivity and cardinality estimates over a database's statistics.

    All methods degrade gracefully: unknown tables, columns without
    statistics, or expression shapes the arithmetic does not cover fall
    back to the module's default selectivities, so the estimator is total
    over every algebra tree the engine can execute.
    """

    def __init__(self, db):
        self._db = db

    # ------------------------------------------------------------------
    # Table-level lookups

    def stats(self, table: str) -> TableStats | None:
        try:
            return self._db.stats(table)
        except Exception:
            return None

    def table_rows(self, table: str) -> float:
        stats = self.stats(table)
        return 0.0 if stats is None else float(stats.row_count)

    def ndv(self, table: str, column: str) -> int | None:
        stats = self.stats(table)
        if stats is None:
            return None
        cs = stats.column(column)
        return None if cs is None else cs.ndv

    # ------------------------------------------------------------------
    # Predicate selectivity against one base table

    def selectivity(self, pred: ScalarExpr | None, table: str) -> float:
        """Estimated fraction of ``table``'s rows satisfying ``pred``."""
        if pred is None:
            return 1.0
        stats = self.stats(table)
        return self._pred_sel(pred, stats)

    def select_selectivity(self, rel: Select) -> float | None:
        """Selectivity of a σ node's predicate against the base table its
        columns resolve to, or ``None`` when no single base table can be
        identified (e.g. a selection over a join)."""
        base = self._base_table(rel.child)
        if base is None:
            return None
        return self.selectivity(rel.pred, base)

    def _pred_sel(self, expr: ScalarExpr, stats: TableStats | None) -> float:
        if isinstance(expr, BinOp):
            op = expr.op.upper()
            if op == "AND":
                return self._clamp(
                    self._pred_sel(expr.left, stats)
                    * self._pred_sel(expr.right, stats)
                )
            if op == "OR":
                a = self._pred_sel(expr.left, stats)
                b = self._pred_sel(expr.right, stats)
                return self._clamp(a + b - a * b)
            if op in ("=", "!=", "<", ">", "<=", ">="):
                return self._cmp_sel(op, expr.left, expr.right, stats)
            if op == "LIKE":
                return DEFAULT_LIKE_SELECTIVITY
            return DEFAULT_SELECTIVITY
        if isinstance(expr, UnOp) and expr.op.upper() == "NOT":
            return self._clamp(1.0 - self._pred_sel(expr.operand, stats))
        if isinstance(expr, Lit):
            return 1.0 if is_truthy(expr.value) else 0.0
        return DEFAULT_SELECTIVITY

    def _cmp_sel(self, op, left, right, stats: TableStats | None) -> float:
        column, value, flipped = self._column_vs_value(left, right, stats)
        if column is None:
            # col-to-col comparison on the same table, or no statistics.
            if (
                op == "="
                and stats is not None
                and isinstance(left, Col)
                and isinstance(right, Col)
            ):
                a, b = stats.column(left.name), stats.column(right.name)
                if a is not None and b is not None:
                    return self._clamp(1.0 / max(a.ndv, b.ndv, 1))
            return (
                DEFAULT_EQ_SELECTIVITY
                if op in ("=", "!=")
                else DEFAULT_SELECTIVITY
            )
        if op in ("<", ">", "<=", ">="):
            if flipped:
                # value OP col  ≡  col (flipped OP) value
                op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}[op]
            return self._range_sel(op, column, value)
        eq = self._eq_sel(column, value)
        return eq if op == "=" else self._clamp(1.0 - eq)

    def _column_vs_value(self, left, right, stats):
        """Split a comparison into (ColumnStats, value-or-_UNKNOWN, flipped);
        ``flipped`` is True when the column sits on the right-hand side."""
        if stats is None:
            return None, None, False
        for col, other, flipped in ((left, right, False), (right, left, True)):
            if not isinstance(col, Col):
                continue
            cs = stats.column(col.name)
            if cs is None:
                continue
            if isinstance(other, Col):
                return None, None, False
            if isinstance(other, Lit):
                return cs, other.value, flipped
            return cs, _UNKNOWN, flipped
        return None, None, False

    def _eq_sel(self, cs: ColumnStats, value) -> float:
        if cs.row_count == 0 or cs.ndv == 0:
            return 0.0
        if value is None:
            return 0.0  # col = NULL is never true
        if value is not _UNKNOWN and cs.histogram is not None:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if value < cs.min_value or value > cs.max_value:
                    return 0.0
            else:
                return 0.0  # non-numeric literal against a numeric column
        return self._clamp(1.0 / cs.ndv)

    def _range_sel(self, op: str, cs: ColumnStats, value) -> float:
        if cs.row_count == 0:
            return 0.0
        if value is None:
            return 0.0
        hist = cs.histogram
        if (
            value is _UNKNOWN
            or hist is None
            or not isinstance(value, (int, float))
            or isinstance(value, bool)
        ):
            return DEFAULT_SELECTIVITY
        le = hist.fraction_le(float(value))
        point = 1.0 / max(cs.ndv, 1)
        if op == "<=":
            sel = le
        elif op == "<":
            sel = le - point
        elif op == ">":
            sel = 1.0 - le
        else:  # >=
            sel = 1.0 - le + point
        # Discount NULLs: they satisfy no comparison.
        non_null = (cs.row_count - cs.null_count) / cs.row_count
        return self._clamp(sel * non_null)

    @staticmethod
    def _clamp(value: float) -> float:
        return min(1.0, max(0.0, value))

    # ------------------------------------------------------------------
    # Cardinality of relational trees

    def estimate(self, rel: RelExpr) -> float:
        """Estimated output row count of an algebra tree."""
        if isinstance(rel, Table):
            return self.table_rows(rel.name)
        if isinstance(rel, Select):
            base = self._base_table(rel.child)
            child = self.estimate(rel.child)
            if base is None:
                return child * DEFAULT_SELECTIVITY
            return child * self.selectivity(rel.pred, base)
        if isinstance(rel, (Project, Sort, Alias)):
            return self.estimate(rel.child)
        if isinstance(rel, Distinct):
            return self.estimate(rel.child)
        if isinstance(rel, Limit):
            return min(float(max(rel.count, 0)), self.estimate(rel.child))
        if isinstance(rel, Aggregate):
            return self._estimate_aggregate(rel)
        if isinstance(rel, Join):
            return self._estimate_join(rel)
        if isinstance(rel, OuterApply):
            return self.estimate(rel.left)
        return 1.0

    def _base_table(self, rel: RelExpr) -> str | None:
        """The single base table a predicate's columns resolve against,
        looking through name-preserving wrappers."""
        while isinstance(rel, (Select, Sort, Distinct, Limit, Alias)):
            rel = rel.child
        if isinstance(rel, Table):
            return rel.name
        return None

    def _tables_below(self, rel: RelExpr) -> list[str]:
        return [n.name for n in walk_relational(rel) if isinstance(n, Table)]

    def _ndv_below(self, col: Col, rel: RelExpr) -> int | None:
        """NDV of ``col`` against whichever base table below ``rel``
        defines it (first match)."""
        for table in self._tables_below(rel):
            ndv = self.ndv(table, col.name)
            if ndv is not None:
                return ndv
        return None

    def _estimate_aggregate(self, rel: Aggregate) -> float:
        child = self.estimate(rel.child)
        if not rel.group_by:
            return 1.0
        groups = 1.0
        for expr in rel.group_by:
            if isinstance(expr, Col):
                ndv = self._ndv_below(expr, rel.child)
                groups *= float(ndv) if ndv is not None else max(child, 1.0) ** 0.5
            else:
                groups *= max(child, 1.0) ** 0.5
        return max(min(groups, child), 1.0 if child > 0 else 0.0)

    def _estimate_join(self, rel: Join) -> float:
        left = self.estimate(rel.left)
        right = self.estimate(rel.right)
        rows = left * right
        if rel.pred is not None:
            from .planner import split_conjuncts  # late: avoids import cycle

            for conjunct in split_conjuncts(rel.pred):
                if (
                    isinstance(conjunct, BinOp)
                    and conjunct.op == "="
                    and isinstance(conjunct.left, Col)
                    and isinstance(conjunct.right, Col)
                ):
                    ndvs = [
                        self._ndv_below(conjunct.left, rel),
                        self._ndv_below(conjunct.right, rel),
                    ]
                    known = [n for n in ndvs if n is not None]
                    rows /= float(max(known)) if known else 10.0
                else:
                    rows *= DEFAULT_SELECTIVITY
        if rel.kind == "left":
            rows = max(rows, left)
        return rows
