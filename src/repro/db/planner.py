"""Logical→physical plan lowering with cost-based physical selection.

The :class:`Planner` turns a relational algebra tree into a tree of
:mod:`repro.db.physical` operators.  Every lowering decision here is
*conservative*: an optimization is chosen only when static analysis over
exact scope-name sets proves the optimized operator resolves every column
reference to the same value the reference evaluator would, under any outer
row.  Whenever that proof fails — inexact scopes, suffix-fallback column
lookups, expressions hiding subqueries — the planner emits the general
operator that mirrors the reference evaluator line for line.

Among the alternatives that *do* pass the soundness proof, the planner no
longer applies fixed heuristics: each choice point builds a group in the
Volcano-style memo (:class:`repro.cost.andor.Memo`) whose alternatives are
costed from observed table statistics (:mod:`repro.db.stats` — row counts,
NDV, histograms), and the cheapest alternative wins.  Ties keep the first
candidate listed, which encodes the pre-cost preference order.  Join
*order* is never searched: the reference's row order (left-major loops,
first-seen groups) is part of the contract, so costing only picks among
order-preserving strategies for the same shape.

Lowerings considered:

* ``σ`` with equality conjuncts over a base table → :class:`IndexLookup`
  (auto-indexed on declared key columns, or on explicitly registered
  indexes); with several indexed conjuncts the NDV-best one is probed.
* ``σ`` whose predicate conjoins an ``EXISTS`` subquery → hash
  semi/anti-join, decorrelating equality conjuncts between inner and outer
  columns; uncorrelated ``EXISTS`` degenerates to a single emptiness probe.
* ``σ``/``π``/``γ``/``τ`` (also ``τ`` under ``LIMIT``) over a base-table
  scan whose expressions are all vectorizable →
  :class:`~repro.db.columnar.ColumnarPipeline`, when the table clears the
  statistics-derived size threshold (the plan-time half of the adaptive
  engine switch) — except point predicates an index can answer, which the
  estimator keeps on the probe path.
* ``⋈`` (inner/left) with extractable equality keys → :class:`HashJoin`,
  :class:`~repro.db.columnar.ColumnarHashJoin` when both inputs are
  vectorizable scan shapes, or :class:`IndexNLJoin` when the right side
  is a base table with an explicitly registered index on the join column
  and the estimated probe cost beats the hash build.
* correlated semi/anti joins → :class:`HashSemiJoin` or
  :class:`~repro.db.columnar.ColumnarSemiJoin` (uncorrelated ``EXISTS``
  always stays row: its build short-circuits after one row).
* ``τ`` under ``LIMIT`` → :class:`TopN` (bounded heap).
* Everything else → streaming counterparts of the reference operators.

Every cost decision leaves a breadcrumb in ``Database.last_plan_search``:
the chosen operator, its cost, each rejected alternative's cost, and the
margin — surfaced through ``explain()`` as ``"plan_search"``.
"""

from __future__ import annotations

from ..algebra import (
    Aggregate,
    Alias,
    BinOp,
    Catalog,
    Col,
    Distinct,
    ExistsExpr,
    Join,
    Limit,
    OuterApply,
    Project,
    RelExpr,
    ScalarExpr,
    ScalarSubquery,
    Select,
    Sort,
    Table,
    UnOp,
    conjoin,
    walk_scalar,
)
from ..cost.andor import AndNode, Memo
from .columnar import (
    ColumnarHashJoin,
    ColumnarPipeline,
    ColumnarSemiJoin,
    residual_layout,
    supported_expr,
    supported_join_expr,
)
from .engine import Database, EngineError
from .physical import (
    AliasOp,
    ApplyOp,
    DistinctOp,
    FilterOp,
    HashAggregate,
    HashJoin,
    HashSemiJoin,
    IndexLookup,
    IndexNLJoin,
    LimitOp,
    NestedLoopJoin,
    PhysicalOp,
    ProjectOp,
    SeqScan,
    SortOp,
    TopN,
)
from .stats import COLUMNAR_MIN_ROWS, CardinalityEstimator

#: Wrapper operators that preserve (non-)emptiness of their child, so an
#: EXISTS test can see through them.  Limit needs ``count >= 1`` (checked
#: separately); Aggregate without GROUP BY always returns one row and must
#: NOT be peeled.
_EMPTINESS_PRESERVING = (Project, Distinct, Sort, Alias)

#: Cost-model unit weights, calibrated on the ``bench_engine`` workloads.
#: Only ratios matter: a row operator pays ``_C_ROW`` per row materialized
#: (dict copy + qualified keys) and ``_C_EVAL`` per row-at-a-time scalar
#: expression evaluation; vectorized evaluation costs ``_C_VEC`` per row
#: per expression; a hash/index probe costs ``_C_PROBE``.
_C_ROW = 1.0
_C_EVAL = 0.55
_C_VEC = 0.06
_C_PROBE = 0.25

#: Aggregate functions the columnar pipeline can fold (same set as the
#: row engine's incremental path).
_FOLDABLE_AGGS = frozenset({"count", "sum", "min", "max", "avg"})


def split_conjuncts(pred: ScalarExpr | None) -> list[ScalarExpr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if pred is None:
        return []
    if isinstance(pred, BinOp) and pred.op.upper() == "AND":
        return split_conjuncts(pred.left) + split_conjuncts(pred.right)
    return [pred]


def _has_subquery(expr: ScalarExpr) -> bool:
    """True when ``expr`` hides column references inside a subquery.

    ``walk_scalar`` does not descend into subquery relational trees, so any
    classification of such an expression by its visible columns would be
    unsound.
    """
    return any(
        isinstance(node, (ExistsExpr, ScalarSubquery)) for node in walk_scalar(expr)
    )


def _cols_of(expr: ScalarExpr) -> list[Col]:
    return [node for node in walk_scalar(expr) if isinstance(node, Col)]


def scope_names(node: RelExpr, catalog: Catalog) -> frozenset[str] | None:
    """The *exact* set of row keys ``node`` produces, or ``None`` if it
    cannot be determined statically.

    Exactness is what makes side-classification sound: a column reference
    resolves directly (before the evaluator's suffix-fallback) if and only
    if its name is in this set.
    """
    if isinstance(node, Table):
        if node.name not in catalog:
            return None
        columns = catalog.get(node.name).column_names()
        alias = node.alias or node.name
        return frozenset(columns) | frozenset(f"{alias}.{c}" for c in columns)
    if isinstance(node, (Select, Sort, Distinct, Limit)):
        return scope_names(node.child, catalog)
    if isinstance(node, Alias):
        child = scope_names(node.child, catalog)
        if child is None:
            return None
        return child | frozenset(
            f"{node.name}.{c}" for c in child if "." not in c
        )
    if isinstance(node, Project):
        child = scope_names(node.child, catalog)
        if child is None:
            return None
        star = any(
            isinstance(item.expr, Col) and item.expr.name == "*"
            for item in node.items
        )
        names = {
            item.output_name
            for item in node.items
            if not (isinstance(item.expr, Col) and item.expr.name == "*")
        }
        # Qualified source columns always pass through the projection.
        names.update(c for c in child if "." in c)
        if star:
            names.update(child)
        return frozenset(names)
    if isinstance(node, Aggregate):
        names = {
            g.name if isinstance(g, Col) else str(g) for g in node.group_by
        }
        names.update(item.output_name for item in node.aggs)
        return frozenset(names)
    if isinstance(node, Join):
        left = scope_names(node.left, catalog)
        right = scope_names(node.right, catalog)
        if left is None or right is None:
            return None
        return left | right
    return None  # OuterApply and anything unknown: inexact


def _resolves_strictly(col: Col, names: frozenset[str]) -> bool:
    """True when ``col`` gets a direct hit in a row with exactly ``names``
    (no bare-name fallback of a qualified reference, no suffix fallback) —
    the condition under which its value cannot be diverted by merged outer
    rows."""
    if col.qualifier:
        return f"{col.qualifier}.{col.name}" in names
    return col.name in names


def _interferes(col: Col, names: frozenset[str]) -> bool:
    """True when resolving ``col`` against a row *merged with* a row of
    ``names`` could produce a different value than without it (direct hit,
    qualified bare-name fallback, or suffix-fallback candidate)."""
    if col.qualifier:
        if f"{col.qualifier}.{col.name}" in names:
            return True
        return col.name in names  # qualified lookup falls back to bare
    if col.name in names:
        return True
    suffix = f".{col.name}"
    return any(name.endswith(suffix) for name in names)


def _outer_side_safe(
    col: Col, inner_names: frozenset[str], outer_names: frozenset[str] | None
) -> bool:
    """True when ``col`` resolves to the same value on the outer scope alone
    as on the outer scope merged with an inner row (inner keys winning) —
    the soundness condition for moving an EXISTS correlation column from the
    inner predicate to the semi-join's probe side.

    The lookup order is qualified name, then bare name, then suffix
    fallback; the inner row can only divert a step the outer scope does not
    already satisfy."""
    if outer_names is None:
        return not _interferes(col, inner_names)
    if col.qualifier:
        qualified = f"{col.qualifier}.{col.name}"
        if qualified in inner_names:
            return False  # inner row wins the qualified lookup
        if qualified in outer_names:
            return True
        # Qualified miss on both: falls back to the bare name either way.
    if col.name in inner_names:
        return False  # inner row wins the bare lookup
    if col.name in outer_names:
        return True
    if col.qualifier is None:
        # Suffix fallback: the inner row must contribute no candidates,
        # else the merged lookup sees a different (possibly ambiguous) set.
        suffix = f".{col.name}"
        return not any(name.endswith(suffix) for name in inner_names)
    return True  # resolves (or errors) identically via the ambient scope


def _side_of_col(col: Col, left: frozenset[str], right: frozenset[str]) -> str | None:
    """Which join input a column resolves against on the combined row.

    Mirrors the evaluator's lookup order on ``{**right, **left}``: the
    qualified name is checked on both sides before the bare-name fallback,
    and the left side wins collisions.  ``None`` means the reference would
    use the suffix fallback (or the outer row) — unclassifiable.
    """
    if col.qualifier:
        qualified = f"{col.qualifier}.{col.name}"
        if qualified in left:
            return "left"
        if qualified in right:
            return "right"
    if col.name in left:
        return "left"
    if col.name in right:
        return "right"
    return None


def _side_of_expr(
    expr: ScalarExpr, left: frozenset[str], right: frozenset[str]
) -> str | None:
    """Classify an expression to the single join side all its columns
    resolve against.  Column-free expressions and mixed-side expressions
    return ``None`` (kept in the residual predicate)."""
    if _has_subquery(expr):
        return None
    sides = {_side_of_col(c, left, right) for c in _cols_of(expr)}
    if len(sides) == 1:
        return sides.pop()
    return None


class Planner:
    """Lowers algebra trees to physical plans for one :class:`Database`.

    ``columnar`` overrides the database's columnar mode for this lowering:
    ``"auto"`` (cost + statistics threshold), ``"off"`` (row operators
    only), or ``"force"`` (columnar wherever structurally supported — used
    by differential tests and benchmarks to pin the engine).
    """

    def __init__(self, db: Database, columnar: str | None = None):
        self.db = db
        self.catalog = db.catalog
        self.columnar = columnar if columnar is not None else db.columnar_mode
        self.estimator = CardinalityEstimator(db)
        self.memo = Memo()
        self._alternatives = 0
        self._choices: list[dict] = []

    # ------------------------------------------------------------------

    def lower(self, node: RelExpr) -> PhysicalOp:
        plan = self._lower(node)
        # Search-size breadcrumbs for tests and EXPLAIN-style introspection.
        self.db.last_plan_search = {
            "groups": len(self.memo),
            "alternatives": self._alternatives,
            "choices": self._choices,
        }
        return plan

    def _choose(self, label: str, candidates) -> PhysicalOp:
        """Record one memo group of costed alternatives and return the
        winner's plan.  ``candidates`` is ``[(op_name, cost, plan), ...]``;
        the memo's strict-< minimization keeps the first on ties.

        Each decision leaves a breadcrumb in ``last_plan_search["choices"]``
        with the rejected alternatives' costs and the winner's margin (how
        much cheaper the winner was than the best rejected candidate), so
        ``explain()`` can show *why* an operator was picked."""
        group = self.memo.new_group(label)
        for op, cost, plan in candidates:
            if group.add(AndNode(op=op, local_cost=cost, payload=plan)):
                self._alternatives += 1
        best = self.memo.optimize(group.group_id).alternative
        rejected = [
            {"op": op, "cost": cost}
            for op, cost, plan in candidates
            if plan is not best.payload
        ]
        self._choices.append(
            {
                "label": label,
                "chosen": best.op,
                "cost": best.local_cost,
                "rejected": rejected,
                "margin": (
                    min(r["cost"] for r in rejected) - best.local_cost
                    if rejected
                    else None
                ),
            }
        )
        return best.payload

    # ------------------------------------------------------------------

    def _lower(self, node: RelExpr, allow_columnar: bool = True) -> PhysicalOp:
        if isinstance(node, Table):
            return SeqScan(node.name, node.alias)
        if isinstance(node, Select):
            return self._lower_select(node, allow_columnar)
        if isinstance(node, Project):
            return self._lower_project(node, allow_columnar)
        if isinstance(node, Join):
            return self._lower_join(node, allow_columnar)
        if isinstance(node, Aggregate):
            return self._lower_aggregate(node, allow_columnar)
        if isinstance(node, Sort):
            return self._columnar_order(node, None, allow_columnar)
        if isinstance(node, Distinct):
            return DistinctOp(self._lower(node.child))
        if isinstance(node, Limit):
            if isinstance(node.child, Sort):
                return self._columnar_order(node.child, node.count, allow_columnar)
            # A columnar pipeline consumes its whole input before emitting,
            # which would defeat LIMIT's early exit — unless the child is
            # an aggregate, which must consume everything anyway.
            allow = isinstance(node.child, Aggregate)
            return LimitOp(self._lower(node.child, allow_columnar=allow), node.count)
        if isinstance(node, OuterApply):
            return ApplyOp(self._lower(node.left), self._lower(node.right), node)
        if isinstance(node, Alias):
            return AliasOp(self._lower(node.child), node.name)
        raise EngineError(f"cannot evaluate {type(node).__name__}")

    # ------------------------------------------------------------------
    # Selection

    def _lower_select(self, node: Select, allow_columnar: bool = True) -> PhysicalOp:
        conjuncts = split_conjuncts(node.pred)

        exists, negated, others = self._find_exists_conjunct(conjuncts)
        if exists is not None:
            semi = self._try_semi_join(node, exists, negated, others)
            if semi is not None:
                return semi

        table = node.child
        if not (isinstance(table, Table) and table.name in self.catalog):
            return FilterOp(self._lower(table, allow_columnar), node.pred)

        est = self.estimator
        row_count = est.table_rows(table.name)
        filter_plan = FilterOp(SeqScan(table.name, table.alias), node.pred)
        candidates = []

        lookup, probe_rows = self._best_index_lookup(node, conjuncts)
        if lookup is not None:
            candidates.append(
                ("IndexLookup", _C_PROBE + probe_rows * (_C_ROW + _C_EVAL), lookup)
            )

        if allow_columnar:
            pipeline = self._pipeline(
                table,
                node.pred,
                ("filter", None),
                (),
                fallback=lookup if lookup is not None else filter_plan,
            )
            if pipeline is not None:
                if self.columnar == "force":
                    return pipeline
                out = row_count * est.selectivity(node.pred, table.name)
                # Point-predicate guard: when an index probe exists and the
                # estimator says the predicate keeps only a handful of rows,
                # vectorizing the whole scan cannot beat the O(1) probe —
                # drop the columnar candidate instead of letting a skewed
                # cost constant pick it.
                if lookup is None or out >= COLUMNAR_MIN_ROWS:
                    candidates.append(
                        ("Columnar", row_count * _C_VEC + out * _C_ROW, pipeline)
                    )

        candidates.append(("Filter", row_count * (_C_ROW + _C_EVAL), filter_plan))
        return self._choose(f"select({table.name})", candidates)

    @staticmethod
    def _find_exists_conjunct(conjuncts):
        """Pop the first (possibly NOT-wrapped) EXISTS conjunct."""
        for i, conjunct in enumerate(conjuncts):
            negated = False
            expr = conjunct
            while isinstance(expr, UnOp) and expr.op.upper() == "NOT":
                negated = not negated
                expr = expr.operand
            if isinstance(expr, ExistsExpr):
                others = conjuncts[:i] + conjuncts[i + 1 :]
                return expr, negated ^ expr.negated, others
        return None, False, conjuncts

    def _try_semi_join(self, node, exists, negated, others):
        """Lower ``σ[... AND EXISTS(Q)]`` to a hash semi/anti-join.

        Returns ``None`` (caller falls back to a per-row filter) unless the
        inner query, stripped of its correlation equality conjuncts, is
        provably closed — i.e. evaluates to the same rows under any outer
        scope."""
        core = exists.query
        while True:
            if isinstance(core, _EMPTINESS_PRESERVING):
                core = core.child
                continue
            if isinstance(core, Limit) and core.count >= 1:
                core = core.child
                continue
            break
        if isinstance(core, (Aggregate, OuterApply)):
            # γ without grouping returns a row over empty input; APPLY is
            # correlated by construction.  Both void the emptiness argument.
            return None

        if isinstance(core, Select):
            inner_rel = core.child
            inner_conjuncts = split_conjuncts(core.pred)
        else:
            inner_rel = core
            inner_conjuncts = []

        inner_names = scope_names(inner_rel, self.catalog)
        if inner_names is None:
            return None
        outer_names = scope_names(node.child, self.catalog)

        outer_keys: list[ScalarExpr] = []
        inner_keys: list[ScalarExpr] = []
        residual: list[ScalarExpr] = []
        for conjunct in inner_conjuncts:
            pair = self._correlation_pair(conjunct, inner_names, outer_names)
            if pair is not None:
                inner_keys.append(pair[0])
                outer_keys.append(pair[1])
            else:
                residual.append(conjunct)

        build_rel: RelExpr = inner_rel
        if residual:
            build_rel = Select(inner_rel, conjoin(*residual))
        if not self._closed(build_rel):
            return None

        child_plan = self._filtered_child(node, others)
        row_semi = HashSemiJoin(
            child_plan,
            self._lower(build_rel),
            outer_keys,
            inner_keys,
            negated,
            fallback=FilterOp(child_plan, ExistsExpr(exists.query, negated)),
        )
        # The keyless (uncorrelated) case must stay on the row operator:
        # its build probes emptiness with a single row, an early exit a
        # vectorized build would lose (and whose error behavior it would
        # change by evaluating the build predicate on every row).
        if not inner_keys:
            return row_semi
        col_semi = self._columnar_semi(
            node, others, build_rel, outer_keys, inner_keys, negated, row_semi
        )
        if col_semi is None:
            return row_semi
        if self.columnar == "force":
            return col_semi
        est = self.estimator
        child_rel = node.child if not others else Select(node.child, conjoin(*others))
        child_rows = est.estimate(child_rel)
        build_rows = est.estimate(build_rel)
        total = est.table_rows(col_semi.child_name) + est.table_rows(
            col_semi.build_name
        )
        out = child_rows * _C_ROW  # same output either way: cancels, kept
        col_cost = total * _C_VEC + (child_rows + build_rows) * _C_PROBE + out
        row_cost = (
            self._input_cost(child_rel)
            + self._input_cost(build_rel)
            + build_rows * _C_ROW
            + child_rows * _C_PROBE
            + out
        )
        return self._choose(
            f"semi({col_semi.child_name})",
            [
                ("ColumnarSemiJoin", col_cost, col_semi),
                (row_semi.label, row_cost, row_semi),
            ],
        )

    def _filtered_child(self, node: Select, others) -> PhysicalOp:
        """Lower the Select's child with the non-EXISTS conjuncts applied
        (re-entering selection lowering so point lookups still trigger)."""
        if not others:
            return self._lower(node.child)
        return self._lower_select(Select(node.child, conjoin(*others)))

    def _correlation_pair(self, conjunct, inner_names, outer_names):
        """Split ``inner_col = outer_expr`` (either orientation) out of an
        EXISTS predicate.  Returns ``(inner_expr, outer_expr)`` or ``None``.

        The inner side must resolve strictly inside the inner scope; every
        column of the outer side must resolve the same with or without an
        inner row merged in (:func:`_outer_side_safe`)."""
        if not (isinstance(conjunct, BinOp) and conjunct.op == "="):
            return None
        for inner, outer in ((conjunct.left, conjunct.right),
                             (conjunct.right, conjunct.left)):
            if _has_subquery(inner) or _has_subquery(outer):
                return None
            inner_cols = _cols_of(inner)
            outer_cols = _cols_of(outer)
            if not inner_cols or not outer_cols:
                continue
            if not all(_resolves_strictly(c, inner_names) for c in inner_cols):
                continue
            if not all(
                _outer_side_safe(c, inner_names, outer_names) for c in outer_cols
            ):
                continue
            return inner, outer
        return None

    def _closed(self, rel: RelExpr) -> bool:
        """True when every column reference in ``rel`` resolves strictly
        against its local scope, making the subtree's result independent of
        any outer row it is merged with."""
        if isinstance(rel, Table):
            return rel.name in self.catalog
        if isinstance(rel, Select):
            scope = scope_names(rel.child, self.catalog)
            return (
                scope is not None
                and self._scalars_closed([rel.pred], scope)
                and self._closed(rel.child)
            )
        if isinstance(rel, Project):
            scope = scope_names(rel.child, self.catalog)
            return (
                scope is not None
                and self._scalars_closed(
                    [i.expr for i in rel.items
                     if not (isinstance(i.expr, Col) and i.expr.name == "*")],
                    scope,
                )
                and self._closed(rel.child)
            )
        if isinstance(rel, Join):
            left = scope_names(rel.left, self.catalog)
            right = scope_names(rel.right, self.catalog)
            if left is None or right is None:
                return False
            preds = [] if rel.pred is None else [rel.pred]
            return (
                self._scalars_closed(preds, left | right)
                and self._closed(rel.left)
                and self._closed(rel.right)
            )
        if isinstance(rel, Aggregate):
            scope = scope_names(rel.child, self.catalog)
            exprs = list(rel.group_by)
            exprs.extend(
                item.call.arg for item in rel.aggs if item.call.arg is not None
            )
            return (
                scope is not None
                and self._scalars_closed(exprs, scope)
                and self._closed(rel.child)
            )
        if isinstance(rel, Sort):
            scope = scope_names(rel.child, self.catalog)
            return (
                scope is not None
                and self._scalars_closed([k.expr for k in rel.keys], scope)
                and self._closed(rel.child)
            )
        if isinstance(rel, (Distinct, Limit, Alias)):
            return self._closed(rel.child)
        return False  # OuterApply or unknown node

    def _scalars_closed(self, exprs, scope: frozenset[str]) -> bool:
        for expr in exprs:
            if _has_subquery(expr):
                return False
            if not all(_resolves_strictly(c, scope) for c in _cols_of(expr)):
                return False
        return True

    # ------------------------------------------------------------------
    # Point lookups

    def _best_index_lookup(self, node: Select, conjuncts):
        """Build ``σ[col = expr AND ...](T)`` as a hash-index point lookup.

        Applies when a probed column is part of the table's declared key
        (auto-indexed on first use) or carries an explicitly registered
        index, and the probe expression cannot see the table's row.  Among
        several indexable conjuncts, the one with the highest NDV (fewest
        expected matches) is probed.  Returns ``(plan, estimated_rows)`` or
        ``(None, None)``."""
        table = node.child
        if not isinstance(table, Table) or table.name not in self.catalog:
            return None, None
        names = scope_names(table, self.catalog)
        columns = set(self.catalog.get(table.name).column_names())
        declared_key = set(self.catalog.get(table.name).key)
        row_count = self.estimator.table_rows(table.name)

        best = None  # (estimated rows, conjunct index, column, probe expr)
        for i, conjunct in enumerate(conjuncts):
            if not (isinstance(conjunct, BinOp) and conjunct.op == "="):
                continue
            for col, probe in ((conjunct.left, conjunct.right),
                               (conjunct.right, conjunct.left)):
                if not isinstance(col, Col) or col.name not in columns:
                    continue
                if not _resolves_strictly(col, names):
                    continue
                if _has_subquery(probe):
                    continue
                if any(_interferes(c, names) for c in _cols_of(probe)):
                    continue
                indexed = col.name in declared_key or self.db.has_index(
                    table.name, col.name
                )
                if not indexed:
                    continue
                ndv = self.estimator.ndv(table.name, col.name) or 1
                estimated = row_count / max(ndv, 1)
                if best is None or estimated < best[0]:
                    best = (estimated, i, col, probe)
                break
        if best is None:
            return None, None
        estimated, i, col, probe = best
        residual = conjoin(*(conjuncts[:i] + conjuncts[i + 1 :]))
        fallback = FilterOp(SeqScan(table.name, table.alias), node.pred)
        return (
            IndexLookup(table.name, table.alias, col.name, probe, residual, fallback),
            estimated,
        )

    # ------------------------------------------------------------------
    # Columnar pipelines

    def _pipeline(self, table: Table, pred, head, head_exprs, fallback):
        """A :class:`ColumnarPipeline` over ``table``, or ``None`` when the
        mode, the statistics threshold, or expression support rules it
        out."""
        if self.columnar == "off":
            return None
        schema = self.catalog.get(table.name)
        columns = set(schema.column_names())
        alias = table.alias or table.name
        exprs = list(head_exprs)
        if pred is not None:
            exprs.append(pred)
        if not all(supported_expr(e, alias, columns) for e in exprs):
            return None
        if self.columnar == "force":
            min_rows = 0
        else:
            if self.db.stats(table.name).row_count < COLUMNAR_MIN_ROWS:
                return None
            min_rows = COLUMNAR_MIN_ROWS
        return ColumnarPipeline(
            table.name, table.alias, schema.column_names(), pred, head,
            fallback, min_rows,
        )

    def _scan_shape(self, rel: RelExpr):
        """Decompose ``rel`` as ``[σ] over base table``; returns
        ``(table, pred, select_node)`` or ``(None, None, None)``."""
        if isinstance(rel, Table) and rel.name in self.catalog:
            return rel, None, None
        if (
            isinstance(rel, Select)
            and isinstance(rel.child, Table)
            and rel.child.name in self.catalog
        ):
            return rel.child, rel.pred, rel
        return None, None, None

    def _lower_project(self, node: Project, allow_columnar: bool = True) -> PhysicalOp:
        plan = self._columnar_head(node, allow_columnar)
        if plan is not None:
            return plan
        return ProjectOp(self._lower(node.child, allow_columnar), node)

    def _lower_aggregate(self, node: Aggregate, allow_columnar: bool = True) -> PhysicalOp:
        plan = self._columnar_head(node, allow_columnar)
        if plan is not None:
            return plan
        return HashAggregate(self._lower(node.child, allow_columnar), node)

    def _columnar_head(self, node, allow_columnar: bool) -> PhysicalOp | None:
        """Try lowering ``γ`` or ``π`` over ``[σ] over base table`` as one
        columnar pipeline; ``None`` defers to the generic row lowering."""
        if not allow_columnar or self.columnar == "off":
            return None
        table, pred, select_node = self._scan_shape(node.child)
        if table is None:
            return None

        if isinstance(node, Aggregate):
            if any(
                item.call.distinct or item.call.func not in _FOLDABLE_AGGS
                for item in node.aggs
            ):
                return None
            head_exprs = list(node.group_by) + [
                item.call.arg for item in node.aggs if item.call.arg is not None
            ]
            head = ("aggregate", node)
            row_plan = HashAggregate(
                self._lower(node.child, allow_columnar=False), node
            )
            row_op = "HashAggregate"
            label = f"aggregate({table.name})"
        else:
            head_exprs = [item.expr for item in node.items]
            head = ("project", node)
            row_plan = ProjectOp(
                self._lower(node.child, allow_columnar=False), node
            )
            row_op = "Project"
            label = f"project({table.name})"

        pipeline = self._pipeline(table, pred, head, head_exprs, fallback=row_plan)
        if pipeline is None:
            return None
        if self.columnar == "force":
            return pipeline

        out = self.estimator.estimate(node)
        row_cost, col_cost = self._head_costs(
            table, pred, head_exprs, out, select_node
        )
        return self._choose(
            label,
            [("Columnar", col_cost, pipeline), (row_op, row_cost, row_plan)],
        )

    def _head_costs(self, table: Table, pred, head_exprs, out, select_node):
        """Cost a π/γ head on the row path vs. the columnar pipeline."""
        est = self.estimator
        row_count = est.table_rows(table.name)
        n_exprs = len(head_exprs)
        if pred is None:
            rows_in = row_count
            row_scan = row_count * _C_ROW
            col_scan = 0.0
        else:
            rows_in = row_count * est.selectivity(pred, table.name)
            lookup, probe_rows = self._best_index_lookup(
                select_node, split_conjuncts(pred)
            )
            if lookup is not None:
                # The row path would probe an index instead of scanning.
                row_scan = _C_PROBE + probe_rows * (_C_ROW + _C_EVAL)
            else:
                row_scan = row_count * (_C_ROW + _C_EVAL)
            col_scan = row_count * _C_VEC
        row_cost = row_scan + rows_in * _C_EVAL * n_exprs + out * _C_ROW
        col_cost = col_scan + rows_in * _C_VEC * n_exprs + out * _C_ROW
        return row_cost, col_cost

    def _columnar_order(self, node: Sort, count, allow_columnar: bool) -> PhysicalOp:
        """Lower ``τ`` (or ``LIMIT`` over ``τ``) with a columnar sort/top-N
        candidate when the child is a vectorizable filtered scan; otherwise
        exactly the generic :class:`SortOp`/:class:`TopN` lowering."""
        if allow_columnar and self.columnar != "off":
            table, pred, select_node = self._scan_shape(node.child)
        else:
            table, pred, select_node = None, None, None
        if table is not None:
            head_exprs = [k.expr for k in node.keys]
            head = ("sort", node) if count is None else ("topn", (node, count))
            row_child = self._lower(node.child, allow_columnar=False)
            row_plan = (
                SortOp(row_child, node)
                if count is None
                else TopN(row_child, node, count)
            )
            pipeline = self._pipeline(
                table, pred, head, head_exprs, fallback=row_plan
            )
            if pipeline is not None:
                if self.columnar == "force":
                    return pipeline
                est = self.estimator
                rows_in = est.table_rows(table.name)
                if pred is not None:
                    rows_in *= est.selectivity(pred, table.name)
                out = rows_in if count is None else min(max(count, 0), rows_in)
                row_cost, col_cost = self._head_costs(
                    table, pred, head_exprs, out, select_node
                )
                kind = "sort" if count is None else "topn"
                return self._choose(
                    f"{kind}({table.name})",
                    [
                        ("Columnar", col_cost, pipeline),
                        (row_plan.label, row_cost, row_plan),
                    ],
                )
        child = self._lower(node.child, allow_columnar)
        return SortOp(child, node) if count is None else TopN(child, node, count)

    def _vector_side(self, rel: RelExpr, exprs):
        """Decompose ``rel`` as a vectorizable (possibly filtered) scan.

        Returns the ``(table, alias, columns, pred)`` side descriptor the
        columnar join operators consume, or ``None`` when the shape or any
        expression (the scan predicate plus the join-key ``exprs`` that
        must evaluate against this side alone) is outside the vector
        subset."""
        table, pred, _ = self._scan_shape(rel)
        if table is None:
            return None
        alias = table.alias or table.name
        columns = self.catalog.get(table.name).column_names()
        column_set = set(columns)
        checks = list(exprs)
        if pred is not None:
            checks.append(pred)
        if not all(supported_expr(e, alias, column_set) for e in checks):
            return None
        return (table.name, alias, tuple(columns), pred)

    def _input_cost(self, rel: RelExpr) -> float:
        """Row-path cost of producing ``rel``'s rows: per-row dict
        materialization plus per-row predicate evaluation for filtered
        scans; cardinality × row cost for anything else."""
        table, pred, _ = self._scan_shape(rel)
        if table is not None:
            n = self.estimator.table_rows(table.name)
            return n * (_C_ROW + (_C_EVAL if pred is not None else 0.0))
        return self.estimator.estimate(rel) * _C_ROW

    # ------------------------------------------------------------------
    # Joins

    def _lower_join(self, node: Join, allow_columnar: bool = True) -> PhysicalOp:
        left_plan = self._lower(node.left)
        right_plan = self._lower(node.right)
        if node.pred is None:
            return NestedLoopJoin(left_plan, right_plan, node)

        left_names = scope_names(node.left, self.catalog)
        right_names = scope_names(node.right, self.catalog)
        if left_names is None or right_names is None:
            return NestedLoopJoin(left_plan, right_plan, node)

        left_keys: list[ScalarExpr] = []
        right_keys: list[ScalarExpr] = []
        residual: list[ScalarExpr] = []
        for conjunct in split_conjuncts(node.pred):
            keyed = False
            if isinstance(conjunct, BinOp) and conjunct.op == "=":
                a_side = _side_of_expr(conjunct.left, left_names, right_names)
                b_side = _side_of_expr(conjunct.right, left_names, right_names)
                if a_side == "left" and b_side == "right":
                    left_keys.append(conjunct.left)
                    right_keys.append(conjunct.right)
                    keyed = True
                elif a_side == "right" and b_side == "left":
                    left_keys.append(conjunct.right)
                    right_keys.append(conjunct.left)
                    keyed = True
            if not keyed:
                residual.append(conjunct)

        if not left_keys:
            return NestedLoopJoin(left_plan, right_plan, node)

        residual_pred = conjoin(*residual)
        hash_join = HashJoin(
            left_plan, right_plan, node, left_keys, right_keys, residual_pred
        )

        col_join = None
        if allow_columnar and self.columnar != "off":
            col_join = self._columnar_join(
                node, left_keys, right_keys, residual_pred, hash_join
            )
        if col_join is not None and self.columnar == "force":
            return col_join

        est = self.estimator
        # Index nested-loop only on explicit opt-in (create_index): for a
        # one-shot join the hash build is at least as good, but a
        # registered index persists across queries.  Among the
        # order-preserving strategies, estimated cost decides.
        index_candidate = None
        right_key = right_keys[0]
        if (
            len(right_keys) == 1
            and isinstance(node.right, Table)
            and isinstance(right_key, Col)
            and right_key.name
            in set(self.catalog.get(node.right.name).column_names())
            and self.db.has_index(node.right.name, right_key.name)
        ):
            left_rows = est.estimate(node.left)
            right_rows = est.estimate(node.right)
            ndv = est.ndv(node.right.name, right_key.name) or 1
            matches = right_rows / max(ndv, 1)
            inl = IndexNLJoin(
                left_plan,
                node,
                node.right.name,
                node.right.alias,
                right_key.name,
                left_keys[0],
                residual_pred,
                fallback=hash_join,
            )
            index_candidate = (
                "IndexNLJoin",
                left_rows * (_C_PROBE + matches * _C_ROW),
                inl,
            )

        if col_join is None:
            if index_candidate is None:
                return hash_join
            left_rows = est.estimate(node.left)
            right_rows = est.estimate(node.right)
            return self._choose(
                f"join({node.right.name})",
                [
                    index_candidate,
                    (
                        "HashJoin",
                        right_rows * _C_ROW + left_rows * (_C_PROBE + _C_ROW),
                        hash_join,
                    ),
                ],
            )

        # A columnar candidate replaces the child scans too, so this group
        # costs each strategy subtree-inclusively: row strategies pay their
        # inputs' per-row materialization, the vectorized join pays per-row
        # vector evaluation over the raw columns instead.
        left_rows = est.estimate(node.left)
        right_rows = est.estimate(node.right)
        out = est.estimate(node)
        total = est.table_rows(col_join.left_name) + est.table_rows(
            col_join.right_name
        )
        candidates = []
        if index_candidate is not None:
            op, cost, plan = index_candidate
            candidates.append((op, self._input_cost(node.left) + cost, plan))
        candidates.append(
            (
                "ColumnarHashJoin",
                total * _C_VEC
                + (left_rows + right_rows) * _C_PROBE
                + out * _C_ROW,
                col_join,
            )
        )
        candidates.append(
            (
                "HashJoin",
                self._input_cost(node.left)
                + self._input_cost(node.right)
                + right_rows * _C_ROW
                + left_rows * (_C_PROBE + _C_ROW)
                + out * _C_ROW,
                hash_join,
            )
        )
        return self._choose(f"join({col_join.right_name})", candidates)

    def _columnar_join(
        self, node: Join, left_keys, right_keys, residual, fallback
    ) -> ColumnarHashJoin | None:
        """A :class:`ColumnarHashJoin` for ``node``, or ``None`` when the
        join kind, either side's shape, any key/predicate/residual
        expression, or the statistics threshold rules it out."""
        if node.kind not in ("inner", "left"):
            return None
        left_side = self._vector_side(node.left, left_keys)
        right_side = self._vector_side(node.right, right_keys)
        if left_side is None or right_side is None:
            return None
        _, lalias, lcolumns, _ = left_side
        _, ralias, rcolumns, _ = right_side
        lcols, rcols = set(lcolumns), set(rcolumns)
        if residual is not None and not supported_join_expr(
            residual, lalias, lcols, ralias, rcols
        ):
            return None
        if self.columnar == "force":
            min_rows = 0
        else:
            total = self.estimator.table_rows(
                left_side[0]
            ) + self.estimator.table_rows(right_side[0])
            if total < COLUMNAR_MIN_ROWS:
                return None
            min_rows = COLUMNAR_MIN_ROWS
        layout = residual_layout(residual, lalias, lcols, ralias, rcols)
        return ColumnarHashJoin(
            node,
            left_side,
            right_side,
            left_keys,
            right_keys,
            residual,
            layout,
            fallback,
            min_rows,
        )

    def _columnar_semi(
        self, node: Select, others, build_rel, outer_keys, inner_keys, negated,
        fallback,
    ) -> ColumnarSemiJoin | None:
        """A :class:`ColumnarSemiJoin` for a decorrelated EXISTS, or
        ``None`` when either side's shape, any key expression, or the
        statistics threshold rules it out."""
        if self.columnar == "off":
            return None
        child_rel = (
            node.child if not others else Select(node.child, conjoin(*others))
        )
        child_side = self._vector_side(child_rel, outer_keys)
        build_side = self._vector_side(build_rel, inner_keys)
        if child_side is None or build_side is None:
            return None
        if self.columnar == "force":
            min_rows = 0
        else:
            total = self.estimator.table_rows(
                child_side[0]
            ) + self.estimator.table_rows(build_side[0])
            if total < COLUMNAR_MIN_ROWS:
                return None
            min_rows = COLUMNAR_MIN_ROWS
        return ColumnarSemiJoin(
            child_side,
            build_side,
            outer_keys,
            inner_keys,
            negated,
            fallback,
            min_rows,
        )
