"""Value semantics for the in-memory database engine.

Implements SQL-style three-valued comparisons against NULL (``None``),
byte-size estimation for data-transfer accounting, and sort keys that place
NULLs consistently.
"""

from __future__ import annotations

from typing import Any

Row = dict
"""A database row: column name → value.  Joined rows may additionally carry
alias-qualified keys (``"b.rnd_id"``) so qualified column references resolve."""


def sql_eq(left: Any, right: Any) -> bool | None:
    """SQL equality: NULL compared with anything is unknown (``None``)."""
    if left is None or right is None:
        return None
    return left == right


def sql_compare(op: str, left: Any, right: Any) -> bool | None:
    """Evaluate a comparison with SQL NULL semantics."""
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown comparison operator {op!r}")


def sql_and(left: bool | None, right: bool | None) -> bool | None:
    """Three-valued AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: bool | None, right: bool | None) -> bool | None:
    """Three-valued OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: bool | None) -> bool | None:
    """Three-valued NOT."""
    if value is None:
        return None
    return not value


def is_truthy(value: bool | None) -> bool:
    """WHERE-clause semantics: unknown filters the row out."""
    return value is True


def sql_avg(values: list) -> Any:
    """AVG over non-NULL values — the single source of division semantics.

    Uses Python true division, so integer inputs produce a float (matching
    MySQL, which returns a DECIMAL/float-typed average for integer columns,
    not an integer).  Returns NULL (``None``) over zero values.  Both the
    reference evaluator and the planned engine MUST call this helper so the
    engines can never disagree on rounding.
    """
    if not values:
        return None
    return sum(values) / len(values)


def value_size_bytes(value: Any) -> int:
    """Estimate the wire size of one value (for transfer accounting).

    The estimates follow typical JDBC/MySQL wire encodings closely enough
    for the experiments' *shape*: fixed-width numerics, length-prefixed
    strings.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 2 + len(value.encode("utf-8"))
    if isinstance(value, (list, tuple)):
        return sum(value_size_bytes(v) for v in value)
    return 16


def row_size_bytes(row: Row) -> int:
    """Estimate the wire size of one row (unqualified columns only)."""
    return sum(
        value_size_bytes(value) for name, value in row.items() if "." not in name
    )


class _NullsLast:
    """Sort key wrapper ordering NULLs after every non-NULL value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_NullsLast") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullsLast) and self.value == other.value


def nulls_last_key(value: Any) -> _NullsLast:
    """Return a sort key that orders NULLs last (ascending)."""
    return _NullsLast(value)


class _Reversed:
    """Sort key wrapper inverting the order (for DESC keys)."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.key == other.key


def descending_key(value: Any) -> _Reversed:
    """Return a sort key for a DESC column (NULLs first, mirroring ASC)."""
    return _Reversed(nulls_last_key(value))
