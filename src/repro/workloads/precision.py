"""The precision-recovery corpus: loops only the SSA layer can extract.

Each sample here is a realistic code shape that the purely *syntactic*
pipeline (``precision=False``) refuses to extract — an EQ1xx blocker
fires, or the cursor loop is not even recognised — but that the SSA
precision layer (:mod:`repro.analysis.ssa`, :mod:`repro.analysis.pointsto`)
proves safe:

* ``dead-logging`` / ``dead-writeback`` / ``dead-early-exit`` /
  ``dead-trycatch`` — a constant-false configuration flag guards the
  poisonous construct (undefined call, ``executeUpdate``, ``break``,
  ``try``); sparse conditional constant propagation proves the branch
  dead and pruning removes it before the lint gate runs;
* ``chained-cursor`` — the classic ``rs = q`` alias between opening a
  cursor and draining it with ``while (rs.next())``; copy-chain
  resolution normalises the loop the direct-definition scan misses;
* ``retained-local`` — the iterated result set is passed, after the
  loop, to a recursive (hence un-inlinable) helper; the interprocedural
  ``escapes_params`` summary proves the helper neither retains nor
  mutates it, downgrading the alias-escape blocker to informational.

``benchmarks/bench_precision.py`` replays this corpus under both modes
and pins the recovered-extraction count in ``BENCH_precision.json``;
each recovery is verified equivalent on an ``engine="both"`` database.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..algebra import Catalog
from ..db import Database


@dataclass(frozen=True)
class PrecisionSample:
    """One recovery scenario.

    ``blocked_without`` names the EQ1xx codes that gate extraction when
    the precision layer is off (empty for the cursor-chain shape, where
    the loop is simply never recognised as a cursor loop).
    """

    name: str
    function: str
    blocked_without: tuple[str, ...]
    source: str


PRECISION_SAMPLES: tuple[PrecisionSample, ...] = (
    PrecisionSample(
        name="dead-logging",
        function="totalOpenOrders",
        blocked_without=("EQ102",),
        source="""
totalOpenOrders() {
    debug = false;
    rows = executeQuery("from Orders as o where o.status = 'open'");
    total = 0;
    for (t : rows) {
        if (debug) {
            logAudit(t);
        }
        total = total + t.getAmount();
    }
    return total;
}
""",
    ),
    PrecisionSample(
        name="dead-writeback",
        function="countEmeaOrders",
        blocked_without=("EQ101",),
        source="""
countEmeaOrders() {
    migrate = false;
    rows = executeQuery("from Orders as o where o.region = 'emea'");
    count = 0;
    for (t : rows) {
        if (migrate) {
            executeUpdate("update orders set status = 'archived' where id = " + t.getId());
        }
        count = count + 1;
    }
    return count;
}
""",
    ),
    PrecisionSample(
        name="dead-early-exit",
        function="totalAllOrders",
        blocked_without=("EQ105",),
        source="""
totalAllOrders() {
    cap = 3 - 3;
    rows = executeQuery("from Orders as o");
    total = 0;
    for (t : rows) {
        if (cap > 0) {
            break;
        }
        total = total + t.getAmount();
    }
    return total;
}
""",
    ),
    PrecisionSample(
        name="dead-trycatch",
        function="maxApacAmount",
        blocked_without=("EQ106",),
        source="""
maxApacAmount() {
    strict = false;
    rows = executeQuery("from Orders as o where o.region = 'apac'");
    best = 0;
    for (t : rows) {
        if (strict) {
            try {
                best = t.getAmount();
            } catch (e) {
                best = 0;
            }
        }
        if (t.getAmount() > best) {
            best = t.getAmount();
        }
    }
    return best;
}
""",
    ),
    PrecisionSample(
        name="chained-cursor",
        function="totalDoneOrders",
        blocked_without=(),
        source="""
totalDoneOrders() {
    q = executeQueryCursor("from Orders as o where o.status = 'done'");
    rs = q;
    total = 0;
    while (rs.next()) {
        total = total + rs.getAmount();
    }
    return total;
}
""",
    ),
    PrecisionSample(
        name="retained-local",
        function="totalAmerOrders",
        blocked_without=("EQ103",),
        source="""
totalAmerOrders() {
    rows = executeQuery("from Orders as o where o.region = 'amer'");
    total = 0;
    for (t : rows) {
        total = total + t.getAmount();
    }
    kept = retain(rows, 2);
    return total + kept;
}

retain(c, n) {
    if (n > 0) {
        return retain(c, n - 1);
    }
    return 0;
}
""",
    ),
)


def precision_sample(name: str) -> PrecisionSample:
    for entry in PRECISION_SAMPLES:
        if entry.name == name:
            return entry
    raise KeyError(name)


def precision_catalog() -> Catalog:
    catalog = Catalog()
    catalog.define("orders", ["id", "amount", "status", "region"], key=("id",))
    return catalog


def precision_database(
    scale: int = 40, seed: int = 11, catalog: Catalog | None = None
) -> Database:
    """Synthetic order data, deterministic in ``seed``."""
    rng = random.Random(seed)
    db = Database(catalog or precision_catalog())
    statuses = ["open", "done"]
    regions = ["emea", "apac", "amer"]
    for i in range(1, scale + 1):
        db.insert(
            "orders",
            {
                "id": i,
                "amount": rng.randint(1, 900),
                "status": rng.choice(statuses),
                "region": rng.choice(regions),
            },
        )
    return db
