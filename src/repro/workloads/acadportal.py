"""AcadPortal — the academic portal in production use at IIT Bombay.

Experiment 3: 58/79 servlets extracted; "the cases where we were not able
to derive queries were mainly due to limitations in our implementation such
as the presence of operations which are not yet supported."  The 21
unsupported servlets below use exactly those operation classes (string
manipulation, custom comparators, index-based loops, early exits).

The paper also reports that ~20% of the manually-extracted queries fetched
*more* data than the form prints; ``MANUAL_QUERIES`` reproduces that
comparison set for the precision measurement.
"""

from __future__ import annotations

import random

from ..algebra import Catalog
from ..db import Database
from .servlets import (
    Servlet,
    aggregate_print,
    comparator_print,
    contains_filter_print,
    count_print,
    early_break_print,
    exists_print,
    indexed_while_print,
    join_print,
    max_print,
    projection_print,
    selection_print,
    substring_print,
)


def acadportal_catalog() -> Catalog:
    catalog = Catalog()
    catalog.define("students", ["id", "name", "dept", "year_", "cpi"], key=("id",))
    catalog.define("courses", ["id", "title", "dept", "credits", "semester"], key=("id",))
    catalog.define(
        "enrollment", ["id", "student_id", "course_id", "grade"], key=("id",)
    )
    catalog.define("faculty", ["id", "name", "dept", "courses_taught"], key=("id",))
    catalog.define("applications", ["id", "name", "status_", "score"], key=("id",))
    catalog.define("notices", ["id", "title", "dept", "views"], key=("id",))
    return catalog


def _build_servlets() -> list[Servlet]:
    servlets: list[Servlet] = []
    depts = [1, 2, 3, 4]
    # --- 58 extractable form pages ------------------------------------
    for d in depts:  # 4 × 4 = 16
        servlets.append(
            selection_print(f"StudentsInDept{d}", "Students", "s", "name", "dept", d)
        )
        servlets.append(
            selection_print(f"CoursesInDept{d}", "Courses", "c", "title", "dept", d)
        )
        servlets.append(
            count_print(f"CountStudentsDept{d}", "Students", "s", "dept", d)
        )
        servlets.append(
            count_print(f"CountCoursesDept{d}", "Courses", "c", "dept", d)
        )
    for y in (1, 2, 3, 4):  # 8
        servlets.append(
            selection_print(f"StudentsYear{y}", "Students", "s", "name", "year_", y)
        )
        servlets.append(
            exists_print(f"AnyYear{y}Student", "Students", "s", "year_", y)
        )
    servlets.extend(  # 12
        [
            projection_print("StudentDirectory", "Students", "s", ["name", "dept"]),
            projection_print("CourseCatalog", "Courses", "c", ["title", "credits"]),
            projection_print("FacultyDirectory", "Faculty", "f", ["name", "dept"]),
            projection_print("NoticeBoard", "Notices", "n", ["title"]),
            projection_print("ApplicationList", "Applications", "a", ["name", "score"]),
            max_print("TopCpi", "Students", "s", "cpi"),
            max_print("TopScore", "Applications", "a", "score"),
            aggregate_print("TotalCredits", "Courses", "c", "credits"),
            aggregate_print("TotalViews", "Notices", "n", "views"),
            aggregate_print("TotalTaught", "Faculty", "f", "courses_taught"),
            count_print("PendingApplications", "Applications", "a", "status_", 0),
            exists_print("AnyAcceptedApplication", "Applications", "a", "status_", 2),
        ]
    )
    for sem in (1, 2):  # 4
        servlets.append(
            selection_print(f"SemesterCourses{sem}", "Courses", "c", "title", "semester", sem)
        )
        servlets.append(
            count_print(f"CountSemesterCourses{sem}", "Courses", "c", "semester", sem)
        )
    servlets.extend(  # 6 join-style detail pages
        [
            join_print("StudentGrades", "Students", "s", "Enrollment", "e", "grade", "student_id", "id"),
            join_print("CourseEnrollment", "Courses", "c", "Enrollment", "e", "grade", "course_id", "id"),
            join_print("DeptNotices", "Faculty", "f", "Notices", "n", "title", "dept", "dept"),
            join_print("StudentCourses", "Students", "s", "Enrollment", "e", "course_id", "student_id", "id"),
            join_print("FacultyDeptCourses", "Faculty", "f", "Courses", "c", "title", "dept", "dept"),
            join_print("ApplicantsLikeStudents", "Applications", "a", "Students", "s", "name", "id", "id"),
        ]
    )
    for d in depts[:3]:  # 6
        servlets.append(max_print(f"TopCpiDeptWide{d}", "Students", "s", "cpi"))
        servlets.append(
            exists_print(f"DeptHasFaculty{d}", "Faculty", "f", "dept", d)
        )
    servlets.extend(  # 6
        [
            count_print("GradeACount", "Enrollment", "e", "grade", 10),
            count_print("GradeFCount", "Enrollment", "e", "grade", 4),
            aggregate_print("GradePointTotal", "Enrollment", "e", "grade"),
            max_print("BestGrade", "Enrollment", "e", "grade"),
            exists_print("AnyFailures", "Enrollment", "e", "grade", 4),
            projection_print("EnrollmentDump", "Enrollment", "e", ["student_id", "course_id"]),
        ]
    )
    assert len(servlets) == 58, len(servlets)

    # --- 21 pages using unsupported operations -------------------------
    unsupported: list[Servlet] = [
        substring_print("StudentInitials", "Students", "s", "name"),
        substring_print("CourseCodes", "Courses", "c", "title"),
        substring_print("FacultyInitials", "Faculty", "f", "name"),
        substring_print("NoticeTeasers", "Notices", "n", "title"),
        contains_filter_print("SearchStudents", "Students", "s", "name", "kumar"),
        contains_filter_print("SearchCourses", "Courses", "c", "title", "intro"),
        contains_filter_print("SearchFaculty", "Faculty", "f", "name", "prof"),
        contains_filter_print("SearchNotices", "Notices", "n", "title", "exam"),
        contains_filter_print("SearchApplications", "Applications", "a", "name", "phd"),
        comparator_print("StudentsAfterM", "Students", "s", "name", "m"),
        comparator_print("CoursesAfterD", "Courses", "c", "title", "d"),
        comparator_print("FacultyAfterK", "Faculty", "f", "name", "k"),
        comparator_print("NoticesAfterF", "Notices", "n", "title", "f"),
        indexed_while_print("PaginatedStudents", "Students", "s", "name"),
        indexed_while_print("PaginatedCourses", "Courses", "c", "title"),
        indexed_while_print("PaginatedNotices", "Notices", "n", "title"),
        early_break_print("FirstTopper", "Students", "s", "name", "cpi", 10),
        early_break_print("FirstPending", "Applications", "a", "name", "status_", 0),
        early_break_print("FirstFreshman", "Students", "s", "name", "year_", 1),
        substring_print("ApplicationCodes", "Applications", "a", "name"),
        contains_filter_print("SearchEnrollmentNotes", "Students", "s", "name", "dual"),
    ]
    assert len(unsupported) == 21
    servlets.extend(unsupported)
    return servlets


ACADPORTAL_SERVLETS: list[Servlet] = _build_servlets()

#: Manually-extracted queries for the precision comparison: for roughly 20%
#: of forms the hand-written query fetches more columns than the form
#: prints (paper: "in about 20% of the cases, the manually extracted query
#: was less precise").  Maps servlet name → (manual query, columns printed).
MANUAL_QUERIES: dict[str, tuple[str, int]] = {
    # servlet → (manual SQL — over-fetching SELECT *, printed column count)
    "StudentDirectory": ("select * from students", 2),
    "CourseCatalog": ("select * from courses", 2),
    "NoticeBoard": ("select * from notices", 1),
    "StudentsInDept1": ("select * from students where dept = 1", 1),
    "SemesterCourses1": ("select * from courses where semester = 1", 1),
    # precise manual queries (the other ~80%)
    "FacultyDirectory": ("select name, dept from faculty", 2),
    "ApplicationList": ("select name, score from applications", 2),
    "EnrollmentDump": ("select student_id, course_id from enrollment", 2),
    "CoursesInDept1": ("select title from courses where dept = 1", 1),
    "StudentsYear1": ("select name from students where year_ = 1", 1),
    "TopCpi": ("select max(cpi) from students", 1),
    "TopScore": ("select max(score) from applications", 1),
    "TotalCredits": ("select sum(credits) from courses", 1),
    "TotalViews": ("select sum(views) from notices", 1),
    "TotalTaught": ("select sum(courses_taught) from faculty", 1),
    "PendingApplications": ("select count(*) from applications where status_ = 0", 1),
    "GradeACount": ("select count(*) from enrollment where grade = 10", 1),
    "GradeFCount": ("select count(*) from enrollment where grade = 4", 1),
    "BestGrade": ("select max(grade) from enrollment", 1),
    "GradePointTotal": ("select sum(grade) from enrollment", 1),
    "CountStudentsDept1": ("select count(*) from students where dept = 1", 1),
    "CountCoursesDept1": ("select count(*) from courses where dept = 1", 1),
    "CountSemesterCourses1": ("select count(*) from courses where semester = 1", 1),
    "AnyFailures": ("select count(*) from enrollment where grade = 4", 1),
    "StudentCourses": ("select e.course_id from students s join enrollment e on e.student_id = s.id", 1),
}


def acadportal_database(
    scale: int = 80, seed: int = 53, catalog: Catalog | None = None
) -> Database:
    rng = random.Random(seed)
    db = Database(catalog or acadportal_catalog())
    for i in range(1, scale + 1):
        db.insert(
            "students",
            {
                "id": i,
                "name": f"student{i}",
                "dept": i % 4 + 1,
                "year_": i % 4 + 1,
                "cpi": rng.randint(4, 10),
            },
        )
        db.insert(
            "enrollment",
            {"id": i, "student_id": i, "course_id": i % 20 + 1, "grade": rng.randint(4, 10)},
        )
    for i in range(1, 21):
        db.insert(
            "courses",
            {
                "id": i,
                "title": f"course{i}",
                "dept": i % 4 + 1,
                "credits": rng.choice([6, 8]),
                "semester": i % 2 + 1,
            },
        )
    for i in range(1, 11):
        db.insert(
            "faculty",
            {"id": i, "name": f"faculty{i}", "dept": i % 4 + 1, "courses_taught": rng.randint(1, 4)},
        )
        db.insert(
            "notices", {"id": i, "title": f"notice{i}", "dept": i % 4 + 1, "views": rng.randint(0, 500)}
        )
        db.insert(
            "applications",
            {"id": i, "name": f"applicant{i}", "status_": rng.randint(0, 2), "score": rng.randint(0, 100)},
        )
    return db
