"""Matoso — the Mahjong tournament ranking workload (paper Figure 2).

``findMaxScore`` computes the highest score across all tables of a round
(four players per table).  This is the running example of the paper and the
Experiment 7 / Figure 10 aggregation workload.  ``findMaxScoreWithPlayer``
is the dependent-aggregation variant Appendix B discusses ("the original
code also finds the player who has the highest score along with the score
itself").
"""

from __future__ import annotations

import random

from ..algebra import Catalog
from ..db import Database

FIND_MAX_SCORE = """
findMaxScore() {
    boards = executeQuery("from Board as b where b.rnd_id = 1");
    scoreMax = 0;
    for (t : boards) {
        p1 = t.getP1();
        p2 = t.getP2();
        p3 = t.getP3();
        p4 = t.getP4();
        score = Math.max(p1, p2);
        score = Math.max(score, p3);
        score = Math.max(score, p4);
        if (score > scoreMax)
            scoreMax = score;
    }
    return scoreMax;
}
"""

FIND_MAX_SCORE_WITH_PLAYER = """
findMaxScoreWithPlayer() {
    boards = executeQuery("from Board as b where b.rnd_id = 1");
    scoreMax = 0;
    bestBoard = null;
    for (t : boards) {
        score = Math.max(Math.max(t.getP1(), t.getP2()), Math.max(t.getP3(), t.getP4()));
        if (score > scoreMax) {
            scoreMax = score;
            bestBoard = t.getId();
        }
    }
    return new Pair(scoreMax, bestBoard);
}
"""


def matoso_catalog() -> Catalog:
    catalog = Catalog()
    catalog.define("board", ["id", "rnd_id", "p1", "p2", "p3", "p4"], key=("id",))
    return catalog


def matoso_database(
    rows: int = 100, rounds: int = 4, seed: int = 17, catalog: Catalog | None = None
) -> Database:
    """Synthetic tournament data: ``rows`` boards spread over ``rounds``."""
    rng = random.Random(seed)
    db = Database(catalog or matoso_catalog())
    for i in range(1, rows + 1):
        db.insert(
            "board",
            {
                "id": i,
                "rnd_id": (i % rounds) + 1,
                "p1": rng.randint(0, 500),
                "p2": rng.randint(0, 500),
                "p3": rng.randint(0, 500),
                "p4": rng.randint(0, 500),
            },
        )
    return db
