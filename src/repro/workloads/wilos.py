"""The 33 Wilos code samples of Table 1.

Wilos is the open-source orchestration application both QBS (Cheung et al.)
and the paper evaluate on.  Each sample here re-creates, in MiniJava, the
*code shape* that determined the paper's reported disposition for that
Table 1 row:

* ``success``  — EqSQL extracts equivalent SQL (17 rows, time < 2 s);
* ``capable``  — covered by the techniques but not the reference
  implementation's SQL emitters (7 rows, "✓");
* ``failed``   — a precondition is violated: custom comparators,
  polymorphic type checks, database updates, extra loop-carried
  dependences, non-cursor loops (9 rows, "–").

``qbs_time_s`` is the QBS column of Table 1 as published (QBS itself is not
available; the paper likewise cites these numbers from [4]).
``batching`` marks the 7 samples with parameterized iterative query
invocation, the applicability condition of Guravannavar et al. [11]
(Experiment 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..algebra import Catalog
from ..db import Database

EXPECT_SUCCESS = "success"
EXPECT_CAPABLE = "capable"
EXPECT_FAILED = "failed"


@dataclass(frozen=True)
class WilosSample:
    """One row of Table 1."""

    number: int
    file: str
    line: int
    qbs_time_s: float | None  # None = "–" in the QBS column
    expected: str
    batching: bool
    function: str
    source: str


def wilos_catalog() -> Catalog:
    """Schema for the Wilos-derived samples."""
    catalog = Catalog()
    catalog.define("activity", ["id", "name", "kind", "process_id", "finished"], key=("id",))
    catalog.define("guidance", ["id", "name", "gtype", "activity_id"], key=("id",))
    catalog.define("project", ["id", "name", "finished", "launched", "budget"], key=("id",))
    catalog.define("role", ["id", "role_name", "project_id"], key=("id",))
    catalog.define("wilosuser", ["id", "name", "login", "pass_word", "role_id", "active"], key=("id",))
    catalog.define("participant", ["id", "user_id", "project_id", "affected"], key=("id",))
    catalog.define("phase", ["id", "name", "project_id", "done"], key=("id",))
    catalog.define("process", ["id", "name", "published"], key=("id",))
    catalog.define("workproduct", ["id", "name", "state", "descriptor_id"], key=("id",))
    catalog.define("descriptor", ["id", "name", "kind"], key=("id",))
    catalog.define("iteration", ["id", "project_id", "finished", "length"], key=("id",))
    catalog.define("affectedto", ["id", "user_id", "activity_id"], key=("id",))
    return catalog


def wilos_database(
    scale: int = 50, seed: int = 7, catalog: Catalog | None = None
) -> Database:
    """Synthetic Wilos data, deterministic in ``seed``."""
    rng = random.Random(seed)
    db = Database(catalog or wilos_catalog())
    states = ["draft", "review", "final"]
    kinds = ["task", "milestone"]
    for i in range(1, scale + 1):
        db.insert("process", {"id": i % 10 + 1, "name": f"proc{i % 10}", "published": i % 2 == 0})
    for i in range(1, scale + 1):
        db.insert(
            "activity",
            {
                "id": i,
                "name": f"activity{i}",
                "kind": rng.choice(kinds),
                "process_id": i % 10 + 1,
                "finished": rng.random() < 0.5,
            },
        )
        db.insert(
            "guidance",
            {
                "id": i,
                "name": f"guide{i}",
                "gtype": rng.choice(["checklist", "template"]),
                "activity_id": i,
            },
        )
        db.insert(
            "project",
            {
                "id": i,
                "name": f"project{i}",
                "finished": rng.random() < 0.2,
                "launched": rng.random() < 0.8,
                "budget": rng.randint(1, 1000),
            },
        )
        db.insert(
            "iteration",
            {"id": i, "project_id": i, "finished": rng.random() < 0.5, "length": rng.randint(1, 30)},
        )
        db.insert("phase", {"id": i, "name": f"phase{i}", "project_id": i, "done": rng.random() < 0.7})
        db.insert(
            "workproduct",
            {"id": i, "name": f"wp{i}", "state": rng.choice(states), "descriptor_id": i % 20 + 1},
        )
    for i in range(1, 21):
        db.insert("descriptor", {"id": i, "name": f"desc{i}", "kind": rng.choice(kinds)})
    for i in range(1, max(2, scale // 2)):
        role_id = i % 8 + 1
        db.insert(
            "wilosuser",
            {
                "id": i,
                "name": f"user{i}",
                "login": f"login{i}",
                "pass_word": f"pw{i}",
                "role_id": role_id,
                "active": rng.random() < 0.9,
            },
        )
        db.insert(
            "participant",
            {"id": i, "user_id": i, "project_id": i % scale + 1, "affected": rng.random() < 0.5},
        )
        db.insert("affectedto", {"id": i, "user_id": i, "activity_id": i % scale + 1})
    for i in range(1, 9):
        db.insert("role", {"id": i, "role_name": f"role{i}", "project_id": i})
    return db


def _sample(number, file, line, qbs, expected, batching, function, source) -> WilosSample:
    return WilosSample(
        number=number,
        file=file,
        line=line,
        qbs_time_s=qbs,
        expected=expected,
        batching=batching,
        function=function,
        source=source,
    )


WILOS_SAMPLES: list[WilosSample] = [
    # 1 — selection inside a cursor loop.
    _sample(1, "ActivityService", 401, None, EXPECT_SUCCESS, False, "getFinishedActivities", """
    getFinishedActivities() {
        activities = executeQuery("from Activity as a");
        result = new ArrayList();
        for (a : activities) {
            if (a.getFinished()) { result.add(a.getName()); }
        }
        return result;
    }
    """),
    # 2 — projection of a computed value.
    _sample(2, "ActivityService", 328, None, EXPECT_SUCCESS, False, "getActivityLabels", """
    getActivityLabels() {
        activities = executeQuery("from Activity as a");
        labels = new ArrayList();
        for (a : activities) {
            labels.add(a.getName() + "/" + a.getKind());
        }
        return labels;
    }
    """),
    # 3 — conjunctive selection.
    _sample(3, "GuidanceService", 140, None, EXPECT_SUCCESS, False, "getChecklists", """
    getChecklists(aid) {
        guides = executeQuery("from Guidance as g");
        result = new ArrayList();
        for (g : guides) {
            if (g.getGtype() == "checklist" && g.getActivity_id() == aid) {
                result.add(g.getName());
            }
        }
        return result;
    }
    """),
    # 4 — existence check.
    _sample(4, "GuidanceService", 154, None, EXPECT_SUCCESS, False, "hasTemplate", """
    hasTemplate(aid) {
        guides = executeQuery("from Guidance as g");
        found = false;
        for (g : guides) {
            if (g.getGtype() == "template" && g.getActivity_id() == aid) {
                found = true;
            }
        }
        return found;
    }
    """),
    # 5 — polymorphic type comparison (paper limitation; QBS also fails).
    _sample(5, "ProjectService", 266, None, EXPECT_FAILED, False, "getConcretePhases", """
    getConcretePhases() {
        elements = executeQuery("from Phase as p");
        result = new ArrayList();
        for (e : elements) {
            if (e.getClass().equals("ConcretePhase")) { result.add(e.getName()); }
        }
        return result;
    }
    """),
    # 6 — unfinished projects (the Experiment 5 sample).
    _sample(6, "ProjectService", 297, 19.0, EXPECT_SUCCESS, False, "getUnfinishedProjects", """
    getUnfinishedProjects() {
        projects = executeQuery("from Project as p");
        result = new ArrayList();
        for (p : projects) {
            if (p.getFinished() == false) { result.add(p); }
        }
        return result;
    }
    """),
    # 7 — selection via custom comparator (paper limitation).
    _sample(7, "ProjectService", 338, None, EXPECT_FAILED, False, "getProjectsAfter", """
    getProjectsAfter(pivot) {
        projects = executeQuery("from Project as p");
        result = new ArrayList();
        for (p : projects) {
            if (p.getName().compareTo(pivot) > 0) { result.add(p.getName()); }
        }
        return result;
    }
    """),
    # 8 — conditional count.
    _sample(8, "ProjectService", 394, 21.0, EXPECT_SUCCESS, False, "countLaunched", """
    countLaunched() {
        projects = executeQuery("from Project as p");
        n = 0;
        for (p : projects) {
            if (p.getLaunched()) { n = n + 1; }
        }
        return n;
    }
    """),
    # 9 — sum aggregate.
    _sample(9, "ProjectService", 410, 39.0, EXPECT_SUCCESS, False, "totalBudget", """
    totalBudget() {
        projects = executeQuery("from Project as p");
        total = 0;
        for (p : projects) { total = total + p.getBudget(); }
        return total;
    }
    """),
    # 10 — nested-loop join (batching applicable: query inside loop).
    _sample(10, "ProjectService", 248, 150.0, EXPECT_SUCCESS, True, "getProjectPhases", """
    getProjectPhases() {
        projects = executeQuery("from Project as p where p.launched = true");
        result = new ArrayList();
        for (p : projects) {
            phases = executeQuery("select ph.name from Phase ph where ph.project_id = " + p.getId());
            for (ph : phases) { result.add(ph.getName()); }
        }
        return result;
    }
    """),
    # 11 — parameterized query in loop → join (batching applicable).
    _sample(11, "AffectedtoDao", 13, 72.0, EXPECT_SUCCESS, True, "getAffectedActivities", """
    getAffectedActivities() {
        links = executeQuery("from Affectedto as l");
        result = new ArrayList();
        for (l : links) {
            acts = executeQuery("select a.name from Activity a where a.id = " + l.getActivity_id());
            for (a : acts) { result.add(a.getName()); }
        }
        return result;
    }
    """),
    # 12 — database update inside the loop (P3; batching still applies).
    _sample(12, "ConcreteActivityDao", 139, None, EXPECT_FAILED, True, "archiveFinished", """
    archiveFinished() {
        activities = executeQuery("from Activity as a");
        n = 0;
        for (a : activities) {
            if (a.getFinished()) {
                executeUpdate("update activity set kind = 'archived' where id = " + a.getId());
                n = n + 1;
            }
        }
        return n;
    }
    """),
    # 13 — string containment filter (technique-capable, unimplemented).
    _sample(13, "ConcreteActivityService", 133, None, EXPECT_CAPABLE, False, "findByKeyword", """
    findByKeyword(kw) {
        activities = executeQuery("from Activity as a");
        result = new ArrayList();
        for (a : activities) {
            if (a.getName().contains(kw)) { result.add(a.getName()); }
        }
        return result;
    }
    """),
    # 14 — nested query + collection-size condition (capable; batching ✓).
    _sample(14, "ConcreteRoleAffectationService", 55, 310.0, EXPECT_CAPABLE, True, "usersWithRoles", """
    usersWithRoles() {
        users = executeQuery("from WilosUser as u");
        result = new ArrayList();
        for (u : users) {
            roles = executeQuery("select r.role_name from Role r where r.id = " + u.getRole_id());
            if (roles.size() > 0) { result.add(u.getName()); }
        }
        return result;
    }
    """),
    # 15 — dependent accumulators, the Figure 7 shape (batching ✓).
    _sample(15, "ConcreteRoleDescriptorService", 181, 290.0, EXPECT_FAILED, True, "weightedDescriptors", """
    weightedDescriptors() {
        descs = executeQuery("from Descriptor as d");
        agg = 0;
        weighted = 0;
        for (d : descs) {
            extras = executeQuery("select w.state from Workproduct w where w.descriptor_id = " + d.getId());
            agg = agg + extras.size();
            weighted = weighted + agg;
        }
        return weighted;
    }
    """),
    # 16 — index-based while loop (not a cursor loop).
    _sample(16, "ConcreteWorkBreakdownElementService", 55, None, EXPECT_FAILED, False, "sumFirstLengths", """
    sumFirstLengths(k) {
        iterations = executeQuery("from Iteration as i");
        total = 0;
        j = 0;
        while (j < k) {
            total = total + j;
            j = j + 1;
        }
        return total;
    }
    """),
    # 17 — unconditional early exit (paper: loops must not contain break).
    _sample(17, "ConcreteWorkProductDescriptorService", 236, 284.0, EXPECT_FAILED, False, "firstFinalProduct", """
    firstFinalProduct() {
        products = executeQuery("from Workproduct as w");
        name = null;
        for (w : products) {
            if (w.getState() == "final") {
                name = w.getName();
                break;
            }
        }
        return name;
    }
    """),
    # 18 — max aggregate.
    _sample(18, "IterationService", 103, None, EXPECT_SUCCESS, False, "longestIteration", """
    longestIteration() {
        iterations = executeQuery("from Iteration as i");
        longest = 0;
        for (i : iterations) {
            if (i.getLength() > longest) { longest = i.getLength(); }
        }
        return longest;
    }
    """),
    # 19 — credential existence check.
    _sample(19, "LoginService", 103, 125.0, EXPECT_SUCCESS, False, "checkLogin", """
    checkLogin(login, pw) {
        users = executeQuery("from WilosUser as u");
        ok = false;
        for (u : users) {
            if (u.getLogin() == login && u.getPass_word() == pw) { ok = true; }
        }
        return ok;
    }
    """),
    # 20 — boolean early exit (removed by preprocessing, Appendix B).
    _sample(20, "LoginService", 83, 164.0, EXPECT_SUCCESS, False, "isActiveUser", """
    isActiveUser(login) {
        users = executeQuery("from WilosUser as u where u.active = true");
        found = false;
        for (u : users) {
            if (u.getLogin() == login) { found = true; break; }
        }
        return found;
    }
    """),
    # 21 — min aggregate.
    _sample(21, "ParticipantBean", 1079, 31.0, EXPECT_SUCCESS, False, "cheapestProjectBudget", """
    cheapestProjectBudget() {
        projects = executeQuery("from Project as p where p.launched = true");
        cheapest = 100000;
        for (p : projects) {
            if (p.getBudget() < cheapest) { cheapest = p.getBudget(); }
        }
        return cheapest;
    }
    """),
    # 22 — running aggregate feeding a second accumulator (extra lcfd).
    _sample(22, "ParticipantBean", 681, 121.0, EXPECT_FAILED, False, "runningAverageish", """
    runningAverageish() {
        parts = executeQuery("from Participant as pt");
        count = 0;
        acc = 0;
        for (pt : parts) {
            count = count + 1;
            acc = acc + count;
        }
        return acc;
    }
    """),
    # 23 — substring in the collected payload (capable).
    _sample(23, "ParticipantService", 146, 281.0, EXPECT_CAPABLE, False, "shortUserNames", """
    shortUserNames() {
        users = executeQuery("from WilosUser as u");
        result = new ArrayList();
        for (u : users) {
            result.add(u.getName().substring(0, 4));
        }
        return result;
    }
    """),
    # 24 — per-row correlated aggregation → group by (batching ✓).
    _sample(24, "ParticipantService", 119, 301.0, EXPECT_SUCCESS, True, "participantsPerProject", """
    participantsPerProject() {
        projects = executeQuery("from Project as p where p.launched = true");
        result = new ArrayList();
        for (p : projects) {
            n = 0;
            parts = executeQuery("select pt.id from Participant pt where pt.project_id = " + p.getId());
            for (pt : parts) { n = n + 1; }
            result.add(new Pair(p.getName(), n));
        }
        return result;
    }
    """),
    # 25 — argmax over a *different* measure than the guard (not the
    # Appendix B pattern; batching ✓ via the inner query).
    _sample(25, "ParticipantService", 266, 260.0, EXPECT_FAILED, True, "oddPick", """
    oddPick() {
        projects = executeQuery("from Project as p");
        best = null;
        m = 0;
        for (p : projects) {
            extras = executeQuery("select ph.name from Phase ph where ph.project_id = " + p.getId());
            m = m + extras.size();
            if (p.getBudget() > m) { best = p.getName(); }
        }
        return best;
    }
    """),
    # 26 — universal check → NOT EXISTS.
    _sample(26, "PhaseService", 98, None, EXPECT_SUCCESS, False, "allPhasesDone", """
    allPhasesDone(pid) {
        phases = executeQuery("from Phase as ph");
        all_done = true;
        for (ph : phases) {
            if (ph.getProject_id() == pid && ph.getDone() == false) {
                all_done = false;
            }
        }
        return all_done;
    }
    """),
    # 27 — distinct set collection.
    _sample(27, "ProcessBean", 248, 82.0, EXPECT_SUCCESS, False, "distinctKinds", """
    distinctKinds() {
        activities = executeQuery("from Activity as a");
        kinds = new HashSet();
        for (a : activities) { kinds.add(a.getKind()); }
        return kinds;
    }
    """),
    # 28 — guarded max with computed measure.
    _sample(28, "ProcessManagerBean", 243, 50.0, EXPECT_SUCCESS, False, "maxPublishedBudget", """
    maxPublishedBudget() {
        projects = executeQuery("from Project as p");
        best = 0;
        for (p : projects) {
            if (p.getLaunched()) {
                if (p.getBudget() > best) { best = p.getBudget(); }
            }
        }
        return best;
    }
    """),
    # 29 — iterates a caller-supplied collection, not a query result.
    _sample(29, "RoleDao", 15, None, EXPECT_FAILED, False, "namesOf", """
    namesOf(roles) {
        result = new ArrayList();
        for (r : roles) {
            result.add(r.getRole_name());
        }
        return result;
    }
    """),
    # 30 — nested-loop join with a string transform in the payload
    # (capable; Experiment 6 uses the simplified version without it).
    _sample(30, "RoleService", 15, 150.0, EXPECT_CAPABLE, False, "userRoleReport", """
    userRoleReport() {
        users = executeQuery("from WilosUser as u");
        result = new ArrayList();
        for (u : users) {
            if (u.getName().startsWith("user")) {
                result.add(u.getName());
            }
        }
        return result;
    }
    """),
    # 31 — empty-string check (capable).
    _sample(31, "WilosUserBean", 717, 23.0, EXPECT_CAPABLE, False, "usersWithNames", """
    usersWithNames() {
        users = executeQuery("from WilosUser as u");
        result = new ArrayList();
        for (u : users) {
            if (!u.getName().isEmpty()) { result.add(u.getLogin()); }
        }
        return result;
    }
    """),
    # 32 — indexOf in a filter (capable).
    _sample(32, "WorkProductsExpTableBean", 990, 52.0, EXPECT_CAPABLE, False, "productsWithDash", """
    productsWithDash() {
        products = executeQuery("from Workproduct as w");
        result = new ArrayList();
        for (w : products) {
            if (w.getName().indexOf("-") >= 0) { result.add(w.getName()); }
        }
        return result;
    }
    """),
    # 33 — suffix match in a filter (capable).
    _sample(33, "WorkProductsExpTableBean", 974, 50.0, EXPECT_CAPABLE, False, "draftProducts", """
    draftProducts() {
        products = executeQuery("from Workproduct as w");
        result = new ArrayList();
        for (w : products) {
            if (w.getName().endsWith("0")) { result.add(w.getName()); }
        }
        return result;
    }
    """),
]

#: Sample #30 "slightly simplified to be handled by our current
#: implementation" (Experiment 6): the WilosUser ⋈ Role nested loop.
SAMPLE_30_SIMPLIFIED = """
userRoleReport() {
    users = executeQuery("from WilosUser as u");
    result = new ArrayList();
    for (u : users) {
        roles = executeQuery("select r.role_name from Role r where r.id = " + u.getRole_id());
        for (r : roles) {
            result.add(u.getName() + ":" + r.getRole_name());
        }
    }
    return result;
}
"""


def sample(number: int) -> WilosSample:
    """Return Table 1 row ``number`` (1-based)."""
    return WILOS_SAMPLES[number - 1]


def expected_counts() -> dict[str, int]:
    """The Table 1 totals the reproduction must match."""
    counts = {EXPECT_SUCCESS: 0, EXPECT_CAPABLE: 0, EXPECT_FAILED: 0}
    for s in WILOS_SAMPLES:
        counts[s.expected] += 1
    return counts
