"""Servlet generation shared by the keyword-search workloads (Experiment 3).

Keyword-search systems for form interfaces (paper [6]) need, per servlet,
an SQL query retrieving exactly the data the form prints.  Experiment 3
runs the extractor over the servlets of RuBiS, RuBBoS and AcadPortal.  A
servlet here is a MiniJava function that prints query-derived data; the
suites instantiate a fixed set of *shapes* (selection print, projection
print, aggregate print, exists print, join print, correlated-detail print)
over their own schemas — which is exactly what CRUD servlet code looks
like — plus, for AcadPortal, shapes using operations the reference
implementation does not support (its reported 58/79).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import STATUS_SUCCESS, ExtractionReport


@dataclass(frozen=True)
class Servlet:
    """One form servlet: a function printing query results."""

    name: str
    function: str
    source: str
    #: Whether the paper's implementation extracts all of its queries.
    expected_extractable: bool


def selection_print(name, table, alias, col, pred_col, pred_val) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        for (t : rows) {{
            if (t.get{pred_col.capitalize()}() == {pred_val}) {{
                print(t.get{col.capitalize()}());
            }}
        }}
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=True)


def projection_print(name, table, alias, cols) -> Servlet:
    body = " + \"|\" + ".join(f"t.get{c.capitalize()}()" for c in cols)
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        for (t : rows) {{
            print({body});
        }}
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=True)


def aggregate_print(name, table, alias, col) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        total = 0;
        for (t : rows) {{
            total = total + t.get{col.capitalize()}();
        }}
        print(total);
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=True)


def max_print(name, table, alias, col) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        best = 0;
        for (t : rows) {{
            if (t.get{col.capitalize()}() > best) {{ best = t.get{col.capitalize()}(); }}
        }}
        print(best);
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=True)


def exists_print(name, table, alias, pred_col, pred_val) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        found = false;
        for (t : rows) {{
            if (t.get{pred_col.capitalize()}() == {pred_val}) {{ found = true; }}
        }}
        print(found);
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=True)


def count_print(name, table, alias, pred_col, pred_val) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        n = 0;
        for (t : rows) {{
            if (t.get{pred_col.capitalize()}() == {pred_val}) {{ n = n + 1; }}
        }}
        print(n);
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=True)


def join_print(name, outer_table, outer_alias, inner_table, inner_alias,
               inner_col, link_col, outer_key) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {outer_table} as {outer_alias}");
        result = new ArrayList();
        for (t : rows) {{
            inner = executeQuery("select {inner_alias}.{inner_col} from {inner_table} {inner_alias} where {inner_alias}.{link_col} = " + t.get{outer_key.capitalize()}());
            for (u : inner) {{
                result.add(u.get{inner_col.capitalize()}());
            }}
        }}
        for (r : result) {{ print(r); }}
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=True)


# ----------------------------------------------------------------------
# Shapes the reference implementation does not support (AcadPortal's
# "limitations in our implementation such as the presence of operations
# which are not yet supported").


def substring_print(name, table, alias, col) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        for (t : rows) {{
            print(t.get{col.capitalize()}().substring(0, 3));
        }}
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=False)


def contains_filter_print(name, table, alias, col, needle) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        for (t : rows) {{
            if (t.get{col.capitalize()}().contains("{needle}")) {{
                print(t.get{col.capitalize()}());
            }}
        }}
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=False)


def comparator_print(name, table, alias, col, pivot) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        for (t : rows) {{
            if (t.get{col.capitalize()}().compareTo("{pivot}") > 0) {{
                print(t.get{col.capitalize()}());
            }}
        }}
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=False)


def indexed_while_print(name, table, alias, col) -> Servlet:
    source = f"""
    {name}(k) {{
        rows = executeQuery("from {table} as {alias}");
        j = 0;
        while (j < k) {{
            print(j);
            j = j + 1;
        }}
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=False)


def early_break_print(name, table, alias, col, pred_col, pred_val) -> Servlet:
    source = f"""
    {name}() {{
        rows = executeQuery("from {table} as {alias}");
        v = null;
        for (t : rows) {{
            if (t.get{pred_col.capitalize()}() == {pred_val}) {{
                v = t.get{col.capitalize()}();
                break;
            }}
        }}
        print(v);
    }}
    """
    return Servlet(name=name, function=name, source=source, expected_extractable=False)


def servlet_extracted(report: ExtractionReport) -> bool:
    """Experiment 3 criterion: every query the servlet prints was extracted.

    True when all analysed variables extracted successfully, or when the
    servlet's loops were fully consolidated into one query each.
    """
    if report.variables and all(
        v.status == STATUS_SUCCESS for v in report.variables.values()
    ):
        return True
    return bool(report.consolidations) and all(
        v.status == STATUS_SUCCESS
        for v in report.variables.values()
        if v.loop_sid not in {c.loop_sid for c in report.consolidations}
    )
