"""JobPortal — the star-schema report of paper Figure 12 (Experiment 8).

The report fetches all applicants for a job, then per applicant
(conditionally) fetches personal details and committee feedback through
scalar queries — the classic N+1 pattern over a star schema.  Rule T7
consolidates all of it into the single OUTER APPLY query of Figure 13.

``JOB_REPORT`` is the Figure 12 pseudocode written out (the fetch-and-print
helpers inlined as correlated ``executeScalar`` calls + prints, which is
what the helpers do).
"""

from __future__ import annotations

import random

from ..algebra import Catalog
from ..db import Database

JOB_REPORT = """
report(jobId) {
    rs = executeQuery("select * from applicants a where a.jobId = :jobId");
    for (a : rs) {
        id = a.getApplicantId();
        name = executeScalar("select p.name from personal p where p.applicantId = " + id);
        print(name);
        fb1 = executeScalar("select f.score1 from feedback1 f where f.applicantId = " + id);
        print(fb1);
        fb2 = executeScalar("select f.score2 from feedback2 f where f.applicantId = " + id);
        print(fb2);
        if (a.getApplnMode() == "online") {
            q = executeScalar("select e.degree from qualifications e where e.applicantId = " + id);
            print(q);
        }
    }
}
"""


def jobportal_catalog() -> Catalog:
    catalog = Catalog()
    catalog.define("applicants", ["applicantId", "applnMode", "jobId"], key=("applicantId",))
    catalog.define("personal", ["applicantId", "name", "email"], key=("applicantId",))
    catalog.define("feedback1", ["applicantId", "score1"], key=("applicantId",))
    catalog.define("feedback2", ["applicantId", "score2"], key=("applicantId",))
    catalog.define("qualifications", ["applicantId", "degree"], key=("applicantId",))
    return catalog


def jobportal_database(
    applicants: int = 100, seed: int = 23, catalog: Catalog | None = None
) -> Database:
    """Synthetic job-application data; every applicant has satellite rows
    (the star-schema shape of the paper's administrative portal)."""
    rng = random.Random(seed)
    db = Database(catalog or jobportal_catalog())
    for i in range(1, applicants + 1):
        mode = "online" if rng.random() < 0.6 else "paper"
        db.insert("applicants", {"applicantId": i, "applnMode": mode, "jobId": 7})
        db.insert(
            "personal",
            {"applicantId": i, "name": f"applicant{i}", "email": f"a{i}@example.org"},
        )
        db.insert("feedback1", {"applicantId": i, "score1": rng.randint(1, 10)})
        db.insert("feedback2", {"applicantId": i, "score2": rng.randint(1, 10)})
        if mode == "online":
            db.insert(
                "qualifications",
                {"applicantId": i, "degree": rng.choice(["BSc", "MSc", "PhD"])},
            )
    return db
