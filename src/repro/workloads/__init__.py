"""The paper's evaluation workloads, re-created in MiniJava.

* :mod:`~repro.workloads.wilos` — the 33 Table 1 code samples;
* :mod:`~repro.workloads.matoso` — Figure 2 (Experiment 7);
* :mod:`~repro.workloads.jobportal` — Figure 12 (Experiment 8);
* :mod:`~repro.workloads.rubis` / :mod:`~repro.workloads.rubbos` /
  :mod:`~repro.workloads.acadportal` — Experiment 3 servlet suites;
* :mod:`~repro.workloads.precision` — loops only the SSA precision
  layer recovers (dead-branch, copy-chain, local-alias shapes).
"""

from .acadportal import (
    ACADPORTAL_SERVLETS,
    MANUAL_QUERIES,
    acadportal_catalog,
    acadportal_database,
)
from .jobportal import JOB_REPORT, jobportal_catalog, jobportal_database
from .precision import (
    PRECISION_SAMPLES,
    PrecisionSample,
    precision_catalog,
    precision_database,
    precision_sample,
)
from .matoso import (
    FIND_MAX_SCORE,
    FIND_MAX_SCORE_WITH_PLAYER,
    matoso_catalog,
    matoso_database,
)
from .rubbos import RUBBOS_SERVLETS, rubbos_catalog, rubbos_database
from .rubis import RUBIS_SERVLETS, rubis_catalog, rubis_database
from .servlets import Servlet, servlet_extracted
from .wilos import (
    EXPECT_CAPABLE,
    EXPECT_FAILED,
    EXPECT_SUCCESS,
    SAMPLE_30_SIMPLIFIED,
    WILOS_SAMPLES,
    WilosSample,
    expected_counts,
    sample,
    wilos_catalog,
    wilos_database,
)

__all__ = [
    "ACADPORTAL_SERVLETS",
    "EXPECT_CAPABLE",
    "EXPECT_FAILED",
    "EXPECT_SUCCESS",
    "FIND_MAX_SCORE",
    "FIND_MAX_SCORE_WITH_PLAYER",
    "JOB_REPORT",
    "MANUAL_QUERIES",
    "PRECISION_SAMPLES",
    "PrecisionSample",
    "RUBBOS_SERVLETS",
    "RUBIS_SERVLETS",
    "SAMPLE_30_SIMPLIFIED",
    "Servlet",
    "WILOS_SAMPLES",
    "WilosSample",
    "acadportal_catalog",
    "acadportal_database",
    "expected_counts",
    "jobportal_catalog",
    "jobportal_database",
    "matoso_catalog",
    "matoso_database",
    "precision_catalog",
    "precision_database",
    "precision_sample",
    "rubbos_catalog",
    "rubbos_database",
    "rubis_catalog",
    "rubis_database",
    "sample",
    "servlet_extracted",
    "wilos_catalog",
    "wilos_database",
]
