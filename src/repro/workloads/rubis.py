"""RuBiS — the Rice University bidding system (ebay.com-like benchmark).

Experiment 3: the paper's tool extracted equivalent queries for 17/17
RuBiS servlets.  The suite below instantiates the standard RuBiS browse /
search / view pages over the RuBiS schema.
"""

from __future__ import annotations

import random

from ..algebra import Catalog
from ..db import Database
from .servlets import (
    Servlet,
    aggregate_print,
    count_print,
    exists_print,
    join_print,
    max_print,
    projection_print,
    selection_print,
)


def rubis_catalog() -> Catalog:
    catalog = Catalog()
    catalog.define("categories", ["id", "name"], key=("id",))
    catalog.define("regions", ["id", "name"], key=("id",))
    catalog.define(
        "users", ["id", "nickname", "region_id", "rating"], key=("id",)
    )
    catalog.define(
        "items",
        ["id", "name", "category_id", "seller_id", "price", "quantity", "active"],
        key=("id",),
    )
    catalog.define("bids", ["id", "item_id", "user_id", "amount"], key=("id",))
    catalog.define("comments", ["id", "item_id", "user_id", "rating"], key=("id",))
    return catalog


RUBIS_SERVLETS: list[Servlet] = [
    projection_print("BrowseCategories", "Categories", "c", ["name"]),
    projection_print("BrowseRegions", "Regions", "r", ["name"]),
    selection_print("SearchItemsByCategory", "Items", "i", "name", "category_id", 1),
    selection_print("ViewActiveItems", "Items", "i", "name", "active", "true"),
    projection_print("ViewItem", "Items", "i", ["name", "price"]),
    projection_print("ViewUserInfo", "Users", "u", ["nickname", "rating"]),
    selection_print("ViewUsersInRegion", "Users", "u", "nickname", "region_id", 2),
    join_print("ViewBidHistory", "Items", "i", "Bids", "b", "amount", "item_id", "id"),
    join_print("ViewItemComments", "Items", "i", "Comments", "c", "rating", "item_id", "id"),
    max_print("ViewMaxBid", "Bids", "b", "amount"),
    aggregate_print("AboutMeBidTotal", "Bids", "b", "amount"),
    count_print("CountItemsInCategory", "Items", "i", "category_id", 1),
    exists_print("HasActiveAuctions", "Items", "i", "active", "true"),
    count_print("CountUserComments", "Comments", "c", "user_id", 1),
    max_print("TopRatedUser", "Users", "u", "rating"),
    selection_print("CheapItems", "Items", "i", "name", "price", 10),
    aggregate_print("StoreQuantity", "Items", "i", "quantity"),
]


def rubis_database(scale: int = 60, seed: int = 31, catalog: Catalog | None = None) -> Database:
    rng = random.Random(seed)
    db = Database(catalog or rubis_catalog())
    for i in range(1, 6):
        db.insert("categories", {"id": i, "name": f"category{i}"})
        db.insert("regions", {"id": i, "name": f"region{i}"})
    for i in range(1, scale // 3 + 1):
        db.insert(
            "users",
            {"id": i, "nickname": f"user{i}", "region_id": i % 5 + 1, "rating": rng.randint(0, 100)},
        )
    for i in range(1, scale + 1):
        db.insert(
            "items",
            {
                "id": i,
                "name": f"item{i}",
                "category_id": i % 5 + 1,
                "seller_id": i % (scale // 3) + 1,
                "price": rng.randint(1, 500),
                "quantity": rng.randint(1, 10),
                "active": rng.random() < 0.7,
            },
        )
        db.insert(
            "bids",
            {"id": i, "item_id": i, "user_id": i % (scale // 3) + 1, "amount": rng.randint(1, 600)},
        )
        db.insert(
            "comments",
            {"id": i, "item_id": i, "user_id": i % (scale // 3) + 1, "rating": rng.randint(-5, 5)},
        )
    return db
