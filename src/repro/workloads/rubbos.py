"""RuBBoS — the Rice University bulletin board (slashdot-like benchmark).

Experiment 3: 16/16 servlets extracted.
"""

from __future__ import annotations

import random

from ..algebra import Catalog
from ..db import Database
from .servlets import (
    Servlet,
    aggregate_print,
    count_print,
    exists_print,
    join_print,
    max_print,
    projection_print,
    selection_print,
)


def rubbos_catalog() -> Catalog:
    catalog = Catalog()
    catalog.define(
        "stories", ["id", "title", "author_id", "category_id", "rating", "views"], key=("id",)
    )
    catalog.define("scomments", ["id", "story_id", "author_id", "rating"], key=("id",))
    catalog.define("authors", ["id", "name", "karma"], key=("id",))
    catalog.define("scategories", ["id", "name"], key=("id",))
    return catalog


RUBBOS_SERVLETS: list[Servlet] = [
    projection_print("StoriesOfTheDay", "Stories", "s", ["title"]),
    selection_print("BrowseStoriesByCategory", "Stories", "s", "title", "category_id", 1),
    projection_print("ViewStory", "Stories", "s", ["title", "rating"]),
    join_print("ViewComments", "Stories", "s", "Scomments", "c", "rating", "story_id", "id"),
    projection_print("BrowseCategories", "Scategories", "c", ["name"]),
    projection_print("AuthorList", "Authors", "a", ["name"]),
    selection_print("TopAuthors", "Authors", "a", "name", "karma", 100),
    max_print("HighestRatedStory", "Stories", "s", "rating"),
    count_print("CountStoriesInCategory", "Stories", "s", "category_id", 2),
    aggregate_print("TotalViews", "Stories", "s", "views"),
    exists_print("HasModeratedComments", "Scomments", "c", "rating", 5),
    count_print("CountAuthorComments", "Scomments", "c", "author_id", 1),
    max_print("MaxKarma", "Authors", "a", "karma"),
    selection_print("PopularStories", "Stories", "s", "title", "views", 1000),
    aggregate_print("KarmaSum", "Authors", "a", "karma"),
    exists_print("AnyNegativeComment", "Scomments", "c", "rating", -1),
]


def rubbos_database(scale: int = 60, seed: int = 41, catalog: Catalog | None = None) -> Database:
    rng = random.Random(seed)
    db = Database(catalog or rubbos_catalog())
    for i in range(1, 6):
        db.insert("scategories", {"id": i, "name": f"topic{i}"})
    for i in range(1, scale // 3 + 1):
        db.insert("authors", {"id": i, "name": f"author{i}", "karma": rng.randint(0, 200)})
    for i in range(1, scale + 1):
        db.insert(
            "stories",
            {
                "id": i,
                "title": f"story{i}",
                "author_id": i % (scale // 3) + 1,
                "category_id": i % 5 + 1,
                "rating": rng.randint(-5, 5),
                "views": rng.randint(0, 2000),
            },
        )
        db.insert(
            "scomments",
            {"id": i, "story_id": i, "author_id": i % (scale // 3) + 1, "rating": rng.randint(-5, 5)},
        )
    return db
