"""Schema objects: column and table definitions plus schema inference.

The catalog describes base tables (name, columns, optional unique key).
Rule T4/T5 in the paper require the outer query to have a unique key; the
precondition is checked against this catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .expressions import Col, ScalarExpr
from .operators import (
    Aggregate,
    Alias,
    Distinct,
    Join,
    Limit,
    OuterApply,
    Project,
    RelExpr,
    Select,
    Sort,
    Table,
)


@dataclass(frozen=True)
class ColumnDef:
    """A column definition in a base table."""

    name: str
    type: str = "any"  # one of: int, float, str, bool, any


@dataclass
class TableDef:
    """A base table definition."""

    name: str
    columns: list[ColumnDef]
    key: tuple[str, ...] = ()

    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    def has_column(self, name: str) -> bool:
        return any(col.name == name for col in self.columns)


@dataclass
class Catalog:
    """A collection of table definitions."""

    tables: dict[str, TableDef] = field(default_factory=dict)

    def add(self, table: TableDef) -> None:
        self.tables[table.name.lower()] = table

    def define(self, name: str, columns: list[str], key: tuple[str, ...] = ()) -> TableDef:
        table = TableDef(name=name, columns=[ColumnDef(c) for c in columns], key=key)
        self.add(table)
        return table

    def get(self, name: str) -> TableDef:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.tables


def output_columns(expr: RelExpr, catalog: Catalog) -> list[str]:
    """Infer the output column names of a relational expression."""
    if isinstance(expr, Table):
        return catalog.get(expr.name).column_names()
    if isinstance(expr, (Select, Sort, Distinct, Limit, Alias)):
        return output_columns(expr.child, catalog)
    if isinstance(expr, Project):
        return [item.output_name for item in expr.items]
    if isinstance(expr, (Join, OuterApply)):
        left = output_columns(expr.left, catalog)
        right = output_columns(expr.right, catalog)
        merged = list(left)
        for name in right:
            if name not in merged:
                merged.append(name)
        return merged
    if isinstance(expr, Aggregate):
        names = []
        for group in expr.group_by:
            names.append(group.name if isinstance(group, Col) else str(group))
        names.extend(item.output_name for item in expr.aggs)
        return names
    raise TypeError(f"cannot infer schema of {type(expr).__name__}")


def has_unique_key(expr: RelExpr, catalog: Catalog) -> bool:
    """Check the precondition of rules T4.1/T5.2: the input has a key.

    Conservative: true when the expression is (a chain of key-preserving
    operators over) a single base table that declares a key, and any
    projection retains all key columns.  Unknown tables (e.g. temporary
    tables registered at run time) have no known key.
    """
    if isinstance(expr, Table):
        if expr.name not in catalog:
            return False
        return bool(catalog.get(expr.name).key)
    if isinstance(expr, (Select, Sort, Distinct, Limit, Alias)):
        return has_unique_key(expr.child, catalog)
    if isinstance(expr, Project):
        key = _key_of(expr.child, catalog)
        if key is None:
            return False
        retained = set()
        for item in expr.items:
            if isinstance(item.expr, Col):
                retained.add(item.expr.name)
        return set(key) <= retained
    return False


def _key_of(expr: RelExpr, catalog: Catalog) -> tuple[str, ...] | None:
    if isinstance(expr, Table):
        if expr.name not in catalog:
            return None
        key = catalog.get(expr.name).key
        return key or None
    if isinstance(expr, (Select, Sort, Distinct, Limit, Alias)):
        return _key_of(expr.child, catalog)
    return None


def key_of(expr: RelExpr, catalog: Catalog) -> tuple[str, ...] | None:
    """Return the unique key columns of an expression, or ``None``."""
    return _key_of(expr, catalog)
